//! # stopwatch-repro — a full reproduction of StopWatch (DSN 2013)
//!
//! *Mitigating Access-Driven Timing Channels in Clouds using StopWatch*
//! (Peng Li, Debin Gao, Michael K. Reiter) defends infrastructure-as-a-service
//! clouds against timing side channels by running **three replicas** of every
//! guest VM on hosts with nonoverlapping coresidency and exposing only
//! **median timings**: median virtual delivery times for inbound I/O events,
//! virtual (instruction-derived) clocks internally, and second-copy (median)
//! release of outputs externally.
//!
//! The original is a Xen 4.0.2 modification; this workspace rebuilds the
//! entire platform as a deterministic discrete-event simulation and
//! implements StopWatch inside it, at the same architectural joints. See
//! `DESIGN.md` for the system inventory and the sweep architecture;
//! regenerate the paper's figures with the `experiments` binary of the
//! `bench` crate (CSVs land in `results/`).
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`simkit`] | discrete-event kernel: time, events, seeded RNG, metrics |
//! | [`netsim`] | links, PGM multicast, TCP/UDP-lite, ingress/egress nodes |
//! | [`storage`] | disk images, rotating/SSD access models, disk devices |
//! | [`vmm`] | the simulated hypervisor: virtual time, VM exits, devices |
//! | [`stopwatch_core`] | the defense: replica coordination, median agreement |
//! | [`placement`] | Theorems 1–2: triangle packings, Bose construction |
//! | [`timestats`] | order statistics, χ² detection, KS distance, Fig. 8 |
//! | [`workloads`] | web/NFS/PARSEC/attacker guests, clients, registry |
//! | [`harness`] | parallel scenario sweeps and the `swbench` driver |
//!
//! ## Quickstart
//!
//! ```
//! use stopwatch_repro::prelude::*;
//!
//! // A three-host StopWatch cloud running one protected echo service.
//! let mut builder = CloudBuilder::new(CloudConfig::fast_test(), 3);
//! builder.add_stopwatch_vm(&[0, 1, 2], || Box::new(IdleGuest));
//! let mut sim = builder.build();
//! sim.run_until(SimTime::from_millis(200));
//! assert_eq!(sim.cloud.stats().get("egress_divergences"), 0);
//! ```

pub use harness;
pub use netsim;
pub use placement;
pub use simkit;
pub use stopwatch_core;
pub use storage;
pub use timestats;
pub use vmm;
pub use workloads;

/// The most common imports, re-exported in one place.
pub mod prelude {
    pub use netsim::prelude::*;
    pub use placement::prelude::*;
    pub use simkit::prelude::*;
    pub use stopwatch_core::prelude::*;
    pub use storage::{BlockRange, DiskImage};
    pub use timestats::{Cdf, Detector, Exponential, OrderStat};
    pub use vmm::prelude::*;
    pub use workloads::prelude::*;
}
