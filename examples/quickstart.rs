//! Quickstart: build a three-host StopWatch cloud, run a protected echo
//! service, ping it from an external client, and inspect the defense's
//! bookkeeping.
//!
//! Run with: `cargo run --release --example quickstart`

use std::any::Any;
use stopwatch_repro::prelude::*;

/// A guest that echoes every Raw packet back to its sender.
struct EchoGuest;

impl GuestProgram for EchoGuest {
    fn on_boot(&mut self, _env: &mut GuestEnv) {}
    fn on_packet(&mut self, packet: &Packet, env: &mut GuestEnv) {
        if let Body::Raw { tag, len } = *packet.body() {
            env.send(packet.src(), Body::Raw { tag: tag + 1, len });
        }
    }
    fn on_disk_done(
        &mut self,
        _op: storage::device::DiskOp,
        _r: BlockRange,
        _d: &[u64],
        _env: &mut GuestEnv,
    ) {
    }
}

/// A client that sends one ping and waits for the echo.
struct OnePing {
    server: EndpointId,
    me: EndpointId,
    sent: bool,
    reply_at: Option<SimTime>,
}

impl ClientApp for OnePing {
    fn on_start(&mut self, _now: SimTime) -> Vec<Packet> {
        self.sent = true;
        vec![Packet::new(
            self.me,
            self.server,
            Body::Raw { tag: 7, len: 64 },
        )]
    }
    fn on_packet(&mut self, _p: &Packet, now: SimTime) -> Vec<Packet> {
        self.reply_at = Some(now);
        Vec::new()
    }
    fn on_tick(&mut self, _now: SimTime) -> Vec<Packet> {
        Vec::new()
    }
    fn is_done(&self) -> bool {
        self.reply_at.is_some()
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    let mut builder = CloudBuilder::new(CloudConfig::default(), 3);
    // Three replicas of the echo guest, one per host.
    let vm = builder.add_stopwatch_vm(&[0, 1, 2], || Box::new(EchoGuest));
    let client = builder.add_client(Box::new(OnePing {
        server: vm.endpoint,
        me: EndpointId(2000),
        sent: false,
        reply_at: None,
    }));
    let mut sim = builder.build();
    sim.run_until_clients_done(SimTime::from_secs(5));

    let reply_at = sim
        .cloud
        .client_app::<OnePing>(client)
        .and_then(|c| c.reply_at)
        .expect("echo reply received");
    println!("echo round trip through the full defense: {reply_at}");
    println!("cloud stats: {}", sim.cloud.stats());
    for replica in 0..3 {
        let log = sim.cloud.delivered_log(vm, replica);
        println!(
            "replica {replica}: packet delivered at virtual time {}",
            log.first().map(|(_, v)| v.to_string()).unwrap_or_default()
        );
    }
    println!("note: all three virtual delivery times are identical — that is the point.");
}
