//! Sec. VIII as a runnable example: plan replica placements for a cloud
//! under StopWatch's edge-disjoint-triangle constraint and compare the
//! utilization against running each guest in isolation.
//!
//! Run with: `cargo run --release --example placement_planner [n] [capacity]`

use stopwatch_repro::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(21);
    let c: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    println!("cloud of {n} machines, capacity {c} guests each");
    println!(
        "theorem 1 bound (ignoring capacity): {} VMs",
        max_triangle_packing(n)
    );
    println!(
        "isolation baseline:                  {} VMs\n",
        isolation_capacity(n)
    );

    let strategy = if n % 6 == 3 && n >= 9 {
        Strategy::Bose
    } else {
        Strategy::Greedy
    };
    let mut planner = PlacementPlanner::new(n, c, strategy).expect("valid configuration");
    let placed = planner.place_all();
    planner
        .validate()
        .expect("placement satisfies StopWatch constraints");

    println!(
        "strategy {strategy:?} placed {placed} VMs ({} replicas)",
        placed * 3
    );
    println!("slot utilization: {:.1}%", planner.utilization() * 100.0);
    println!(
        "speedup over isolation: {:.2}x\n",
        planner.speedup_vs_isolation()
    );
    println!("first placements:");
    for (i, tri) in planner.placed().iter().take(8).enumerate() {
        println!("  VM {i}: {tri}");
    }
    if placed > 8 {
        println!("  ... and {} more", placed - 8);
    }
}
