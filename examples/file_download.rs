//! The Fig. 5 scenario as a runnable example: download one file over HTTP
//! and over UDP-NAK, against both unmodified Xen and StopWatch, and print
//! the latency comparison.
//!
//! Run with: `cargo run --release --example file_download [bytes]`

use stopwatch_repro::prelude::*;

fn run(stopwatch: bool, udp: bool, bytes: u64) -> f64 {
    let mut builder = CloudBuilder::new(CloudConfig::default(), 3);
    let vm = match (stopwatch, udp) {
        (true, false) => builder.add_stopwatch_vm(&[0, 1, 2], || Box::new(FileServerGuest::new())),
        (false, false) => builder.add_baseline_vm(0, Box::new(FileServerGuest::new())),
        (true, true) => builder.add_stopwatch_vm(&[0, 1, 2], || Box::new(UdpFileGuest::new())),
        (false, true) => builder.add_baseline_vm(0, Box::new(UdpFileGuest::new())),
    };
    let me = EndpointId(2000);
    if udp {
        let client = builder.add_client(Box::new(UdpDownloadClient::new(
            me,
            vm.endpoint,
            1,
            bytes,
            1,
        )));
        let mut sim = builder.build();
        sim.run_until_clients_done(SimTime::from_secs(300));
        let c = sim.cloud.client_app::<UdpDownloadClient>(client).unwrap();
        c.results()[0].latency.as_millis_f64()
    } else {
        let client = builder.add_client(Box::new(HttpDownloadClient::new(
            me,
            vm.endpoint,
            1,
            bytes,
            1,
        )));
        let mut sim = builder.build();
        sim.run_until_clients_done(SimTime::from_secs(300));
        let c = sim.cloud.client_app::<HttpDownloadClient>(client).unwrap();
        c.results()[0].latency.as_millis_f64()
    }
}

fn main() {
    let bytes: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    println!("downloading a {bytes}-byte file (cold start) four ways:\n");
    let http_base = run(false, false, bytes);
    let http_sw = run(true, false, bytes);
    let udp_base = run(false, true, bytes);
    let udp_sw = run(true, true, bytes);
    println!("HTTP  baseline : {http_base:9.2} ms");
    println!(
        "HTTP  StopWatch: {http_sw:9.2} ms   ({:.2}x)",
        http_sw / http_base
    );
    println!("UDP   baseline : {udp_base:9.2} ms");
    println!(
        "UDP   StopWatch: {udp_sw:9.2} ms   ({:.2}x)",
        udp_sw / udp_base
    );
    println!(
        "\nthe paper's point: NAK-based transfer keeps inbound packets out of the\n\
         median machinery, so the StopWatch penalty almost disappears."
    );
}
