//! The Fig. 7 scenario as a runnable example: run one PARSEC application
//! over unmodified Xen and over StopWatch and print the overhead, next to
//! the paper's measurements.
//!
//! Run with: `cargo run --release --example parsec_compute [app]`
//! Apps: ferret blackscholes canneal dedup streamcluster

use stopwatch_repro::prelude::*;
use workloads::parsec::profile;

fn run(name: &str, stopwatch: bool) -> (f64, u64) {
    let prof = profile(name).expect("known application");
    let mut cfg = CloudConfig::default();
    cfg.broadcast_band = None;
    let mut builder = CloudBuilder::new(cfg, 3);
    let monitor = EndpointId(2000);
    let vm = if stopwatch {
        builder.add_stopwatch_vm(&[0, 1, 2], move || {
            Box::new(ParsecGuest::new(prof, monitor))
        })
    } else {
        builder.add_baseline_vm(0, Box::new(ParsecGuest::new(prof, monitor)))
    };
    let client = builder.add_client(Box::new(CompletionWaiter::new(1)));
    let mut sim = builder.build();
    sim.run_until_clients_done(SimTime::from_secs(120));
    let done = sim
        .cloud
        .client_app::<CompletionWaiter>(client)
        .unwrap()
        .arrivals()[0];
    let (h, s) = sim.cloud.vm_replicas(vm)[0];
    let irqs = sim.cloud.host(h).slot(s).counters().get("disk_irq");
    (done.as_millis_f64(), irqs)
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ferret".into());
    let prof = profile(&name).expect("app must be one of the five PARSEC profiles");
    println!("running {name} (baseline, then 3-replica StopWatch)...");
    let (base, _) = run(&name, false);
    let (sw, irqs) = run(&name, true);
    println!(
        "\n{name}: baseline {base:8.1} ms | stopwatch {sw:8.1} ms | ratio {:.2}x",
        sw / base
    );
    println!(
        "paper:   baseline {:8} ms | stopwatch {:8} ms | ratio {:.2}x",
        prof.paper_baseline_ms,
        prof.paper_stopwatch_ms,
        prof.paper_stopwatch_ms as f64 / prof.paper_baseline_ms as f64
    );
    println!("disk interrupts: {irqs} (paper: {})", prof.disk_interrupts);
}
