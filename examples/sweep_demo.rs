//! Sweep harness demo: measure web-retrieval latency and leakage across a
//! Δn grid with both defense arms, on every core, and print the JSON
//! aggregate.
//!
//! Run with: `cargo run --release --example sweep_demo`
//!
//! The same sweep is available from the command line as
//! `swbench sweep --workload web-http --axis cfg.delta_n_ms=2,6,10 \
//!  --axis cfg.defense=baseline,stopwatch --seeds 4 --param bytes=50000`.

use stopwatch_repro::harness::prelude::*;
use stopwatch_repro::simkit::time::SimDuration;

fn main() {
    let mut spec = SweepSpec::new("sweep-demo", "web-http")
        .axis("cfg.delta_n_ms", &[2u64, 6, 10])
        .axis("cfg.defense", &["baseline", "stopwatch"])
        .seed_shards(42, 4);
    spec.base_params = vec![
        ("bytes".to_string(), "50000".to_string()),
        ("downloads".to_string(), "2".to_string()),
    ];
    spec.base_overrides = vec![("broadcast_band".to_string(), "off".to_string())];
    spec.duration = SimDuration::from_secs(120);

    let scenarios = spec.scenarios().expect("spec expands");
    println!(
        "running {} scenarios ({} cells x {} seeds) ...",
        scenarios.len(),
        scenarios.len() / spec.seeds.len(),
        spec.seeds.len()
    );
    let outcomes = run_scenarios(&scenarios, &RunnerOptions::default());
    let report = SweepReport::from_outcomes(&spec.name, &outcomes, None);
    print!("{}", report.to_table());
    println!("{}", report.to_json());
}
