//! The Fig. 4 security experiment as a runnable example: an attacker VM
//! measures inter-packet virtual delivery times while a victim VM shares
//! one of its hosts. Prints how many observations an attacker would need
//! to detect the victim, with and without StopWatch.
//!
//! Run with: `cargo run --release --example timing_attack [probes]`

use stopwatch_repro::prelude::*;
use workloads::attack::run_attack_scenario;

fn main() {
    let probes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    println!("running 4 scenarios x {probes} probes (this simulates minutes of cloud time)...");
    let sw_null = run_attack_scenario(true, false, probes, 42);
    let sw_victim = run_attack_scenario(true, true, probes, 42);
    let bl_null = run_attack_scenario(false, false, probes, 42);
    let bl_victim = run_attack_scenario(false, true, probes, 42);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("\nmean inter-packet delta observed by the attacker (ms):");
    println!("  baseline  no victim: {:8.3}", mean(&bl_null.deltas_ms));
    println!("  baseline  w/ victim: {:8.3}", mean(&bl_victim.deltas_ms));
    println!("  stopwatch no victim: {:8.3}", mean(&sw_null.deltas_ms));
    println!("  stopwatch w/ victim: {:8.3}", mean(&sw_victim.deltas_ms));

    let sw = Detector::from_samples(&sw_null.deltas_ms, &sw_victim.deltas_ms, 10);
    let bl = Detector::from_samples(&bl_null.deltas_ms, &bl_victim.deltas_ms, 10);
    println!("\nobservations needed to detect the victim (chi-square):");
    println!("confidence   without StopWatch   with StopWatch");
    for c in [0.70, 0.80, 0.90, 0.95, 0.99] {
        println!(
            "{c:10.2}   {:17}   {:14}",
            bl.observations_needed(c),
            sw.observations_needed(c)
        );
    }
}
