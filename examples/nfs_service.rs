//! The Fig. 6 scenario as a runnable example: an NFS server under an
//! nhfsstone-style load with the paper's operation mix, measuring latency
//! per op and TCP packets per op at one offered rate.
//!
//! Run with: `cargo run --release --example nfs_service [ops_per_sec]`

use stopwatch_repro::prelude::*;

fn run(stopwatch: bool, rate: f64, ops: u64) -> (f64, f64, f64) {
    let mut builder = CloudBuilder::new(CloudConfig::default(), 3);
    let vm = if stopwatch {
        builder.add_stopwatch_vm(&[0, 1, 2], || Box::new(NfsServerGuest::new()))
    } else {
        builder.add_baseline_vm(0, Box::new(NfsServerGuest::new()))
    };
    let client = builder.add_client(Box::new(NhfsstoneClient::new(
        EndpointId(2000),
        vm.endpoint,
        rate,
        ops,
        42,
    )));
    let mut sim = builder.build();
    sim.run_until_clients_done(SimTime::from_secs(300));
    let c = sim.cloud.client_app::<NhfsstoneClient>(client).unwrap();
    let done = c.completed().max(1) as f64;
    (
        c.mean_latency_ms(),
        c.sent_segments as f64 / done,
        c.received_segments as f64 / done,
    )
}

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100.0);
    let ops = 200;
    println!("nhfsstone: {ops} ops at {rate} ops/s, paper op mix, 5 client processes\n");
    let (base, _, _) = run(false, rate, ops);
    let (sw, c2s, s2c) = run(true, rate, ops);
    println!("baseline  mean latency/op: {base:7.2} ms");
    println!(
        "stopwatch mean latency/op: {sw:7.2} ms  ({:.2}x)",
        sw / base
    );
    println!("packets per op (stopwatch run): {c2s:.2} client->server, {s2c:.2} server->client");
}
