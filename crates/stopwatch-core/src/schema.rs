//! The shared vocabulary of the typed experiment API: value types for
//! self-describing knob/parameter schemas, plus the did-you-mean machinery
//! every layer uses to reject typos loudly.
//!
//! [`CloudConfig`](crate::config::CloudConfig) declares its knobs as
//! [`KnobSpec`](crate::config::KnobSpec) rows typed by [`ValueType`]; the
//! `workloads` crate declares workload parameters the same way. Sweep
//! harnesses validate every declared key/value against these schemas
//! *before* anything runs, and error messages name the layer, the
//! offending key, and the nearest valid key.

use std::fmt;

/// The type of a knob or workload-parameter value, as declared in a
/// schema. Validation ([`ValueType::check`]) accepts exactly the strings
/// the corresponding setter will parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// Unsigned integer (`u64`-ranged).
    Int,
    /// Unsigned integer (`u32`-ranged) — for knobs/parameters whose
    /// setter parses `u32`, so pre-run validation is exactly as strict
    /// as install.
    Int32,
    /// Floating-point number.
    Float,
    /// `true` / `false`.
    Bool,
    /// A length of real time in whole milliseconds.
    DurationMs,
    /// A virtual-time offset (Δn / Δd) in whole milliseconds.
    OffsetMs,
    /// One of a closed set of names.
    Enum(&'static [&'static str]),
    /// `"lo:hi"` float pair, or `"off"`.
    PairOrOff,
    /// Free-form string.
    Str,
}

impl ValueType {
    /// Checks that `value` parses as this type, without applying it
    /// anywhere.
    ///
    /// # Errors
    ///
    /// A message naming the value and the expected type (for enums, the
    /// allowed names).
    pub fn check(&self, value: &str) -> Result<(), String> {
        let ok = match self {
            ValueType::Int => value.parse::<u64>().is_ok(),
            ValueType::Int32 => value.parse::<u32>().is_ok(),
            ValueType::Float => value.parse::<f64>().is_ok(),
            ValueType::Bool => value.parse::<bool>().is_ok(),
            ValueType::DurationMs | ValueType::OffsetMs => value.parse::<u64>().is_ok(),
            ValueType::Enum(options) => {
                if !options.contains(&value) {
                    return Err(format!("value {value:?} is not one of {options:?}"));
                }
                true
            }
            ValueType::PairOrOff => {
                value == "off"
                    || value
                        .split_once(':')
                        .is_some_and(|(a, b)| a.parse::<f64>().is_ok() && b.parse::<f64>().is_ok())
            }
            ValueType::Str => true,
        };
        if ok {
            Ok(())
        } else {
            Err(format!("value {value:?} does not parse as {self}"))
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => f.write_str("int"),
            ValueType::Int32 => f.write_str("int32"),
            ValueType::Float => f.write_str("float"),
            ValueType::Bool => f.write_str("bool"),
            ValueType::DurationMs => f.write_str("duration_ms"),
            ValueType::OffsetMs => f.write_str("offset_ms"),
            ValueType::Enum(options) => f.write_str(&options.join("|")),
            ValueType::PairOrOff => f.write_str("lo:hi|off"),
            ValueType::Str => f.write_str("str"),
        }
    }
}

/// Levenshtein edit distance (typo metric for key suggestions).
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = Vec::with_capacity(b.len() + 1);
        cur.push(i + 1);
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The candidate closest to `wanted`, if any is close enough to be a
/// plausible typo (edit distance at most a third of the longer length,
/// plus one).
pub fn nearest<'a, I>(wanted: &str, candidates: I) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut best: Option<(usize, &'a str)> = None;
    for candidate in candidates {
        let d = levenshtein(wanted, candidate);
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, candidate));
        }
    }
    let (d, candidate) = best?;
    let budget = wanted.len().max(candidate.len()) / 3 + 1;
    (d <= budget).then_some(candidate)
}

/// The standard unknown-key message: names the layer, the offending key,
/// the nearest valid key (when one is plausible), and the full valid set.
pub fn unknown_key(layer: &str, key: &str, candidates: &[&str]) -> String {
    match nearest(key, candidates.iter().copied()) {
        Some(suggestion) => {
            format!("unknown {layer} {key:?}; did you mean {suggestion:?}? (have: {candidates:?})")
        }
        None => format!("unknown {layer} {key:?} (have: {candidates:?})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_accepts_and_rejects_by_type() {
        assert!(ValueType::Int.check("42").is_ok());
        assert!(ValueType::Int.check("-1").is_err());
        assert!(ValueType::Int.check("many").is_err());
        assert!(ValueType::Int32.check("42").is_ok());
        assert!(ValueType::Int32.check("5000000000").is_err(), "> u32::MAX");
        assert!(ValueType::Float.check("2e9").is_ok());
        assert!(ValueType::Float.check("x").is_err());
        assert!(ValueType::Bool.check("true").is_ok());
        assert!(ValueType::Bool.check("maybe").is_err());
        assert!(ValueType::DurationMs.check("10").is_ok());
        assert!(ValueType::DurationMs.check("10.5").is_err());
        let disk = ValueType::Enum(&["rotating", "ssd"]);
        assert!(disk.check("ssd").is_ok());
        let err = disk.check("floppy").unwrap_err();
        assert!(err.contains("rotating"), "{err}");
        assert!(ValueType::PairOrOff.check("off").is_ok());
        assert!(ValueType::PairOrOff.check("1:2.5").is_ok());
        assert!(ValueType::PairOrOff.check("10").is_err());
        assert!(ValueType::Str.check("anything").is_ok());
    }

    #[test]
    fn nearest_finds_plausible_typos_only() {
        let keys = ["delta_n_ms", "delta_d_ms", "replicas", "bytes"];
        assert_eq!(nearest("delta_q_ms", keys), Some("delta_n_ms"));
        assert_eq!(nearest("byts", keys), Some("bytes"));
        assert_eq!(nearest("replcas", keys), Some("replicas"));
        assert_eq!(nearest("zzzzzz", keys), None);
        assert_eq!(nearest("x", [] as [&str; 0]), None);
    }

    #[test]
    fn unknown_key_names_layer_key_and_suggestion() {
        let msg = unknown_key("config knob", "delta_q_ms", &["delta_n_ms", "seed"]);
        assert!(msg.contains("config knob"), "{msg}");
        assert!(msg.contains("delta_q_ms"), "{msg}");
        assert!(msg.contains("did you mean \"delta_n_ms\""), "{msg}");
        let msg = unknown_key("workload", "zzz", &["web-http"]);
        assert!(!msg.contains("did you mean"), "{msg}");
        assert!(msg.contains("web-http"), "{msg}");
    }

    #[test]
    fn value_types_render() {
        assert_eq!(ValueType::Int.to_string(), "int");
        assert_eq!(ValueType::Enum(&["a", "b"]).to_string(), "a|b");
        assert_eq!(ValueType::PairOrOff.to_string(), "lo:hi|off");
    }
}
