//! The StopWatch cloud: hosts, ingress/egress nodes, replica coordination,
//! clients, and the event-loop driver.
//!
//! This is the composition the paper's Figs. 2 and 3 draw:
//!
//! * inbound packets hit the **ingress node**, which replicates them to the
//!   hosts of the destination guest's replicas (Sec. V);
//! * each host's network device model buffers the packet and multicasts a
//!   **proposed virtual delivery time** (`virt at last exit + Δn`) to its
//!   peers over **PGM**; every replica adopts the **median** (Sec. V-B);
//! * guest outputs are tunneled to the **egress node**, which forwards the
//!   **second copy** of each packet — the median output timing — and votes
//!   on content (Sec. VI);
//! * a pacing heartbeat slows the fastest replica so the virtual-time gap
//!   between the two fastest stays bounded (Sec. V-A);
//! * external **clients** (not replicated, real-time observers) drive
//!   workloads and measure what an outside attacker would measure.

use crate::config::{CloudConfig, DiskKind};
use netsim::background::BroadcastSource;
use netsim::infra::{EgressDecision, EgressNode, IngressNode};
use netsim::link::{Fabric, NetNode};
use netsim::packet::{EndpointId, Packet};
use netsim::pgm::{PgmPacket, PgmReceiver, PgmSender};
use simkit::engine::{EventId, Sim};
use simkit::fxhash::FxHashMap;
use simkit::metrics::Counters;
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime, VirtNanos};
use storage::block::DiskImage;
use storage::device::DiskDevice;
use storage::model::{AccessModel, RotatingDisk, Ssd};
use vmm::channel::ChannelKind;
use vmm::clock::VirtualClock;
use vmm::guest::GuestProgram;
use vmm::host::HostMachine;
use vmm::sched::VcpuScheduler;
use vmm::slot::{ArrivalOutcome, DefenseMode, GuestSlot, SlotConfig, SlotOutput};
use vmm::speed::SpeedProfile;

/// An external (unreplicated) client machine's application logic.
///
/// Clients see *real* time — they model the outside observer of Sec. VI.
pub trait ClientApp {
    /// Called once at client start; returns packets to send.
    fn on_start(&mut self, now: SimTime) -> Vec<Packet>;
    /// Called for each received packet; returns packets to send.
    fn on_packet(&mut self, packet: &Packet, now: SimTime) -> Vec<Packet>;
    /// Called periodically (protocol timers); returns packets to send.
    fn on_tick(&mut self, now: SimTime) -> Vec<Packet>;
    /// `true` when this client's workload is finished.
    fn is_done(&self) -> bool;
    /// Downcast support for extracting measurements after a run.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Handle to a guest VM in the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmHandle {
    /// Index into the cloud's VM table.
    pub index: usize,
    /// The guest's network endpoint.
    pub endpoint: EndpointId,
}

/// Handle to an external client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientHandle {
    /// Index into the cloud's client table.
    pub index: usize,
    /// The client's network endpoint.
    pub endpoint: EndpointId,
}

#[derive(Debug, Clone)]
struct VmRecord {
    endpoint: EndpointId,
    replicas: Vec<(usize, usize)>, // (host index, slot index)
    /// `true` for VMs under a replicated (median-agreement) defense arm:
    /// their outputs tunnel to the egress for voting and they are paced.
    /// Single-host arms (baseline, deterland, bucketed) send directly.
    replicated: bool,
}

struct ClientRecord {
    #[allow(dead_code)] // retained for debugging / future addressing checks
    endpoint: EndpointId,
    node: NetNode,
    app: Box<dyn ClientApp>,
}

/// One replica's delivery-time proposal for one timing-channel event —
/// network packet, cache probe, disk completion, or virtual-timer fire,
/// told apart by the [`ChannelKind`] wire id. Every kind rides the same
/// PGM streams and the same demux.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ProposalMsg {
    vm: usize,
    kind: ChannelKind,
    seq: u64,
    proposal: VirtNanos,
}

/// Static sizes for control-plane messages on the wire.
const PROPOSAL_BYTES: u32 = 64;
const TUNNEL_OVERHEAD: u32 = 40;

/// The simulated cloud (the `Sim` world type).
pub struct Cloud {
    cfg: CloudConfig,
    hosts: Vec<HostMachine>,
    fabric: Fabric,
    #[allow(dead_code)] // routing table kept for operator introspection/tests
    ingress: IngressNode,
    ingress_node: NetNode,
    egress: EgressNode,
    egress_node: NetNode,
    vms: Vec<VmRecord>,
    by_endpoint: FxHashMap<EndpointId, usize>,
    clients: Vec<ClientRecord>,
    client_by_endpoint: FxHashMap<EndpointId, usize>,
    ingress_seq: u64,
    /// Pending wake per slot: the event and the time it fires at (kept so
    /// a reschedule to the same time can keep the pending event).
    wakes: FxHashMap<(usize, usize), (EventId, SimTime)>,
    /// Pending virtual-timer hardware events: `(host, slot, fire_seq)` →
    /// (event, scheduled time, programmed deadline). Tracked so activity
    /// changes can re-target the physical fire time at the deadline's
    /// virtual instant, the way `reschedule_wake` re-targets slot wakes.
    timer_fires: FxHashMap<(usize, usize, u64), (EventId, SimTime, VirtNanos)>,
    pgm_tx: FxHashMap<(usize, usize), PgmSender<ProposalMsg>>,
    pgm_rx: FxHashMap<(usize, usize, usize), PgmReceiver<ProposalMsg>>,
    tunnel_last: FxHashMap<usize, SimTime>,
    /// Run the pre-batching scalar paths (per-proposal median agreement,
    /// per-message wake recomputation) — the differential-testing
    /// reference for the batched hot paths. See
    /// [`CloudSim::set_scalar_reference`].
    scalar_reference: bool,
    /// First structured slot failure, if any: a malformed scenario fails
    /// its cell (surfaced via [`CloudSim::error`]) instead of panicking
    /// the whole sweep process.
    error: Option<String>,
    stats: Counters,
}

impl Cloud {
    /// Cloud-level counters: `ingress_packets`, `egress_forwarded`,
    /// `proposals_sent`, `client_packets`, `broadcasts`, ...
    pub fn stats(&self) -> &Counters {
        &self.stats
    }

    /// The egress node (voting / forwarding statistics).
    pub fn egress(&self) -> &EgressNode {
        &self.egress
    }

    /// Immutable host access.
    pub fn host(&self, idx: usize) -> &HostMachine {
        &self.hosts[idx]
    }

    /// Mutable host access (activity levels, program extraction).
    pub fn host_mut(&mut self, idx: usize) -> &mut HostMachine {
        &mut self.hosts[idx]
    }

    /// The replica placements of a VM.
    pub fn vm_replicas(&self, vm: VmHandle) -> &[(usize, usize)] {
        &self.vms[vm.index].replicas
    }

    /// Sums a slot counter over every replica of every VM.
    pub fn total_counter(&self, name: &str) -> u64 {
        self.vms
            .iter()
            .flat_map(|vm| vm.replicas.iter())
            .map(|&(h, s)| self.hosts[h].slot(s).counters().get(name))
            .sum()
    }

    /// The `(ingress seq, virtual delivery)` log of one replica.
    pub fn delivered_log(&self, vm: VmHandle, replica: usize) -> Vec<(u64, VirtNanos)> {
        let (h, s) = self.vms[vm.index].replicas[replica];
        self.hosts[h].slot(s).delivered_log().to_vec()
    }

    /// Downcasts a guest replica's program to its concrete type.
    pub fn guest_program<T: 'static>(&mut self, vm: VmHandle, replica: usize) -> Option<&mut T> {
        let (h, s) = self.vms[vm.index].replicas[replica];
        self.hosts[h]
            .slot_mut(s)
            .program_mut()
            .as_any_mut()?
            .downcast_mut::<T>()
    }

    /// Downcasts a client app to its concrete type.
    pub fn client_app<T: 'static>(&mut self, client: ClientHandle) -> Option<&mut T> {
        self.clients[client.index]
            .app
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// `true` when every client reports done.
    pub fn clients_done(&self) -> bool {
        self.clients.iter().all(|c| c.app.is_done())
    }

    // ------------------------------------------------------------------
    // Event handlers (each runs inside a `Sim<Cloud>` closure).
    // ------------------------------------------------------------------

    /// Records the first structured failure. The driver observes it via
    /// [`CloudSim::error`] and fails this run (one sweep cell) only.
    fn fail(&mut self, context: &str, err: impl std::fmt::Display) {
        if self.error.is_none() {
            self.error = Some(format!("{context}: {err}"));
        }
    }

    fn reschedule_wake(&mut self, sim: &mut Sim<Cloud>, h: usize, s: usize) {
        let now = sim.now();
        let target = self.hosts[h].next_wake(s, now);
        if let Some(&(_, at)) = self.wakes.get(&(h, s)) {
            // The pending wake already fires at the right time: keep it
            // instead of churning a cancel tombstone plus a fresh event
            // through the engine (the common case when new input does not
            // change what the slot is waiting for).
            if target == Some(at) {
                return;
            }
        }
        if let Some((old, _)) = self.wakes.remove(&(h, s)) {
            sim.cancel(old);
        }
        if let Some(t) = target {
            let id = sim.schedule(t, move |sim, cloud: &mut Cloud| {
                cloud.wakes.remove(&(h, s));
                match cloud.hosts[h].process_slot(s, sim.now()) {
                    Ok(outputs) => {
                        cloud.handle_outputs(sim, h, s, outputs);
                        cloud.reschedule_wake(sim, h, s);
                    }
                    Err(e) => cloud.fail(&format!("host {h} slot {s}"), e),
                }
            });
            self.wakes.insert((h, s), (id, t));
        }
    }

    fn handle_outputs(
        &mut self,
        sim: &mut Sim<Cloud>,
        h: usize,
        s: usize,
        outputs: Vec<SlotOutput>,
    ) {
        for output in outputs {
            match output {
                SlotOutput::DiskSubmit { op_id, request } => {
                    let done = self.hosts[h].submit_disk(request, sim.now());
                    sim.schedule(done, move |sim, cloud: &mut Cloud| {
                        let now = sim.now();
                        match cloud.hosts[h].disk_ready(s, now, op_id) {
                            Ok(ArrivalOutcome::Proposal(proposal)) => {
                                // The replicas agree on the completion
                                // timestamp exactly like on a packet's Δn
                                // delivery time.
                                cloud.propose_and_multicast(
                                    sim,
                                    h,
                                    s,
                                    ChannelKind::Disk,
                                    op_id,
                                    proposal,
                                );
                            }
                            Ok(ArrivalOutcome::Scheduled) => {
                                cloud.reschedule_wake(sim, h, s);
                            }
                            Err(e) => cloud.fail(&format!("host {h} slot {s}"), e),
                        }
                    });
                }
                SlotOutput::TimerArm { fire_seq, deadline } => {
                    // A guest armed a virtual timer. The hardware event
                    // fires when the host's physical clock reaches the
                    // deadline's virtual instant; the *guest-visible*
                    // delivery time is then agreed exactly like a disk
                    // completion's (deadline + Δt, replica median).
                    self.schedule_timer_fire(sim, h, s, fire_seq, deadline);
                }
                SlotOutput::Packet {
                    out_seq, packet, ..
                } => {
                    self.route_guest_output(sim, h, s, out_seq, packet);
                }
                SlotOutput::Proposal {
                    kind,
                    seq,
                    proposal,
                } => {
                    // Only StopWatch slots emit proposals from processing
                    // (today: cache probes); deliver our own locally, then
                    // multicast to the peer replicas.
                    self.propose_and_multicast(sim, h, s, kind, seq, proposal);
                }
            }
        }
    }

    /// Schedules (or re-targets) the hardware event for an armed virtual
    /// timer at the host's current physical estimate of the deadline's
    /// virtual instant. Speed jitter is known to the profile, but host
    /// contention changes as coresident guests start and stop working —
    /// [`Cloud::pacing_tick`] re-calls this on every activity refresh so
    /// the fire lands at the deadline, not at a stale projection of it.
    fn schedule_timer_fire(
        &mut self,
        sim: &mut Sim<Cloud>,
        h: usize,
        s: usize,
        fire_seq: u64,
        deadline: VirtNanos,
    ) {
        let now = sim.now();
        let at = self.hosts[h].timer_event_time(s, now, deadline).max(now);
        if let Some(&(old_id, old_at, _)) = self.timer_fires.get(&(h, s, fire_seq)) {
            if old_at == at {
                return;
            }
            sim.cancel(old_id);
        }
        let id = sim.schedule(at, move |sim, cloud: &mut Cloud| {
            cloud.timer_fires.remove(&(h, s, fire_seq));
            let now = sim.now();
            match cloud.hosts[h].timer_elapsed(s, now, fire_seq) {
                Ok(Some(ArrivalOutcome::Proposal(proposal))) => {
                    // The replicas agree on the fire's delivery timestamp
                    // exactly like on a packet's Δn delivery time.
                    cloud.propose_and_multicast(sim, h, s, ChannelKind::Timer, fire_seq, proposal);
                }
                Ok(Some(ArrivalOutcome::Scheduled)) => {
                    cloud.reschedule_wake(sim, h, s);
                }
                Ok(None) => {} // fire was cancelled in time
                Err(e) => cloud.fail(&format!("host {h} slot {s}"), e),
            }
        });
        self.timer_fires
            .insert((h, s, fire_seq), (id, at, deadline));
    }

    /// Applies slot `(h, s)`'s own delivery-time proposal locally, then
    /// multicasts it to the peer replicas over PGM — the one flow every
    /// timing channel shares (Fig. 3, generalized).
    fn propose_and_multicast(
        &mut self,
        sim: &mut Sim<Cloud>,
        h: usize,
        s: usize,
        kind: ChannelKind,
        seq: u64,
        proposal: VirtNanos,
    ) {
        let vm_idx = self.vm_of_slot(h, s);
        let replica_idx = self.vms[vm_idx]
            .replicas
            .iter()
            .position(|&r| r == (h, s))
            .expect("slot is a replica of its vm");
        if self.hosts[h].add_proposal(s, sim.now(), kind, seq, proposal) {
            self.reschedule_wake(sim, h, s);
        }
        self.multicast_proposal(sim, vm_idx, replica_idx, kind, seq, proposal);
    }

    fn vm_of_slot(&self, h: usize, s: usize) -> usize {
        self.vms
            .iter()
            .position(|vm| vm.replicas.contains(&(h, s)))
            .expect("slot belongs to a vm")
    }

    fn route_guest_output(
        &mut self,
        sim: &mut Sim<Cloud>,
        h: usize,
        s: usize,
        out_seq: u64,
        packet: Packet,
    ) {
        let vm_idx = self.vm_of_slot(h, s);
        let guest_ep = self.vms[vm_idx].endpoint;
        let host_node = self.hosts[h].id();
        if self.vms[vm_idx].replicated {
            // Tunnel to the egress node over TCP (Sec. VI); it forwards on
            // the second copy.
            let bytes = packet.wire_bytes() + TUNNEL_OVERHEAD;
            if let Some(raw_arrive) =
                self.fabric
                    .transmit(sim.now(), host_node, self.egress_node, bytes)
            {
                // The tunnel runs over TCP (Sec. VI): per-replica copies
                // reach the egress in emission order.
                let last = self.tunnel_last.get(&h).copied().unwrap_or(SimTime::ZERO);
                let arrive = raw_arrive.max(last + SimDuration::from_nanos(1));
                self.tunnel_last.insert(h, arrive);
                sim.schedule(arrive, move |sim, cloud: &mut Cloud| {
                    let decision = cloud.egress.on_copy(guest_ep, out_seq, host_node, packet);
                    match decision {
                        EgressDecision::Forward(pkt) => {
                            cloud.stats.incr("egress_forwarded");
                            cloud.forward_from_egress(sim, pkt);
                        }
                        EgressDecision::Hold => {}
                        EgressDecision::Divergence { .. } => {
                            cloud.stats.incr("egress_divergences");
                        }
                    }
                });
            }
        } else {
            // Baseline: straight to the destination.
            self.deliver_external(sim, host_node, packet);
        }
    }

    fn forward_from_egress(&mut self, sim: &mut Sim<Cloud>, packet: Packet) {
        let from = self.egress_node;
        self.deliver_external(sim, from, packet);
    }

    /// Sends a packet from `from_node` toward its destination endpoint
    /// (client or guest).
    fn deliver_external(&mut self, sim: &mut Sim<Cloud>, from_node: NetNode, packet: Packet) {
        if let Some(&ci) = self.client_by_endpoint.get(&packet.dst()) {
            let node = self.clients[ci].node;
            if let Some(arrive) =
                self.fabric
                    .transmit(sim.now(), from_node, node, packet.wire_bytes())
            {
                sim.schedule(arrive, move |sim, cloud: &mut Cloud| {
                    cloud.stats.incr("client_packets");
                    let now = sim.now();
                    let out = cloud.clients[ci].app.on_packet(&packet, now);
                    cloud.client_send(sim, ci, out);
                });
            }
        } else if self.by_endpoint.contains_key(&packet.dst()) {
            // Guest-to-guest traffic flows back through the ingress.
            if let Some(arrive) =
                self.fabric
                    .transmit(sim.now(), from_node, self.ingress_node, packet.wire_bytes())
            {
                sim.schedule(arrive, move |sim, cloud: &mut Cloud| {
                    cloud.ingress_replicate(sim, packet);
                });
            }
        }
        // Unknown destinations (e.g. the broadcast pseudo-endpoint on
        // baseline paths) are dropped silently.
    }

    fn client_send(&mut self, sim: &mut Sim<Cloud>, ci: usize, pkts: Vec<Packet>) {
        for pkt in pkts {
            let node = self.clients[ci].node;
            if self.by_endpoint.contains_key(&pkt.dst()) {
                // To a guest: via the ingress node.
                if let Some(arrive) =
                    self.fabric
                        .transmit(sim.now(), node, self.ingress_node, pkt.wire_bytes())
                {
                    sim.schedule(arrive, move |sim, cloud: &mut Cloud| {
                        cloud.ingress_replicate(sim, pkt);
                    });
                }
            } else if let Some(&target) = self.client_by_endpoint.get(&pkt.dst()) {
                let tnode = self.clients[target].node;
                if let Some(arrive) = self
                    .fabric
                    .transmit(sim.now(), node, tnode, pkt.wire_bytes())
                {
                    sim.schedule(arrive, move |sim, cloud: &mut Cloud| {
                        let now = sim.now();
                        let out = cloud.clients[target].app.on_packet(&pkt, now);
                        cloud.client_send(sim, target, out);
                    });
                }
            }
        }
    }

    /// The ingress node replicates one inbound packet to every replica host
    /// of the destination guest (or of *all* guests, for broadcasts).
    fn ingress_replicate(&mut self, sim: &mut Sim<Cloud>, packet: Packet) {
        self.stats.incr("ingress_packets");
        let is_broadcast = matches!(packet.body(), netsim::packet::Body::Broadcast { .. });
        let targets: Vec<usize> = if is_broadcast {
            (0..self.vms.len()).collect()
        } else {
            match self.by_endpoint.get(&packet.dst()) {
                Some(&vm) => vec![vm],
                None => return,
            }
        };
        for vm_idx in targets {
            let seq = self.ingress_seq;
            self.ingress_seq += 1;
            // Indexed iteration keeps `self` borrowable for the fabric
            // transmits without cloning the replica list per packet; the
            // packet itself is cloned once per scheduled copy only.
            for ri in 0..self.vms[vm_idx].replicas.len() {
                let (h, s) = self.vms[vm_idx].replicas[ri];
                let node = self.hosts[h].id();
                if let Some(arrive) =
                    self.fabric
                        .transmit(sim.now(), self.ingress_node, node, packet.wire_bytes())
                {
                    let pkt = packet.clone();
                    sim.schedule(arrive, move |sim, cloud: &mut Cloud| {
                        cloud.host_packet_arrival(sim, h, s, seq, pkt);
                    });
                }
            }
        }
    }

    fn host_packet_arrival(
        &mut self,
        sim: &mut Sim<Cloud>,
        h: usize,
        s: usize,
        seq: u64,
        packet: Packet,
    ) {
        let now = sim.now();
        match self.hosts[h].packet_arrival(s, now, seq, packet) {
            ArrivalOutcome::Proposal(proposal) => {
                self.propose_and_multicast(sim, h, s, ChannelKind::Net, seq, proposal);
            }
            ArrivalOutcome::Scheduled => {
                self.reschedule_wake(sim, h, s);
            }
        }
    }

    fn multicast_proposal(
        &mut self,
        sim: &mut Sim<Cloud>,
        vm_idx: usize,
        sender_replica: usize,
        kind: ChannelKind,
        seq: u64,
        proposal: VirtNanos,
    ) {
        self.stats.incr(kind.proposals_counter());
        let msg = ProposalMsg {
            vm: vm_idx,
            kind,
            seq,
            proposal,
        };
        let tx = self
            .pgm_tx
            .entry((vm_idx, sender_replica))
            .or_insert_with(|| PgmSender::new(4096));
        let pgm_pkt = tx.send(msg);
        let from_node = self.hosts[self.vms[vm_idx].replicas[sender_replica].0].id();
        for peer_idx in 0..self.vms[vm_idx].replicas.len() {
            if peer_idx == sender_replica {
                continue;
            }
            let to_node = self.hosts[self.vms[vm_idx].replicas[peer_idx].0].id();
            if let Some(arrive) =
                self.fabric
                    .transmit(sim.now(), from_node, to_node, PROPOSAL_BYTES)
            {
                let pkt = pgm_pkt.clone();
                sim.schedule(arrive, move |sim, cloud: &mut Cloud| {
                    cloud.pgm_receive(sim, vm_idx, peer_idx, sender_replica, pkt);
                });
            }
        }
    }

    fn pgm_receive(
        &mut self,
        sim: &mut Sim<Cloud>,
        vm_idx: usize,
        receiver_replica: usize,
        sender_replica: usize,
        pkt: PgmPacket<ProposalMsg>,
    ) {
        let rx = self
            .pgm_rx
            .entry((vm_idx, receiver_replica, sender_replica))
            .or_insert_with(PgmReceiver::new);
        let out = rx.on_packet(pkt);
        let now = sim.now();
        let (h, s) = self.vms[vm_idx].replicas[receiver_replica];
        if self.scalar_reference {
            // Reference path: one median-agreement call and one wake
            // recomputation per delivered message.
            for msg in &out.delivered {
                if self.hosts[h].add_proposal(s, now, msg.kind, msg.seq, msg.proposal) {
                    self.reschedule_wake(sim, h, s);
                }
            }
        } else if !out.delivered.is_empty() {
            // Batched path: the whole delivered backlog (one message in
            // the common case, more after NAK recovery) runs through the
            // one median-agreement pass — every channel kind together,
            // streamed, no per-message allocation — and the slot's wake
            // is recomputed once at the end if any delivery time got
            // fixed.
            let batch = out
                .delivered
                .iter()
                .map(|msg| (msg.kind, msg.seq, msg.proposal));
            if self.hosts[h].add_proposals(s, now, batch) > 0 {
                self.reschedule_wake(sim, h, s);
            }
        }
        if !out.nak_missing.is_empty() {
            self.send_nak(
                sim,
                vm_idx,
                receiver_replica,
                sender_replica,
                out.nak_missing,
            );
        }
    }

    fn send_nak(
        &mut self,
        sim: &mut Sim<Cloud>,
        vm_idx: usize,
        receiver_replica: usize,
        sender_replica: usize,
        missing: Vec<u64>,
    ) {
        self.stats.incr("pgm_naks");
        let replicas = &self.vms[vm_idx].replicas;
        let from_node = self.hosts[replicas[receiver_replica].0].id();
        let to_node = self.hosts[replicas[sender_replica].0].id();
        if let Some(arrive) = self
            .fabric
            .transmit(sim.now(), from_node, to_node, PROPOSAL_BYTES)
        {
            sim.schedule(arrive, move |sim, cloud: &mut Cloud| {
                let Some(tx) = cloud.pgm_tx.get(&(vm_idx, sender_replica)) else {
                    return;
                };
                let retx = tx.on_nak(&missing);
                let replicas = cloud.vms[vm_idx].replicas.clone();
                let from_node = cloud.hosts[replicas[sender_replica].0].id();
                let to_node = cloud.hosts[replicas[receiver_replica].0].id();
                for pkt in retx {
                    if let Some(arrive) =
                        cloud
                            .fabric
                            .transmit(sim.now(), from_node, to_node, PROPOSAL_BYTES)
                    {
                        sim.schedule(arrive, move |sim, cloud: &mut Cloud| {
                            cloud.pgm_receive(
                                sim,
                                vm_idx,
                                receiver_replica,
                                sender_replica,
                                pkt.clone(),
                            );
                        });
                    }
                }
            });
        }
    }

    /// Periodic PGM NAK retry (tail-loss recovery).
    fn pgm_tick(&mut self, sim: &mut Sim<Cloud>) {
        let mut pending: Vec<(usize, usize, usize, Vec<u64>)> = Vec::new();
        for (&(vm, rx_rep, tx_rep), rx) in &self.pgm_rx {
            let naks = rx.pending_naks();
            if !naks.is_empty() {
                pending.push((vm, rx_rep, tx_rep, naks));
            }
        }
        for (vm, rx_rep, tx_rep, naks) in pending {
            self.send_nak(sim, vm, rx_rep, tx_rep, naks);
        }
    }

    /// Pacing heartbeat: per StopWatch VM, if the fastest replica leads the
    /// second-fastest by more than the allowed gap, stall it. The same tick
    /// refreshes host contention from guest busy-ness, so coresident load
    /// perturbs timing exactly as on real shared hardware.
    fn pacing_tick(&mut self, sim: &mut Sim<Cloud>) {
        let now = sim.now();
        for h in 0..self.hosts.len() {
            // The host scheduling tick rides the same heartbeat: rotate
            // each host's vCPU run queue past its busy slots.
            self.hosts[h].sched_tick();
            if self.hosts[h].refresh_activity(now) {
                for s in 0..self.hosts[h].slot_count() {
                    self.reschedule_wake(sim, h, s);
                }
                // The phys↔virt mapping of this host just changed:
                // re-target its pending virtual-timer hardware events.
                let mut pending: Vec<(usize, u64, VirtNanos)> = self
                    .timer_fires
                    .iter()
                    .filter(|&(&(hh, _, _), _)| hh == h)
                    .map(|(&(_, s, f), &(_, _, d))| (s, f, d))
                    .collect();
                pending.sort_unstable();
                for (s, f, d) in pending {
                    self.schedule_timer_fire(sim, h, s, f, d);
                }
            }
        }
        let Some(pacing) = self.cfg.pacing else {
            return;
        };
        for vm_idx in 0..self.vms.len() {
            if !self.vms[vm_idx].replicated {
                continue;
            }
            // Fastest and second-fastest replica, without sorting (and
            // without cloning the replica list — this runs every
            // heartbeat for every VM).
            let mut fastest: Option<(u64, usize)> = None;
            let mut second: Option<u64> = None;
            for i in 0..self.vms[vm_idx].replicas.len() {
                let (h, s) = self.vms[vm_idx].replicas[i];
                let v = self.hosts[h].virt_of(s, now).as_nanos();
                match fastest {
                    Some((fv, _)) if v <= fv => second = Some(second.map_or(v, |s2| s2.max(v))),
                    Some((fv, _)) => {
                        second = Some(fv);
                        fastest = Some((v, i));
                    }
                    None => fastest = Some((v, i)),
                }
            }
            if let (Some((fv, fi)), Some(sv)) = (fastest, second) {
                if fv - sv > pacing.max_gap_ns {
                    let (h, s) = self.vms[vm_idx].replicas[fi];
                    self.hosts[h].stall_slot(s, now, now + pacing.heartbeat);
                    self.reschedule_wake(sim, h, s);
                }
            }
        }
    }

    fn client_tick(&mut self, sim: &mut Sim<Cloud>, ci: usize) {
        if self.clients[ci].app.is_done() {
            return;
        }
        let now = sim.now();
        let out = self.clients[ci].app.on_tick(now);
        self.client_send(sim, ci, out);
        let period = self.cfg.client_tick;
        sim.schedule_in(period, move |sim, cloud: &mut Cloud| {
            cloud.client_tick(sim, ci);
        });
    }
}

/// A VM awaiting construction: (replica hosts, one program per replica,
/// the defense mode its slots run under).
type PendingVm = (Vec<usize>, Vec<Box<dyn GuestProgram>>, DefenseMode);

/// Builder for a [`CloudSim`].
pub struct CloudBuilder {
    cfg: CloudConfig,
    host_count: usize,
    vms: Vec<PendingVm>,
    clients: Vec<Box<dyn ClientApp>>,
    cache_geometry: Option<(u64, usize)>,
}

impl CloudBuilder {
    /// Starts a builder for a cloud of `host_count` machines.
    ///
    /// # Panics
    ///
    /// Panics if `host_count == 0`.
    pub fn new(cfg: CloudConfig, host_count: usize) -> Self {
        assert!(host_count > 0, "need at least one host");
        CloudBuilder {
            cfg,
            host_count,
            vms: Vec::new(),
            clients: Vec::new(),
            cache_geometry: None,
        }
    }

    /// Sets the shared-LLC geometry of every host (sets × ways). Cache
    /// workloads call this from `install` so their probe space matches
    /// the platform; unset, hosts keep the default geometry.
    pub fn set_cache_geometry(&mut self, sets: u64, ways: usize) {
        self.cache_geometry = Some((sets, ways));
    }

    /// The configuration this builder was created with.
    pub fn config(&self) -> &CloudConfig {
        &self.cfg
    }

    /// Number of hosts in the cloud under construction.
    pub fn host_count(&self) -> usize {
        self.host_count
    }

    /// The endpoint the *next* [`CloudBuilder::add_defended_vm`] /
    /// [`CloudBuilder::add_stopwatch_vm`] / [`CloudBuilder::add_baseline_vm`]
    /// call will assign.
    ///
    /// Guest programs sometimes need a peer's endpoint at construction time
    /// (e.g. a monitor a workload reports completion to); scenario factories
    /// use these hooks to learn endpoints before the VM or client exists.
    pub fn next_vm_endpoint(&self) -> EndpointId {
        EndpointId(1000 + self.vms.len() as u64)
    }

    /// The endpoint the *next* [`CloudBuilder::add_client`] call will
    /// assign.
    pub fn next_client_endpoint(&self) -> EndpointId {
        EndpointId(2000 + self.clients.len() as u64)
    }

    /// Adds a VM guarded by the **configured** defense arm
    /// (`cfg.defense`, resolved through the `vmm::defense` registry):
    /// a replicated arm consumes all of `hosts` as replica hosts and
    /// invokes `make()` once per replica (the replicas must be
    /// identical); a single-host arm runs one instance on `hosts[0]`.
    /// Scenario factories call this so one workload definition runs
    /// under every arm a sweep names.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.defense` names no registered arm, if `hosts` is
    /// empty or names an unknown host, or (replicated arms) if
    /// `hosts` does not match the configured replica count.
    pub fn add_defended_vm<F>(&mut self, hosts: &[usize], make: F) -> VmHandle
    where
        F: Fn() -> Box<dyn GuestProgram>,
    {
        let arm = self.cfg.defense_arm();
        let mode = arm.mode(&self.cfg.defense_knobs());
        let hosts = if arm.replicated() {
            assert_eq!(hosts.len(), self.cfg.replicas, "replica count mismatch");
            hosts
        } else {
            assert!(!hosts.is_empty(), "need at least one host");
            &hosts[..1]
        };
        self.push_vm(hosts, mode, make)
    }

    /// Adds a StopWatch-protected VM regardless of `cfg.defense`:
    /// `make()` is invoked once per replica (the replicas must be
    /// identical); `hosts` lists the replica hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` does not match the configured replica count or
    /// names an unknown host.
    pub fn add_stopwatch_vm<F>(&mut self, hosts: &[usize], make: F) -> VmHandle
    where
        F: Fn() -> Box<dyn GuestProgram>,
    {
        assert_eq!(hosts.len(), self.cfg.replicas, "replica count mismatch");
        // Δn, Δd, and Δt become per-channel policy (net / disk / timer
        // offsets; cache readouts propose their measured latency
        // directly).
        let mode = DefenseMode::stop_watch(
            self.cfg.delta_n,
            self.cfg.delta_d,
            self.cfg.delta_t,
            self.cfg.replicas,
        );
        self.push_vm(hosts, mode, make)
    }

    /// Adds an unprotected (baseline / unmodified-Xen) VM on one host,
    /// regardless of `cfg.defense`.
    pub fn add_baseline_vm(&mut self, host: usize, program: Box<dyn GuestProgram>) -> VmHandle {
        let mut program = Some(program);
        self.push_vm(&[host], DefenseMode::baseline(), move || {
            program.take().expect("single-host arm makes one program")
        })
    }

    fn push_vm<F>(&mut self, hosts: &[usize], mode: DefenseMode, mut make: F) -> VmHandle
    where
        F: FnMut() -> Box<dyn GuestProgram>,
    {
        assert!(hosts.iter().all(|&h| h < self.host_count), "unknown host");
        let endpoint = self.next_vm_endpoint();
        let programs = (0..hosts.len()).map(|_| make()).collect();
        self.vms.push((hosts.to_vec(), programs, mode));
        VmHandle {
            index: self.vms.len() - 1,
            endpoint,
        }
    }

    /// Adds an external client machine.
    pub fn add_client(&mut self, app: Box<dyn ClientApp>) -> ClientHandle {
        let endpoint = self.next_client_endpoint();
        self.clients.push(app);
        ClientHandle {
            index: self.clients.len() - 1,
            endpoint,
        }
    }

    /// Builds the cloud and schedules boot events.
    pub fn build(self) -> CloudSim {
        let cfg = self.cfg;
        let root = SimRng::new(cfg.seed);
        let mut hosts = Vec::with_capacity(self.host_count);
        for h in 0..self.host_count {
            let profile = SpeedProfile::new(
                cfg.base_ips,
                cfg.ips_jitter,
                cfg.speed_epoch,
                root.stream_indexed("host-speed", h),
            );
            let model: Box<dyn AccessModel> = match cfg.disk {
                DiskKind::Rotating => Box::new(RotatingDisk::testbed()),
                DiskKind::Ssd => Box::new(Ssd::sata()),
            };
            let disk = DiskDevice::new(model, root.stream_indexed("host-disk", h));
            let mut host = HostMachine::new(NetNode(h), profile, disk);
            if let Some((sets, ways)) = self.cache_geometry {
                host.set_cache(vmm::cache::CacheModel::new(sets, ways));
            }
            host.set_scheduler(VcpuScheduler::new(cfg.timeslice));
            hosts.push(host);
        }
        let ingress_node = NetNode(self.host_count);
        let egress_node = NetNode(self.host_count + 1);
        let fabric = {
            let mut f = Fabric::new(cfg.lan, root.stream("fabric"));
            // Client machines sit behind the configured client link.
            for c in 0..self.clients.len() {
                let node = NetNode(self.host_count + 2 + c);
                f.set_link(node, ingress_node, cfg.client_link);
                f.set_link(egress_node, node, cfg.client_link);
                for h in 0..self.host_count {
                    f.set_link(NetNode(h), node, cfg.client_link);
                    f.set_link(node, NetNode(h), cfg.client_link);
                }
            }
            f
        };

        // Host RTC offsets: start virtual time at the median of the replica
        // hosts' clocks (Sec. IV-A).
        let mut rtc = root.stream("host-rtc");
        let host_rtc: Vec<u64> = (0..self.host_count)
            .map(|_| rtc.uniform_u64(0, 2_000_000))
            .collect();

        let mut ingress = IngressNode::new();
        let mut vms = Vec::new();
        let mut by_endpoint = FxHashMap::default();
        for (vm_idx, (host_list, programs, mode)) in self.vms.into_iter().enumerate() {
            let endpoint = EndpointId(1000 + vm_idx as u64);
            let replicated = matches!(mode, DefenseMode::StopWatch { .. });
            let mut clocks: Vec<u64> = host_list.iter().map(|&h| host_rtc[h]).collect();
            clocks.sort_unstable();
            let start = VirtNanos::from_nanos(clocks[clocks.len() / 2]);
            let image = DiskImage::new(cfg.image_blocks);
            let mut replicas = Vec::new();
            for (&h, program) in host_list.iter().zip(programs) {
                let slot = GuestSlot::new(
                    program,
                    SlotConfig {
                        endpoint,
                        exit_every: cfg.exit_every,
                        mode,
                        clocks: cfg.platform_clocks,
                    },
                    VirtualClock::new(start, cfg.slope, cfg.clock_epochs),
                    image.clone(), // the replicated disk image
                );
                let s = hosts[h].add_slot(slot);
                replicas.push((h, s));
            }
            ingress.register(endpoint, host_list.iter().map(|&h| NetNode(h)).collect());
            by_endpoint.insert(endpoint, vm_idx);
            vms.push(VmRecord {
                endpoint,
                replicas,
                replicated,
            });
        }

        let mut clients = Vec::new();
        let mut client_by_endpoint = FxHashMap::default();
        for (ci, app) in self.clients.into_iter().enumerate() {
            let endpoint = EndpointId(2000 + ci as u64);
            clients.push(ClientRecord {
                endpoint,
                node: NetNode(self.host_count + 2 + ci),
                app,
            });
            client_by_endpoint.insert(endpoint, ci);
        }

        let cloud = Cloud {
            cfg,
            hosts,
            fabric,
            ingress,
            ingress_node,
            egress: EgressNode::new(),
            egress_node,
            vms,
            by_endpoint,
            clients,
            client_by_endpoint,
            ingress_seq: 0,
            wakes: FxHashMap::default(),
            timer_fires: FxHashMap::default(),
            pgm_tx: FxHashMap::default(),
            pgm_rx: FxHashMap::default(),
            tunnel_last: FxHashMap::default(),
            scalar_reference: false,
            error: None,
            stats: Counters::new(),
        };

        let mut sim: Sim<Cloud> = Sim::new();
        // Boot every replica at t=0.
        for vm_idx in 0..cloud.vms.len() {
            for &(h, s) in &cloud.vms[vm_idx].replicas.clone() {
                sim.schedule(SimTime::ZERO, move |sim, cloud: &mut Cloud| {
                    match cloud.hosts[h].boot_slot(s, sim.now()) {
                        Ok(outputs) => {
                            cloud.handle_outputs(sim, h, s, outputs);
                            cloud.reschedule_wake(sim, h, s);
                        }
                        Err(e) => cloud.fail(&format!("host {h} slot {s} boot"), e),
                    }
                });
            }
        }
        // Clients start shortly after boot, then tick.
        for ci in 0..cloud.clients.len() {
            sim.schedule(SimTime::from_millis(1), move |sim, cloud: &mut Cloud| {
                let now = sim.now();
                let out = cloud.clients[ci].app.on_start(now);
                cloud.client_send(sim, ci, out);
                cloud.client_tick(sim, ci);
            });
        }
        // Pacing heartbeat.
        if let Some(pacing) = cloud.cfg.pacing {
            fn pace(sim: &mut Sim<Cloud>, cloud: &mut Cloud, period: SimDuration) {
                cloud.pacing_tick(sim);
                sim.schedule_in(period, move |sim, cloud: &mut Cloud| {
                    pace(sim, cloud, period);
                });
            }
            let period = pacing.heartbeat;
            sim.schedule(SimTime::ZERO, move |sim, cloud: &mut Cloud| {
                pace(sim, cloud, period);
            });
        }
        // PGM NAK retry tick.
        fn pgm_retry(sim: &mut Sim<Cloud>, cloud: &mut Cloud) {
            cloud.pgm_tick(sim);
            sim.schedule_in(SimDuration::from_millis(50), |sim, cloud: &mut Cloud| {
                pgm_retry(sim, cloud);
            });
        }
        sim.schedule(SimTime::ZERO, |sim, cloud: &mut Cloud| {
            pgm_retry(sim, cloud)
        });
        // Background broadcast chatter through the ingress.
        if let Some((lo, hi)) = cloud.cfg.broadcast_band {
            let src = BroadcastSource::new(
                EndpointId(9999),
                lo,
                hi,
                SimRng::new(cloud.cfg.seed).stream("broadcast"),
            );
            fn chatter(sim: &mut Sim<Cloud>, _cloud: &mut Cloud, mut src: BroadcastSource) {
                let (gap, pkt) = src.next_broadcast();
                sim.schedule_in(gap, move |sim, cloud: &mut Cloud| {
                    cloud.stats.incr("broadcasts");
                    cloud.ingress_replicate(sim, pkt.clone());
                    chatter(sim, cloud, src.clone());
                });
            }
            let first = src.clone();
            sim.schedule(SimTime::ZERO, move |sim, cloud: &mut Cloud| {
                chatter(sim, cloud, first.clone());
            });
        }

        CloudSim { sim, cloud }
    }
}

/// A built cloud plus its event loop.
pub struct CloudSim {
    /// The discrete-event engine.
    pub sim: Sim<Cloud>,
    /// The world state.
    pub cloud: Cloud,
}

impl CloudSim {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Runs this cloud on the pre-batching scalar hot paths (one-pop
    /// event loop, per-proposal median agreement, per-message wake
    /// recomputation) instead of the batched ones. The two modes execute
    /// identical event orders; this switch exists so determinism tests
    /// can diff the batched engine against the scalar reference. Flip it
    /// right after [`CloudBuilder::build`], before running.
    pub fn set_scalar_reference(&mut self, scalar: bool) {
        self.sim.set_scalar_reference(scalar);
        self.cloud.scalar_reference = scalar;
        // The reference arm also runs the guest action queues without
        // consecutive-compute coalescing, so every pre-batching queue
        // entry is executed one by one.
        for host in &mut self.cloud.hosts {
            for s in 0..host.slot_count() {
                host.slot_mut(s).set_coalesce_compute(!scalar);
            }
        }
    }

    /// The first structured slot failure of this run, if any (a malformed
    /// scenario fails its sweep cell, not the sweep process). Checked by
    /// the harness after the run; [`CloudSim::run_until_clients_done`]
    /// also stops early on it.
    pub fn error(&self) -> Option<&str> {
        self.cloud.error.as_deref()
    }

    /// Runs until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.sim.run_until(&mut self.cloud, deadline)
    }

    /// Runs until every client reports done (checking every 10 ms of
    /// simulated time), a slot fails structurally, or `deadline` passes;
    /// returns the finish time.
    pub fn run_until_clients_done(&mut self, deadline: SimTime) -> SimTime {
        let step = SimDuration::from_millis(10);
        while !self.cloud.clients_done() && self.cloud.error.is_none() && self.sim.now() < deadline
        {
            let next = (self.sim.now() + step).min(deadline);
            self.sim.run_until(&mut self.cloud, next);
        }
        self.sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::Body;
    use storage::block::BlockRange;
    use storage::device::DiskOp;
    use vmm::guest::{GuestEnv, IdleGuest};

    /// Guest that echoes every Raw packet back to its source.
    struct Echo;
    impl GuestProgram for Echo {
        fn on_boot(&mut self, _env: &mut GuestEnv) {}
        fn on_packet(&mut self, packet: &Packet, env: &mut GuestEnv) {
            if let Body::Raw { tag, len } = *packet.body() {
                env.send(packet.src(), Body::Raw { tag: tag + 1, len });
            }
        }
        fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
    }

    /// Client that sends `n` pings (one per tick) and counts replies.
    struct Pinger {
        server: EndpointId,
        to_send: u32,
        sent: u32,
        replies: Vec<(SimTime, u64)>,
        me: EndpointId,
    }
    impl ClientApp for Pinger {
        fn on_start(&mut self, _now: SimTime) -> Vec<Packet> {
            self.next_ping()
        }
        fn on_packet(&mut self, packet: &Packet, now: SimTime) -> Vec<Packet> {
            if let Body::Raw { tag, .. } = *packet.body() {
                self.replies.push((now, tag));
            }
            Vec::new()
        }
        fn on_tick(&mut self, _now: SimTime) -> Vec<Packet> {
            self.next_ping()
        }
        fn is_done(&self) -> bool {
            self.replies.len() as u32 >= self.to_send
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    impl Pinger {
        fn next_ping(&mut self) -> Vec<Packet> {
            if self.sent >= self.to_send {
                return Vec::new();
            }
            let tag = u64::from(self.sent) * 10;
            self.sent += 1;
            vec![Packet::new(
                self.me,
                self.server,
                Body::Raw { tag, len: 100 },
            )]
        }
    }

    fn ping_cloud(stopwatch: bool, pings: u32) -> (CloudSim, VmHandle, ClientHandle) {
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        let vm = if stopwatch {
            b.add_stopwatch_vm(&[0, 1, 2], || Box::new(Echo))
        } else {
            b.add_baseline_vm(0, Box::new(Echo))
        };
        let client = b.add_client(Box::new(Pinger {
            server: vm.endpoint,
            to_send: pings,
            sent: 0,
            replies: Vec::new(),
            me: EndpointId(2000),
        }));
        (b.build(), vm, client)
    }

    #[test]
    fn stopwatch_ping_roundtrip() {
        let (mut sim, vm, client) = ping_cloud(true, 3);
        sim.run_until_clients_done(SimTime::from_secs(5));
        let pinger: &Pinger = sim.cloud.client_app::<Pinger>(client).expect("downcast");
        assert_eq!(pinger.replies.len(), 3, "all pings answered exactly once");
        let mut tags: Vec<u64> = pinger.replies.iter().map(|r| r.1).collect();
        tags.sort_unstable(); // the final client hop may reorder
        assert_eq!(tags, vec![1, 11, 21]);
        // All three replicas saw all three packets and delivered them at
        // identical virtual times.
        let logs: Vec<_> = (0..3).map(|r| sim.cloud.delivered_log(vm, r)).collect();
        assert_eq!(logs[0].len(), 3);
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[1], logs[2]);
        // Egress forwarded each reply exactly once (on the second copy).
        assert_eq!(sim.cloud.stats().get("egress_forwarded"), 3);
        assert_eq!(sim.cloud.stats().get("egress_divergences"), 0);
        assert_eq!(sim.cloud.total_counter("sync_violations"), 0);
    }

    #[test]
    fn baseline_ping_roundtrip_is_faster() {
        let (mut sw, _, csw) = ping_cloud(true, 1);
        let t_sw = sw.run_until_clients_done(SimTime::from_secs(5));
        let (mut bl, _, cbl) = ping_cloud(false, 1);
        let t_bl = bl.run_until_clients_done(SimTime::from_secs(5));
        assert!(sw.cloud.client_app::<Pinger>(csw).unwrap().is_done());
        assert!(bl.cloud.client_app::<Pinger>(cbl).unwrap().is_done());
        assert!(t_bl < t_sw, "baseline {t_bl} should beat stopwatch {t_sw}");
    }

    #[test]
    fn defended_vm_follows_the_configured_arm() {
        // Default config: the stopwatch arm replicates across all hosts
        // and tunnels outputs through the egress.
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        let vm = b.add_defended_vm(&[0, 1, 2], || Box::new(Echo));
        let client = b.add_client(Box::new(Pinger {
            server: vm.endpoint,
            to_send: 1,
            sent: 0,
            replies: Vec::new(),
            me: EndpointId(2000),
        }));
        let mut sim = b.build();
        sim.run_until_clients_done(SimTime::from_secs(5));
        assert_eq!(sim.cloud.vm_replicas(vm).len(), 3);
        assert!(sim.cloud.client_app::<Pinger>(client).unwrap().is_done());
        assert_eq!(sim.cloud.stats().get("egress_forwarded"), 1);

        // A single-host arm ignores the surplus hosts and sends directly
        // (no egress voting).
        let mut cfg = CloudConfig::fast_test();
        cfg.apply("defense", "deterland").unwrap();
        let mut b = CloudBuilder::new(cfg, 3);
        let vm = b.add_defended_vm(&[0, 1, 2], || Box::new(Echo));
        let client = b.add_client(Box::new(Pinger {
            server: vm.endpoint,
            to_send: 1,
            sent: 0,
            replies: Vec::new(),
            me: EndpointId(2000),
        }));
        let mut sim = b.build();
        sim.run_until_clients_done(SimTime::from_secs(5));
        assert_eq!(sim.cloud.vm_replicas(vm).len(), 1);
        assert!(sim.cloud.client_app::<Pinger>(client).unwrap().is_done());
        assert_eq!(sim.cloud.stats().get("egress_forwarded"), 0);
    }

    #[test]
    fn idle_cloud_stays_quiet() {
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        b.add_stopwatch_vm(&[0, 1, 2], || Box::new(IdleGuest));
        let mut sim = b.build();
        sim.run_until(SimTime::from_millis(300));
        assert_eq!(sim.cloud.total_counter("net_irq"), 0);
        assert_eq!(sim.cloud.stats().get("egress_forwarded"), 0);
    }

    #[test]
    fn broadcast_chatter_reaches_all_replicas() {
        let mut cfg = CloudConfig::fast_test();
        cfg.broadcast_band = Some((80.0, 80.0));
        let mut b = CloudBuilder::new(cfg, 3);
        let vm = b.add_stopwatch_vm(&[0, 1, 2], || Box::new(IdleGuest));
        let mut sim = b.build();
        sim.run_until(SimTime::from_millis(500));
        let bc = sim.cloud.stats().get("broadcasts");
        assert!(bc >= 20, "broadcasts {bc}");
        // Broadcasts are injected as network interrupts at all replicas,
        // at identical virtual times.
        let l0 = sim.cloud.delivered_log(vm, 0);
        let l1 = sim.cloud.delivered_log(vm, 1);
        assert!(!l0.is_empty());
        let n = l0.len().min(l1.len());
        assert!(l0.len().abs_diff(l1.len()) <= 2, "replicas out of step");
        assert_eq!(l0[..n], l1[..n]);
    }

    #[test]
    fn structured_slot_failure_surfaces_as_run_error_not_a_panic() {
        // A malformed event (here: a disk completion for an op no slot is
        // tracking) must mark the run failed via `CloudSim::error` — the
        // sweep layer fails this cell and keeps the process alive.
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        b.add_stopwatch_vm(&[0, 1, 2], || Box::new(IdleGuest));
        let mut sim = b.build();
        sim.sim
            .schedule(SimTime::from_millis(5), |sim, cloud: &mut Cloud| {
                let now = sim.now();
                if let Err(e) = cloud.hosts[0].disk_ready(0, now, 999) {
                    cloud.fail("host 0 slot 0", e);
                }
            });
        sim.run_until(SimTime::from_millis(20));
        let err = sim.error().expect("run is marked failed");
        assert!(err.contains("unknown op 999"), "{err}");
        assert!(err.contains("host 0 slot 0"), "{err}");
        // Early-exit: the clients-done loop stops on the error.
        let t = sim.run_until_clients_done(SimTime::from_secs(30));
        assert!(t < SimTime::from_secs(30));
    }

    #[test]
    fn pacing_bounds_replica_gap() {
        let mut cfg = CloudConfig::fast_test();
        cfg.ips_jitter = 0.10; // exaggerate speed differences
        let mut b = CloudBuilder::new(cfg.clone(), 3);
        let vm = b.add_stopwatch_vm(&[0, 1, 2], || Box::new(IdleGuest));
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(2));
        let now = sim.now();
        let mut virts: Vec<u64> = (0..3)
            .map(|r| {
                let (h, s) = sim.cloud.vm_replicas(vm)[r];
                sim.cloud.host(h).virt_of(s, now).as_nanos()
            })
            .collect();
        virts.sort_unstable();
        let gap = virts[2] - virts[1];
        let max_gap = cfg.pacing.unwrap().max_gap_ns;
        // Allow one heartbeat of slack beyond the configured bound.
        assert!(
            gap <= max_gap + 8_000_000,
            "fastest-vs-second gap {gap} too large"
        );
        assert!(
            sim.cloud.total_counter("stalls") > 0,
            "pacing never engaged"
        );
    }
}
