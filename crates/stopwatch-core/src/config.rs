//! Cloud-wide configuration: the paper's platform constants with the knobs
//! its evaluation varies.
//!
//! Every tunable knob is declared once in the [`KnobSpec`] schema
//! ([`CloudConfig::knobs`]): key, value type, default, doc string, and the
//! getter/setter pair. [`CloudConfig::apply`] is a thin walk over that
//! schema, so the knob surface is enumerable (sweep harnesses validate
//! axis keys against it before anything runs, `swbench describe` prints
//! it) and a new knob is one table row, not a new `match` arm.

use crate::schema::{self, ValueType};
use netsim::link::LinkModel;
use simkit::time::{SimDuration, VirtOffset};
use vmm::clock::EpochConfig;
use vmm::defense::{DefenseKnobs, DefenseMode, DefensePolicy};
use vmm::devices::PlatformClocks;

/// The registered defense-arm names, alphabetical — the `defense` knob's
/// enum options. Kept in lockstep with `vmm::defense::ARMS` by the
/// `defense_knob_matches_the_registry` test (the list must be `'static`
/// for [`ValueType::Enum`], so it cannot be built from the registry at
/// runtime).
static DEFENSE_ARMS: &[&str] = &["baseline", "bucketed", "deterland", "stopwatch"];

/// Which disk medium backs the hosts (Sec. VII-D conjectures SSDs would
/// shrink Δd).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskKind {
    /// The testbed's 70 GB rotating drive.
    Rotating,
    /// A SATA-era SSD.
    Ssd,
}

/// Fastest-replica pacing (Sec. V-A: the virtual-time gap between the two
/// fastest replicas is bounded by slowing the fastest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacingConfig {
    /// How often VMMs compare replica progress.
    pub heartbeat: SimDuration,
    /// Maximum allowed virtual-time lead of the fastest replica over the
    /// second-fastest.
    pub max_gap_ns: u64,
}

impl Default for PacingConfig {
    fn default() -> Self {
        PacingConfig {
            heartbeat: SimDuration::from_millis(2),
            max_gap_ns: 4_000_000, // 4 ms
        }
    }
}

/// Full cloud configuration.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Master seed; everything stochastic derives from it.
    pub seed: u64,
    /// Which defense arm guards the timing channels (a `vmm::defense`
    /// registry key; see `swbench describe`).
    pub defense: String,
    /// Replicas per StopWatch guest (odd, >= 3).
    pub replicas: usize,
    /// Δn: virtual-time offset for network-interrupt proposals. The paper
    /// found values translating to ~7–12 ms real time sufficed on its
    /// platform.
    pub delta_n: VirtOffset,
    /// Δd: virtual-time offset for disk/DMA completions (paper: ~8–15 ms,
    /// sized from worst-case disk access times).
    pub delta_d: VirtOffset,
    /// Δt: virtual-time offset for guest virtual-timer fires, measured
    /// from the *programmed* deadline (not the jittery dispatch instant),
    /// sized to cover the worst-case vCPU run-queue wait.
    pub delta_t: VirtOffset,
    /// Deterland arm: deterministic release-epoch length.
    pub epoch: VirtOffset,
    /// Bucketed arm: quantization level width.
    pub bucket: VirtOffset,
    /// Bucketed arm: number of distinguishable levels before the cap.
    pub buckets: u64,
    /// vCPU scheduler timeslice — the quantum each busy co-resident runs
    /// before a newly-woken vCPU is dispatched.
    pub timeslice: VirtOffset,
    /// Branches between guest-caused VM exits.
    pub exit_every: u64,
    /// Host base speed, branches per second.
    pub base_ips: f64,
    /// Host speed jitter fraction (uniform, per 10 ms epoch).
    pub ips_jitter: f64,
    /// Speed-jitter epoch length.
    pub speed_epoch: SimDuration,
    /// Virtual nanoseconds per branch (initial clock slope; the paper sets
    /// it from the machines' tick rate).
    pub slope: f64,
    /// Optional epoch resynchronization of virtual to real time.
    pub clock_epochs: Option<EpochConfig>,
    /// Emulated platform clock devices.
    pub platform_clocks: PlatformClocks,
    /// Fastest-replica pacing; `None` disables it.
    pub pacing: Option<PacingConfig>,
    /// Cloud-internal links (host↔host, ingress/egress↔host).
    pub lan: LinkModel,
    /// External client links.
    pub client_link: LinkModel,
    /// Disk medium.
    pub disk: DiskKind,
    /// Background broadcast band in packets/second (the paper's /24 subnet
    /// saw 50–100); `None` disables it.
    pub broadcast_band: Option<(f64, f64)>,
    /// Client protocol-timer period (RTO / NAK checks).
    pub client_tick: SimDuration,
    /// Guest disk image size in blocks.
    pub image_blocks: u64,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            seed: 42,
            defense: "stopwatch".to_string(),
            replicas: 3,
            delta_n: VirtOffset::from_millis(10),
            delta_d: VirtOffset::from_millis(12),
            delta_t: VirtOffset::from_millis(10),
            epoch: VirtOffset::from_millis(5),
            bucket: VirtOffset::from_millis(5),
            buckets: 4,
            timeslice: VirtOffset::from_millis(2),
            exit_every: 50_000,
            base_ips: 1.0e9,
            ips_jitter: 0.02,
            speed_epoch: SimDuration::from_millis(10),
            slope: 1.0,
            clock_epochs: None,
            platform_clocks: PlatformClocks::default(),
            pacing: Some(PacingConfig::default()),
            lan: LinkModel::lan(),
            client_link: LinkModel::wireless_client(),
            disk: DiskKind::Rotating,
            broadcast_band: Some((50.0, 100.0)),
            client_tick: SimDuration::from_millis(20),
            image_blocks: 1 << 22, // 16 GiB at 4 KiB blocks, like the testbed guests
        }
    }
}

impl CloudConfig {
    /// A configuration tuned for fast unit/integration tests: no broadcast
    /// chatter, SSD disks, paper-faithful Δ offsets.
    pub fn fast_test() -> Self {
        CloudConfig {
            broadcast_band: None,
            disk: DiskKind::Ssd,
            ..CloudConfig::default()
        }
    }

    /// The full knob schema: every `apply`-able key with its type,
    /// default, and doc string, in declaration order.
    pub fn knobs() -> &'static [KnobSpec] {
        KNOBS
    }

    /// Looks up one knob by key.
    pub fn knob(key: &str) -> Option<&'static KnobSpec> {
        KNOBS.iter().find(|s| s.key == key)
    }

    /// Every knob's current value as `(key, value)` strings, in schema
    /// order — the fully-resolved configuration sweep reports embed so a
    /// run is reproducible from its report alone. Values round-trip
    /// through [`CloudConfig::apply`].
    pub fn resolved(&self) -> Vec<(String, String)> {
        KNOBS
            .iter()
            .map(|s| (s.key.to_string(), s.value_of(self)))
            .collect()
    }

    /// Applies one string-keyed override — the entry point sweep harnesses
    /// use to build a cloud from a declarative scenario. The key is
    /// resolved against the [`CloudConfig::knobs`] schema; run
    /// `swbench describe` for the rendered key/type/default/doc table.
    ///
    /// # Errors
    ///
    /// Returns a message naming the key (and the nearest valid key, for
    /// plausible typos) on unknown keys or unparsable values, so sweep
    /// specs fail loudly instead of silently running the default
    /// configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use stopwatch_core::config::CloudConfig;
    /// let mut cfg = CloudConfig::fast_test();
    /// cfg.apply("delta_n_ms", "4").unwrap();
    /// assert_eq!(cfg.delta_n.as_millis_f64(), 4.0);
    /// let err = cfg.apply("delta_q_ms", "1").unwrap_err();
    /// assert!(err.contains("did you mean \"delta_n_ms\""));
    /// ```
    pub fn apply(&mut self, key: &str, value: &str) -> Result<(), String> {
        let Some(spec) = Self::knob(key) else {
            let keys: Vec<&str> = KNOBS.iter().map(|s| s.key).collect();
            return Err(schema::unknown_key("config knob", key, &keys));
        };
        spec.apply_to(self, value)
    }

    /// Applies a list of `(key, value)` overrides in order.
    ///
    /// # Errors
    ///
    /// Stops at and reports the first failing pair.
    pub fn apply_all<'a, I>(&mut self, overrides: I) -> Result<(), String>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        for (key, value) in overrides {
            self.apply(key, value)?;
        }
        Ok(())
    }

    /// The configured defense arm, resolved through the `vmm::defense`
    /// registry.
    ///
    /// # Panics
    ///
    /// On an arm name the registry does not know — unreachable through
    /// [`CloudConfig::apply`], which validates the `defense` knob, but
    /// possible when the field is assigned directly.
    pub fn defense_arm(&self) -> &'static dyn DefensePolicy {
        vmm::defense::arm(&self.defense).unwrap_or_else(|| {
            panic!(
                "{}",
                schema::unknown_key("defense arm", &self.defense, DEFENSE_ARMS)
            )
        })
    }

    /// The knob bundle defense arms lower from — every field mirrors one
    /// `apply` key.
    pub fn defense_knobs(&self) -> DefenseKnobs {
        DefenseKnobs {
            delta_n: self.delta_n,
            delta_d: self.delta_d,
            delta_t: self.delta_t,
            replicas: self.replicas,
            epoch: self.epoch,
            bucket: self.bucket,
            buckets: self.buckets,
        }
    }

    /// The configured arm lowered to the slot's hot-path
    /// [`DefenseMode`].
    pub fn defense_mode(&self) -> DefenseMode {
        self.defense_arm().mode(&self.defense_knobs())
    }
}

/// One row of the knob schema: a self-describing, introspectable
/// [`CloudConfig`] tunable. The getter renders the current value in the
/// exact form the setter parses, so `resolved()` output round-trips.
pub struct KnobSpec {
    /// The `apply` key (and `cfg.<key>` sweep-axis name).
    pub key: &'static str,
    /// Declared value type (what [`ValueType::check`] validates).
    pub ty: ValueType,
    /// One-line description for `swbench describe`.
    pub doc: &'static str,
    get: fn(&CloudConfig) -> String,
    set: fn(&mut CloudConfig, &str) -> Result<(), String>,
}

impl KnobSpec {
    /// This knob's value under [`CloudConfig::default`], rendered.
    pub fn default_value(&self) -> String {
        (self.get)(&CloudConfig::default())
    }

    /// This knob's current value in `cfg`, rendered.
    pub fn value_of(&self, cfg: &CloudConfig) -> String {
        (self.get)(cfg)
    }

    /// Parses `value` and stores it in `cfg`.
    ///
    /// # Errors
    ///
    /// A message naming the knob on unparsable values.
    pub fn apply_to(&self, cfg: &mut CloudConfig, value: &str) -> Result<(), String> {
        (self.set)(cfg, value)
    }
}

impl std::fmt::Debug for KnobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnobSpec")
            .field("key", &self.key)
            .field("ty", &self.ty)
            .field("doc", &self.doc)
            .finish()
    }
}

fn parse_knob<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("bad value {value:?} for config knob {key:?}"))
}

fn parse_knob_pair(key: &str, value: &str) -> Result<(f64, f64), String> {
    let (a, b) = value
        .split_once(':')
        .ok_or_else(|| format!("config knob {key:?} wants \"lo:hi\" or \"off\", got {value:?}"))?;
    Ok((parse_knob::<f64>(key, a)?, parse_knob::<f64>(key, b)?))
}

/// Renders nanoseconds as milliseconds, integral where exact.
fn fmt_ns_as_ms(ns: u64) -> String {
    if ns.is_multiple_of(1_000_000) {
        (ns / 1_000_000).to_string()
    } else {
        format!("{}", ns as f64 / 1.0e6)
    }
}

/// The knob schema. `CloudConfig::apply` walks this table; adding a knob
/// is adding a row (the `schema_walk_is_complete` test keeps the table
/// honest against the struct).
static KNOBS: &[KnobSpec] = &[
    KnobSpec {
        key: "seed",
        ty: ValueType::Int,
        doc: "master seed; everything stochastic derives from it",
        get: |c| c.seed.to_string(),
        set: |c, v| {
            c.seed = parse_knob("seed", v)?;
            Ok(())
        },
    },
    KnobSpec {
        key: "defense",
        ty: ValueType::Enum(DEFENSE_ARMS),
        doc: "defense arm guarding the timing channels (see the describe defenses section)",
        get: |c| c.defense.clone(),
        set: |c, v| {
            if vmm::defense::arm(v).is_none() {
                return Err(schema::unknown_key("defense arm", v, DEFENSE_ARMS));
            }
            c.defense = v.to_string();
            Ok(())
        },
    },
    KnobSpec {
        key: "replicas",
        ty: ValueType::Int,
        doc: "replicas per StopWatch guest (odd, >= 3)",
        get: |c| c.replicas.to_string(),
        set: |c, v| {
            c.replicas = parse_knob("replicas", v)?;
            Ok(())
        },
    },
    KnobSpec {
        key: "delta_n_ms",
        ty: ValueType::OffsetMs,
        doc: "Δn: virtual-time offset for network-interrupt proposals, ms",
        get: |c| fmt_ns_as_ms(c.delta_n.as_nanos()),
        set: |c, v| {
            c.delta_n = VirtOffset::from_millis(parse_knob("delta_n_ms", v)?);
            Ok(())
        },
    },
    KnobSpec {
        key: "delta_d_ms",
        ty: ValueType::OffsetMs,
        doc: "Δd: virtual-time offset for disk/DMA completions, ms",
        get: |c| fmt_ns_as_ms(c.delta_d.as_nanos()),
        set: |c, v| {
            c.delta_d = VirtOffset::from_millis(parse_knob("delta_d_ms", v)?);
            Ok(())
        },
    },
    KnobSpec {
        key: "delta_t_ms",
        ty: ValueType::OffsetMs,
        doc: "Δt: virtual-time offset for guest virtual-timer fires, ms",
        get: |c| fmt_ns_as_ms(c.delta_t.as_nanos()),
        set: |c, v| {
            c.delta_t = VirtOffset::from_millis(parse_knob("delta_t_ms", v)?);
            Ok(())
        },
    },
    KnobSpec {
        key: "epoch_ms",
        ty: ValueType::OffsetMs,
        doc: "deterland arm: deterministic release-epoch length, ms",
        get: |c| fmt_ns_as_ms(c.epoch.as_nanos()),
        set: |c, v| {
            c.epoch = VirtOffset::from_millis(parse_knob("epoch_ms", v)?);
            Ok(())
        },
    },
    KnobSpec {
        key: "bucket_ns",
        ty: ValueType::Int,
        doc: "bucketed arm: quantization level width, virtual ns",
        get: |c| c.bucket.as_nanos().to_string(),
        set: |c, v| {
            c.bucket = VirtOffset::from_nanos(parse_knob("bucket_ns", v)?);
            Ok(())
        },
    },
    KnobSpec {
        key: "buckets",
        ty: ValueType::Int,
        doc: "bucketed arm: distinguishable levels before the lag cap",
        get: |c| c.buckets.to_string(),
        set: |c, v| {
            c.buckets = parse_knob("buckets", v)?;
            Ok(())
        },
    },
    KnobSpec {
        key: "timeslice_ms",
        ty: ValueType::OffsetMs,
        doc: "vCPU scheduler timeslice (run-queue quantum), ms",
        get: |c| fmt_ns_as_ms(c.timeslice.as_nanos()),
        set: |c, v| {
            c.timeslice = VirtOffset::from_millis(parse_knob("timeslice_ms", v)?);
            Ok(())
        },
    },
    KnobSpec {
        key: "exit_every",
        ty: ValueType::Int,
        doc: "branches between guest-caused VM exits",
        get: |c| c.exit_every.to_string(),
        set: |c, v| {
            c.exit_every = parse_knob("exit_every", v)?;
            Ok(())
        },
    },
    KnobSpec {
        key: "base_ips",
        ty: ValueType::Float,
        doc: "host base speed, branches per second",
        get: |c| format!("{}", c.base_ips),
        set: |c, v| {
            c.base_ips = parse_knob("base_ips", v)?;
            Ok(())
        },
    },
    KnobSpec {
        key: "ips_jitter",
        ty: ValueType::Float,
        doc: "host speed jitter fraction (uniform, per speed epoch)",
        get: |c| format!("{}", c.ips_jitter),
        set: |c, v| {
            c.ips_jitter = parse_knob("ips_jitter", v)?;
            Ok(())
        },
    },
    KnobSpec {
        key: "speed_epoch_ms",
        ty: ValueType::DurationMs,
        doc: "speed-jitter epoch length, ms",
        get: |c| fmt_ns_as_ms(c.speed_epoch.as_nanos()),
        set: |c, v| {
            c.speed_epoch = SimDuration::from_millis(parse_knob("speed_epoch_ms", v)?);
            Ok(())
        },
    },
    KnobSpec {
        key: "slope",
        ty: ValueType::Float,
        doc: "virtual nanoseconds per branch (initial clock slope)",
        get: |c| format!("{}", c.slope),
        set: |c, v| {
            c.slope = parse_knob("slope", v)?;
            Ok(())
        },
    },
    KnobSpec {
        key: "disk",
        ty: ValueType::Enum(&["rotating", "ssd"]),
        doc: "disk medium backing the hosts",
        get: |c| {
            match c.disk {
                DiskKind::Rotating => "rotating",
                DiskKind::Ssd => "ssd",
            }
            .to_string()
        },
        set: |c, v| {
            c.disk = match v {
                "rotating" => DiskKind::Rotating,
                "ssd" => DiskKind::Ssd,
                other => return Err(format!("unknown disk kind {other:?} (have: rotating, ssd)")),
            };
            Ok(())
        },
    },
    KnobSpec {
        key: "pacing",
        ty: ValueType::PairOrOff,
        doc: "fastest-replica pacing, \"heartbeat_ms:max_gap_ms\" or \"off\"",
        get: |c| match &c.pacing {
            None => "off".to_string(),
            Some(p) => format!(
                "{}:{}",
                p.heartbeat.as_nanos() as f64 / 1.0e6,
                p.max_gap_ns as f64 / 1.0e6
            ),
        },
        set: |c, v| {
            c.pacing = if v == "off" {
                None
            } else {
                let (hb, gap) = parse_knob_pair("pacing", v)?;
                Some(PacingConfig {
                    heartbeat: SimDuration::from_millis_f64(hb),
                    max_gap_ns: (gap * 1e6) as u64,
                })
            };
            Ok(())
        },
    },
    KnobSpec {
        key: "broadcast_band",
        ty: ValueType::PairOrOff,
        doc: "background broadcast band, \"lo:hi\" packets/second or \"off\"",
        get: |c| match c.broadcast_band {
            None => "off".to_string(),
            Some((lo, hi)) => format!("{lo}:{hi}"),
        },
        set: |c, v| {
            c.broadcast_band = if v == "off" {
                None
            } else {
                Some(parse_knob_pair("broadcast_band", v)?)
            };
            Ok(())
        },
    },
    KnobSpec {
        key: "client_tick_ms",
        ty: ValueType::DurationMs,
        doc: "client protocol-timer period (RTO / NAK checks), ms",
        get: |c| fmt_ns_as_ms(c.client_tick.as_nanos()),
        set: |c, v| {
            c.client_tick = SimDuration::from_millis(parse_knob("client_tick_ms", v)?);
            Ok(())
        },
    },
    KnobSpec {
        key: "image_blocks",
        ty: ValueType::Int,
        doc: "guest disk image size in blocks",
        get: |c| c.image_blocks.to_string(),
        set: |c, v| {
            c.image_blocks = parse_knob("image_blocks", v)?;
            Ok(())
        },
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = CloudConfig::default();
        assert_eq!(c.defense, "stopwatch");
        assert_eq!(c.replicas, 3);
        assert_eq!(c.platform_clocks.pit_hz, 250);
        // Δn in the paper translated to ~7–12 ms; Δd to ~8–15 ms.
        let dn = c.delta_n.as_millis_f64();
        let dd = c.delta_d.as_millis_f64();
        assert!((7.0..=12.0).contains(&dn), "Δn = {dn}");
        assert!((8.0..=15.0).contains(&dd), "Δd = {dd}");
        assert!(c.broadcast_band.is_some());
    }

    #[test]
    fn fast_test_disables_noise() {
        let c = CloudConfig::fast_test();
        assert!(c.broadcast_band.is_none());
        assert_eq!(c.disk, DiskKind::Ssd);
    }

    #[test]
    fn apply_overrides_every_documented_key() {
        let mut c = CloudConfig::default();
        c.apply_all([
            ("seed", "9"),
            ("defense", "deterland"),
            ("replicas", "5"),
            ("delta_n_ms", "4"),
            ("delta_d_ms", "6"),
            ("delta_t_ms", "8"),
            ("epoch_ms", "3"),
            ("bucket_ns", "250000"),
            ("buckets", "8"),
            ("timeslice_ms", "1"),
            ("exit_every", "10000"),
            ("base_ips", "2e9"),
            ("ips_jitter", "0.05"),
            ("speed_epoch_ms", "5"),
            ("slope", "1.5"),
            ("disk", "ssd"),
            ("pacing", "1:2"),
            ("broadcast_band", "10:20"),
            ("client_tick_ms", "7"),
            ("image_blocks", "1024"),
        ])
        .unwrap();
        assert_eq!(c.seed, 9);
        assert_eq!(c.defense, "deterland");
        assert_eq!(c.replicas, 5);
        assert_eq!(c.delta_n.as_millis_f64(), 4.0);
        assert_eq!(c.delta_d.as_millis_f64(), 6.0);
        assert_eq!(c.delta_t.as_millis_f64(), 8.0);
        assert_eq!(c.epoch.as_millis_f64(), 3.0);
        assert_eq!(c.bucket.as_nanos(), 250_000);
        assert_eq!(c.buckets, 8);
        assert_eq!(c.timeslice.as_millis_f64(), 1.0);
        assert_eq!(c.exit_every, 10_000);
        assert_eq!(c.base_ips, 2e9);
        assert_eq!(c.ips_jitter, 0.05);
        assert_eq!(c.speed_epoch, SimDuration::from_millis(5));
        assert_eq!(c.slope, 1.5);
        assert_eq!(c.disk, DiskKind::Ssd);
        let pacing = c.pacing.unwrap();
        assert_eq!(pacing.heartbeat, SimDuration::from_millis(1));
        assert_eq!(pacing.max_gap_ns, 2_000_000);
        assert_eq!(c.broadcast_band, Some((10.0, 20.0)));
        assert_eq!(c.client_tick, SimDuration::from_millis(7));
        assert_eq!(c.image_blocks, 1024);
    }

    #[test]
    fn apply_off_values_and_errors() {
        let mut c = CloudConfig::default();
        c.apply("pacing", "off").unwrap();
        assert!(c.pacing.is_none());
        c.apply("broadcast_band", "off").unwrap();
        assert!(c.broadcast_band.is_none());
        assert!(c.apply("unknown", "1").is_err());
        assert!(c.apply("seed", "not-a-number").is_err());
        assert!(c.apply("disk", "floppy").is_err());
        assert!(c.apply("broadcast_band", "10").is_err());
        assert!(c.apply("defense", "qubes").is_err());
    }

    #[test]
    fn defense_knob_matches_the_registry() {
        // The static enum list the knob schema exposes must track the
        // vmm::defense registry exactly.
        assert_eq!(DEFENSE_ARMS, vmm::defense::arm_names().as_slice());
        // Every arm's declared knob keys exist in the config schema, so
        // `swbench describe` can cross-link them.
        for a in vmm::defense::ARMS {
            for key in a.knobs() {
                assert!(
                    CloudConfig::knob(key).is_some(),
                    "arm {:?} reads unknown knob {key:?}",
                    a.name()
                );
            }
        }
    }

    #[test]
    fn unknown_defense_arm_gets_a_did_you_mean() {
        let mut c = CloudConfig::default();
        let err = c.apply("defense", "bucketd").unwrap_err();
        assert!(err.contains("defense arm"), "{err}");
        assert!(err.contains("did you mean \"bucketed\""), "{err}");
    }

    #[test]
    fn defense_mode_lowers_through_the_registry() {
        use vmm::defense::ReleaseRule;
        use vmm::slot::DefenseMode;

        let mut c = CloudConfig::default();
        assert_eq!(c.defense_arm().name(), "stopwatch");
        assert!(c.defense_arm().replicated());
        assert_eq!(
            c.defense_mode(),
            DefenseMode::stop_watch(c.delta_n, c.delta_d, c.delta_t, c.replicas)
        );
        c.apply("defense", "baseline").unwrap();
        assert_eq!(c.defense_mode(), DefenseMode::baseline());
        c.apply_all([("defense", "deterland"), ("epoch_ms", "7")])
            .unwrap();
        assert_eq!(
            c.defense_mode(),
            DefenseMode::Local {
                release: ReleaseRule::EpochBoundary {
                    epoch: VirtOffset::from_millis(7)
                }
            }
        );
        c.apply_all([
            ("defense", "bucketed"),
            ("bucket_ns", "1000"),
            ("buckets", "6"),
        ])
        .unwrap();
        assert_eq!(
            c.defense_mode(),
            DefenseMode::Local {
                release: ReleaseRule::Quantize {
                    bucket: VirtOffset::from_nanos(1000),
                    buckets: 6
                }
            }
        );
    }

    #[test]
    fn unknown_knob_suggests_nearest_key() {
        let mut c = CloudConfig::default();
        let err = c.apply("delta_q_ms", "1").unwrap_err();
        assert!(err.contains("config knob"), "{err}");
        assert!(err.contains("\"delta_q_ms\""), "{err}");
        assert!(err.contains("did you mean \"delta_n_ms\""), "{err}");
        let err = c.apply("replcas", "3").unwrap_err();
        assert!(err.contains("did you mean \"replicas\""), "{err}");
    }

    #[test]
    fn schema_defaults_render_and_round_trip() {
        // Every knob's rendered default, applied back to a default config,
        // must be a no-op — the schema's getters and setters agree.
        let reference = CloudConfig::default().resolved();
        for spec in CloudConfig::knobs() {
            let mut c = CloudConfig::default();
            let default = spec.default_value();
            spec.ty
                .check(&default)
                .unwrap_or_else(|e| panic!("default of {:?} fails its own type: {e}", spec.key));
            c.apply(spec.key, &default)
                .unwrap_or_else(|e| panic!("default of {:?} does not re-apply: {e}", spec.key));
            assert_eq!(c.resolved(), reference, "knob {:?} round-trip", spec.key);
            assert!(
                !spec.doc.is_empty(),
                "knob {:?} lacks a doc string",
                spec.key
            );
        }
    }

    #[test]
    fn resolved_covers_every_knob_and_tracks_overrides() {
        let mut c = CloudConfig::default();
        c.apply_all([("delta_n_ms", "4"), ("disk", "ssd"), ("pacing", "off")])
            .unwrap();
        let resolved = c.resolved();
        assert_eq!(resolved.len(), CloudConfig::knobs().len());
        let get = |k: &str| {
            resolved
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("delta_n_ms"), "4");
        assert_eq!(get("disk"), "ssd");
        assert_eq!(get("pacing"), "off");
        assert_eq!(get("broadcast_band"), "50:100");
    }
}
