//! Cloud-wide configuration: the paper's platform constants with the knobs
//! its evaluation varies.

use netsim::link::LinkModel;
use simkit::time::{SimDuration, VirtOffset};
use vmm::clock::EpochConfig;
use vmm::devices::PlatformClocks;

/// Which disk medium backs the hosts (Sec. VII-D conjectures SSDs would
/// shrink Δd).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskKind {
    /// The testbed's 70 GB rotating drive.
    Rotating,
    /// A SATA-era SSD.
    Ssd,
}

/// Fastest-replica pacing (Sec. V-A: the virtual-time gap between the two
/// fastest replicas is bounded by slowing the fastest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacingConfig {
    /// How often VMMs compare replica progress.
    pub heartbeat: SimDuration,
    /// Maximum allowed virtual-time lead of the fastest replica over the
    /// second-fastest.
    pub max_gap_ns: u64,
}

impl Default for PacingConfig {
    fn default() -> Self {
        PacingConfig {
            heartbeat: SimDuration::from_millis(2),
            max_gap_ns: 4_000_000, // 4 ms
        }
    }
}

/// Full cloud configuration.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Master seed; everything stochastic derives from it.
    pub seed: u64,
    /// Replicas per StopWatch guest (odd, >= 3).
    pub replicas: usize,
    /// Δn: virtual-time offset for network-interrupt proposals. The paper
    /// found values translating to ~7–12 ms real time sufficed on its
    /// platform.
    pub delta_n: VirtOffset,
    /// Δd: virtual-time offset for disk/DMA completions (paper: ~8–15 ms,
    /// sized from worst-case disk access times).
    pub delta_d: VirtOffset,
    /// Branches between guest-caused VM exits.
    pub exit_every: u64,
    /// Host base speed, branches per second.
    pub base_ips: f64,
    /// Host speed jitter fraction (uniform, per 10 ms epoch).
    pub ips_jitter: f64,
    /// Speed-jitter epoch length.
    pub speed_epoch: SimDuration,
    /// Virtual nanoseconds per branch (initial clock slope; the paper sets
    /// it from the machines' tick rate).
    pub slope: f64,
    /// Optional epoch resynchronization of virtual to real time.
    pub clock_epochs: Option<EpochConfig>,
    /// Emulated platform clock devices.
    pub platform_clocks: PlatformClocks,
    /// Fastest-replica pacing; `None` disables it.
    pub pacing: Option<PacingConfig>,
    /// Cloud-internal links (host↔host, ingress/egress↔host).
    pub lan: LinkModel,
    /// External client links.
    pub client_link: LinkModel,
    /// Disk medium.
    pub disk: DiskKind,
    /// Background broadcast band in packets/second (the paper's /24 subnet
    /// saw 50–100); `None` disables it.
    pub broadcast_band: Option<(f64, f64)>,
    /// Client protocol-timer period (RTO / NAK checks).
    pub client_tick: SimDuration,
    /// Guest disk image size in blocks.
    pub image_blocks: u64,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            seed: 42,
            replicas: 3,
            delta_n: VirtOffset::from_millis(10),
            delta_d: VirtOffset::from_millis(12),
            exit_every: 50_000,
            base_ips: 1.0e9,
            ips_jitter: 0.02,
            speed_epoch: SimDuration::from_millis(10),
            slope: 1.0,
            clock_epochs: None,
            platform_clocks: PlatformClocks::default(),
            pacing: Some(PacingConfig::default()),
            lan: LinkModel::lan(),
            client_link: LinkModel::wireless_client(),
            disk: DiskKind::Rotating,
            broadcast_band: Some((50.0, 100.0)),
            client_tick: SimDuration::from_millis(20),
            image_blocks: 1 << 22, // 16 GiB at 4 KiB blocks, like the testbed guests
        }
    }
}

impl CloudConfig {
    /// A configuration tuned for fast unit/integration tests: no broadcast
    /// chatter, SSD disks, paper-faithful Δ offsets.
    pub fn fast_test() -> Self {
        CloudConfig {
            broadcast_band: None,
            disk: DiskKind::Ssd,
            ..CloudConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = CloudConfig::default();
        assert_eq!(c.replicas, 3);
        assert_eq!(c.platform_clocks.pit_hz, 250);
        // Δn in the paper translated to ~7–12 ms; Δd to ~8–15 ms.
        let dn = c.delta_n.as_millis_f64();
        let dd = c.delta_d.as_millis_f64();
        assert!((7.0..=12.0).contains(&dn), "Δn = {dn}");
        assert!((8.0..=15.0).contains(&dd), "Δd = {dd}");
        assert!(c.broadcast_band.is_some());
    }

    #[test]
    fn fast_test_disables_noise() {
        let c = CloudConfig::fast_test();
        assert!(c.broadcast_band.is_none());
        assert_eq!(c.disk, DiskKind::Ssd);
    }
}
