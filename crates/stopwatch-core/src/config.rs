//! Cloud-wide configuration: the paper's platform constants with the knobs
//! its evaluation varies.

use netsim::link::LinkModel;
use simkit::time::{SimDuration, VirtOffset};
use vmm::clock::EpochConfig;
use vmm::devices::PlatformClocks;

/// Which disk medium backs the hosts (Sec. VII-D conjectures SSDs would
/// shrink Δd).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskKind {
    /// The testbed's 70 GB rotating drive.
    Rotating,
    /// A SATA-era SSD.
    Ssd,
}

/// Fastest-replica pacing (Sec. V-A: the virtual-time gap between the two
/// fastest replicas is bounded by slowing the fastest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacingConfig {
    /// How often VMMs compare replica progress.
    pub heartbeat: SimDuration,
    /// Maximum allowed virtual-time lead of the fastest replica over the
    /// second-fastest.
    pub max_gap_ns: u64,
}

impl Default for PacingConfig {
    fn default() -> Self {
        PacingConfig {
            heartbeat: SimDuration::from_millis(2),
            max_gap_ns: 4_000_000, // 4 ms
        }
    }
}

/// Full cloud configuration.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Master seed; everything stochastic derives from it.
    pub seed: u64,
    /// Replicas per StopWatch guest (odd, >= 3).
    pub replicas: usize,
    /// Δn: virtual-time offset for network-interrupt proposals. The paper
    /// found values translating to ~7–12 ms real time sufficed on its
    /// platform.
    pub delta_n: VirtOffset,
    /// Δd: virtual-time offset for disk/DMA completions (paper: ~8–15 ms,
    /// sized from worst-case disk access times).
    pub delta_d: VirtOffset,
    /// Branches between guest-caused VM exits.
    pub exit_every: u64,
    /// Host base speed, branches per second.
    pub base_ips: f64,
    /// Host speed jitter fraction (uniform, per 10 ms epoch).
    pub ips_jitter: f64,
    /// Speed-jitter epoch length.
    pub speed_epoch: SimDuration,
    /// Virtual nanoseconds per branch (initial clock slope; the paper sets
    /// it from the machines' tick rate).
    pub slope: f64,
    /// Optional epoch resynchronization of virtual to real time.
    pub clock_epochs: Option<EpochConfig>,
    /// Emulated platform clock devices.
    pub platform_clocks: PlatformClocks,
    /// Fastest-replica pacing; `None` disables it.
    pub pacing: Option<PacingConfig>,
    /// Cloud-internal links (host↔host, ingress/egress↔host).
    pub lan: LinkModel,
    /// External client links.
    pub client_link: LinkModel,
    /// Disk medium.
    pub disk: DiskKind,
    /// Background broadcast band in packets/second (the paper's /24 subnet
    /// saw 50–100); `None` disables it.
    pub broadcast_band: Option<(f64, f64)>,
    /// Client protocol-timer period (RTO / NAK checks).
    pub client_tick: SimDuration,
    /// Guest disk image size in blocks.
    pub image_blocks: u64,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            seed: 42,
            replicas: 3,
            delta_n: VirtOffset::from_millis(10),
            delta_d: VirtOffset::from_millis(12),
            exit_every: 50_000,
            base_ips: 1.0e9,
            ips_jitter: 0.02,
            speed_epoch: SimDuration::from_millis(10),
            slope: 1.0,
            clock_epochs: None,
            platform_clocks: PlatformClocks::default(),
            pacing: Some(PacingConfig::default()),
            lan: LinkModel::lan(),
            client_link: LinkModel::wireless_client(),
            disk: DiskKind::Rotating,
            broadcast_band: Some((50.0, 100.0)),
            client_tick: SimDuration::from_millis(20),
            image_blocks: 1 << 22, // 16 GiB at 4 KiB blocks, like the testbed guests
        }
    }
}

impl CloudConfig {
    /// A configuration tuned for fast unit/integration tests: no broadcast
    /// chatter, SSD disks, paper-faithful Δ offsets.
    pub fn fast_test() -> Self {
        CloudConfig {
            broadcast_band: None,
            disk: DiskKind::Ssd,
            ..CloudConfig::default()
        }
    }

    /// Applies one string-keyed override — the entry point sweep harnesses
    /// use to build a cloud from a declarative scenario.
    ///
    /// Recognized keys (values parse as the field's type):
    ///
    /// | key | field |
    /// |---|---|
    /// | `seed` | [`CloudConfig::seed`] |
    /// | `replicas` | [`CloudConfig::replicas`] |
    /// | `delta_n_ms` / `delta_d_ms` | the Δn / Δd offsets, in ms |
    /// | `exit_every` | [`CloudConfig::exit_every`] |
    /// | `base_ips` | [`CloudConfig::base_ips`] |
    /// | `ips_jitter` | [`CloudConfig::ips_jitter`] |
    /// | `speed_epoch_ms` | [`CloudConfig::speed_epoch`] |
    /// | `slope` | [`CloudConfig::slope`] |
    /// | `disk` | `rotating` or `ssd` |
    /// | `pacing` | `off` or `heartbeat_ms:max_gap_ms` |
    /// | `broadcast_band` | `off` or `lo:hi` packets/second |
    /// | `client_tick_ms` | [`CloudConfig::client_tick`] |
    /// | `image_blocks` | [`CloudConfig::image_blocks`] |
    ///
    /// # Errors
    ///
    /// Returns a message naming the key on unknown keys or unparsable
    /// values, so sweep specs fail loudly instead of silently running the
    /// default configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use stopwatch_core::config::CloudConfig;
    /// let mut cfg = CloudConfig::fast_test();
    /// cfg.apply("delta_n_ms", "4").unwrap();
    /// assert_eq!(cfg.delta_n.as_millis_f64(), 4.0);
    /// assert!(cfg.apply("no_such_knob", "1").is_err());
    /// ```
    pub fn apply(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value
                .parse::<T>()
                .map_err(|_| format!("bad value {value:?} for config key {key:?}"))
        }
        fn parse_pair(key: &str, value: &str) -> Result<(f64, f64), String> {
            let (a, b) = value
                .split_once(':')
                .ok_or_else(|| format!("key {key:?} wants \"lo:hi\", got {value:?}"))?;
            Ok((parse::<f64>(key, a)?, parse::<f64>(key, b)?))
        }
        match key {
            "seed" => self.seed = parse(key, value)?,
            "replicas" => self.replicas = parse(key, value)?,
            "delta_n_ms" => self.delta_n = VirtOffset::from_millis(parse(key, value)?),
            "delta_d_ms" => self.delta_d = VirtOffset::from_millis(parse(key, value)?),
            "exit_every" => self.exit_every = parse(key, value)?,
            "base_ips" => self.base_ips = parse(key, value)?,
            "ips_jitter" => self.ips_jitter = parse(key, value)?,
            "speed_epoch_ms" => self.speed_epoch = SimDuration::from_millis(parse(key, value)?),
            "slope" => self.slope = parse(key, value)?,
            "disk" => {
                self.disk = match value {
                    "rotating" => DiskKind::Rotating,
                    "ssd" => DiskKind::Ssd,
                    other => return Err(format!("unknown disk kind {other:?}")),
                }
            }
            "pacing" => {
                self.pacing = if value == "off" {
                    None
                } else {
                    let (hb, gap) = parse_pair(key, value)?;
                    Some(PacingConfig {
                        heartbeat: SimDuration::from_millis_f64(hb),
                        max_gap_ns: (gap * 1e6) as u64,
                    })
                }
            }
            "broadcast_band" => {
                self.broadcast_band = if value == "off" {
                    None
                } else {
                    Some(parse_pair(key, value)?)
                }
            }
            "client_tick_ms" => self.client_tick = SimDuration::from_millis(parse(key, value)?),
            "image_blocks" => self.image_blocks = parse(key, value)?,
            other => return Err(format!("unknown config key {other:?}")),
        }
        Ok(())
    }

    /// Applies a list of `(key, value)` overrides in order.
    ///
    /// # Errors
    ///
    /// Stops at and reports the first failing pair.
    pub fn apply_all<'a, I>(&mut self, overrides: I) -> Result<(), String>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        for (key, value) in overrides {
            self.apply(key, value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = CloudConfig::default();
        assert_eq!(c.replicas, 3);
        assert_eq!(c.platform_clocks.pit_hz, 250);
        // Δn in the paper translated to ~7–12 ms; Δd to ~8–15 ms.
        let dn = c.delta_n.as_millis_f64();
        let dd = c.delta_d.as_millis_f64();
        assert!((7.0..=12.0).contains(&dn), "Δn = {dn}");
        assert!((8.0..=15.0).contains(&dd), "Δd = {dd}");
        assert!(c.broadcast_band.is_some());
    }

    #[test]
    fn fast_test_disables_noise() {
        let c = CloudConfig::fast_test();
        assert!(c.broadcast_band.is_none());
        assert_eq!(c.disk, DiskKind::Ssd);
    }

    #[test]
    fn apply_overrides_every_documented_key() {
        let mut c = CloudConfig::default();
        c.apply_all([
            ("seed", "9"),
            ("replicas", "5"),
            ("delta_n_ms", "4"),
            ("delta_d_ms", "6"),
            ("exit_every", "10000"),
            ("base_ips", "2e9"),
            ("ips_jitter", "0.05"),
            ("speed_epoch_ms", "5"),
            ("slope", "1.5"),
            ("disk", "ssd"),
            ("pacing", "1:2"),
            ("broadcast_band", "10:20"),
            ("client_tick_ms", "7"),
            ("image_blocks", "1024"),
        ])
        .unwrap();
        assert_eq!(c.seed, 9);
        assert_eq!(c.replicas, 5);
        assert_eq!(c.delta_n.as_millis_f64(), 4.0);
        assert_eq!(c.delta_d.as_millis_f64(), 6.0);
        assert_eq!(c.exit_every, 10_000);
        assert_eq!(c.base_ips, 2e9);
        assert_eq!(c.ips_jitter, 0.05);
        assert_eq!(c.speed_epoch, SimDuration::from_millis(5));
        assert_eq!(c.slope, 1.5);
        assert_eq!(c.disk, DiskKind::Ssd);
        let pacing = c.pacing.unwrap();
        assert_eq!(pacing.heartbeat, SimDuration::from_millis(1));
        assert_eq!(pacing.max_gap_ns, 2_000_000);
        assert_eq!(c.broadcast_band, Some((10.0, 20.0)));
        assert_eq!(c.client_tick, SimDuration::from_millis(7));
        assert_eq!(c.image_blocks, 1024);
    }

    #[test]
    fn apply_off_values_and_errors() {
        let mut c = CloudConfig::default();
        c.apply("pacing", "off").unwrap();
        assert!(c.pacing.is_none());
        c.apply("broadcast_band", "off").unwrap();
        assert!(c.broadcast_band.is_none());
        assert!(c.apply("unknown", "1").is_err());
        assert!(c.apply("seed", "not-a-number").is_err());
        assert!(c.apply("disk", "floppy").is_err());
        assert!(c.apply("broadcast_band", "10").is_err());
    }
}
