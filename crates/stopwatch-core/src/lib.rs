//! # stopwatch-core — the StopWatch system itself
//!
//! Li, Gao & Reiter's StopWatch (DSN 2013) defends IaaS clouds against
//! access-driven timing side channels by running **three replicas** of every
//! guest VM on hosts with nonoverlapping coresidency, and exposing only
//! **median timings**:
//!
//! * every inbound packet is replicated by an ingress node; the three VMMs
//!   exchange proposed virtual delivery times (`virt + Δn`) and inject at
//!   the **median**;
//! * disk/DMA completions are injected at `V + Δd` of the (deterministic)
//!   issue time `V`;
//! * all guest-readable clocks are virtual (a function of the guest's own
//!   branch count);
//! * outputs are released by an egress node at the **second copy**'s
//!   arrival — the median output timing — with content voting.
//!
//! This crate wires the [`vmm`], [`netsim`] and [`storage`] substrates into
//! a runnable [`cloud::CloudSim`], configured by [`config::CloudConfig`].
//! The workspace's `DESIGN.md` describes how the pieces fit; sweep
//! harnesses construct clouds declaratively through
//! [`config::CloudConfig::apply`] and the builder's endpoint hooks.
//!
//! # Examples
//!
//! See the workspace examples (`examples/quickstart.rs` and friends); the
//! minimal shape is:
//!
//! ```
//! use stopwatch_core::prelude::*;
//! use vmm::prelude::IdleGuest;
//!
//! let mut builder = CloudBuilder::new(CloudConfig::fast_test(), 3);
//! builder.add_stopwatch_vm(&[0, 1, 2], || Box::new(IdleGuest));
//! let mut sim = builder.build();
//! sim.run_until(simkit::time::SimTime::from_millis(100));
//! assert_eq!(sim.cloud.stats().get("egress_divergences"), 0);
//! ```

pub mod cloud;
pub mod config;
pub mod schema;

/// One-line import for the common types.
pub mod prelude {
    pub use crate::cloud::{ClientApp, ClientHandle, Cloud, CloudBuilder, CloudSim, VmHandle};
    pub use crate::config::{CloudConfig, DiskKind, KnobSpec, PacingConfig};
    pub use crate::schema::ValueType;
}
