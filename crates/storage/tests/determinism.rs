//! Determinism guarantees of the storage layer — the properties the
//! disk timing channel's replica-median agreement leans on: service-time
//! models must replay identically per seed (so replicas differ only
//! where their RNG streams do), and replicated images must stay
//! fingerprint-identical under identical write sequences.

use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};
use storage::block::{BlockRange, DiskImage};
use storage::device::{DiskDevice, DiskOp, DiskRequest};
use storage::model::{AccessModel, RotatingDisk, Ssd};

/// A mixed probe sequence spanning the platter.
fn requests() -> Vec<BlockRange> {
    (0..200)
        .map(|i| BlockRange::new((i * 104_729) % 4_000_000, 1 + (i % 8) as u32))
        .collect()
}

fn latencies(model: &dyn AccessModel, seed: u64) -> Vec<SimDuration> {
    let mut rng = SimRng::new(seed).stream("disk");
    let mut last = 0u64;
    requests()
        .into_iter()
        .map(|range| {
            let t = model.access_time(range, last, &mut rng);
            last = range.end().0;
            t
        })
        .collect()
}

#[test]
fn rotational_service_times_replay_identically_per_seed() {
    let d = RotatingDisk::testbed();
    assert_eq!(latencies(&d, 7), latencies(&d, 7), "same seed, same trace");
    assert_ne!(
        latencies(&d, 7),
        latencies(&d, 8),
        "different seed perturbs rotational latency"
    );
}

#[test]
fn ssd_service_times_replay_identically_per_seed() {
    let d = Ssd::sata();
    assert_eq!(latencies(&d, 7), latencies(&d, 7), "same seed, same trace");
    assert_ne!(
        latencies(&d, 7),
        latencies(&d, 9),
        "different seed perturbs flash jitter"
    );
}

#[test]
fn device_completion_times_replay_identically_per_seed() {
    let run = |seed: u64| -> Vec<SimTime> {
        let mut dev = DiskDevice::new(RotatingDisk::testbed(), SimRng::new(seed).stream("d"));
        requests()
            .into_iter()
            .enumerate()
            .map(|(i, range)| {
                dev.submit(
                    DiskRequest {
                        op: DiskOp::Read,
                        range,
                    },
                    SimTime::from_millis(i as u64 * 3),
                )
            })
            .collect()
    };
    assert_eq!(run(42), run(42), "FIFO queueing included");
    assert_ne!(run(42), run(43));
}

#[test]
fn replicated_images_stay_fingerprint_identical_under_identical_writes() {
    // The paper's setup: one image copied to every replica host; guests
    // that behave identically must leave identical disk state.
    let mut master = DiskImage::new(1 << 20);
    master.write(BlockRange::new(100, 4), 0xfeed);
    let mut replicas = vec![master.clone(), master.clone(), master.clone()];
    let writes: Vec<(BlockRange, u64)> = (0..500)
        .map(|i| (BlockRange::new((i * 7919) % 1_000_000, 2), i * 31 + 1))
        .collect();
    for image in &mut replicas {
        for &(range, value) in &writes {
            image.write(range, value);
        }
    }
    let fp0 = replicas[0].content_fingerprint();
    for (i, image) in replicas.iter().enumerate() {
        assert_eq!(
            image.content_fingerprint(),
            fp0,
            "replica {i} diverged in fingerprint"
        );
        assert_eq!(
            image.read(BlockRange::new(100, 4)),
            replicas[0].read(BlockRange::new(100, 4))
        );
    }
    // One diverging write is caught.
    let mut rogue = replicas.pop().unwrap();
    rogue.write(BlockRange::new(5, 1), 0xbad);
    assert_ne!(rogue.content_fingerprint(), fp0);
}
