//! Block addressing and replicated disk images.
//!
//! Image content is modeled as per-block 64-bit hashes, not bytes: enough
//! to verify that replicas stay bit-identical (determinism is part of the
//! defense) without storing gigabytes.

use std::collections::HashMap;

/// Bytes per block (a common 4 KiB).
pub const BLOCK_BYTES: u32 = 4096;

/// A block address on the virtual disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(pub u64);

/// A contiguous run of blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRange {
    /// First block.
    pub start: BlockAddr,
    /// Number of blocks (>= 1).
    pub count: u32,
}

impl BlockRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn new(start: u64, count: u32) -> Self {
        assert!(count > 0, "empty block range");
        BlockRange {
            start: BlockAddr(start),
            count,
        }
    }

    /// Total bytes covered.
    pub fn bytes(&self) -> u64 {
        u64::from(self.count) * u64::from(BLOCK_BYTES)
    }

    /// Iterates over the member block addresses.
    pub fn iter(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        (self.start.0..self.start.0 + u64::from(self.count)).map(BlockAddr)
    }

    /// One block past the end.
    pub fn end(&self) -> BlockAddr {
        BlockAddr(self.start.0 + u64::from(self.count))
    }
}

/// A virtual disk image: sparse map of block → content hash.
///
/// Cloning a `DiskImage` is exactly the paper's "we copied the disk file to
/// all three machines to provide identical disk state to the three
/// replicas".
///
/// # Examples
///
/// ```
/// use storage::block::{BlockRange, DiskImage};
/// let mut img = DiskImage::new(1024);
/// img.write(BlockRange::new(10, 2), 0xfeed);
/// let replica = img.clone();
/// assert_eq!(img.read(BlockRange::new(10, 2)), replica.read(BlockRange::new(10, 2)));
/// assert_eq!(img.content_fingerprint(), replica.content_fingerprint());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskImage {
    size_blocks: u64,
    blocks: HashMap<u64, u64>,
}

impl DiskImage {
    /// Creates an all-zero image of `size_blocks` blocks.
    pub fn new(size_blocks: u64) -> Self {
        DiskImage {
            size_blocks,
            blocks: HashMap::new(),
        }
    }

    /// Image capacity in blocks.
    pub fn size_blocks(&self) -> u64 {
        self.size_blocks
    }

    /// Reads a range, returning one content hash per block (0 = never
    /// written).
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the image.
    pub fn read(&self, range: BlockRange) -> Vec<u64> {
        assert!(
            range.end().0 <= self.size_blocks,
            "read past end of image ({} > {})",
            range.end().0,
            self.size_blocks
        );
        range
            .iter()
            .map(|b| self.blocks.get(&b.0).copied().unwrap_or(0))
            .collect()
    }

    /// Writes `value_hash` to every block of the range.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the image.
    pub fn write(&mut self, range: BlockRange, value_hash: u64) {
        assert!(range.end().0 <= self.size_blocks, "write past end of image");
        for b in range.iter() {
            // Mix the address in so two blocks written with the same value
            // still carry distinct content.
            let mixed = value_hash ^ b.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            self.blocks.insert(b.0, mixed);
        }
    }

    /// An order-independent fingerprint of all written content; two
    /// replicas whose guests behaved identically have equal fingerprints.
    pub fn content_fingerprint(&self) -> u64 {
        self.blocks.iter().fold(0u64, |acc, (addr, val)| {
            acc ^ addr.wrapping_mul(0x100_0000_01b3) ^ val.rotate_left((addr % 63) as u32)
        })
    }

    /// Number of blocks ever written.
    pub fn written_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_math() {
        let r = BlockRange::new(10, 4);
        assert_eq!(r.bytes(), 4 * 4096);
        assert_eq!(r.end(), BlockAddr(14));
        assert_eq!(r.iter().count(), 4);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_range_panics() {
        BlockRange::new(0, 0);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let img = DiskImage::new(100);
        assert_eq!(img.read(BlockRange::new(0, 3)), vec![0, 0, 0]);
    }

    #[test]
    fn write_then_read() {
        let mut img = DiskImage::new(100);
        img.write(BlockRange::new(5, 2), 42);
        let vals = img.read(BlockRange::new(5, 2));
        assert_ne!(vals[0], 0);
        assert_ne!(vals[0], vals[1], "same value at different addrs differs");
        assert_eq!(img.written_blocks(), 2);
    }

    #[test]
    fn clone_is_replica() {
        let mut img = DiskImage::new(100);
        img.write(BlockRange::new(0, 10), 7);
        let replica = img.clone();
        assert_eq!(img, replica);
        assert_eq!(img.content_fingerprint(), replica.content_fingerprint());
    }

    #[test]
    fn fingerprint_detects_divergence() {
        let mut a = DiskImage::new(100);
        let mut b = DiskImage::new(100);
        a.write(BlockRange::new(0, 1), 1);
        b.write(BlockRange::new(0, 1), 2);
        assert_ne!(a.content_fingerprint(), b.content_fingerprint());
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let mut a = DiskImage::new(100);
        let mut b = DiskImage::new(100);
        a.write(BlockRange::new(0, 1), 1);
        a.write(BlockRange::new(5, 1), 2);
        b.write(BlockRange::new(5, 1), 2);
        b.write(BlockRange::new(0, 1), 1);
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn read_past_end_panics() {
        DiskImage::new(10).read(BlockRange::new(8, 4));
    }
}
