//! # storage — the disk substrate of the StopWatch reproduction
//!
//! The paper's guests run on QEMU-emulated ATA disks backed by a 70 GB
//! rotating drive, with the entire disk image replicated to all three
//! replica machines at VM start (Sec. V-A). This crate models:
//!
//! * [`block`] — block addressing and a content-hashed [`block::DiskImage`]
//!   that can be cloned to the replicas (identical state everywhere);
//! * [`model`] — access-time models: a rotating disk (seek + rotational
//!   latency + transfer) matching the paper's testbed, and an SSD model for
//!   the Sec. VII-D conjecture that faster media would let Δd shrink;
//! * [`device`] — a FIFO disk device that turns requests into completion
//!   times.

pub mod block;
pub mod device;
pub mod model;

pub use block::{BlockAddr, BlockRange, DiskImage, BLOCK_BYTES};
pub use device::{DiskDevice, DiskOp, DiskRequest};
pub use model::{AccessModel, RotatingDisk, Ssd};
