//! Disk access-time models.
//!
//! The paper's Δd offset (8–15 ms) was sized from "the maximum observed
//! disk access times" of a 70 GB rotating drive; Sec. VII-D conjectures
//! that SSDs would let Δd shrink. Both media are modeled here.

use crate::block::{BlockRange, BLOCK_BYTES};
use simkit::rng::SimRng;
use simkit::time::SimDuration;

/// Computes the service time of one request (queueing excluded — the
/// [`crate::device::DiskDevice`] adds that).
pub trait AccessModel {
    /// Service time for accessing `range`, given the previous head position
    /// `last_block` (rotating media care; flash doesn't).
    fn access_time(&self, range: BlockRange, last_block: u64, rng: &mut SimRng) -> SimDuration;

    /// A conservative upper bound on single-request service time — what an
    /// operator would measure to size Δd ("maximum observed disk access
    /// times", Sec. VII-A).
    fn worst_case(&self) -> SimDuration;
}

impl<M: AccessModel + ?Sized> AccessModel for Box<M> {
    fn access_time(&self, range: BlockRange, last_block: u64, rng: &mut SimRng) -> SimDuration {
        (**self).access_time(range, last_block, rng)
    }

    fn worst_case(&self) -> SimDuration {
        (**self).worst_case()
    }
}

/// A 7200 RPM rotating disk: seek distance-dependent seek time, uniform
/// rotational latency, fixed per-byte transfer rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotatingDisk {
    /// Minimum (track-to-track) seek.
    pub seek_min: SimDuration,
    /// Maximum (full-stroke) seek.
    pub seek_max: SimDuration,
    /// One full rotation (8.33 ms at 7200 RPM).
    pub rotation: SimDuration,
    /// Sustained transfer rate, bytes per second.
    pub transfer_bps: u64,
    /// Total blocks (for seek-distance normalization).
    pub total_blocks: u64,
}

impl RotatingDisk {
    /// A drive resembling the paper's testbed disk (70 GB, 7200 RPM).
    pub fn testbed() -> Self {
        RotatingDisk {
            seek_min: SimDuration::from_micros(500),
            seek_max: SimDuration::from_millis(9),
            rotation: SimDuration::from_micros(8333),
            transfer_bps: 80_000_000,
            total_blocks: 70 * 1024 * 1024 * 1024 / u64::from(BLOCK_BYTES),
        }
    }
}

impl AccessModel for RotatingDisk {
    fn access_time(&self, range: BlockRange, last_block: u64, rng: &mut SimRng) -> SimDuration {
        let dist = last_block.abs_diff(range.start.0);
        let frac = (dist as f64 / self.total_blocks as f64).min(1.0);
        // Seek time scales with the square root of distance (a standard
        // first-order disk model), between the min and max.
        let seek_span = self.seek_max.as_secs_f64() - self.seek_min.as_secs_f64();
        let seek = if dist == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(self.seek_min.as_secs_f64() + seek_span * frac.sqrt())
        };
        let rot = rng.uniform_duration(SimDuration::ZERO, self.rotation);
        let transfer = SimDuration::from_secs_f64(range.bytes() as f64 / self.transfer_bps as f64);
        seek + rot + transfer
    }

    fn worst_case(&self) -> SimDuration {
        // Full seek + full rotation + a generous 1 MB transfer.
        self.seek_max
            + self.rotation
            + SimDuration::from_secs_f64(1_048_576.0 / self.transfer_bps as f64)
    }
}

/// A flash drive: near-constant latency, high transfer rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ssd {
    /// Fixed access latency.
    pub latency: SimDuration,
    /// Latency jitter bound (uniform).
    pub jitter: SimDuration,
    /// Transfer rate, bytes per second.
    pub transfer_bps: u64,
}

impl Ssd {
    /// A SATA-era SSD (contemporary with the paper).
    pub fn sata() -> Self {
        Ssd {
            latency: SimDuration::from_micros(80),
            jitter: SimDuration::from_micros(40),
            transfer_bps: 400_000_000,
        }
    }
}

impl AccessModel for Ssd {
    fn access_time(&self, range: BlockRange, _last_block: u64, rng: &mut SimRng) -> SimDuration {
        let jitter = rng.uniform_duration(SimDuration::ZERO, self.jitter);
        self.latency
            + jitter
            + SimDuration::from_secs_f64(range.bytes() as f64 / self.transfer_bps as f64)
    }

    fn worst_case(&self) -> SimDuration {
        self.latency
            + self.jitter
            + SimDuration::from_secs_f64(1_048_576.0 / self.transfer_bps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(7).stream("disk")
    }

    #[test]
    fn rotating_sequential_faster_than_random() {
        let d = RotatingDisk::testbed();
        let mut r = rng();
        let n = 500;
        let seq: f64 = (0..n)
            .map(|_| {
                d.access_time(BlockRange::new(1000, 8), 1000, &mut r)
                    .as_millis_f64()
            })
            .sum::<f64>()
            / n as f64;
        let far = d.total_blocks - 10;
        let rand: f64 = (0..n)
            .map(|_| {
                d.access_time(BlockRange::new(far, 8), 0, &mut r)
                    .as_millis_f64()
            })
            .sum::<f64>()
            / n as f64;
        assert!(rand > seq + 5.0, "random {rand} vs sequential {seq}");
    }

    #[test]
    fn rotating_times_in_plausible_band() {
        let d = RotatingDisk::testbed();
        let mut r = rng();
        for _ in 0..200 {
            let t = d.access_time(BlockRange::new(5_000_000, 16), 0, &mut r);
            assert!(t >= SimDuration::from_micros(500));
            assert!(t <= d.worst_case(), "{t} > {}", d.worst_case());
        }
    }

    #[test]
    fn worst_case_bounds_samples() {
        let d = RotatingDisk::testbed();
        let mut r = rng();
        let wc = d.worst_case();
        for i in 0..1000 {
            let t = d.access_time(
                BlockRange::new((i * 7919) % d.total_blocks, 8),
                (i * 104729) % d.total_blocks,
                &mut r,
            );
            assert!(t <= wc);
        }
    }

    #[test]
    fn ssd_much_faster_than_rotating() {
        let hdd = RotatingDisk::testbed();
        let ssd = Ssd::sata();
        // The Sec. VII-D conjecture: worst-case access (which sizes Δd)
        // drops by an order of magnitude or more on flash.
        assert!(ssd.worst_case().as_millis_f64() * 10.0 < hdd.worst_case().as_millis_f64());
    }

    #[test]
    fn transfer_scales_with_size() {
        let ssd = Ssd {
            latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            transfer_bps: 4096 * 1000, // 1000 blocks/s
        };
        let mut r = rng();
        let one = ssd.access_time(BlockRange::new(0, 1), 0, &mut r);
        let ten = ssd.access_time(BlockRange::new(0, 10), 0, &mut r);
        assert_eq!(one, SimDuration::from_millis(1));
        assert_eq!(ten, SimDuration::from_millis(10));
    }
}
