//! A FIFO disk device: serializes requests through one head/channel and
//! reports absolute completion times, which the VMM's IDE device model
//! turns into Δd-delayed guest interrupts.

use crate::block::BlockRange;
use crate::model::AccessModel;
use simkit::rng::SimRng;
use simkit::time::SimTime;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOp {
    /// Read blocks into a buffer.
    Read,
    /// Write blocks from a buffer.
    Write,
}

/// One request presented to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// Operation.
    pub op: DiskOp,
    /// Blocks touched.
    pub range: BlockRange,
}

/// The device: one request at a time, FIFO.
#[derive(Debug)]
pub struct DiskDevice<M> {
    model: M,
    rng: SimRng,
    busy_until: SimTime,
    head: u64,
    completed: u64,
    busy_time_ns: u64,
}

impl<M: AccessModel> DiskDevice<M> {
    /// Creates a device over the given access model and RNG stream.
    pub fn new(model: M, rng: SimRng) -> Self {
        DiskDevice {
            model,
            rng,
            busy_until: SimTime::ZERO,
            head: 0,
            completed: 0,
            busy_time_ns: 0,
        }
    }

    /// Submits a request at `now`; returns its absolute completion time.
    /// Requests queue FIFO behind earlier ones.
    pub fn submit(&mut self, req: DiskRequest, now: SimTime) -> SimTime {
        let start = now.max(self.busy_until);
        let service = self.model.access_time(req.range, self.head, &mut self.rng);
        self.busy_until = start + service;
        self.head = req.range.end().0;
        self.completed += 1;
        self.busy_time_ns += service.as_nanos();
        self.busy_until
    }

    /// When the device becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Requests completed (== submitted; the device never fails).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total busy time accumulated, for utilization accounting.
    pub fn busy_time(&self) -> simkit::time::SimDuration {
        simkit::time::SimDuration::from_nanos(self.busy_time_ns)
    }

    /// The model's worst-case single-request time (sizes Δd).
    pub fn worst_case(&self) -> simkit::time::SimDuration {
        self.model.worst_case()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Ssd;
    use simkit::time::SimDuration;

    fn dev() -> DiskDevice<Ssd> {
        DiskDevice::new(
            Ssd {
                latency: SimDuration::from_millis(1),
                jitter: SimDuration::ZERO,
                transfer_bps: 4096 * 1000,
            },
            SimRng::new(3).stream("d"),
        )
    }

    #[test]
    fn single_request_timing() {
        let mut d = dev();
        let done = d.submit(
            DiskRequest {
                op: DiskOp::Read,
                range: BlockRange::new(0, 1),
            },
            SimTime::from_millis(10),
        );
        // 1 ms latency + 1 ms transfer.
        assert_eq!(done, SimTime::from_millis(12));
        assert_eq!(d.completed(), 1);
    }

    #[test]
    fn fifo_queueing() {
        let mut d = dev();
        let r = DiskRequest {
            op: DiskOp::Read,
            range: BlockRange::new(0, 1),
        };
        let a = d.submit(r, SimTime::ZERO);
        let b = d.submit(r, SimTime::ZERO);
        assert_eq!(a, SimTime::from_millis(2));
        assert_eq!(b, SimTime::from_millis(4), "second waits for first");
    }

    #[test]
    fn idle_gap_resets_queue() {
        let mut d = dev();
        let r = DiskRequest {
            op: DiskOp::Write,
            range: BlockRange::new(0, 1),
        };
        d.submit(r, SimTime::ZERO);
        let late = d.submit(r, SimTime::from_secs(1));
        assert_eq!(late, SimTime::from_secs(1) + SimDuration::from_millis(2));
    }

    #[test]
    fn busy_time_accumulates() {
        let mut d = dev();
        let r = DiskRequest {
            op: DiskOp::Read,
            range: BlockRange::new(0, 1),
        };
        d.submit(r, SimTime::ZERO);
        d.submit(r, SimTime::ZERO);
        assert_eq!(d.busy_time(), SimDuration::from_millis(4));
    }
}
