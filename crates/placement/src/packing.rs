//! Theorem 1 (maximum edge-disjoint triangle packings of K_n, after
//! Horsley) and a practical greedy packer for arbitrary `n` and capacity.

use crate::triangle::{Edge, NodeId, Triangle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// The exact maximum number of pairwise edge-disjoint triangles in K_n
/// (paper Theorem 1, a corollary of Horsley 2011).
///
/// * odd `n`: the largest `k` with `3k <= C(n,2)` and `C(n,2) − 3k ∉ {1,2}`;
/// * even `n`: the largest `k` with `3k <= C(n,2) − n/2`.
///
/// # Examples
///
/// ```
/// use placement::packing::max_triangle_packing;
/// assert_eq!(max_triangle_packing(3), 1);   // one triangle
/// assert_eq!(max_triangle_packing(7), 7);   // Steiner triple system S(2,3,7)
/// assert_eq!(max_triangle_packing(9), 12);  // S(2,3,9)
/// ```
pub fn max_triangle_packing(n: usize) -> usize {
    if n < 3 {
        return 0;
    }
    let pairs = n * (n - 1) / 2;
    if n % 2 == 1 {
        let mut k = pairs / 3;
        while k > 0 && matches!(pairs - 3 * k, 1 | 2) {
            k -= 1;
        }
        k
    } else {
        (pairs - n / 2) / 3
    }
}

/// Number of guests a cloud of `n` nodes can run *without* StopWatch when
/// isolating each guest on its own machine — the baseline Sec. VIII
/// compares against.
pub fn isolation_capacity(n: usize) -> usize {
    n
}

/// Greedy edge-disjoint triangle packing under a per-node capacity.
///
/// Works for any `n` (the Bose construction in [`crate::bose`] needs
/// `n ≡ 3 mod 6`); deterministic for a given `seed`. Uses randomized
/// multi-pass greedy: repeatedly scans candidate triangles in shuffled
/// order, placing each whose three edges are unused and whose nodes all
/// have spare capacity.
///
/// Returns the triangles placed; the result is always a valid placement but
/// only approximates the optimum.
///
/// # Panics
///
/// Panics if `capacity == 0`.
pub fn greedy_packing(n: usize, capacity: usize, seed: u64) -> Vec<Triangle> {
    assert!(capacity > 0, "capacity must be positive");
    if n < 3 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut used: HashSet<Edge> = HashSet::new();
    let mut load = vec![0usize; n];
    let mut placed = Vec::new();

    // Candidate order: all triangles for modest n; node-sampled otherwise.
    if n <= 64 {
        let mut candidates = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                for c in b + 1..n {
                    candidates.push(Triangle::new(NodeId(a), NodeId(b), NodeId(c)));
                }
            }
        }
        // Multiple shuffled passes; later passes can fill gaps opened by
        // capacity interactions.
        for _ in 0..3 {
            shuffle(&mut candidates, &mut rng);
            for &tri in &candidates {
                try_place(tri, capacity, &mut used, &mut load, &mut placed);
            }
        }
    } else {
        // For large n, sample random triangles; expected coverage is high
        // after ~n^2 attempts per pass.
        let attempts = 20 * n * n;
        for _ in 0..attempts {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            let c = rng.random_range(0..n);
            if a == b || b == c || a == c {
                continue;
            }
            let tri = Triangle::new(NodeId(a), NodeId(b), NodeId(c));
            try_place(tri, capacity, &mut used, &mut load, &mut placed);
        }
    }
    placed
}

fn shuffle<T>(xs: &mut [T], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

fn try_place(
    tri: Triangle,
    capacity: usize,
    used: &mut HashSet<Edge>,
    load: &mut [usize],
    placed: &mut Vec<Triangle>,
) -> bool {
    if tri.nodes().iter().any(|nd| load[nd.0] >= capacity) {
        return false;
    }
    if tri.edges().iter().any(|e| used.contains(e)) {
        return false;
    }
    for e in tri.edges() {
        used.insert(e);
    }
    for nd in tri.nodes() {
        load[nd.0] += 1;
    }
    placed.push(tri);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangle::validate_placement;

    #[test]
    fn theorem1_small_values() {
        // C(n,2)/3 with the leave conditions.
        assert_eq!(max_triangle_packing(0), 0);
        assert_eq!(max_triangle_packing(2), 0);
        assert_eq!(max_triangle_packing(3), 1);
        assert_eq!(max_triangle_packing(4), 1); // C=6, minus n/2=2 -> 4/3 -> 1
        assert_eq!(max_triangle_packing(5), 2); // C=10: 3k<=10, leave 10-9=1 bad -> k=2 (leave 4)
        assert_eq!(max_triangle_packing(6), 4); // C=15-3=12 -> 4
        assert_eq!(max_triangle_packing(7), 7); // STS(7)
        assert_eq!(max_triangle_packing(9), 12); // STS(9)
        assert_eq!(max_triangle_packing(13), 26); // STS(13)
    }

    #[test]
    fn theorem1_quadratic_growth() {
        // Θ(n²) guests vs Θ(n) for isolation (the paper's utilization
        // argument).
        let n = 99;
        let k = max_triangle_packing(n);
        assert!(k >= n * (n - 1) / 6 - 2);
        assert!(k > 10 * isolation_capacity(n));
    }

    #[test]
    fn theorem1_leave_conditions() {
        // n=5: C(5,2)=10. k=3 would leave 1 edge (forbidden); k=2 leaves 4.
        assert_eq!(max_triangle_packing(5), 2);
        // n=11: C=55. k=18 leaves 1 (forbidden); k=17 leaves 4.
        assert_eq!(max_triangle_packing(11), 17);
    }

    #[test]
    fn greedy_is_valid_and_dense() {
        for &n in &[7usize, 9, 12, 15, 21] {
            let cap = (n - 1) / 2;
            let placed = greedy_packing(n, cap, 1);
            validate_placement(&placed, n, cap).expect("greedy placement valid");
            let bound = max_triangle_packing(n);
            assert!(
                placed.len() * 10 >= bound * 7,
                "n={n}: greedy {} far below bound {bound}",
                placed.len()
            );
        }
    }

    #[test]
    fn greedy_respects_small_capacity() {
        let placed = greedy_packing(9, 1, 7);
        validate_placement(&placed, 9, 1).expect("valid");
        // With capacity 1 each node appears at most once: at most n/3 VMs.
        assert!(placed.len() <= 3);
        assert!(!placed.is_empty());
    }

    #[test]
    fn greedy_deterministic_per_seed() {
        assert_eq!(greedy_packing(12, 3, 42), greedy_packing(12, 3, 42));
    }

    #[test]
    fn greedy_large_n_sampled_path() {
        let placed = greedy_packing(70, 3, 3);
        validate_placement(&placed, 70, 3).expect("valid");
        assert!(placed.len() > 40, "got {}", placed.len());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn greedy_zero_capacity_panics() {
        greedy_packing(9, 0, 1);
    }
}
