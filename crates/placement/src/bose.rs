//! Bose's Steiner-triple-system construction and the paper's Theorem 2:
//! an efficient, capacity-respecting placement of `Θ(cn)` guest VMs on
//! `n ≡ 3 mod 6` machines with per-machine capacity `c ≤ (n−1)/2`.
//!
//! Nodes are `Q × {0, 1, 2}` for a quasigroup `Q` of order `2v+1`
//! (`n = 6v + 3`). The triangle groups are:
//!
//! * `G_0` — the `2v+1` "vertical" triangles `{(a,0), (a,1), (a,2)}`;
//! * `G_t` (`1 <= t <= v`) — the `n` triangles
//!   `{(a_i, ℓ), (a_j, ℓ), (a_i ∘ a_j, ℓ+1 mod 3)}` with `j = i + t`.
//!
//! All triangles across all groups are pairwise edge-disjoint; `G_0` visits
//! each node once, each full `G_t` visits each node exactly three times.

use crate::quasigroup::Quasigroup;
use crate::triangle::{NodeId, Triangle};

/// The node `(a, ℓ)` of the Bose construction mapped to a flat index.
fn node(a: usize, level: usize, q: usize) -> NodeId {
    debug_assert!(level < 3 && a < q);
    NodeId(level * q + a)
}

/// Parameters of a Bose placement over `n = 6v + 3` machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoseSystem {
    v: usize,
    q: usize, // 2v + 1
}

impl BoseSystem {
    /// Creates the system for a cloud of `n` machines.
    ///
    /// # Errors
    ///
    /// Returns `Err` unless `n ≡ 3 (mod 6)` and `n >= 9` (the construction
    /// needs `v >= 1`).
    pub fn new(n: usize) -> Result<Self, BoseError> {
        if n % 6 != 3 {
            return Err(BoseError::BadModulus { n });
        }
        if n < 9 {
            return Err(BoseError::TooSmall { n });
        }
        let v = (n - 3) / 6;
        Ok(BoseSystem { v, q: 2 * v + 1 })
    }

    /// The number of machines `n = 6v + 3`.
    pub fn n(&self) -> usize {
        3 * self.q
    }

    /// The parameter `v` with `n = 6v + 3`.
    pub fn v(&self) -> usize {
        self.v
    }

    /// The group `G_0`: `n/3` vertical triangles visiting each node once.
    pub fn group_zero(&self) -> Vec<Triangle> {
        (0..self.q)
            .map(|a| Triangle::new(node(a, 0, self.q), node(a, 1, self.q), node(a, 2, self.q)))
            .collect()
    }

    /// The group `G_t` for `1 <= t <= v`: `n` triangles visiting each node
    /// exactly three times.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `1..=v`.
    pub fn group(&self, t: usize) -> Vec<Triangle> {
        assert!(t >= 1 && t <= self.v, "group index must be in 1..=v");
        let g = Quasigroup::new(self.q);
        let mut out = Vec::with_capacity(3 * self.q);
        for level in 0..3 {
            for i in 0..self.q {
                let j = (i + t) % self.q;
                out.push(Triangle::new(
                    node(i, level, self.q),
                    node(j, level, self.q),
                    node(g.mul(i, j), (level + 1) % 3, self.q),
                ));
            }
        }
        out
    }

    /// The `v = (n−3)/6` triangles from `G_v` that visit each node at most
    /// once (used for the `c ≡ 2 mod 3` case of Theorem 2): the paper's
    /// `{(a_i, 0), (a_{i+v}, 0), (a_i ∘ a_{i+v}, 1)}` for `0 <= i <= v−1`.
    pub fn partial_group_v(&self) -> Vec<Triangle> {
        let g = Quasigroup::new(self.q);
        (0..self.v)
            .map(|i| {
                let j = i + self.v;
                Triangle::new(
                    node(i, 0, self.q),
                    node(j, 0, self.q),
                    node(g.mul(i, j), 1, self.q),
                )
            })
            .collect()
    }

    /// Theorem 2's placement for per-machine capacity `c`.
    ///
    /// Places `k` guest VMs where
    /// * `c ≡ 0 or 1 (mod 3)`: `k = cn/3`;
    /// * `c ≡ 2 (mod 3)`: `k = (c−1)n/3 + (n−3)/6`.
    ///
    /// # Errors
    ///
    /// Returns `Err` if `c` is zero or exceeds `(n−1)/2`.
    pub fn theorem2_placement(&self, c: usize) -> Result<Vec<Triangle>, BoseError> {
        let n = self.n();
        if c == 0 || c > (n - 1) / 2 {
            return Err(BoseError::BadCapacity { c, n });
        }
        let mut placement = Vec::new();
        match c % 3 {
            0 => {
                for t in 1..=c / 3 {
                    placement.extend(self.group(t));
                }
            }
            1 => {
                placement.extend(self.group_zero());
                for t in 1..=(c - 1) / 3 {
                    placement.extend(self.group(t));
                }
            }
            _ => {
                placement.extend(self.group_zero());
                for t in 1..=(c - 2) / 3 {
                    placement.extend(self.group(t));
                }
                placement.extend(self.partial_group_v());
            }
        }
        Ok(placement)
    }

    /// The guest count Theorem 2 promises for capacity `c`.
    pub fn theorem2_count(&self, c: usize) -> usize {
        let n = self.n();
        match c % 3 {
            0 | 1 => c * n / 3,
            _ => (c - 1) * n / 3 + (n - 3) / 6,
        }
    }
}

/// Why a Bose construction or placement request is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoseError {
    /// `n` is not ≡ 3 (mod 6).
    BadModulus {
        /// The offered machine count.
        n: usize,
    },
    /// `n < 9`, so `v = 0` and there are no `G_t` groups.
    TooSmall {
        /// The offered machine count.
        n: usize,
    },
    /// Capacity outside `1..=(n−1)/2`.
    BadCapacity {
        /// The requested capacity.
        c: usize,
        /// The machine count.
        n: usize,
    },
}

impl std::fmt::Display for BoseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoseError::BadModulus { n } => {
                write!(f, "bose construction needs n ≡ 3 (mod 6), got {n}")
            }
            BoseError::TooSmall { n } => write!(f, "bose construction needs n >= 9, got {n}"),
            BoseError::BadCapacity { c, n } => {
                write!(f, "capacity {c} outside 1..=(n-1)/2 for n={n}")
            }
        }
    }
}

impl std::error::Error for BoseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangle::validate_placement;
    use std::collections::HashMap;

    #[test]
    fn construction_rejects_bad_n() {
        assert!(BoseSystem::new(10).is_err());
        assert!(BoseSystem::new(3).is_err());
        assert!(BoseSystem::new(9).is_ok());
        assert!(BoseSystem::new(15).is_ok());
        assert!(BoseSystem::new(21).is_ok());
    }

    #[test]
    fn group_sizes_match_paper() {
        let sys = BoseSystem::new(15).unwrap(); // v = 2, q = 5
        assert_eq!(sys.group_zero().len(), 5); // 2v + 1
        assert_eq!(sys.group(1).len(), 15); // n
        assert_eq!(sys.group(2).len(), 15);
        assert_eq!(sys.partial_group_v().len(), 2); // v
    }

    #[test]
    fn all_groups_edge_disjoint() {
        for &n in &[9usize, 15, 21, 27] {
            let sys = BoseSystem::new(n).unwrap();
            let mut all = sys.group_zero();
            for t in 1..=sys.v() {
                all.extend(sys.group(t));
            }
            validate_placement(&all, n, n).expect("groups pairwise edge-disjoint");
        }
    }

    #[test]
    fn group_zero_visits_each_node_once() {
        let sys = BoseSystem::new(15).unwrap();
        let mut count: HashMap<usize, usize> = HashMap::new();
        for tri in sys.group_zero() {
            for nd in tri.nodes() {
                *count.entry(nd.0).or_insert(0) += 1;
            }
        }
        assert_eq!(count.len(), 15);
        assert!(count.values().all(|&c| c == 1));
    }

    #[test]
    fn full_groups_visit_each_node_thrice() {
        let sys = BoseSystem::new(21).unwrap();
        for t in 1..=sys.v() {
            let mut count: HashMap<usize, usize> = HashMap::new();
            for tri in sys.group(t) {
                for nd in tri.nodes() {
                    *count.entry(nd.0).or_insert(0) += 1;
                }
            }
            assert_eq!(count.len(), 21, "G_{t}");
            assert!(count.values().all(|&c| c == 3), "G_{t}: {count:?}");
        }
    }

    #[test]
    fn partial_group_visits_nodes_at_most_once() {
        for &n in &[15usize, 21, 27, 33] {
            let sys = BoseSystem::new(n).unwrap();
            let mut count: HashMap<usize, usize> = HashMap::new();
            for tri in sys.partial_group_v() {
                for nd in tri.nodes() {
                    *count.entry(nd.0).or_insert(0) += 1;
                }
            }
            assert!(count.values().all(|&c| c == 1), "n={n}: {count:?}");
        }
    }

    #[test]
    fn theorem2_counts_and_validity_all_capacity_classes() {
        for &n in &[9usize, 15, 21, 33] {
            let sys = BoseSystem::new(n).unwrap();
            for c in 1..=(n - 1) / 2 {
                let placement = sys.theorem2_placement(c).expect("valid capacity");
                assert_eq!(
                    placement.len(),
                    sys.theorem2_count(c),
                    "n={n} c={c}: count mismatch"
                );
                validate_placement(&placement, n, c).unwrap_or_else(|e| panic!("n={n} c={c}: {e}"));
            }
        }
    }

    #[test]
    fn theorem2_scales_as_cn_over_3() {
        let sys = BoseSystem::new(33).unwrap();
        // c ≡ 0, 1 give exactly cn/3.
        assert_eq!(sys.theorem2_count(3), 33);
        assert_eq!(sys.theorem2_count(4), 44);
        // c ≡ 2 gives (c-1)n/3 + (n-3)/6.
        assert_eq!(sys.theorem2_count(5), 4 * 33 / 3 + 5);
    }

    #[test]
    fn theorem2_beats_isolation() {
        // Θ(cn) vs n: even modest capacity multiplies utilization.
        let sys = BoseSystem::new(21).unwrap();
        let c = 7;
        assert!(sys.theorem2_count(c) > 2 * 21);
    }

    #[test]
    fn theorem2_rejects_bad_capacity() {
        let sys = BoseSystem::new(9).unwrap();
        assert!(sys.theorem2_placement(0).is_err());
        assert!(sys.theorem2_placement(5).is_err()); // (9-1)/2 = 4
        assert!(sys.theorem2_placement(4).is_ok());
    }
}
