//! The operator-facing placement planner: accepts guest VMs one at a time
//! and assigns each a replica triangle satisfying the StopWatch
//! coresidency constraints, using the Theorem 2 schedule when the cloud
//! shape allows it and incremental greedy search otherwise.

use crate::bose::BoseSystem;
use crate::packing::max_triangle_packing;
use crate::triangle::{Edge, NodeId, PlacementError, Triangle};
use std::collections::HashSet;

/// How the planner chooses triangles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Consume the precomputed Theorem 2 (Bose) schedule; requires
    /// `n ≡ 3 mod 6`, `n >= 9`.
    Bose,
    /// Incremental first-fit greedy search; works for any `n >= 3`.
    Greedy,
}

/// An online replica-placement planner for a StopWatch cloud.
///
/// # Examples
///
/// ```
/// use placement::planner::{PlacementPlanner, Strategy};
/// let mut p = PlacementPlanner::new(9, 4, Strategy::Bose).unwrap();
/// let first = p.place_vm().expect("room for at least one VM");
/// assert_eq!(first.nodes().len(), 3);
/// // Fill the cloud: Theorem 2 promises cn/3 = 12 VMs for n=9, c=4.
/// let total = 1 + p.place_all();
/// assert_eq!(total, 12);
/// ```
#[derive(Debug, Clone)]
pub struct PlacementPlanner {
    n: usize,
    capacity: usize,
    used_edges: HashSet<Edge>,
    load: Vec<usize>,
    placed: Vec<Triangle>,
    schedule: Vec<Triangle>, // precomputed (Bose) or empty (greedy)
    next_scheduled: usize,
    strategy: Strategy,
}

impl PlacementPlanner {
    /// Creates a planner for `n` machines of per-machine capacity
    /// `capacity` guests.
    ///
    /// # Errors
    ///
    /// Returns an error string when the strategy's preconditions fail
    /// (Bose needs `n ≡ 3 mod 6`, `n >= 9`, `1 <= capacity <= (n-1)/2`;
    /// greedy needs `n >= 3`, `capacity >= 1`).
    pub fn new(n: usize, capacity: usize, strategy: Strategy) -> Result<Self, String> {
        if capacity == 0 {
            return Err("capacity must be at least 1".into());
        }
        let schedule = match strategy {
            Strategy::Bose => {
                let sys = BoseSystem::new(n).map_err(|e| e.to_string())?;
                sys.theorem2_placement(capacity)
                    .map_err(|e| e.to_string())?
            }
            Strategy::Greedy => {
                if n < 3 {
                    return Err("need at least 3 machines".into());
                }
                Vec::new()
            }
        };
        Ok(PlacementPlanner {
            n,
            capacity,
            used_edges: HashSet::new(),
            load: vec![0; n],
            placed: Vec::new(),
            schedule,
            next_scheduled: 0,
            strategy,
        })
    }

    /// Machines in the cloud.
    pub fn machines(&self) -> usize {
        self.n
    }

    /// Per-machine guest capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// VMs placed so far.
    pub fn placed(&self) -> &[Triangle] {
        &self.placed
    }

    /// Places the next guest VM, returning its replica triangle, or `None`
    /// when no valid placement remains.
    pub fn place_vm(&mut self) -> Option<Triangle> {
        let tri = match self.strategy {
            Strategy::Bose => {
                let tri = *self.schedule.get(self.next_scheduled)?;
                self.next_scheduled += 1;
                tri
            }
            Strategy::Greedy => self.find_greedy()?,
        };
        debug_assert!(self.admissible(&tri), "planner produced invalid triangle");
        for e in tri.edges() {
            self.used_edges.insert(e);
        }
        for nd in tri.nodes() {
            self.load[nd.0] += 1;
        }
        self.placed.push(tri);
        Some(tri)
    }

    /// Places VMs until the cloud is full; returns how many were placed by
    /// this call.
    pub fn place_all(&mut self) -> usize {
        let mut placed = 0;
        while self.place_vm().is_some() {
            placed += 1;
        }
        placed
    }

    fn admissible(&self, tri: &Triangle) -> bool {
        tri.nodes().iter().all(|nd| self.load[nd.0] < self.capacity)
            && tri.edges().iter().all(|e| !self.used_edges.contains(e))
    }

    fn find_greedy(&self) -> Option<Triangle> {
        // First-fit over node triples, preferring lightly loaded nodes: sort
        // node ids by load, then scan triples in that order.
        let mut order: Vec<usize> = (0..self.n).collect();
        order.sort_by_key(|&i| (self.load[i], i));
        let avail: Vec<usize> = order
            .into_iter()
            .filter(|&i| self.load[i] < self.capacity)
            .collect();
        for ai in 0..avail.len() {
            for bi in ai + 1..avail.len() {
                let (a, b) = (avail[ai], avail[bi]);
                if self.used_edges.contains(&Edge::new(NodeId(a), NodeId(b))) {
                    continue;
                }
                for &c in avail.iter().skip(bi + 1) {
                    let tri = Triangle::new(NodeId(a), NodeId(b), NodeId(c));
                    if self.admissible(&tri) {
                        return Some(tri);
                    }
                }
            }
        }
        None
    }

    /// Fraction of machine slots occupied: `3·VMs / (n·capacity)`.
    pub fn utilization(&self) -> f64 {
        3.0 * self.placed.len() as f64 / (self.n * self.capacity) as f64
    }

    /// Ratio of guests hosted versus the "one guest per isolated machine"
    /// baseline the paper compares against (Sec. VIII).
    pub fn speedup_vs_isolation(&self) -> f64 {
        self.placed.len() as f64 / self.n as f64
    }

    /// The Theorem 1 upper bound on VM count for this cloud, ignoring
    /// capacity.
    pub fn packing_bound(&self) -> usize {
        max_triangle_packing(self.n)
    }

    /// Re-validates the full current placement (defense in depth; the
    /// planner maintains the invariants incrementally).
    ///
    /// # Errors
    ///
    /// Returns the first constraint violation, if any.
    pub fn validate(&self) -> Result<(), PlacementError> {
        crate::triangle::validate_placement(&self.placed, self.n, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bose_planner_reaches_theorem2_count() {
        for (n, c) in [(9usize, 4usize), (15, 7), (21, 3), (21, 10)] {
            let mut p = PlacementPlanner::new(n, c, Strategy::Bose).unwrap();
            let placed = p.place_all();
            let sys = BoseSystem::new(n).unwrap();
            assert_eq!(placed, sys.theorem2_count(c), "n={n} c={c}");
            p.validate().expect("valid");
        }
    }

    #[test]
    fn greedy_planner_works_for_any_n() {
        for n in [5usize, 8, 10, 13, 20] {
            let c = ((n - 1) / 2).max(1);
            let mut p = PlacementPlanner::new(n, c, Strategy::Greedy).unwrap();
            let placed = p.place_all();
            assert!(placed > 0, "n={n}");
            p.validate().expect("valid");
        }
    }

    #[test]
    fn greedy_close_to_bose_on_bose_shapes() {
        let n = 15;
        let c = 7;
        let mut bose = PlacementPlanner::new(n, c, Strategy::Bose).unwrap();
        let mut greedy = PlacementPlanner::new(n, c, Strategy::Greedy).unwrap();
        let kb = bose.place_all();
        let kg = greedy.place_all();
        assert!(kg * 10 >= kb * 6, "greedy {kg} below 60% of bose {kb}");
    }

    #[test]
    fn utilization_math() {
        let mut p = PlacementPlanner::new(9, 4, Strategy::Bose).unwrap();
        p.place_all();
        // 12 VMs * 3 replicas / (9 * 4) slots = 1.0
        assert!((p.utilization() - 1.0).abs() < 1e-12);
        assert!((p.speedup_vs_isolation() - 12.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn place_vm_is_incremental() {
        let mut p = PlacementPlanner::new(9, 2, Strategy::Greedy).unwrap();
        let mut seen = Vec::new();
        while let Some(t) = p.place_vm() {
            seen.push(t);
            p.validate().expect("valid after every placement");
        }
        assert_eq!(seen.len(), p.placed().len());
    }

    #[test]
    fn capacity_one_limits_to_disjoint_triangles() {
        let mut p = PlacementPlanner::new(9, 1, Strategy::Greedy).unwrap();
        let placed = p.place_all();
        assert_eq!(placed, 3); // 9 nodes / 3 per triangle
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(PlacementPlanner::new(10, 2, Strategy::Bose).is_err());
        assert!(PlacementPlanner::new(9, 0, Strategy::Greedy).is_err());
        assert!(PlacementPlanner::new(2, 1, Strategy::Greedy).is_err());
        assert!(PlacementPlanner::new(9, 5, Strategy::Bose).is_err());
    }

    #[test]
    fn packing_bound_exposed() {
        let p = PlacementPlanner::new(9, 4, Strategy::Bose).unwrap();
        assert_eq!(p.packing_bound(), 12);
    }
}
