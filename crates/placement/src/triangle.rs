//! Nodes, triangles, and placement validity.
//!
//! StopWatch's placement constraint (paper Sec. VIII): the three replicas of
//! each guest VM form a *triangle* in the complete graph K_n over cloud
//! machines, and the triangles of distinct VMs must be pairwise
//! **edge-disjoint** — two VMs may share at most one machine, so each
//! replica coresides with nonoverlapping sets of (replicas of) other VMs.

use std::collections::HashMap;
use std::fmt;

/// A cloud machine, identified by index in `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An unordered pair of distinct nodes (an edge of K_n).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge(NodeId, NodeId);

impl Edge {
    /// Creates the edge `{a, b}` (stored in sorted order).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "self-loop is not an edge");
        if a < b {
            Edge(a, b)
        } else {
            Edge(b, a)
        }
    }

    /// The two endpoints in sorted order.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.0, self.1)
    }
}

/// The placement of one guest VM's three replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triangle {
    nodes: [NodeId; 3],
}

impl Triangle {
    /// Creates a triangle over three distinct nodes (stored sorted).
    ///
    /// # Panics
    ///
    /// Panics if any two nodes coincide.
    pub fn new(a: NodeId, b: NodeId, c: NodeId) -> Self {
        assert!(
            a != b && b != c && a != c,
            "triangle nodes must be distinct"
        );
        let mut nodes = [a, b, c];
        nodes.sort_unstable();
        Triangle { nodes }
    }

    /// The three member nodes, sorted.
    pub fn nodes(&self) -> [NodeId; 3] {
        self.nodes
    }

    /// The three edges of the triangle.
    pub fn edges(&self) -> [Edge; 3] {
        let [a, b, c] = self.nodes;
        [Edge::new(a, b), Edge::new(b, c), Edge::new(a, c)]
    }

    /// `true` when the node is one of the triangle's corners.
    pub fn contains(&self, n: NodeId) -> bool {
        self.nodes.contains(&n)
    }

    /// `true` when this triangle shares an edge (two nodes) with `other`.
    pub fn shares_edge(&self, other: &Triangle) -> bool {
        let shared = self
            .nodes
            .iter()
            .filter(|n| other.nodes.contains(n))
            .count();
        shared >= 2
    }
}

impl fmt::Display for Triangle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}, {}, {}}}",
            self.nodes[0], self.nodes[1], self.nodes[2]
        )
    }
}

/// Why a proposed placement violates the StopWatch constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A node index is `>= n`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The number of machines.
        n: usize,
    },
    /// Two VM triangles share an edge, i.e. two machines host replicas of
    /// both VMs.
    SharedEdge {
        /// Index of the first VM in the placement list.
        first: usize,
        /// Index of the second VM in the placement list.
        second: usize,
        /// The shared machine pair.
        edge: Edge,
    },
    /// A machine hosts more replicas than its capacity.
    OverCapacity {
        /// The overloaded machine.
        node: NodeId,
        /// Replicas placed there.
        load: usize,
        /// The per-machine capacity.
        capacity: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for {n} machines")
            }
            PlacementError::SharedEdge {
                first,
                second,
                edge,
            } => {
                let (a, b) = edge.endpoints();
                write!(
                    f,
                    "VMs #{first} and #{second} share machine pair ({a}, {b})"
                )
            }
            PlacementError::OverCapacity {
                node,
                load,
                capacity,
            } => write!(
                f,
                "machine {node} hosts {load} replicas, capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Checks a full placement against the StopWatch constraints: nodes in
/// range, pairwise edge-disjoint triangles, and per-machine capacity.
///
/// # Errors
///
/// Returns the first violation found.
///
/// # Examples
///
/// ```
/// use placement::triangle::{validate_placement, NodeId, Triangle};
/// let t = |a, b, c| Triangle::new(NodeId(a), NodeId(b), NodeId(c));
/// // Sharing one machine is fine; sharing two is not.
/// assert!(validate_placement(&[t(0, 1, 2), t(0, 3, 4)], 5, 2).is_ok());
/// assert!(validate_placement(&[t(0, 1, 2), t(0, 1, 3)], 5, 2).is_err());
/// ```
pub fn validate_placement(
    placement: &[Triangle],
    n: usize,
    capacity: usize,
) -> Result<(), PlacementError> {
    let mut edge_owner: HashMap<Edge, usize> = HashMap::new();
    let mut load: HashMap<NodeId, usize> = HashMap::new();
    for (idx, tri) in placement.iter().enumerate() {
        for node in tri.nodes() {
            if node.0 >= n {
                return Err(PlacementError::NodeOutOfRange { node, n });
            }
            let l = load.entry(node).or_insert(0);
            *l += 1;
            if *l > capacity {
                return Err(PlacementError::OverCapacity {
                    node,
                    load: *l,
                    capacity,
                });
            }
        }
        for e in tri.edges() {
            if let Some(&first) = edge_owner.get(&e) {
                return Err(PlacementError::SharedEdge {
                    first,
                    second: idx,
                    edge: e,
                });
            }
            edge_owner.insert(e, idx);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(a: usize, b: usize, c: usize) -> Triangle {
        Triangle::new(NodeId(a), NodeId(b), NodeId(c))
    }

    #[test]
    fn triangle_normalizes_order() {
        assert_eq!(t(3, 1, 2), t(1, 2, 3));
        assert_eq!(t(3, 1, 2).nodes(), [NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn degenerate_triangle_panics() {
        t(1, 1, 2);
    }

    #[test]
    fn edges_are_the_three_pairs() {
        let edges = t(0, 1, 2).edges();
        assert!(edges.contains(&Edge::new(NodeId(0), NodeId(1))));
        assert!(edges.contains(&Edge::new(NodeId(1), NodeId(2))));
        assert!(edges.contains(&Edge::new(NodeId(0), NodeId(2))));
    }

    #[test]
    fn shares_edge_semantics() {
        assert!(t(0, 1, 2).shares_edge(&t(0, 1, 3)));
        assert!(!t(0, 1, 2).shares_edge(&t(0, 3, 4)));
        assert!(t(0, 1, 2).shares_edge(&t(0, 1, 2)));
    }

    #[test]
    fn validate_catches_shared_edge() {
        let err = validate_placement(&[t(0, 1, 2), t(1, 2, 3)], 4, 4).unwrap_err();
        match err {
            PlacementError::SharedEdge { first, second, .. } => {
                assert_eq!((first, second), (0, 1));
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn validate_catches_capacity() {
        // Node 0 used twice with capacity 1.
        let err = validate_placement(&[t(0, 1, 2), t(0, 3, 4)], 5, 1).unwrap_err();
        assert!(matches!(err, PlacementError::OverCapacity { node, .. } if node == NodeId(0)));
    }

    #[test]
    fn validate_catches_out_of_range() {
        let err = validate_placement(&[t(0, 1, 9)], 5, 3).unwrap_err();
        assert!(matches!(err, PlacementError::NodeOutOfRange { node, .. } if node == NodeId(9)));
    }

    #[test]
    fn empty_placement_is_valid() {
        assert!(validate_placement(&[], 3, 1).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let err = validate_placement(&[t(0, 1, 2), t(0, 1, 3)], 5, 2).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("share machine pair"), "{msg}");
    }
}
