//! # placement — replica placement under StopWatch's coresidency constraints
//!
//! Paper Sec. VIII: the three replicas of each guest VM must coreside with
//! nonoverlapping sets of (replicas of) other VMs. Viewing machines as the
//! vertices of K_n, each VM is a triangle and distinct VMs' triangles must
//! be pairwise edge-disjoint. This crate provides:
//!
//! * [`triangle`] — nodes, edges, triangles, and placement validation;
//! * [`packing`] — Theorem 1's exact maximum packing size (after Horsley)
//!   plus a randomized greedy packer for arbitrary cloud shapes;
//! * [`quasigroup`] — idempotent commutative quasigroups of odd order;
//! * [`bose`] — Bose's Steiner-triple-system construction and Theorem 2's
//!   capacity-constrained `Θ(cn)` placement for `n ≡ 3 (mod 6)`;
//! * [`planner`] — an online [`planner::PlacementPlanner`] for operators.
//!
//! # Examples
//!
//! ```
//! use placement::prelude::*;
//!
//! // A 15-machine cloud, 7 guests per machine: Theorem 2 (c ≡ 1 mod 3)
//! // fills it with cn/3 = 35 VMs, 105 replicas total.
//! let mut planner = PlacementPlanner::new(15, 7, Strategy::Bose).unwrap();
//! let vms = planner.place_all();
//! assert_eq!(vms, 35);
//! planner.validate().unwrap();
//! // Versus 15 VMs if each guest ran alone on one machine.
//! assert!(planner.speedup_vs_isolation() > 2.0);
//! ```

pub mod bose;
pub mod packing;
pub mod planner;
pub mod quasigroup;
pub mod triangle;

/// One-line import for the common types.
pub mod prelude {
    pub use crate::bose::BoseSystem;
    pub use crate::packing::{greedy_packing, isolation_capacity, max_triangle_packing};
    pub use crate::planner::{PlacementPlanner, Strategy};
    pub use crate::quasigroup::Quasigroup;
    pub use crate::triangle::{validate_placement, NodeId, PlacementError, Triangle};
}
