//! Idempotent commutative quasigroups of odd order — the algebraic
//! ingredient of Bose's Steiner-triple-system construction (paper
//! Theorem 2, following Lindner & Rodger).
//!
//! For odd `q`, the operation `a ∘ b = ((a + b) · (q+1)/2) mod q` yields an
//! idempotent commutative quasigroup on `Z_q`: its multiplication table is a
//! symmetric Latin square with `i ∘ i = i` on the diagonal.

/// An idempotent commutative quasigroup `(Z_q, ∘)` of odd order.
///
/// # Examples
///
/// ```
/// use placement::quasigroup::Quasigroup;
/// let q = Quasigroup::new(5);
/// assert_eq!(q.mul(2, 2), 2);          // idempotent
/// assert_eq!(q.mul(1, 4), q.mul(4, 1)); // commutative
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quasigroup {
    order: usize,
    half: usize, // (q+1)/2, the multiplicative inverse of 2 mod q
}

impl Quasigroup {
    /// Creates the quasigroup of odd order `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is even or zero.
    pub fn new(order: usize) -> Self {
        assert!(
            order % 2 == 1 && order > 0,
            "order must be odd and positive"
        );
        Quasigroup {
            order,
            half: order.div_ceil(2),
        }
    }

    /// The order `q`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The product `a ∘ b`.
    ///
    /// # Panics
    ///
    /// Panics if an operand is out of `0..q`.
    pub fn mul(&self, a: usize, b: usize) -> usize {
        assert!(a < self.order && b < self.order, "operand out of range");
        (a + b) * self.half % self.order
    }

    /// Verifies the three defining laws exhaustively; used in tests and by
    /// callers that build placements from untrusted orders.
    ///
    /// Checks: idempotency (`a∘a = a`), commutativity, and the Latin-square
    /// property (every element appears exactly once in each row).
    pub fn is_valid(&self) -> bool {
        let q = self.order;
        for a in 0..q {
            if self.mul(a, a) != a {
                return false;
            }
            let mut seen = vec![false; q];
            for b in 0..q {
                if self.mul(a, b) != self.mul(b, a) {
                    return false;
                }
                let v = self.mul(a, b);
                if seen[v] {
                    return false;
                }
                seen[v] = true;
            }
            if seen.iter().any(|s| !s) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_up_to_31_are_valid() {
        for q in (1..=31).step_by(2) {
            assert!(Quasigroup::new(q).is_valid(), "order {q}");
        }
    }

    #[test]
    fn known_table_order_3() {
        // (a+b)*2 mod 3: 0∘1 = 2, 0∘2 = 4 mod 3 = 1, 1∘2 = 6 mod 3 = 0.
        let q = Quasigroup::new(3);
        assert_eq!(q.mul(0, 1), 2);
        assert_eq!(q.mul(0, 2), 1);
        assert_eq!(q.mul(1, 2), 0);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_order_panics() {
        Quasigroup::new(4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_operand_panics() {
        Quasigroup::new(5).mul(5, 0);
    }

    #[test]
    fn half_is_inverse_of_two() {
        for q in (3..=21).step_by(2) {
            let g = Quasigroup::new(q);
            assert_eq!(2 * g.half % q, 1, "order {q}");
        }
    }
}
