//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the small API surface it uses from `rand` 0.9 is reimplemented here:
//! [`Rng::random`], [`Rng::random_range`], [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — not the upstream ChaCha12 `StdRng`, but deterministic,
//! well-distributed, and more than adequate for simulation draws. Streams
//! are stable across runs and platforms; they are **not** stable across
//! swaps between this shim and the real crate.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.random::<u64>(), b.random::<u64>());
//! let x: f64 = a.random();
//! assert!((0.0..1.0).contains(&x));
//! assert!((3..9).contains(&a.random_range(3u64..9)));
//! ```

use std::ops::{Range, RangeInclusive};

/// Types that can be drawn from the "standard" distribution of a generator:
/// full-range integers, and floats uniform in `[0, 1)`.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a generator can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw in `[0, span)` via 128-bit multiply-shift.
fn bounded(rng_word: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng_word) * u128::from(span)) >> 64) as u64
}

impl SampleRange<u64> for Range<u64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end - self.start;
        self.start + bounded(rng.next_u64(), span)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + bounded(rng.next_u64(), hi - lo + 1)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + bounded(rng.next_u64(), span) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + bounded(rng.next_u64(), (hi - lo + 1) as u64) as usize
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// The user-facing generator trait: raw words plus typed draws.
pub trait Rng {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let xc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen_lo = false;
        for _ in 0..10_000 {
            let x = r.random_range(10u64..13);
            assert!((10..13).contains(&x));
            seen_lo |= x == 10;
            let y = r.random_range(0usize..=2);
            assert!(y <= 2);
            let z = r.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
        assert!(seen_lo, "lower bound never drawn");
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut r = StdRng::seed_from_u64(5);
        // Must not overflow the span computation.
        let _ = r.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut r = StdRng::seed_from_u64(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
