//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! This workspace builds without crates.io access, so the subset of the
//! criterion API its benches use is reimplemented here: [`Criterion`],
//! [`Bencher::iter`], benchmark groups with [`BenchmarkGroup::sample_size`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Statistics are
//! deliberately simple — each bench runs `sample_size` timed iterations
//! after one warm-up and reports mean/min/max to stdout. There is no
//! HTML report, outlier analysis, or regression detection.

use std::time::{Duration, Instant};

/// Per-bench timing driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration outside the measurement.
        let _ = routine();
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.results.push(start.elapsed());
            drop(out);
        }
    }
}

fn report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("bench {name}: no samples");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().unwrap();
    let max = results.iter().max().unwrap();
    println!(
        "bench {name}: mean {mean:?} min {min:?} max {max:?} (n={})",
        results.len()
    );
}

/// A named group of benches sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one bench in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b.results);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The top-level bench driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Runs one standalone bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.default_samples,
            results: Vec::new(),
        };
        f(&mut b);
        report(name, &b.results);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            samples,
        }
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut count = 0u32;
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        // 5 timed + 1 warm-up.
        assert_eq!(count, 6);
    }
}
