//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds without crates.io access, so the subset of the
//! proptest API its property tests use is reimplemented here: the
//! [`proptest!`] macro, range/tuple/vec/[`any`] strategies,
//! [`ProptestConfig::with_cases`], and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * cases are drawn from a generator seeded by the **test function name**,
//!   so every run of a given test exercises the same inputs (fully
//!   deterministic CI, no persistence files);
//! * there is no shrinking — a failing case panics with the usual assert
//!   message, and the inputs are recoverable from the deterministic stream.

use std::ops::{Range, RangeInclusive};

/// Draw source for strategies: SplitMix64 over a name-derived seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the deterministic generator for one named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, mixed once.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn bounded(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// A value generator. Upstream proptest separates strategies from value
/// trees (for shrinking); without shrinking a strategy is just a sampler.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded(self.end - self.start)
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded(u64::from(self.end - self.start)) as u32
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded((self.end - self.start) as u64) as usize
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.bounded(hi - lo + 1)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)`: vectors with lengths drawn from the range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (the subset the macro honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Mirror of upstream's `prop` module path (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]` that draws `config.cases` input tuples from a name-seeded
/// generator and runs the body for each.
#[macro_export]
macro_rules! proptest {
    (@config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_in_bounds(x in 1u64..10, y in 0.25f64..0.75, n in 2usize..5) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((2..5).contains(&n));
        }

        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec(any::<bool>(), 1..7)) {
            prop_assert!((1..7).contains(&v.len()));
        }

        #[test]
        fn tuples_compose(pair in (1u64..4, 0.0f64..1.0)) {
            prop_assert!(pair.0 >= 1 && pair.1 < 1.0);
        }
    }

    #[test]
    fn name_seeding_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("t");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("t");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("u");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
