//! The deterministic per-host vCPU scheduler.
//!
//! Every physical host multiplexes its guest slots over one (modelled)
//! core with round-robin timeslices, the way hypercraft's per-CPU
//! scheduler does: a vCPU that becomes runnable (here: a virtual timer
//! fires for its guest) is appended to the tail of the run queue and is
//! dispatched only after every currently-busy co-resident vCPU has run a
//! slice. The wait it accrues is the **scheduler-beat timing channel**:
//! on an unprotected host the guest's timer interrupt lands
//! `slice x busy co-residents` late, so a co-resident's secret-dependent
//! CPU bursts are readable from the guest's own timeslice jitter.
//!
//! Two hypercraft idioms are modelled explicitly:
//!
//! * `switch_vm_timer` — the dispatch point charges the outgoing slice
//!   and re-arms the next preemption boundary; here that is
//!   [`VcpuScheduler::dispatch_delay`] (on a wake-up) and
//!   [`VcpuScheduler::tick`] (the periodic host scheduling tick the
//!   cloud's pacing heartbeat drives).
//! * `htimedelta` — the per-vCPU sum of time stolen by co-residents,
//!   hidden from the guest's own clocks. [`VcpuScheduler::htimedelta`]
//!   accumulates exactly that; under StopWatch it never reaches the
//!   guest (fires are delivered at the replica median of
//!   deadline-plus-Δt proposals), under Baseline it *is* the leak.
//!
//! Everything here is a pure function of the call sequence — no physical
//! clocks, no randomness — so replicas fed the same event order account
//! identically and the scheduler itself cannot break determinism.

use simkit::time::VirtOffset;
use std::collections::BTreeMap;

/// Deterministic round-robin vCPU scheduler state for one host.
#[derive(Debug, Clone)]
pub struct VcpuScheduler {
    slice: VirtOffset,
    cursor: usize,
    slices_granted: u64,
    preemptions: u64,
    context_switches: u64,
    steal_ns: BTreeMap<usize, u64>,
}

impl VcpuScheduler {
    /// A scheduler granting `slice`-long timeslices. Panics on a zero
    /// slice — a zero-length quantum would make the run queue spin
    /// without advancing accounting.
    pub fn new(slice: VirtOffset) -> Self {
        assert!(slice.as_nanos() > 0, "vCPU timeslice must be positive");
        VcpuScheduler {
            slice,
            cursor: 0,
            slices_granted: 0,
            preemptions: 0,
            context_switches: 0,
            steal_ns: BTreeMap::new(),
        }
    }

    /// The configured timeslice.
    pub fn slice(&self) -> VirtOffset {
        self.slice
    }

    /// A vCPU of `slot` became runnable (its guest's virtual timer
    /// elapsed). It joins the tail of the run queue behind every busy
    /// co-resident vCPU in `busy` (its own entry is ignored: the waking
    /// vCPU cannot queue behind itself), each of which runs one slice
    /// before the waker is dispatched — so the returned dispatch delay is
    /// `slice x busy co-residents`. The delay is charged to the slot's
    /// [`VcpuScheduler::htimedelta`].
    pub fn dispatch_delay(&mut self, slot: usize, busy: &[usize]) -> VirtOffset {
        let ahead = busy.iter().filter(|&&b| b != slot).count() as u64;
        self.slices_granted += 1 + ahead;
        self.context_switches += ahead;
        if ahead > 0 {
            self.preemptions += 1;
            self.cursor = slot;
        }
        let delay_ns = self.slice.as_nanos().saturating_mul(ahead);
        *self.steal_ns.entry(slot).or_insert(0) += delay_ns;
        VirtOffset::from_nanos(delay_ns)
    }

    /// The periodic host scheduling tick (driven by the cloud's pacing
    /// heartbeat): rotates the run-queue cursor past the next busy slot
    /// and accounts the slice it consumed. Pure bookkeeping — delivery
    /// times are agreed elsewhere — but it keeps `slices_granted` /
    /// `context_switches` honest between wake-ups.
    pub fn tick(&mut self, busy: &[usize]) {
        let Some(&next) = busy
            .iter()
            .find(|&&b| b >= self.cursor)
            .or_else(|| busy.first())
        else {
            return;
        };
        if next != self.cursor {
            self.context_switches += 1;
        }
        self.cursor = next + 1;
        self.slices_granted += 1;
    }

    /// Total timeslices handed out (wake-up dispatches plus ticks).
    pub fn slices_granted(&self) -> u64 {
        self.slices_granted
    }

    /// Wake-ups that found at least one busy co-resident ahead of them.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Run-queue rotations that switched away from the current vCPU.
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// Accumulated nanoseconds stolen from `slot` by co-resident slices —
    /// hypercraft's `htimedelta`, the quantity StopWatch keeps out of
    /// every guest-visible clock and interrupt timestamp.
    pub fn htimedelta(&self, slot: usize) -> u64 {
        self.steal_ns.get(&slot).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> VcpuScheduler {
        VcpuScheduler::new(VirtOffset::from_millis(2))
    }

    #[test]
    fn idle_host_dispatches_immediately() {
        let mut s = sched();
        assert_eq!(s.dispatch_delay(0, &[]).as_nanos(), 0);
        assert_eq!(s.preemptions(), 0);
        assert_eq!(s.slices_granted(), 1);
        assert_eq!(s.htimedelta(0), 0);
    }

    #[test]
    fn each_busy_coresident_costs_one_slice() {
        let mut s = sched();
        let d = s.dispatch_delay(0, &[1, 2]);
        assert_eq!(d.as_nanos(), 2 * 2_000_000);
        assert_eq!(s.preemptions(), 1);
        assert_eq!(s.context_switches(), 2);
        assert_eq!(s.slices_granted(), 3);
        assert_eq!(s.htimedelta(0), 4_000_000);
    }

    #[test]
    fn waker_never_queues_behind_itself() {
        let mut s = sched();
        let d = s.dispatch_delay(1, &[1]);
        assert_eq!(d.as_nanos(), 0);
        assert_eq!(s.preemptions(), 0);
    }

    #[test]
    fn htimedelta_accumulates_per_slot() {
        let mut s = sched();
        s.dispatch_delay(0, &[1]);
        s.dispatch_delay(0, &[1, 2]);
        s.dispatch_delay(2, &[0]);
        assert_eq!(s.htimedelta(0), 3 * 2_000_000);
        assert_eq!(s.htimedelta(2), 2_000_000);
        assert_eq!(s.htimedelta(1), 0);
    }

    #[test]
    fn accounting_is_a_pure_function_of_the_call_sequence() {
        let run = || {
            let mut s = sched();
            s.tick(&[0, 2]);
            s.dispatch_delay(1, &[0, 2]);
            s.tick(&[2]);
            s.tick(&[]);
            (
                s.slices_granted(),
                s.preemptions(),
                s.context_switches(),
                s.htimedelta(1),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tick_rotates_past_busy_slots_only() {
        let mut s = sched();
        s.tick(&[]);
        assert_eq!(s.slices_granted(), 0, "idle tick grants nothing");
        s.tick(&[1, 3]);
        s.tick(&[1, 3]);
        assert_eq!(s.slices_granted(), 2);
        assert!(s.context_switches() >= 1);
    }

    #[test]
    #[should_panic(expected = "timeslice must be positive")]
    fn zero_slice_is_rejected() {
        let _ = VcpuScheduler::new(VirtOffset::from_nanos(0));
    }
}
