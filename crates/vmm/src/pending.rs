//! Struct-of-arrays storage for the unified channel core's pending table.
//!
//! Every timing channel's in-flight events share one table (see
//! [`crate::channel`]). The agreement hot path touches it in two very
//! different ways:
//!
//! * **Scans** — `next_wake` / `next_due_injection` walk every live entry
//!   after nearly every event, reading only `(injection branch, delivery
//!   virt, kind, id)`. Those four live in dense parallel arrays here, so
//!   the walk is a branch-light pass over a few cache lines instead of a
//!   pointer chase through a `BTreeMap` of payload-sized nodes.
//! * **Point updates** — opening an entry, pushing a proposal, fixing a
//!   delivery, injecting. An `FxHashMap` keyed by `(kind, seq)` resolves
//!   to a row index; freed rows are recycled through a free list, so a
//!   steady-state run allocates nothing per event.
//!
//! Proposal buffers are **interned**: all rows share one arena, each row
//! owning a fixed-stride segment sized to the replica count, so a
//! proposal push is a bounds-checked store — no per-entry `Vec`. The
//! median is selected in place over the row's segment when the set
//! completes.
//!
//! The injection branch of a fixed delivery — `exit_ceil(instr_for(d))`,
//! two float operations — is computed **once**, when the delivery is
//! fixed, and cached in the `inj_branch` column. The slot's clock and
//! exit quantum never change after construction, so the cache cannot go
//! stale; the scans that used to recompute it per entry per call now
//! compare cached integers.

use crate::channel::ChannelKind;
use netsim::packet::Packet;
use simkit::fxhash::FxHashMap;
use simkit::time::{VirtNanos, VirtOffset};
use storage::block::BlockRange;
use storage::device::DiskOp;

/// What a pending channel event delivers when it is injected. The
/// agreement machinery is payload-agnostic; only injection dispatches on
/// the concrete content.
#[derive(Debug, Clone)]
pub(crate) enum ChannelPayload {
    /// A hidden inbound packet.
    Net {
        /// The packet, hidden from the guest until injection.
        packet: Packet,
    },
    /// A shared-LLC probe awaiting its agreed readout.
    Cache {
        set: u64,
        tag: u64,
        issue_virt: VirtNanos,
    },
    /// A disk operation; `data` fills when the host transfer finishes.
    Disk {
        op: DiskOp,
        range: BlockRange,
        issue_virt: VirtNanos,
        data: Option<Vec<u64>>,
    },
    /// A guest-programmed virtual timer awaiting its agreed fire time.
    Timer {
        timer_id: u64,
        deadline: VirtNanos,
        period: Option<VirtOffset>,
    },
}

impl ChannelPayload {
    /// `true` when the payload's data is in the hidden buffer and the
    /// interrupt may be injected (always, except disk ops still in
    /// flight).
    pub(crate) fn ready(&self) -> bool {
        match self {
            ChannelPayload::Disk { data, .. } => data.is_some(),
            _ => true,
        }
    }
}

/// Dense row handle into the table (stable until the row is removed).
pub(crate) type Row = u32;

/// The struct-of-arrays pending table of one guest slot.
#[derive(Debug, Default)]
pub(crate) struct PendingTable {
    /// `(kind id, seq)` → row.
    index: FxHashMap<(u8, u64), Row>,
    /// Recycled rows.
    free: Vec<Row>,
    live: usize,
    // ---- hot columns (scanned) ----
    keys: Vec<(ChannelKind, u64)>,
    deliver: Vec<Option<VirtNanos>>,
    /// Cached injection branch; meaningful iff `deliver` is `Some`.
    inj_branch: Vec<u64>,
    ready: Vec<bool>,
    // ---- agreement columns ----
    needed: Vec<u16>,
    prop_len: Vec<u16>,
    /// Interned proposal buffers: row `r` owns
    /// `props[r * stride .. r * stride + prop_len[r]]`.
    props: Vec<VirtNanos>,
    /// Fixed proposal capacity per row (the slot's replica count; 1 for
    /// local arms). Set on first insert.
    stride: usize,
    // ---- cold column (touched at injection / data arrival) ----
    payload: Vec<Option<ChannelPayload>>,
}

impl PendingTable {
    pub fn len(&self) -> usize {
        self.live
    }

    /// Live `(kind, seq, needed, proposals so far)` rows — test/debug aid.
    #[cfg(test)]
    pub fn snapshot(&self) -> Vec<(ChannelKind, u64, usize, usize)> {
        let mut rows: Vec<_> = self
            .index
            .values()
            .map(|&r| {
                let (kind, seq) = self.keys[r as usize];
                (
                    kind,
                    seq,
                    self.needed[r as usize] as usize,
                    self.prop_len[r as usize] as usize,
                )
            })
            .collect();
        rows.sort_unstable_by_key(|&(kind, seq, ..)| (kind, seq));
        rows
    }

    fn acquire(&mut self, kind: ChannelKind, seq: u64, needed: usize) -> Row {
        debug_assert!(needed >= 1);
        if self.stride == 0 {
            self.stride = needed;
        }
        debug_assert!(
            needed <= self.stride,
            "a slot's agreement width is fixed at its replica count"
        );
        let row = match self.free.pop() {
            Some(r) => r,
            None => {
                let r = self.keys.len() as Row;
                self.keys.push((kind, seq));
                self.deliver.push(None);
                self.inj_branch.push(0);
                self.ready.push(false);
                self.needed.push(0);
                self.prop_len.push(0);
                self.props
                    .resize(self.props.len() + self.stride, VirtNanos::ZERO);
                self.payload.push(None);
                r
            }
        };
        let r = row as usize;
        self.keys[r] = (kind, seq);
        self.deliver[r] = None;
        self.ready[r] = false;
        self.needed[r] = needed as u16;
        self.prop_len[r] = 0;
        let prior = self.index.insert((kind.id(), seq), row);
        debug_assert!(prior.is_none(), "duplicate pending entry");
        self.live += 1;
        row
    }

    /// Opens an entry awaiting `needed` replica proposals.
    pub fn insert_agreeing(
        &mut self,
        kind: ChannelKind,
        seq: u64,
        payload: ChannelPayload,
        needed: usize,
    ) -> Row {
        let row = self.acquire(kind, seq, needed);
        self.ready[row as usize] = payload.ready();
        self.payload[row as usize] = Some(payload);
        row
    }

    /// Opens an entry already fixed at a locally decided delivery time
    /// (baseline arms). `inj_branch` is the caller-computed injection
    /// branch of `deliver`.
    pub fn insert_local(
        &mut self,
        kind: ChannelKind,
        seq: u64,
        payload: ChannelPayload,
        deliver: VirtNanos,
        inj_branch: u64,
    ) -> Row {
        let row = self.acquire(kind, seq, 1);
        let r = row as usize;
        self.ready[r] = payload.ready();
        self.payload[r] = Some(payload);
        self.deliver[r] = Some(deliver);
        self.inj_branch[r] = inj_branch;
        row
    }

    pub fn row(&self, kind: ChannelKind, seq: u64) -> Option<Row> {
        self.index.get(&(kind.id(), seq)).copied()
    }

    /// Removes an entry, returning its payload and fixed delivery time.
    pub fn remove(
        &mut self,
        kind: ChannelKind,
        seq: u64,
    ) -> Option<(ChannelPayload, Option<VirtNanos>)> {
        let row = self.index.remove(&(kind.id(), seq))?;
        let r = row as usize;
        let payload = self.payload[r].take().expect("live row has a payload");
        let deliver = self.deliver[r].take();
        self.ready[r] = false;
        self.prop_len[r] = 0;
        self.free.push(row);
        self.live -= 1;
        Some((payload, deliver))
    }

    pub fn deliver_of(&self, row: Row) -> Option<VirtNanos> {
        self.deliver[row as usize]
    }

    /// Fixes the delivery time and caches its injection branch.
    pub fn set_deliver(&mut self, row: Row, deliver: VirtNanos, inj_branch: u64) {
        let r = row as usize;
        debug_assert!(self.deliver[r].is_none(), "delivery fixed twice");
        self.deliver[r] = Some(deliver);
        self.inj_branch[r] = inj_branch;
    }

    /// Marks the payload's data as present (disk transfer finished).
    pub fn set_ready(&mut self, row: Row) {
        self.ready[row as usize] = true;
    }

    pub fn payload_mut(&mut self, row: Row) -> &mut ChannelPayload {
        self.payload[row as usize]
            .as_mut()
            .expect("live row has a payload")
    }

    pub fn payload_of(&self, row: Row) -> &ChannelPayload {
        self.payload[row as usize]
            .as_ref()
            .expect("live row has a payload")
    }

    /// Appends a proposal to the row's interned buffer; returns the
    /// proposals received so far and the row's full-set size.
    pub fn push_proposal(&mut self, row: Row, proposal: VirtNanos) -> (&[VirtNanos], usize) {
        let r = row as usize;
        let len = self.prop_len[r] as usize;
        debug_assert!(len < self.stride, "proposal buffer overrun");
        self.props[r * self.stride + len] = proposal;
        self.prop_len[r] = (len + 1) as u16;
        (
            &self.props[r * self.stride..r * self.stride + len + 1],
            self.needed[r] as usize,
        )
    }

    /// Selects the median of the row's complete proposal set in place.
    pub fn median_full(&mut self, row: Row) -> VirtNanos {
        let r = row as usize;
        let len = self.prop_len[r] as usize;
        debug_assert_eq!(len, self.needed[r] as usize);
        timestats::order_stats::median_odd_in_place(
            &mut self.props[r * self.stride..r * self.stride + len],
        )
    }

    /// Visits every injectable row: fixed delivery, data ready. Passes
    /// `(cached injection branch, delivery virt, kind, id)`.
    #[inline]
    pub fn for_each_due(&self, mut f: impl FnMut(u64, VirtNanos, ChannelKind, u64)) {
        for r in 0..self.keys.len() {
            if let Some(d) = self.deliver[r] {
                if self.ready[r] {
                    let (kind, id) = self.keys[r];
                    f(self.inj_branch[r], d, kind, id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> ChannelPayload {
        ChannelPayload::Cache {
            set: 1,
            tag: 2,
            issue_virt: VirtNanos::from_nanos(5),
        }
    }

    #[test]
    fn rows_recycle_without_growing() {
        let mut t = PendingTable::default();
        for round in 0..4 {
            for seq in 0..3 {
                t.insert_agreeing(ChannelKind::Cache, round * 3 + seq, payload(), 3);
            }
            assert_eq!(t.len(), 3);
            for seq in 0..3 {
                assert!(t.remove(ChannelKind::Cache, round * 3 + seq).is_some());
            }
            assert_eq!(t.len(), 0);
        }
        assert_eq!(t.keys.len(), 3, "rows are reused, not appended");
        assert_eq!(t.props.len(), 9, "arena stays at rows * stride");
    }

    #[test]
    fn proposals_intern_and_median_in_place() {
        let mut t = PendingTable::default();
        let row = t.insert_agreeing(ChannelKind::Net, 7, payload(), 3);
        for (i, p) in [30u64, 10, 20].into_iter().enumerate() {
            let (got, needed) = t.push_proposal(row, VirtNanos::from_nanos(p));
            assert_eq!(got.len(), i + 1);
            assert_eq!(needed, 3);
        }
        assert_eq!(t.median_full(row).as_nanos(), 20);
        t.set_deliver(row, VirtNanos::from_nanos(20), 1234);
        let mut seen = Vec::new();
        t.for_each_due(|b, d, kind, id| seen.push((b, d.as_nanos(), kind, id)));
        assert_eq!(seen, vec![(1234, 20, ChannelKind::Net, 7)]);
    }

    #[test]
    fn unready_rows_are_skipped_by_the_due_scan() {
        let mut t = PendingTable::default();
        let row = t.insert_agreeing(
            ChannelKind::Disk,
            0,
            ChannelPayload::Disk {
                op: DiskOp::Read,
                range: BlockRange::new(0, 1),
                issue_virt: VirtNanos::ZERO,
                data: None,
            },
            3,
        );
        t.set_deliver(row, VirtNanos::from_nanos(9), 99);
        let mut n = 0;
        t.for_each_due(|_, _, _, _| n += 1);
        assert_eq!(n, 0, "no data yet");
        t.set_ready(row);
        t.for_each_due(|_, _, _, _| n += 1);
        assert_eq!(n, 1);
    }
}
