//! The unified timing-channel core.
//!
//! StopWatch's central claim (paper Secs. V–VI) is that *every* timing
//! channel an attacker can observe — network interrupts, cache-probe
//! readouts, disk/DMA completions — must be delivered at replica-agreed
//! times; a channel mitigated ad hoc (or forgotten) leaks on its own.
//! This module is the joint that makes that a structural property rather
//! than a per-channel copy of the agreement machinery:
//!
//! * [`ChannelKind`] names each timing channel the VMM mediates. Every
//!   kind flows through **one** pending table, **one** early-proposal
//!   buffer, and **one** replica-median agreement path in
//!   [`crate::slot::GuestSlot`], and **one** PGM demux in the cloud
//!   layer. Adding a fourth channel (trace replay, a collaborating
//!   attacker's probe stream, ...) is a new kind plus a delivery hook —
//!   not another fork of `slot.rs`.
//! * [`ChannelPolicy`] expresses the per-channel knobs that used to be
//!   special-cased fields: the proposal **offset** (Δn for network
//!   packets, Δd for disk completions, zero for cache probes) and the
//!   **synchrony clamp** (whether a median that already passed in this
//!   replica's virtual time is clamped to "now" and counted, or left in
//!   the logical past so the readout stays a pure function of agreed
//!   values).
//!
//! # Why the clamp differs per channel
//!
//! Network packets arrive from *outside* the replica set; the agreed
//! median lying in the past means the synchrony assumption broke (paper
//! footnote 4) — the packet is delivered "now", diverging this replica,
//! and `sync_violations` records it. Cache probes and disk completions
//! are *guest-initiated*: the guest blocks on them, so an agreed
//! timestamp behind the physical clock projection is routine (the
//! interrupt simply fires at the next exit) and the guest-visible value
//! stays a pure function of agreed values on every replica. Clamping
//! those to per-replica "now" would be the divergence, not the cure.

use simkit::time::VirtOffset;

/// A timing channel mediated by the VMM: the kinds of interrupt whose
/// delivery times replicas agree on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChannelKind {
    /// Inbound network packets (Sec. V-B: Δn proposals, median delivery).
    Net,
    /// Shared-LLC probe readouts (the Sec. III coresidency channel).
    Cache,
    /// Disk/DMA completions (Sec. V-A: Δd release times, now agreed).
    Disk,
}

impl ChannelKind {
    /// Every channel kind, in wire-id order.
    pub const ALL: [ChannelKind; 3] = [ChannelKind::Net, ChannelKind::Cache, ChannelKind::Disk];

    /// Stable wire identifier (PGM proposal messages carry it).
    pub fn id(self) -> u8 {
        match self {
            ChannelKind::Net => 0,
            ChannelKind::Cache => 1,
            ChannelKind::Disk => 2,
        }
    }

    /// Human-readable name (used by `swbench describe`).
    pub fn name(self) -> &'static str {
        match self {
            ChannelKind::Net => "net",
            ChannelKind::Cache => "cache",
            ChannelKind::Disk => "disk",
        }
    }

    /// The cloud counter that tallies multicast proposals on this channel.
    pub fn proposals_counter(self) -> &'static str {
        match self {
            ChannelKind::Net => "proposals_sent",
            ChannelKind::Cache => "cache_proposals_sent",
            ChannelKind::Disk => "disk_proposals_sent",
        }
    }

    /// Injection tiebreak rank. Interrupts due at the same exit are
    /// injected ordered by `(delivery virt, rank, id)`; the ranks keep the
    /// pre-unification order (timer 0, disk 1, net 2, cache 3) so event
    /// traces stay byte-identical with the per-kind implementation this
    /// replaced.
    pub(crate) fn injection_rank(self) -> u8 {
        match self {
            ChannelKind::Disk => 1,
            ChannelKind::Net => 2,
            ChannelKind::Cache => 3,
        }
    }
}

/// How one channel's proposals and deliveries behave — the per-channel
/// policy that used to be special-cased fields (`delta_n`, `delta_d`) and
/// divergent method bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelPolicy {
    /// Virtual-time offset added to every local proposal (Δn for network,
    /// Δd for disk, zero for cache probes — their proposal *is* the
    /// locally measured completion time).
    pub offset: VirtOffset,
    /// When the agreed median already passed in this replica's virtual
    /// time: `Some(counter)` clamps delivery to "now" and bumps the named
    /// slot counter (network packets — synchrony violation, footnote 4);
    /// `None` keeps the agreed time so delivery fires at the next exit
    /// and the readout stays replica-identical (cache, disk).
    pub clamp_counter: Option<&'static str>,
    /// Whether a peer proposal arriving before this replica opened the
    /// matching pending entry is buffered until the local open. `true`
    /// for guest-initiated channels (cache, disk): the local open is
    /// guaranteed by replica determinism, so dropping the proposal would
    /// deadlock the agreement. `false` for externally created entries
    /// (net): the packet copy that opens the entry can be lost on a
    /// lossy fabric, and buffering for an open that never comes would
    /// leak the buffer entry forever.
    pub buffer_early: bool,
}

/// The full per-channel policy table of one StopWatch slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelPolicies {
    net: ChannelPolicy,
    cache: ChannelPolicy,
    disk: ChannelPolicy,
}

impl ChannelPolicies {
    /// The paper's StopWatch policy set: Δn-offset clamped network
    /// delivery, unclamped zero-offset cache readouts, Δd-offset
    /// unclamped disk completions.
    pub fn stopwatch(delta_n: VirtOffset, delta_d: VirtOffset) -> Self {
        ChannelPolicies {
            net: ChannelPolicy {
                offset: delta_n,
                clamp_counter: Some("sync_violations"),
                buffer_early: false,
            },
            cache: ChannelPolicy {
                offset: VirtOffset::from_nanos(0),
                clamp_counter: None,
                buffer_early: true,
            },
            disk: ChannelPolicy {
                offset: delta_d,
                clamp_counter: None,
                buffer_early: true,
            },
        }
    }

    /// The policy of one channel.
    pub fn policy(&self, kind: ChannelKind) -> &ChannelPolicy {
        match kind {
            ChannelKind::Net => &self.net,
            ChannelKind::Cache => &self.cache,
            ChannelKind::Disk => &self.disk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_ids_are_stable_and_distinct() {
        let ids: Vec<u8> = ChannelKind::ALL.iter().map(|k| k.id()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let names: Vec<&str> = ChannelKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["net", "cache", "disk"]);
    }

    #[test]
    fn stopwatch_policies_route_offsets_per_channel() {
        let p =
            ChannelPolicies::stopwatch(VirtOffset::from_millis(10), VirtOffset::from_millis(12));
        assert_eq!(p.policy(ChannelKind::Net).offset.as_millis_f64(), 10.0);
        assert_eq!(p.policy(ChannelKind::Disk).offset.as_millis_f64(), 12.0);
        assert_eq!(p.policy(ChannelKind::Cache).offset.as_nanos(), 0);
        assert_eq!(
            p.policy(ChannelKind::Net).clamp_counter,
            Some("sync_violations")
        );
        assert_eq!(p.policy(ChannelKind::Cache).clamp_counter, None);
        assert_eq!(p.policy(ChannelKind::Disk).clamp_counter, None);
        // Guest-initiated channels buffer early peers (the local open is
        // guaranteed); externally opened net entries do not.
        assert!(!p.policy(ChannelKind::Net).buffer_early);
        assert!(p.policy(ChannelKind::Cache).buffer_early);
        assert!(p.policy(ChannelKind::Disk).buffer_early);
    }

    #[test]
    fn injection_ranks_preserve_the_legacy_order() {
        assert!(ChannelKind::Disk.injection_rank() < ChannelKind::Net.injection_rank());
        assert!(ChannelKind::Net.injection_rank() < ChannelKind::Cache.injection_rank());
    }
}
