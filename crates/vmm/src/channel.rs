//! The unified timing-channel core.
//!
//! StopWatch's central claim (paper Secs. V–VI) is that *every* timing
//! channel an attacker can observe — network interrupts, cache-probe
//! readouts, disk/DMA completions — must be delivered at replica-agreed
//! times; a channel mitigated ad hoc (or forgotten) leaks on its own.
//! This module is the joint that makes that a structural property rather
//! than a per-channel copy of the agreement machinery:
//!
//! * [`ChannelKind`] names each timing channel the VMM mediates. Every
//!   kind flows through **one** pending table, **one** early-proposal
//!   buffer, and **one** replica-median agreement path in
//!   [`crate::slot::GuestSlot`], and **one** PGM demux in the cloud
//!   layer. Adding a fourth channel (trace replay, a collaborating
//!   attacker's probe stream, ...) is a new kind plus a delivery hook —
//!   not another fork of `slot.rs`.
//! * [`ChannelPolicy`] expresses the per-channel knobs that used to be
//!   special-cased fields: the proposal **offset** (Δn for network
//!   packets, Δd for disk completions, zero for cache probes) and the
//!   **synchrony clamp** (whether a median that already passed in this
//!   replica's virtual time is clamped to "now" and counted, or left in
//!   the logical past so the readout stays a pure function of agreed
//!   values).
//!
//! # Why the clamp differs per channel
//!
//! Network packets arrive from *outside* the replica set; the agreed
//! median lying in the past means the synchrony assumption broke (paper
//! footnote 4) — the packet is delivered "now", diverging this replica,
//! and `sync_violations` records it. Cache probes and disk completions
//! are *guest-initiated*: the guest blocks on them, so an agreed
//! timestamp behind the physical clock projection is routine (the
//! interrupt simply fires at the next exit) and the guest-visible value
//! stays a pure function of agreed values on every replica. Clamping
//! those to per-replica "now" would be the divergence, not the cure.

use simkit::time::VirtOffset;

/// A timing channel mediated by the VMM: the kinds of interrupt whose
/// delivery times replicas agree on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChannelKind {
    /// Inbound network packets (Sec. V-B: Δn proposals, median delivery).
    Net,
    /// Shared-LLC probe readouts (the Sec. III coresidency channel).
    Cache,
    /// Disk/DMA completions (Sec. V-A: Δd release times, now agreed).
    Disk,
    /// Guest-programmed virtual-timer fires and preemption-slice
    /// boundaries (Sec. V-C: Δt release times proposed by the vCPU
    /// scheduler, median-delivered like every other interrupt).
    Timer,
}

impl ChannelKind {
    /// Every channel kind, in wire-id order.
    pub const ALL: [ChannelKind; 4] = [
        ChannelKind::Net,
        ChannelKind::Cache,
        ChannelKind::Disk,
        ChannelKind::Timer,
    ];

    /// Stable wire identifier (PGM proposal messages carry it).
    pub fn id(self) -> u8 {
        match self {
            ChannelKind::Net => 0,
            ChannelKind::Cache => 1,
            ChannelKind::Disk => 2,
            ChannelKind::Timer => 3,
        }
    }

    /// Human-readable name (used by `swbench describe`).
    pub fn name(self) -> &'static str {
        match self {
            ChannelKind::Net => "net",
            ChannelKind::Cache => "cache",
            ChannelKind::Disk => "disk",
            ChannelKind::Timer => "timer",
        }
    }

    /// The cloud counter that tallies multicast proposals on this channel.
    pub fn proposals_counter(self) -> &'static str {
        match self {
            ChannelKind::Net => "proposals_sent",
            ChannelKind::Cache => "cache_proposals_sent",
            ChannelKind::Disk => "disk_proposals_sent",
            ChannelKind::Timer => "timer_proposals_sent",
        }
    }

    /// Injection tiebreak rank. Interrupts due at the same exit are
    /// injected ordered by `(delivery virt, rank, id)`; the ranks keep the
    /// pre-unification order (timer 0, disk 1, net 2, cache 3) so event
    /// traces stay byte-identical with the per-kind implementation this
    /// replaced. Rank 0 — held in reserve for the legacy PIT class since
    /// the unification — now belongs to the real timer channel; the PIT
    /// tick itself sorts *before* same-instant channel interrupts because
    /// its candidate key carries no kind (`None < Some(_)`), so the legacy
    /// traces are unchanged.
    pub(crate) fn injection_rank(self) -> u8 {
        match self {
            ChannelKind::Timer => 0,
            ChannelKind::Disk => 1,
            ChannelKind::Net => 2,
            ChannelKind::Cache => 3,
        }
    }
}

/// How one channel's proposals and deliveries behave — the per-channel
/// policy that used to be special-cased fields (`delta_n`, `delta_d`) and
/// divergent method bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelPolicy {
    /// Virtual-time offset added to every local proposal (Δn for network,
    /// Δd for disk, zero for cache probes — their proposal *is* the
    /// locally measured completion time).
    pub offset: VirtOffset,
    /// When the agreed median already passed in this replica's virtual
    /// time: `Some(counter)` clamps delivery to "now" and bumps the named
    /// slot counter (network packets — synchrony violation, footnote 4);
    /// `None` keeps the agreed time so delivery fires at the next exit
    /// and the readout stays replica-identical (cache, disk).
    pub clamp_counter: Option<&'static str>,
    /// Whether a peer proposal arriving before this replica opened the
    /// matching pending entry is buffered until the local open. `true`
    /// for guest-initiated channels (cache, disk): the local open is
    /// guaranteed by replica determinism, so dropping the proposal would
    /// deadlock the agreement. `false` for externally created entries
    /// (net): the packet copy that opens the entry can be lost on a
    /// lossy fabric, and buffering for an open that never comes would
    /// leak the buffer entry forever.
    pub buffer_early: bool,
    /// Whether delivery is fixed as soon as the proposals received so far
    /// *determine* the median (no assignment of the missing proposals can
    /// change it — e.g. two equal proposals out of three). `true` for the
    /// timer channel: its proposals are virtual-time-gated, so a replica
    /// lagging in physical time (a contended host) sends its proposal
    /// late in *wall-clock* terms; waiting for it would gate the fast
    /// replicas' next hardware fires on the slowest host and compound the
    /// lag into ever-later medians. `false` for the physically-gated
    /// channels (net/disk arrivals, cache exits), whose proposals reach
    /// every replica promptly regardless of virtual-time skew.
    pub fix_on_majority: bool,
}

/// The full per-channel policy table of one StopWatch slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelPolicies {
    net: ChannelPolicy,
    cache: ChannelPolicy,
    disk: ChannelPolicy,
    timer: ChannelPolicy,
}

impl ChannelPolicies {
    /// The paper's StopWatch policy set: Δn-offset clamped network
    /// delivery, unclamped zero-offset cache readouts, Δd-offset
    /// unclamped disk completions, Δt-offset unclamped timer fires.
    pub fn stopwatch(delta_n: VirtOffset, delta_d: VirtOffset, delta_t: VirtOffset) -> Self {
        ChannelPolicies {
            net: ChannelPolicy {
                offset: delta_n,
                clamp_counter: Some("sync_violations"),
                buffer_early: false,
                fix_on_majority: false,
            },
            cache: ChannelPolicy {
                offset: VirtOffset::from_nanos(0),
                clamp_counter: None,
                buffer_early: true,
                fix_on_majority: false,
            },
            disk: ChannelPolicy {
                offset: delta_d,
                clamp_counter: None,
                buffer_early: true,
                fix_on_majority: false,
            },
            // Timers are guest-armed, so the pending entry exists on every
            // replica before any proposal can arrive — buffer early peers
            // like the other guest-initiated channels. The Δt offset is
            // measured from the *programmed deadline*, not the dispatch
            // time, so scheduler jitter never reaches the proposal; and
            // because proposals are virtual-time-gated, delivery is fixed
            // the moment the received proposals pin the median rather than
            // waiting on the slowest (most contended) replica's fire.
            timer: ChannelPolicy {
                offset: delta_t,
                clamp_counter: None,
                buffer_early: true,
                fix_on_majority: true,
            },
        }
    }

    /// The policy of one channel.
    pub fn policy(&self, kind: ChannelKind) -> &ChannelPolicy {
        match kind {
            ChannelKind::Net => &self.net,
            ChannelKind::Cache => &self.cache,
            ChannelKind::Disk => &self.disk,
            ChannelKind::Timer => &self.timer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_ids_are_stable_and_distinct() {
        let ids: Vec<u8> = ChannelKind::ALL.iter().map(|k| k.id()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let names: Vec<&str> = ChannelKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["net", "cache", "disk", "timer"]);
    }

    #[test]
    fn stopwatch_policies_route_offsets_per_channel() {
        let p = ChannelPolicies::stopwatch(
            VirtOffset::from_millis(10),
            VirtOffset::from_millis(12),
            VirtOffset::from_millis(8),
        );
        assert_eq!(p.policy(ChannelKind::Net).offset.as_millis_f64(), 10.0);
        assert_eq!(p.policy(ChannelKind::Disk).offset.as_millis_f64(), 12.0);
        assert_eq!(p.policy(ChannelKind::Timer).offset.as_millis_f64(), 8.0);
        assert_eq!(p.policy(ChannelKind::Cache).offset.as_nanos(), 0);
        assert_eq!(
            p.policy(ChannelKind::Net).clamp_counter,
            Some("sync_violations")
        );
        assert_eq!(p.policy(ChannelKind::Cache).clamp_counter, None);
        assert_eq!(p.policy(ChannelKind::Disk).clamp_counter, None);
        assert_eq!(p.policy(ChannelKind::Timer).clamp_counter, None);
        // Guest-initiated channels buffer early peers (the local open is
        // guaranteed); externally opened net entries do not.
        assert!(!p.policy(ChannelKind::Net).buffer_early);
        assert!(p.policy(ChannelKind::Cache).buffer_early);
        assert!(p.policy(ChannelKind::Disk).buffer_early);
        assert!(p.policy(ChannelKind::Timer).buffer_early);
        // Only the virtual-time-gated timer channel fixes delivery on a
        // median-determining majority; the physically-gated channels wait
        // for the full proposal set so their traces are unchanged.
        assert!(!p.policy(ChannelKind::Net).fix_on_majority);
        assert!(!p.policy(ChannelKind::Cache).fix_on_majority);
        assert!(!p.policy(ChannelKind::Disk).fix_on_majority);
        assert!(p.policy(ChannelKind::Timer).fix_on_majority);
    }

    #[test]
    fn injection_ranks_preserve_the_legacy_order() {
        assert!(ChannelKind::Timer.injection_rank() < ChannelKind::Disk.injection_rank());
        assert!(ChannelKind::Disk.injection_rank() < ChannelKind::Net.injection_rank());
        assert!(ChannelKind::Net.injection_rank() < ChannelKind::Cache.injection_rank());
    }

    #[test]
    fn timer_owns_the_legacy_rank_zero() {
        // Satellite: the rank the unification reserved for the PIT class
        // now belongs to the real timer channel. The PIT tick still sorts
        // first among same-instant candidates because its key carries
        // `None` where channel interrupts carry `Some(kind)`.
        assert_eq!(ChannelKind::Timer.injection_rank(), 0);
        assert!(None::<ChannelKind> < Some(ChannelKind::Timer));
    }
}
