//! The guest VM abstraction.
//!
//! A guest is a *deterministic state machine*: its behaviour is a function
//! of the sequence of injected events (packets, disk completions, timer
//! ticks — each delivered at a defined virtual time) plus its own logic.
//! Exactly the determinism the paper enforces for uniprocessor VMs — which
//! is why three replicas fed the same injection schedule emit identical
//! output streams.
//!
//! Guest code reacts to events by queueing [`GuestAction`]s: bounded
//! computation, disk I/O, and packet sends. Between events the VM runs its
//! queued actions and then its idle loop (which retires branches, so
//! virtual time keeps advancing).

use crate::actions::ActionQueue;
use netsim::packet::{Body, EndpointId, Packet};
use simkit::time::{VirtNanos, VirtOffset};
use storage::block::BlockRange;
use storage::device::DiskOp;

/// Work the guest asks its (virtual) hardware to do, in program order.
#[derive(Debug, Clone, PartialEq)]
pub enum GuestAction {
    /// Execute `branches` branches of computation.
    Compute {
        /// Branch count to retire.
        branches: u64,
    },
    /// Issue a disk read; the result arrives later via
    /// [`GuestProgram::on_disk_done`].
    DiskRead {
        /// Blocks to read.
        range: BlockRange,
    },
    /// Issue a disk write (completion interrupt likewise delayed by Δd).
    DiskWrite {
        /// Blocks to write.
        range: BlockRange,
        /// Content hash to store.
        value: u64,
    },
    /// Emit a network packet (under StopWatch, tunneled to the egress
    /// node). The device model builds the [`Packet`] at execution time
    /// with the guest's endpoint as source, so the packet — and its
    /// cached content hash — is constructed exactly once.
    Send {
        /// Destination endpoint.
        dst: EndpointId,
        /// Payload.
        body: Body,
    },
    /// Invoke [`GuestProgram::on_call`] when execution reaches this point
    /// (a deterministic self-callback: "after the work queued so far, run
    /// this continuation").
    Call {
        /// Caller-defined token passed back to `on_call`.
        token: u64,
    },
    /// Touch a line of the host's shared LLC (install or refresh it) with
    /// no completion event — the PRIME half of PRIME+PROBE, and the
    /// victim's secret-dependent footprint.
    CacheTouch {
        /// Cache set index (wraps modulo the host cache's set count).
        set: u64,
        /// Line tag within the set (per-owner).
        tag: u64,
    },
    /// Probe a line of the host's shared LLC; its hit-or-miss latency
    /// arrives later via [`GuestProgram::on_cache_probe`] — under
    /// StopWatch at the replica-median timestamp, like a network
    /// interrupt.
    CacheProbe {
        /// Cache set index.
        set: u64,
        /// Line tag within the set.
        tag: u64,
    },
    /// Arm (or re-arm) a guest-programmable virtual timer: the fire
    /// arrives later via [`GuestProgram::on_vtimer`] — under StopWatch at
    /// the replica-median timestamp, so vCPU-scheduler dispatch jitter
    /// never reaches the guest.
    SetTimer {
        /// Guest-chosen timer identifier (re-arming an armed id replaces
        /// its programmed deadline).
        timer_id: u64,
        /// Absolute virtual deadline. Must lie strictly in the guest's
        /// future — a zero or already-passed deadline is a structured
        /// slot failure, not a panic.
        deadline: VirtNanos,
        /// `Some(p)` re-arms every `p` after each fire (periodic mode);
        /// `None` is one-shot.
        period: Option<VirtOffset>,
    },
    /// Disarm a virtual timer; a cancel racing an in-flight fire lets the
    /// fire win (the interrupt is already agreed on every replica).
    CancelTimer {
        /// The timer to disarm (unknown ids are a silent no-op, like real
        /// hypervisor timer hypercalls).
        timer_id: u64,
    },
}

/// What the guest sees when one of its handlers runs: the virtualized
/// platform clocks at the current VM exit, and its action queue.
#[derive(Debug)]
pub struct GuestEnv<'a> {
    /// Guest time (virtual under StopWatch) at this VM exit.
    pub now: VirtNanos,
    /// The delivery timestamp of the interrupt this handler services —
    /// what the virtual device's completion register reads. Under
    /// StopWatch this is the **replica-agreed** (median) timestamp, a
    /// pure function of agreed values even when the injection exit is
    /// not; outside interrupt handlers it equals [`GuestEnv::now`].
    pub irq_timestamp: VirtNanos,
    /// PIT timer interrupts delivered so far.
    pub pit_ticks: u64,
    /// `rdtsc` value.
    pub tsc: u64,
    /// CMOS RTC seconds.
    pub rtc_secs: u64,
    /// The guest's virtualized branch counter.
    pub branches: u64,
    actions: &'a mut ActionQueue,
}

impl<'a> GuestEnv<'a> {
    /// Creates an environment view (used by the slot executor).
    /// `irq_timestamp` is the serviced interrupt's delivery time, `None`
    /// outside interrupt handlers.
    pub fn new(
        now: VirtNanos,
        irq_timestamp: Option<VirtNanos>,
        pit_ticks: u64,
        tsc: u64,
        rtc_secs: u64,
        branches: u64,
        actions: &'a mut ActionQueue,
    ) -> Self {
        GuestEnv {
            now,
            irq_timestamp: irq_timestamp.unwrap_or(now),
            pit_ticks,
            tsc,
            rtc_secs,
            branches,
            actions,
        }
    }

    /// Queues `branches` of computation (consecutive runs coalesce into
    /// one queue entry unless the slot runs in scalar-reference mode).
    pub fn compute(&mut self, branches: u64) {
        self.actions.push(GuestAction::Compute { branches });
    }

    /// Queues a disk read.
    pub fn disk_read(&mut self, range: BlockRange) {
        self.actions.push(GuestAction::DiskRead { range });
    }

    /// Queues a disk write.
    pub fn disk_write(&mut self, range: BlockRange, value: u64) {
        self.actions.push(GuestAction::DiskWrite { range, value });
    }

    /// Queues a packet send from this guest (the device model stamps the
    /// guest's endpoint as source when the packet is built).
    pub fn send(&mut self, dst: EndpointId, body: Body) {
        self.actions.push(GuestAction::Send { dst, body });
    }

    /// Queues a continuation: [`GuestProgram::on_call`] fires with `token`
    /// after all previously queued actions have executed.
    pub fn call_after(&mut self, token: u64) {
        self.actions.push(GuestAction::Call { token });
    }

    /// Queues a silent touch of shared-LLC line `(set, tag)` (prime /
    /// victim access; no completion event).
    pub fn cache_touch(&mut self, set: u64, tag: u64) {
        self.actions.push(GuestAction::CacheTouch { set, tag });
    }

    /// Queues a shared-LLC probe of line `(set, tag)`; the latency readout
    /// arrives via [`GuestProgram::on_cache_probe`].
    pub fn cache_probe(&mut self, set: u64, tag: u64) {
        self.actions.push(GuestAction::CacheProbe { set, tag });
    }

    /// Arms one-shot virtual timer `timer_id` for the absolute virtual
    /// `deadline`; the fire arrives via [`GuestProgram::on_vtimer`].
    pub fn set_timer(&mut self, timer_id: u64, deadline: VirtNanos) {
        self.actions.push(GuestAction::SetTimer {
            timer_id,
            deadline,
            period: None,
        });
    }

    /// Arms periodic virtual timer `timer_id`: first fire at `deadline`,
    /// then re-armed every `period` after each fire.
    pub fn set_periodic_timer(&mut self, timer_id: u64, deadline: VirtNanos, period: VirtOffset) {
        self.actions.push(GuestAction::SetTimer {
            timer_id,
            deadline,
            period: Some(period),
        });
    }

    /// Disarms virtual timer `timer_id` (no-op for unknown ids).
    pub fn cancel_timer(&mut self, timer_id: u64) {
        self.actions.push(GuestAction::CancelTimer { timer_id });
    }

    /// Queued actions not yet executed.
    pub fn queue_len(&self) -> usize {
        self.actions.len()
    }
}

/// A deterministic guest program.
///
/// Handlers run at VM exits with interrupts injected at VM entry, matching
/// the Xen HVM flow the paper modifies. All decisions must be functions of
/// the handler inputs and [`GuestEnv`] clock reads only — no ambient
/// randomness, no host state — or replica determinism (and with it the
/// defense's output voting) breaks.
pub trait GuestProgram {
    /// Called once when the VM boots.
    fn on_boot(&mut self, env: &mut GuestEnv);

    /// A network packet was copied into guest memory and its interrupt
    /// asserted.
    fn on_packet(&mut self, packet: &Packet, env: &mut GuestEnv);

    /// A disk operation completed (for reads, `data` holds per-block
    /// content hashes).
    fn on_disk_done(&mut self, op: DiskOp, range: BlockRange, data: &[u64], env: &mut GuestEnv);

    /// A PIT timer interrupt (only delivered when [`GuestProgram::wants_timer`]).
    fn on_timer(&mut self, _env: &mut GuestEnv) {}

    /// A continuation queued via [`GuestEnv::call_after`] was reached.
    fn on_call(&mut self, _token: u64, _env: &mut GuestEnv) {}

    /// A virtual timer armed via [`GuestEnv::set_timer`] (or its periodic
    /// sibling) fired. [`GuestEnv::irq_timestamp`] is the fire's delivery
    /// time — under StopWatch the **replica-median** agreed timestamp, so
    /// `irq_timestamp - deadline` is the guest's whole view of scheduler
    /// latency.
    fn on_vtimer(&mut self, _timer_id: u64, _env: &mut GuestEnv) {}

    /// A cache probe queued via [`GuestEnv::cache_probe`] completed.
    /// `latency_ns` is the probe's readout in virtual nanoseconds — under
    /// StopWatch the median over the replicas' locally measured
    /// latencies, under Baseline the local hit/miss latency itself.
    fn on_cache_probe(&mut self, _set: u64, _tag: u64, _latency_ns: u64, _env: &mut GuestEnv) {}

    /// Opt into per-tick timer interrupts (off by default; ticks are
    /// always visible via [`GuestEnv::pit_ticks`]).
    fn wants_timer(&self) -> bool {
        false
    }

    /// Downcast support for extracting recorded observations after a run.
    /// Programs holding measurement state should override with
    /// `Some(self)`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// A trivial guest that idles forever (useful as filler load and in tests).
#[derive(Debug, Clone, Default)]
pub struct IdleGuest;

impl GuestProgram for IdleGuest {
    fn on_boot(&mut self, _env: &mut GuestEnv) {}
    fn on_packet(&mut self, _packet: &Packet, _env: &mut GuestEnv) {}
    fn on_disk_done(
        &mut self,
        _op: DiskOp,
        _range: BlockRange,
        _data: &[u64],
        _env: &mut GuestEnv,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_queues_actions_in_order() {
        let mut q = ActionQueue::new();
        let mut env = GuestEnv::new(VirtNanos::ZERO, None, 0, 0, 0, 0, &mut q);
        env.compute(100);
        env.disk_read(BlockRange::new(0, 1));
        env.send(EndpointId(9), Body::Raw { tag: 1, len: 10 });
        env.set_timer(4, VirtNanos::from_millis(7));
        env.set_periodic_timer(5, VirtNanos::from_millis(9), VirtOffset::from_millis(2));
        env.cancel_timer(4);
        assert_eq!(env.queue_len(), 6);
        assert!(matches!(
            q.get(0),
            Some(GuestAction::Compute { branches: 100 })
        ));
        assert!(matches!(q.get(1), Some(GuestAction::DiskRead { .. })));
        assert!(matches!(q.get(2), Some(GuestAction::Send { .. })));
        assert!(matches!(
            q.get(3),
            Some(GuestAction::SetTimer {
                timer_id: 4,
                period: None,
                ..
            })
        ));
        assert!(matches!(
            q.get(4),
            Some(GuestAction::SetTimer {
                timer_id: 5,
                period: Some(_),
                ..
            })
        ));
        assert!(matches!(
            q.get(5),
            Some(GuestAction::CancelTimer { timer_id: 4 })
        ));
    }

    #[test]
    fn consecutive_env_computes_coalesce_into_one_action() {
        let mut q = ActionQueue::new();
        let mut env = GuestEnv::new(VirtNanos::ZERO, None, 0, 0, 0, 0, &mut q);
        env.compute(100);
        env.compute(23);
        assert_eq!(env.queue_len(), 1);
        assert!(matches!(
            q.front(),
            Some(GuestAction::Compute { branches: 123 })
        ));
    }

    #[test]
    fn idle_guest_stays_idle() {
        let mut g = IdleGuest;
        let mut q = ActionQueue::new();
        let mut env = GuestEnv::new(VirtNanos::ZERO, None, 0, 0, 0, 0, &mut q);
        g.on_boot(&mut env);
        assert_eq!(env.queue_len(), 0);
        assert!(!g.wants_timer());
    }
}
