//! Emulated platform clock devices (paper Sec. IV-B).
//!
//! StopWatch intervenes on every real-time source an HVM guest can read:
//! the PIT timer interrupt stream and countdown counter, `rdtsc`, and the
//! CMOS RTC. All of them are derived here from one instant — the guest's
//! virtual time under StopWatch, or (approximately) real time under
//! unmodified Xen.

use simkit::time::VirtNanos;

/// Which notion of time the platform exposes to the guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimePolicy {
    /// StopWatch: all clocks read virtual time.
    Virtual,
    /// Unmodified Xen: clocks track the host's real time.
    Real,
}

/// The emulated clock devices for one guest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformClocks {
    /// PIT programmed rate (the paper's guests used 250 Hz).
    pub pit_hz: u32,
    /// TSC increments per nanosecond (3.0 for the testbed's 3 GHz parts).
    pub tsc_per_ns: f64,
}

impl Default for PlatformClocks {
    fn default() -> Self {
        PlatformClocks {
            pit_hz: 250,
            tsc_per_ns: 3.0,
        }
    }
}

impl PlatformClocks {
    /// PIT period in nanoseconds.
    pub fn pit_period_ns(&self) -> u64 {
        1_000_000_000 / u64::from(self.pit_hz)
    }

    /// Timer interrupts that should have fired by instant `t`.
    pub fn pit_ticks(&self, t: VirtNanos) -> u64 {
        t.as_nanos() / self.pit_period_ns()
    }

    /// The PIT's 16-bit countdown counter value at instant `t`: it reloads
    /// every period and counts down at ~1.193 MHz.
    pub fn pit_counter(&self, t: VirtNanos) -> u16 {
        const PIT_HZ: f64 = 1_193_182.0;
        let reload = (PIT_HZ / f64::from(self.pit_hz)) as u64;
        let within_ns = t.as_nanos() % self.pit_period_ns();
        let elapsed_ticks = (within_ns as f64 * PIT_HZ / 1e9) as u64;
        (reload.saturating_sub(elapsed_ticks) & 0xffff) as u16
    }

    /// `rdtsc` value at instant `t`.
    pub fn rdtsc(&self, t: VirtNanos) -> u64 {
        (t.as_nanos() as f64 * self.tsc_per_ns) as u64
    }

    /// CMOS RTC (whole seconds) at instant `t`.
    pub fn rtc_secs(&self, t: VirtNanos) -> u64 {
        t.as_nanos() / 1_000_000_000
    }

    /// The instant of PIT tick number `n` (1-based).
    pub fn pit_tick_time(&self, n: u64) -> VirtNanos {
        VirtNanos::from_nanos(n * self.pit_period_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pit_period_at_250hz_is_4ms() {
        let c = PlatformClocks::default();
        assert_eq!(c.pit_period_ns(), 4_000_000);
    }

    #[test]
    fn pit_ticks_accumulate() {
        let c = PlatformClocks::default();
        assert_eq!(c.pit_ticks(VirtNanos::from_nanos(0)), 0);
        assert_eq!(c.pit_ticks(VirtNanos::from_millis(4)), 1);
        assert_eq!(c.pit_ticks(VirtNanos::from_millis(1000)), 250);
    }

    #[test]
    fn pit_counter_counts_down_and_reloads() {
        let c = PlatformClocks::default();
        let at_start = c.pit_counter(VirtNanos::from_nanos(0));
        let mid = c.pit_counter(VirtNanos::from_millis(2));
        assert!(at_start > mid, "{at_start} !> {mid}");
        // Just past the reload point it's high again.
        let reloaded = c.pit_counter(VirtNanos::from_nanos(4_000_100));
        assert!(reloaded > mid);
    }

    #[test]
    fn rdtsc_scales() {
        let c = PlatformClocks::default();
        assert_eq!(c.rdtsc(VirtNanos::from_nanos(1000)), 3000);
    }

    #[test]
    fn rtc_whole_seconds() {
        let c = PlatformClocks::default();
        assert_eq!(c.rtc_secs(VirtNanos::from_millis(2_999)), 2);
        assert_eq!(c.rtc_secs(VirtNanos::from_millis(3_000)), 3);
    }

    #[test]
    fn tick_time_inverse_of_ticks() {
        let c = PlatformClocks::default();
        for n in 1..100 {
            let t = c.pit_tick_time(n);
            assert_eq!(c.pit_ticks(t), n);
        }
    }
}
