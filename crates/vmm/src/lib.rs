//! # vmm — the simulated hypervisor under StopWatch
//!
//! The StopWatch prototype is ~1.5 kSLOC of changes inside Xen 4.0.2 plus
//! ~2 kSLOC in QEMU device models. This crate rebuilds the architectural
//! joints those changes live at, as a deterministic simulation:
//!
//! * [`clock`] — virtual time `virt(instr) = slope·instr + start` with the
//!   epoch-resynchronization protocol (paper Sec. IV-A);
//! * [`speed`] — deterministic host speed profiles (branch↔time), with
//!   jitter and coresident-load contention;
//! * [`devices`] — emulated PIT / TSC / RTC, all fed from one instant;
//! * [`cache`] — the per-host shared LLC (set/way, deterministic LRU)
//!   behind the coresidency channel (Sec. III);
//! * [`channel`] — the unified timing-channel descriptors: every
//!   interrupt class an attacker could time (net, cache, disk, timer)
//!   named by a [`channel::ChannelKind`] with a per-channel
//!   [`channel::ChannelPolicy`] (Δn/Δd/Δt offsets, synchrony clamping);
//! * [`defense`] — the pluggable defense arms: StopWatch's replica
//!   median, Deterland epoch-boundary release, Tizpaz-Niari bucketed
//!   quantization, and the unprotected baseline, all as release
//!   policies over the same channel core;
//! * [`guest`] — the deterministic guest-program abstraction;
//! * [`sched`] — the deterministic per-host vCPU scheduler (round-robin
//!   timeslices, hypercraft-style `switch_vm_timer`/`htimedelta`
//!   accounting) whose dispatch jitter is the timer channel's leak;
//! * [`slot`] — the per-guest VMM machinery: guest-caused VM exits,
//!   interrupt injection at VM entry, hidden device buffers,
//!   guest-programmable virtual timers, and **one** replica-median
//!   agreement path shared by every timing channel;
//! * [`host`] — a physical machine aggregating slots, a disk, a vCPU
//!   scheduler, and a speed profile.
//!
//! Cross-host coordination (proposal exchange, pacing, ingress/egress
//! wiring) lives one level up, in `stopwatch-core`.

pub mod actions;
pub mod cache;
pub mod channel;
pub mod clock;
pub mod defense;
pub mod devices;
pub mod guest;
pub mod host;
mod pending;
pub mod sched;
pub mod slot;
pub mod speed;

/// One-line import for the common types.
pub mod prelude {
    pub use crate::actions::ActionQueue;
    pub use crate::cache::CacheModel;
    pub use crate::channel::{ChannelKind, ChannelPolicies, ChannelPolicy};
    pub use crate::clock::{EpochConfig, VirtualClock};
    pub use crate::defense::{DefenseKnobs, DefensePolicy, ReleaseRule};
    pub use crate::devices::{PlatformClocks, TimePolicy};
    pub use crate::guest::{GuestAction, GuestEnv, GuestProgram, IdleGuest};
    pub use crate::host::HostMachine;
    pub use crate::sched::VcpuScheduler;
    pub use crate::slot::{
        ArrivalOutcome, DefenseMode, GuestSlot, SlotConfig, SlotError, SlotOutput,
    };
    pub use crate::speed::SpeedProfile;
}
