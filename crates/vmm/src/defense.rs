//! Pluggable defense arms: StopWatch as *one mitigation among several*.
//!
//! Every timing defense this platform evaluates answers the same
//! question — **when is a pending channel event's delivery timestamp
//! fixed?** — over the same machinery: the unified pending table and
//! injection path of [`crate::slot::GuestSlot`]. The arms differ only in
//! the release schedule:
//!
//! * **stopwatch** — the paper's replica-median agreement: 3 (or 5)
//!   replicas exchange per-channel Δ-offset proposals over PGM and every
//!   replica adopts the median ([`DefenseMode::StopWatch`]).
//! * **baseline** — unmodified Xen: events deliver at the locally
//!   observed time ([`ReleaseRule::Identity`]).
//! * **deterland** — Deterland-style deterministic time-slicing (Wu &
//!   Ford): a single host releases every event at the *next* virtual
//!   epoch boundary, so observable timing carries `epoch`-granular
//!   information only ([`ReleaseRule::EpochBoundary`]).
//! * **bucketed** — Tizpaz-Niari-style quantitative mitigation: the lag
//!   between an event's reference instant (issue time, programmed
//!   deadline) and its local completion is quantized up into one of
//!   `buckets` fixed levels of width `bucket`
//!   ([`ReleaseRule::Quantize`]).
//!
//! The non-StopWatch arms are **single-host** defenses: they transform
//! the local delivery time instead of replicating the guest, so their
//! mitigation (or leak) is attributable to the release schedule itself,
//! never to an accidental median over replicas.
//!
//! # Registering a new arm
//!
//! Implement [`DefensePolicy`] on a unit struct, add it to [`ARMS`]
//! (alphabetical), and list the `CloudConfig` knob keys it reads in
//! [`DefensePolicy::knobs`]. The config layer (`cfg.defense`) and the
//! sweep validator resolve arm names through [`arm`]/[`arm_names`], so a
//! registered arm is immediately sweepable and shows up in `swbench
//! describe`.

use crate::channel::ChannelPolicies;
use simkit::time::{VirtNanos, VirtOffset};

/// Defense configuration of one guest slot — the hot-path form every
/// [`DefensePolicy`] lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseMode {
    /// StopWatch: replica-median agreement on every timing channel, with
    /// per-channel [`crate::channel::ChannelPolicy`] offsets (Δn, Δd, Δt)
    /// and clamping; guest outputs tunneled to the egress.
    StopWatch {
        /// Per-channel proposal/delivery policies.
        channels: ChannelPolicies,
        /// Number of replicas (3 in the paper; 5 discussed in Sec. IX).
        replicas: usize,
    },
    /// A single-host arm: events deliver at a locally decided time,
    /// transformed by the arm's [`ReleaseRule`] (identity for baseline).
    Local {
        /// How the locally observed delivery time is reshaped.
        release: ReleaseRule,
    },
}

impl DefenseMode {
    /// The paper's StopWatch arm: Δn network offsets, Δd disk offsets,
    /// Δt timer offsets, unclamped zero-offset cache readouts.
    pub fn stop_watch(
        delta_n: VirtOffset,
        delta_d: VirtOffset,
        delta_t: VirtOffset,
        replicas: usize,
    ) -> Self {
        DefenseMode::StopWatch {
            channels: ChannelPolicies::stopwatch(delta_n, delta_d, delta_t),
            replicas,
        }
    }

    /// Unmodified Xen: interrupts delivered at the earliest exit, outputs
    /// sent directly.
    pub fn baseline() -> Self {
        DefenseMode::Local {
            release: ReleaseRule::Identity,
        }
    }
}

/// How a single-host arm reshapes a pending event's locally observed
/// delivery time. `local` is the time the event would deliver at under
/// baseline; `reference` is the event's replica-identical anchor where
/// one exists (a cache probe's issue instant, a disk op's issue instant,
/// a timer's programmed deadline — `None` for externally arriving
/// network packets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseRule {
    /// Baseline: deliver at the locally observed time.
    Identity,
    /// Deterland: deliver at the *strictly next* multiple of `epoch`.
    /// Strictly-next matters: reference instants routinely sit exactly on
    /// the virtual grid (timer deadlines, exit-aligned issues), and an
    /// at-or-after rounding would release on-time events at lag 0 while
    /// delayed ones slip a full epoch — re-opening the channel the epoch
    /// exists to close.
    EpochBoundary {
        /// The deterministic slice length.
        epoch: VirtOffset,
    },
    /// Tizpaz-Niari: quantize the lag past `reference` up to one of
    /// `buckets` levels of width `bucket` (minimum one level — a
    /// completion is never instantaneous); without a reference, round
    /// the absolute time up to the bucket grid.
    Quantize {
        /// Width of one quantization level.
        bucket: VirtOffset,
        /// Number of distinguishable levels before the cap.
        buckets: u64,
    },
}

impl ReleaseRule {
    /// The transformed delivery time.
    pub fn apply(self, local: VirtNanos, reference: Option<VirtNanos>) -> VirtNanos {
        match self {
            ReleaseRule::Identity => local,
            ReleaseRule::EpochBoundary { epoch } => {
                let e = epoch.as_nanos().max(1);
                let t = local.as_nanos();
                VirtNanos::from_nanos((t / e + 1).saturating_mul(e))
            }
            ReleaseRule::Quantize { bucket, buckets } => {
                let b = bucket.as_nanos().max(1);
                match reference {
                    Some(r) => {
                        let lag = local.as_nanos().saturating_sub(r.as_nanos());
                        let level = lag.div_ceil(b).clamp(1, buckets.max(1));
                        VirtNanos::from_nanos(r.as_nanos().saturating_add(level * b))
                    }
                    None => {
                        let t = local.as_nanos().max(1);
                        VirtNanos::from_nanos(t.div_ceil(b).saturating_mul(b))
                    }
                }
            }
        }
    }
}

/// The knob values a [`DefensePolicy`] may read when lowering to a
/// [`DefenseMode`]. Built by the config layer from `CloudConfig` (this
/// crate cannot see that type); every field maps 1:1 to a config knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefenseKnobs {
    /// Network delivery offset Δn (`delta_n_ms`).
    pub delta_n: VirtOffset,
    /// Disk release offset Δd (`delta_d_ms`).
    pub delta_d: VirtOffset,
    /// Timer release offset Δt (`delta_t_ms`).
    pub delta_t: VirtOffset,
    /// Replica count for replicated arms (`replicas`).
    pub replicas: usize,
    /// Deterland slice length (`epoch_ms`).
    pub epoch: VirtOffset,
    /// Quantization level width (`bucket_ns`).
    pub bucket: VirtOffset,
    /// Quantization level count (`buckets`).
    pub buckets: u64,
}

/// One pluggable defense arm: a name the config layer keys on, the
/// subset of knobs it reads, whether it replicates the guest, and the
/// lowering to the slot's hot-path [`DefenseMode`].
pub trait DefensePolicy: Sync {
    /// The registry key (`cfg.defense` value).
    fn name(&self) -> &'static str;
    /// One-line description for `swbench describe`.
    fn about(&self) -> &'static str;
    /// The `CloudConfig` knob keys this arm reads (documented there).
    fn knobs(&self) -> &'static [&'static str];
    /// `true` when the arm runs the guest on every replica host under
    /// median agreement; `false` for single-host arms.
    fn replicated(&self) -> bool;
    /// Lowers the arm to the slot's defense mode.
    fn mode(&self, knobs: &DefenseKnobs) -> DefenseMode;
}

/// Unmodified Xen.
struct Baseline;

impl DefensePolicy for Baseline {
    fn name(&self) -> &'static str {
        "baseline"
    }
    fn about(&self) -> &'static str {
        "unmodified Xen: events deliver at locally observed times"
    }
    fn knobs(&self) -> &'static [&'static str] {
        &[]
    }
    fn replicated(&self) -> bool {
        false
    }
    fn mode(&self, _knobs: &DefenseKnobs) -> DefenseMode {
        DefenseMode::baseline()
    }
}

/// Tizpaz-Niari-style bucketed quantization.
struct Bucketed;

impl DefensePolicy for Bucketed {
    fn name(&self) -> &'static str {
        "bucketed"
    }
    fn about(&self) -> &'static str {
        "quantitative mitigation: event lag quantized up to fixed buckets"
    }
    fn knobs(&self) -> &'static [&'static str] {
        &["bucket_ns", "buckets"]
    }
    fn replicated(&self) -> bool {
        false
    }
    fn mode(&self, knobs: &DefenseKnobs) -> DefenseMode {
        DefenseMode::Local {
            release: ReleaseRule::Quantize {
                bucket: knobs.bucket,
                buckets: knobs.buckets,
            },
        }
    }
}

/// Deterland-style deterministic time-slicing.
struct Deterland;

impl DefensePolicy for Deterland {
    fn name(&self) -> &'static str {
        "deterland"
    }
    fn about(&self) -> &'static str {
        "deterministic time-slicing: events release at the next epoch boundary"
    }
    fn knobs(&self) -> &'static [&'static str] {
        &["epoch_ms"]
    }
    fn replicated(&self) -> bool {
        false
    }
    fn mode(&self, knobs: &DefenseKnobs) -> DefenseMode {
        DefenseMode::Local {
            release: ReleaseRule::EpochBoundary { epoch: knobs.epoch },
        }
    }
}

/// The paper's replica-median agreement.
struct StopWatchArm;

impl DefensePolicy for StopWatchArm {
    fn name(&self) -> &'static str {
        "stopwatch"
    }
    fn about(&self) -> &'static str {
        "replica-median agreement on every channel's delivery time"
    }
    fn knobs(&self) -> &'static [&'static str] {
        &["delta_n_ms", "delta_d_ms", "delta_t_ms", "replicas"]
    }
    fn replicated(&self) -> bool {
        true
    }
    fn mode(&self, knobs: &DefenseKnobs) -> DefenseMode {
        DefenseMode::stop_watch(knobs.delta_n, knobs.delta_d, knobs.delta_t, knobs.replicas)
    }
}

/// Every registered arm, alphabetical by name (registry iteration order
/// is presentation order in `swbench describe`).
pub static ARMS: &[&dyn DefensePolicy] = &[&Baseline, &Bucketed, &Deterland, &StopWatchArm];

/// Looks up an arm by registry key.
pub fn arm(name: &str) -> Option<&'static dyn DefensePolicy> {
    ARMS.iter().copied().find(|a| a.name() == name)
}

/// Every registered arm name, alphabetical.
pub fn arm_names() -> Vec<&'static str> {
    ARMS.iter().map(|a| a.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knobs() -> DefenseKnobs {
        DefenseKnobs {
            delta_n: VirtOffset::from_millis(10),
            delta_d: VirtOffset::from_millis(12),
            delta_t: VirtOffset::from_millis(8),
            replicas: 3,
            epoch: VirtOffset::from_millis(5),
            bucket: VirtOffset::from_nanos(5_000_000),
            buckets: 4,
        }
    }

    #[test]
    fn registry_is_alphabetical_and_resolvable() {
        let names = arm_names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "ARMS must stay alphabetical");
        assert_eq!(
            names,
            vec!["baseline", "bucketed", "deterland", "stopwatch"]
        );
        for n in names {
            assert_eq!(arm(n).expect("registered").name(), n);
        }
        assert!(arm("xen").is_none());
    }

    #[test]
    fn only_stopwatch_replicates() {
        for a in ARMS {
            assert_eq!(a.replicated(), a.name() == "stopwatch", "{}", a.name());
        }
    }

    #[test]
    fn arms_lower_to_their_modes() {
        let k = knobs();
        assert_eq!(arm("baseline").unwrap().mode(&k), DefenseMode::baseline());
        assert_eq!(
            arm("stopwatch").unwrap().mode(&k),
            DefenseMode::stop_watch(k.delta_n, k.delta_d, k.delta_t, 3)
        );
        assert_eq!(
            arm("deterland").unwrap().mode(&k),
            DefenseMode::Local {
                release: ReleaseRule::EpochBoundary { epoch: k.epoch }
            }
        );
        assert_eq!(
            arm("bucketed").unwrap().mode(&k),
            DefenseMode::Local {
                release: ReleaseRule::Quantize {
                    bucket: k.bucket,
                    buckets: 4
                }
            }
        );
    }

    #[test]
    fn arm_knob_lists_are_nonempty_except_baseline() {
        for a in ARMS {
            if a.name() == "baseline" {
                assert!(a.knobs().is_empty());
            } else {
                assert!(
                    !a.knobs().is_empty(),
                    "{} must document its knobs",
                    a.name()
                );
            }
        }
    }

    #[test]
    fn identity_is_a_pass_through() {
        let t = VirtNanos::from_nanos(123_456_789);
        assert_eq!(ReleaseRule::Identity.apply(t, None), t);
        assert_eq!(
            ReleaseRule::Identity.apply(t, Some(VirtNanos::from_nanos(5))),
            t
        );
    }

    #[test]
    fn epoch_boundary_is_strictly_next() {
        let r = ReleaseRule::EpochBoundary {
            epoch: VirtOffset::from_millis(5),
        };
        let ms = VirtNanos::from_millis;
        // Mid-epoch rounds up.
        assert_eq!(r.apply(VirtNanos::from_nanos(7_200_000), None), ms(10));
        // Exactly on a boundary still releases at the NEXT one: an
        // on-time event and one delayed by less than an epoch become
        // indistinguishable (both land on the same boundary).
        assert_eq!(r.apply(ms(10), None), ms(15));
        assert_eq!(r.apply(VirtNanos::from_nanos(10_000_001), None), ms(15));
        assert_eq!(r.apply(VirtNanos::ZERO, None), ms(5));
    }

    #[test]
    fn epoch_boundary_hides_sub_epoch_delays() {
        // The flip the shootout pins: a clean fire at its deadline and a
        // victim-delayed fire 2ms later release at the same boundary.
        let r = ReleaseRule::EpochBoundary {
            epoch: VirtOffset::from_millis(5),
        };
        let deadline = VirtNanos::from_millis(70);
        let delayed = deadline + VirtOffset::from_millis(2);
        assert_eq!(
            r.apply(deadline, Some(deadline)),
            r.apply(delayed, Some(deadline))
        );
    }

    #[test]
    fn quantize_lag_clamps_to_the_bucket_cap() {
        let r = ReleaseRule::Quantize {
            bucket: VirtOffset::from_millis(5),
            buckets: 4,
        };
        let base = VirtNanos::from_millis(100);
        let at = |lag_ms: u64| r.apply(base + VirtOffset::from_millis(lag_ms), Some(base));
        // Zero lag still occupies the first level (a completion is never
        // instantaneous), so on-time and sub-bucket-late agree.
        assert_eq!(at(0), VirtNanos::from_millis(105));
        assert_eq!(at(2), VirtNanos::from_millis(105));
        assert_eq!(at(5), VirtNanos::from_millis(105));
        assert_eq!(at(6), VirtNanos::from_millis(110));
        // The cap: every lag past buckets*bucket reads the top level.
        assert_eq!(at(19), VirtNanos::from_millis(120));
        assert_eq!(at(500), VirtNanos::from_millis(120));
    }

    #[test]
    fn quantize_without_reference_rounds_up_to_the_grid() {
        let r = ReleaseRule::Quantize {
            bucket: VirtOffset::from_millis(5),
            buckets: 4,
        };
        assert_eq!(
            r.apply(VirtNanos::from_nanos(7_000_001), None),
            VirtNanos::from_millis(10)
        );
        // On-grid stays (the absolute-time form is a grid, not a lag).
        assert_eq!(
            r.apply(VirtNanos::from_millis(10), None),
            VirtNanos::from_millis(10)
        );
        assert_eq!(r.apply(VirtNanos::ZERO, None), VirtNanos::from_millis(5));
    }

    #[test]
    fn degenerate_knobs_do_not_divide_by_zero() {
        let e = ReleaseRule::EpochBoundary {
            epoch: VirtOffset::ZERO,
        };
        assert_eq!(
            e.apply(VirtNanos::from_nanos(7), None),
            VirtNanos::from_nanos(8)
        );
        let q = ReleaseRule::Quantize {
            bucket: VirtOffset::ZERO,
            buckets: 0,
        };
        let base = VirtNanos::from_nanos(100);
        assert_eq!(
            q.apply(base + VirtOffset::from_nanos(9), Some(base)),
            base + VirtOffset::from_nanos(1)
        );
    }
}
