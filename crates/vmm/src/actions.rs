//! The guest's action buffer.
//!
//! Handlers queue [`GuestAction`]s in bursts — a web guest answering one
//! disk completion queues dozens of `Send`s back to back — so the buffer
//! is built for reuse, not generality: one backing allocation made at
//! slot construction ([`ActionQueue::INLINE_CAPACITY`] entries) lives for
//! the slot's lifetime, and pushes in the steady state never touch the
//! allocator.
//!
//! The queue also performs the one rewrite that is provably invisible to
//! the slot executor: **consecutive `Compute` runs coalesce** into a
//! single entry. Two back-to-back `Compute { a }`, `Compute { b }` pin
//! the same completion point as one `Compute { a + b }` — the executor
//! pins `compute_end = pc + branches` when a compute reaches the front,
//! interrupt injections never unpin it, and compute completion emits no
//! output — so the merged queue walks an identical pc trajectory and
//! emits identical outputs while popping (and rescanning injection
//! candidates) once instead of twice. The scalar-reference arm runs with
//! coalescing disabled, and the sweep-level parity tests diff the two
//! engines byte for byte.
//!
//! One case must not merge: when the front entry is an **executing**
//! compute. Its completion point is already pinned, and the completion
//! pops the entry while ignoring its stored branch count — merging into
//! it would silently drop the added branches. The slot marks that state
//! via [`ActionQueue::pin_front`]; a push while the only entry is pinned
//! appends instead of merging.

use crate::guest::GuestAction;
use std::collections::VecDeque;

/// A reusable action buffer with same-kind `Compute` coalescing.
#[derive(Debug)]
pub struct ActionQueue {
    buf: VecDeque<GuestAction>,
    coalesce: bool,
    front_pinned: bool,
}

impl Default for ActionQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl ActionQueue {
    /// Backing capacity pre-allocated at construction. Sized for the
    /// largest common burst (a file server streaming a window of chunks)
    /// so steady-state pushes are allocation-free; larger bursts spill
    /// into ordinary `VecDeque` growth and the capacity is kept.
    pub const INLINE_CAPACITY: usize = 32;

    /// An empty queue with coalescing enabled and the backing buffer
    /// pre-allocated.
    pub fn new() -> Self {
        ActionQueue {
            buf: VecDeque::with_capacity(Self::INLINE_CAPACITY),
            coalesce: true,
            front_pinned: false,
        }
    }

    /// Enables or disables `Compute` coalescing (the scalar-reference arm
    /// runs with it off so the pre-batching behaviour stays bit-exact in
    /// every internal step, not just at the outputs).
    pub fn set_coalesce(&mut self, on: bool) {
        self.coalesce = on;
    }

    /// Whether `Compute` coalescing is enabled.
    pub fn coalesce(&self) -> bool {
        self.coalesce
    }

    /// Appends an action, merging consecutive `Compute` runs when
    /// coalescing is on and the merge target is not an executing front.
    pub fn push(&mut self, action: GuestAction) {
        if self.coalesce {
            if let GuestAction::Compute { branches: add } = action {
                let back_is_executing = self.buf.len() == 1 && self.front_pinned;
                if !back_is_executing {
                    if let Some(GuestAction::Compute { branches }) = self.buf.back_mut() {
                        *branches += add;
                        return;
                    }
                }
            }
        }
        self.buf.push_back(action);
    }

    /// The next action to execute.
    pub fn front(&self) -> Option<&GuestAction> {
        self.buf.front()
    }

    /// Removes and returns the front action, clearing any executing pin.
    pub fn pop_front(&mut self) -> Option<GuestAction> {
        self.front_pinned = false;
        self.buf.pop_front()
    }

    /// Marks the front entry as executing (its completion point is
    /// pinned): pushes must no longer coalesce into it.
    pub fn pin_front(&mut self) {
        self.front_pinned = true;
    }

    /// Queued actions not yet executed.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The `i`-th queued action (tests and introspection).
    pub fn get(&self, i: usize) -> Option<&GuestAction> {
        self.buf.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_computes_coalesce() {
        let mut q = ActionQueue::new();
        q.push(GuestAction::Compute { branches: 100 });
        q.push(GuestAction::Compute { branches: 50 });
        assert_eq!(q.len(), 1);
        assert!(matches!(
            q.front(),
            Some(GuestAction::Compute { branches: 150 })
        ));
    }

    #[test]
    fn non_adjacent_computes_stay_separate() {
        let mut q = ActionQueue::new();
        q.push(GuestAction::Compute { branches: 1 });
        q.push(GuestAction::Call { token: 7 });
        q.push(GuestAction::Compute { branches: 2 });
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn coalescing_off_preserves_every_entry() {
        let mut q = ActionQueue::new();
        q.set_coalesce(false);
        q.push(GuestAction::Compute { branches: 100 });
        q.push(GuestAction::Compute { branches: 50 });
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pinned_executing_front_is_never_merged_into() {
        let mut q = ActionQueue::new();
        q.push(GuestAction::Compute { branches: 100 });
        q.pin_front();
        // The executor has pinned compute_end = pc + 100; merging now
        // would lose the new branches when the completion pops the entry.
        q.push(GuestAction::Compute { branches: 50 });
        assert_eq!(q.len(), 2);
        // Behind a pinned front, later entries still coalesce.
        q.push(GuestAction::Compute { branches: 25 });
        assert_eq!(q.len(), 2);
        assert!(matches!(
            q.get(1),
            Some(GuestAction::Compute { branches: 75 })
        ));
        // Popping clears the pin.
        q.pop_front();
        q.push(GuestAction::Compute { branches: 5 });
        assert_eq!(q.len(), 1);
        assert!(matches!(
            q.front(),
            Some(GuestAction::Compute { branches: 80 })
        ));
    }

    #[test]
    fn steady_state_pushes_reuse_the_inline_allocation() {
        let mut q = ActionQueue::new();
        for round in 0..100 {
            for i in 0..ActionQueue::INLINE_CAPACITY {
                q.push(GuestAction::Call {
                    token: (round * 100 + i) as u64,
                });
            }
            while q.pop_front().is_some() {}
        }
        assert!(q.is_empty());
    }
}
