//! A physical host: one execution-speed profile, one disk, and the guest
//! slots it runs (the paper's testbed ran up to `c` one-vCPU guests per
//! multicore machine; each slot models one pinned vCPU, with cross-guest
//! interference entering through the shared contention factor and the
//! shared disk FIFO).

use crate::cache::CacheModel;
use crate::channel::ChannelKind;
use crate::sched::VcpuScheduler;
use crate::slot::{ArrivalOutcome, GuestSlot, SlotError, SlotOutput};
use crate::speed::SpeedProfile;
use netsim::link::NetNode;
use netsim::packet::Packet;
use simkit::time::{SimTime, VirtNanos, VirtOffset};
use storage::device::{DiskDevice, DiskRequest};
use storage::model::AccessModel;

/// Default shared-LLC geometry when nothing configures it (a small
/// teaching-sized cache; cache workloads set their own via
/// [`HostMachine::set_cache`]).
const DEFAULT_CACHE_SETS: u64 = 64;
const DEFAULT_CACHE_WAYS: usize = 8;

/// Default vCPU timeslice when nothing configures it (Xen's credit
/// scheduler default quantum order of magnitude).
const DEFAULT_TIMESLICE_MS: u64 = 2;

/// One physical machine.
pub struct HostMachine {
    id: NetNode,
    profile: SpeedProfile,
    disk: DiskDevice<Box<dyn AccessModel>>,
    cache: CacheModel,
    sched: VcpuScheduler,
    slots: Vec<GuestSlot>,
    activity: Vec<f64>,
}

impl std::fmt::Debug for HostMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostMachine")
            .field("id", &self.id)
            .field("slots", &self.slots.len())
            .finish_non_exhaustive()
    }
}

impl HostMachine {
    /// Creates a host.
    pub fn new(id: NetNode, profile: SpeedProfile, disk: DiskDevice<Box<dyn AccessModel>>) -> Self {
        HostMachine {
            id,
            profile,
            disk,
            cache: CacheModel::new(DEFAULT_CACHE_SETS, DEFAULT_CACHE_WAYS),
            sched: VcpuScheduler::new(VirtOffset::from_millis(DEFAULT_TIMESLICE_MS)),
            slots: Vec::new(),
            activity: Vec::new(),
        }
    }

    /// Replaces this host's vCPU scheduler (the timeslice is a platform
    /// property; call before booting any slot).
    pub fn set_scheduler(&mut self, sched: VcpuScheduler) {
        self.sched = sched;
    }

    /// The host's vCPU scheduler (accounting inspection).
    pub fn scheduler(&self) -> &VcpuScheduler {
        &self.sched
    }

    /// Replaces this host's shared LLC (geometry is a platform property;
    /// call before booting any slot).
    pub fn set_cache(&mut self, cache: CacheModel) {
        self.cache = cache;
    }

    /// The host's shared LLC (occupancy inspection).
    pub fn cache(&self) -> &CacheModel {
        &self.cache
    }

    /// This host's network identity.
    pub fn id(&self) -> NetNode {
        self.id
    }

    /// Adds a guest slot; returns its index on this host.
    pub fn add_slot(&mut self, slot: GuestSlot) -> usize {
        self.slots.push(slot);
        self.activity.push(0.0);
        self.slots.len() - 1
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Immutable access to a slot.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn slot(&self, idx: usize) -> &GuestSlot {
        &self.slots[idx]
    }

    /// Mutable access to a slot (for program state extraction).
    pub fn slot_mut(&mut self, idx: usize) -> &mut GuestSlot {
        &mut self.slots[idx]
    }

    /// The host's speed profile.
    pub fn profile(&self) -> &SpeedProfile {
        &self.profile
    }

    /// Declares how busy slot `idx`'s guest currently is (`0..1`); the
    /// aggregate becomes the host's contention factor slowing *all* guests
    /// — the cross-VM interference that access-driven attacks feed on, and
    /// the lever of the Sec. IX collaborating-attacker load attack.
    pub fn set_slot_activity(&mut self, idx: usize, activity: f64) {
        assert!((0.0..=1.0).contains(&activity), "activity must be in [0,1]");
        self.activity[idx] = activity;
        let total: f64 = self.activity.iter().sum();
        self.profile.set_contention((total * 0.25).min(0.9));
    }

    /// Boots slot `idx` at `now`.
    ///
    /// # Errors
    ///
    /// Propagates the slot's [`SlotError`]s.
    pub fn boot_slot(&mut self, idx: usize, now: SimTime) -> Result<Vec<SlotOutput>, SlotError> {
        let (profile, cache, slot) = (&self.profile, &mut self.cache, &mut self.slots[idx]);
        slot.boot(profile, cache, now)
    }

    /// Runs everything due for slot `idx` at `now` (against this host's
    /// shared LLC — coresident slots see each other's evictions).
    ///
    /// # Errors
    ///
    /// Propagates the slot's [`SlotError`]s.
    pub fn process_slot(&mut self, idx: usize, now: SimTime) -> Result<Vec<SlotOutput>, SlotError> {
        let (profile, cache, slot) = (&self.profile, &mut self.cache, &mut self.slots[idx]);
        slot.process(profile, cache, now)
    }

    /// Next wake time for slot `idx`.
    pub fn next_wake(&self, idx: usize, now: SimTime) -> Option<SimTime> {
        self.slots[idx].next_wake(&self.profile, now)
    }

    /// Packet arrival at the device model for slot `idx`.
    pub fn packet_arrival(
        &mut self,
        idx: usize,
        now: SimTime,
        ingress_seq: u64,
        packet: Packet,
    ) -> ArrivalOutcome {
        let (profile, slot) = (&self.profile, &mut self.slots[idx]);
        slot.on_packet_arrival(profile, now, ingress_seq, packet)
    }

    /// Records a delivery-time proposal on channel `kind` for slot `idx`.
    pub fn add_proposal(
        &mut self,
        idx: usize,
        now: SimTime,
        kind: ChannelKind,
        seq: u64,
        proposal: VirtNanos,
    ) -> bool {
        let (profile, slot) = (&self.profile, &mut self.slots[idx]);
        slot.add_proposal(profile, now, kind, seq, proposal)
    }

    /// Records a burst of delivery-time proposals (any mix of channels)
    /// for slot `idx` in one pass; returns how many events now have a
    /// fixed delivery time (see [`GuestSlot::add_proposals`]).
    pub fn add_proposals(
        &mut self,
        idx: usize,
        now: SimTime,
        batch: impl IntoIterator<Item = (ChannelKind, u64, VirtNanos)>,
    ) -> usize {
        let (profile, slot) = (&self.profile, &mut self.slots[idx]);
        slot.add_proposals(profile, now, batch)
    }

    /// Submits a disk request from slot `idx` to the host disk; returns
    /// the absolute completion time.
    pub fn submit_disk(&mut self, request: DiskRequest, now: SimTime) -> SimTime {
        self.disk.submit(request, now)
    }

    /// The disk transfer for `(slot, op_id)` completed. Under StopWatch
    /// the slot answers with its completion-timestamp proposal for the
    /// replicas to agree on (see [`GuestSlot::disk_ready`]).
    ///
    /// # Errors
    ///
    /// Propagates the slot's [`SlotError`]s.
    pub fn disk_ready(
        &mut self,
        idx: usize,
        now: SimTime,
        op_id: u64,
    ) -> Result<ArrivalOutcome, SlotError> {
        let (profile, slot) = (&self.profile, &mut self.slots[idx]);
        slot.disk_ready(profile, now, op_id)
    }

    /// The hardware timer event for `(slot, fire_seq)` elapsed: the vCPU
    /// scheduler computes the slot's dispatch delay from the run queue of
    /// currently busy co-residents, and the slot answers with its Δt
    /// fire-time proposal (StopWatch) or schedules the jittered local
    /// delivery (Baseline). Returns `Ok(None)` for cancelled fires.
    ///
    /// # Errors
    ///
    /// Propagates the slot's [`SlotError`]s.
    pub fn timer_elapsed(
        &mut self,
        idx: usize,
        now: SimTime,
        fire_seq: u64,
    ) -> Result<Option<ArrivalOutcome>, SlotError> {
        let busy = self.busy_slots();
        let delay = self.sched.dispatch_delay(idx, &busy);
        let (profile, slot) = (&self.profile, &mut self.slots[idx]);
        slot.timer_elapsed(profile, now, fire_seq, delay)
    }

    /// Physical time at which slot `idx`'s virtual clock first reaches
    /// `deadline` — when to schedule its hardware timer event.
    pub fn timer_event_time(&self, idx: usize, now: SimTime, deadline: VirtNanos) -> SimTime {
        self.slots[idx].phys_at_virt(&self.profile, now, deadline)
    }

    /// The periodic host scheduling tick (driven by the cloud's pacing
    /// heartbeat): pure run-queue accounting, no guest-visible effect.
    pub fn sched_tick(&mut self) {
        let busy = self.busy_slots();
        self.sched.tick(&busy);
    }

    fn busy_slots(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_busy())
            .map(|(i, _)| i)
            .collect()
    }

    /// Current virtual time of slot `idx`.
    pub fn virt_of(&self, idx: usize, now: SimTime) -> VirtNanos {
        self.slots[idx].virt_at(&self.profile, now)
    }

    /// Stalls slot `idx` until `t` (fastest-replica pacing).
    pub fn stall_slot(&mut self, idx: usize, now: SimTime, until: SimTime) {
        let (profile, slot) = (&self.profile, &mut self.slots[idx]);
        slot.stall_until(profile, now, until);
    }

    /// Refreshes every slot's activity from its busy state; returns `true`
    /// when the host's contention factor changed (callers then recompute
    /// pending wakes). This is how one guest's load perturbs the timing of
    /// its coresident guests — the substrate of access-driven attacks.
    pub fn refresh_activity(&mut self, _now: SimTime) -> bool {
        // `is_busy` reads the action queue directly, which only changes
        // inside `process()` — no per-slot clock sync is needed here.
        let before = self.profile.contention();
        let busy: Vec<f64> = self
            .slots
            .iter()
            .map(|s| if s.is_busy() { 1.0 } else { 0.0 })
            .collect();
        for (i, b) in busy.into_iter().enumerate() {
            self.activity[i] = b;
        }
        let total: f64 = self.activity.iter().sum();
        self.profile.set_contention((total * 0.25).min(0.9));
        (self.profile.contention() - before).abs() > 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::devices::PlatformClocks;
    use crate::guest::IdleGuest;
    use crate::slot::{DefenseMode, SlotConfig};
    use netsim::packet::EndpointId;
    use simkit::rng::SimRng;
    use simkit::time::SimDuration;
    use storage::block::{BlockRange, DiskImage};
    use storage::device::DiskOp;
    use storage::model::Ssd;

    fn host() -> HostMachine {
        let profile = SpeedProfile::new(
            1.0e9,
            0.0,
            SimDuration::from_millis(10),
            SimRng::new(1).stream("h0"),
        );
        let disk: DiskDevice<Box<dyn AccessModel>> =
            DiskDevice::new(Box::new(Ssd::sata()), SimRng::new(1).stream("d0"));
        HostMachine::new(NetNode(0), profile, disk)
    }

    fn idle_slot() -> GuestSlot {
        GuestSlot::new(
            Box::new(IdleGuest),
            SlotConfig {
                endpoint: EndpointId(1),
                exit_every: 50_000,
                mode: DefenseMode::baseline(),
                clocks: PlatformClocks::default(),
            },
            VirtualClock::new(VirtNanos::ZERO, 1.0, None),
            DiskImage::new(1024),
        )
    }

    #[test]
    fn add_and_boot_slots() {
        let mut h = host();
        let a = h.add_slot(idle_slot());
        let b = h.add_slot(idle_slot());
        assert_eq!((a, b), (0, 1));
        assert!(h.boot_slot(0, SimTime::ZERO).expect("boot").is_empty());
        assert_eq!(h.slot_count(), 2);
    }

    #[test]
    fn activity_raises_contention() {
        let mut h = host();
        h.add_slot(idle_slot());
        h.add_slot(idle_slot());
        assert_eq!(h.profile().contention(), 0.0);
        h.set_slot_activity(0, 0.8);
        let c1 = h.profile().contention();
        assert!(c1 > 0.0);
        h.set_slot_activity(1, 0.8);
        assert!(h.profile().contention() > c1);
        h.set_slot_activity(0, 0.0);
        h.set_slot_activity(1, 0.0);
        assert_eq!(h.profile().contention(), 0.0);
    }

    #[test]
    fn disk_submission_roundtrip() {
        let mut h = host();
        h.add_slot(idle_slot());
        let done = h.submit_disk(
            DiskRequest {
                op: DiskOp::Read,
                range: BlockRange::new(0, 1),
            },
            SimTime::ZERO,
        );
        assert!(done > SimTime::ZERO);
    }

    #[test]
    fn timer_elapsed_charges_run_queue_wait_to_the_waker() {
        use crate::guest::{GuestEnv, GuestProgram};

        // Slot 0 arms a timer; slot 1 sits on a long compute burst. The
        // scheduler must charge slot 0 one slice of wait.
        struct Arm;
        impl GuestProgram for Arm {
            fn on_boot(&mut self, env: &mut GuestEnv) {
                env.set_timer(1, VirtNanos::from_millis(5));
            }
            fn on_packet(&mut self, _p: &Packet, _e: &mut GuestEnv) {}
            fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
        }
        struct Burn;
        impl GuestProgram for Burn {
            fn on_boot(&mut self, env: &mut GuestEnv) {
                env.compute(1_000_000_000);
            }
            fn on_packet(&mut self, _p: &Packet, _e: &mut GuestEnv) {}
            fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
        }
        let mut h = host();
        let slot_for = |prog: Box<dyn GuestProgram>, ep: u64| {
            GuestSlot::new(
                prog,
                SlotConfig {
                    endpoint: EndpointId(ep),
                    exit_every: 50_000,
                    mode: DefenseMode::baseline(),
                    clocks: PlatformClocks::default(),
                },
                VirtualClock::new(VirtNanos::ZERO, 1.0, None),
                DiskImage::new(1024),
            )
        };
        let armer = h.add_slot(slot_for(Box::new(Arm), 1));
        let burner = h.add_slot(slot_for(Box::new(Burn), 2));
        let boot_out = h.boot_slot(armer, SimTime::ZERO).expect("boot armer");
        h.boot_slot(burner, SimTime::ZERO).expect("boot burner");
        assert!(h.slot(burner).is_busy());
        let SlotOutput::TimerArm { fire_seq, deadline } = boot_out[0] else {
            panic!("{:?}", boot_out[0]);
        };
        let t = h.timer_event_time(armer, SimTime::ZERO, deadline);
        let outcome = h.timer_elapsed(armer, t, fire_seq).expect("live fire");
        assert_eq!(outcome, Some(ArrivalOutcome::Scheduled));
        // One busy co-resident => one slice (the default 2ms) of steal.
        assert_eq!(h.scheduler().htimedelta(armer), 2_000_000);
        assert_eq!(h.scheduler().preemptions(), 1);
        // The sched tick is pure accounting.
        h.sched_tick();
        assert!(h.scheduler().slices_granted() >= 2);
    }

    #[test]
    #[should_panic(expected = "activity")]
    fn bad_activity_panics() {
        let mut h = host();
        h.add_slot(idle_slot());
        h.set_slot_activity(0, 1.5);
    }
}
