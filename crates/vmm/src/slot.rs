//! The guest slot: all per-guest VMM state on one host.
//!
//! This is where the paper's mechanisms live:
//!
//! * the virtualized **branch counter** driving [`VirtualClock`];
//! * **guest-caused VM exits** every `exit_every` branches — the only
//!   points where interrupts are injected (Sec. IV-B);
//! * the **network device model** with its hidden packet buffer, Δn
//!   proposals, and median delivery times (Sec. V-B, Fig. 3);
//! * the **IDE/DMA device model** delivering completions at `V + Δd`;
//! * the **shared-LLC probe path**: cache accesses hit the host's
//!   [`CacheModel`], and a probe's latency readout is delivered like a
//!   network interrupt — each replica proposes `issue + local latency`
//!   and all adopt the **median**, so one coresident victim's evictions
//!   cannot shift what the guest observes (the Sec. III coresidency
//!   channel, closed the same way as the network one);
//! * delivery of data *only at injection time* (no early polling);
//! * detection of synchrony violations (median already passed — paper
//!   footnote 4) and Δd violations (data not ready by the virtual
//!   delivery time).
//!
//! # Determinism model
//!
//! The slot tracks two branch counts:
//!
//! * `pc` — the guest's *logical* position in branch space. Everything the
//!   guest observes or emits is stamped at `pc`: handler clock reads, disk
//!   issue times `V`, output-packet virtual times. `pc` advances only by
//!   completed compute actions and by jumps to interrupt-injection exits —
//!   all pure functions of agreed values (median delivery times, Δd, tick
//!   schedule, the program's own action sizes). Three replicas therefore
//!   compute identical `pc` sequences and identical outputs.
//! * the *physical* branch count (a function of host wall-clock time via
//!   [`SpeedProfile`]) — which only *gates* when, in real time, each `pc`
//!   point is reached. Host speed differences shift real-time behaviour
//!   (absorbed by the Δn/median machinery and the egress), never logical
//!   behaviour.

use crate::cache::CacheModel;
use crate::clock::VirtualClock;
use crate::devices::PlatformClocks;
use crate::guest::{GuestAction, GuestEnv, GuestProgram};
use crate::speed::SpeedProfile;
use netsim::packet::{EndpointId, Packet};
use simkit::metrics::Counters;
use simkit::time::{SimTime, VirtNanos, VirtOffset};
use std::collections::{BTreeMap, VecDeque};
use storage::block::{BlockRange, DiskImage};
use storage::device::{DiskOp, DiskRequest};

/// Defense configuration for a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseMode {
    /// StopWatch: Δn-median network delivery, Δd disk delivery, egress
    /// tunneling.
    StopWatch {
        /// Virtual-time offset added to each VMM's network proposal.
        delta_n: VirtOffset,
        /// Virtual-time offset for disk/DMA completion delivery.
        delta_d: VirtOffset,
        /// Number of replicas (3 in the paper; 5 discussed in Sec. IX).
        replicas: usize,
    },
    /// Unmodified Xen: interrupts delivered at the earliest exit, outputs
    /// sent directly.
    Baseline,
}

/// Static configuration of a guest slot.
#[derive(Debug, Clone)]
pub struct SlotConfig {
    /// The guest's network endpoint identity.
    pub endpoint: EndpointId,
    /// Branches between guest-caused VM exits (injection opportunities).
    pub exit_every: u64,
    /// Defense mode.
    pub mode: DefenseMode,
    /// Emulated platform clocks.
    pub clocks: PlatformClocks,
}

/// Something the slot wants the outside world (host/cloud) to do.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotOutput {
    /// The guest emitted a packet at virtual time `virt` (output number
    /// `out_seq`); under StopWatch the host tunnels it to the egress node.
    Packet {
        /// Per-guest output sequence number (identical across replicas).
        out_seq: u64,
        /// The packet (src patched to the guest endpoint).
        packet: Packet,
        /// Virtual emission time.
        virt: VirtNanos,
    },
    /// The guest issued a disk request; submit it to the host disk.
    DiskSubmit {
        /// Slot-local operation id.
        op_id: u64,
        /// The request.
        request: DiskRequest,
    },
    /// StopWatch: the guest probed the shared LLC and this VMM proposes
    /// the probe's completion timestamp (`issue virt + local latency`);
    /// multicast it to the peer VMMs, which adopt the median — the cache
    /// readout goes through the same agreement as network timestamps.
    CacheProposal {
        /// Slot-local probe id (identical across replicas).
        probe_id: u64,
        /// Proposed virtual completion time.
        proposal: VirtNanos,
    },
}

/// Outcome of an inbound packet arriving at this slot's device model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOutcome {
    /// StopWatch: the VMM proposes this virtual delivery time; multicast it
    /// to the peer VMMs.
    Proposal(VirtNanos),
    /// Baseline: delivery scheduled immediately; just recompute the wake.
    Scheduled,
}

#[derive(Debug, Clone)]
struct NetPending {
    packet: Packet,
    proposals: Vec<VirtNanos>,
    needed: usize,
    deliver: Option<VirtNanos>,
}

#[derive(Debug, Clone)]
struct DiskPending {
    op: DiskOp,
    range: BlockRange,
    deliver: VirtNanos,
    data: Option<Vec<u64>>,
}

#[derive(Debug, Clone)]
struct CachePending {
    set: u64,
    tag: u64,
    issue_virt: VirtNanos,
    proposals: Vec<VirtNanos>,
    needed: usize,
    deliver: Option<VirtNanos>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum IrqClass {
    Timer,
    Disk,
    Net,
    Cache,
}

/// All per-guest state of the VMM on one host.
pub struct GuestSlot {
    program: Box<dyn GuestProgram>,
    cfg: SlotConfig,
    clock: VirtualClock,
    image: DiskImage,
    // Physical execution state.
    branches: u64,
    synced_at: SimTime,
    resume_at: SimTime,
    // Logical (deterministic) execution state.
    pc: u64,
    compute_end: Option<u64>,
    actions: VecDeque<GuestAction>,
    booted: bool,
    // Device-model state.
    net: BTreeMap<u64, NetPending>,
    disk: BTreeMap<u64, DiskPending>,
    cache_pending: BTreeMap<u64, CachePending>,
    /// Peer cache-probe proposals that arrived before this replica's own
    /// guest reached the probe (replicas run at different physical
    /// speeds); drained into the pending entry at local issue time.
    early_cache: BTreeMap<u64, Vec<VirtNanos>>,
    next_op_id: u64,
    next_probe_id: u64,
    out_seq: u64,
    ticks_delivered: u64,
    // Telemetry.
    counters: Counters,
    delivered_log: Vec<(u64, VirtNanos)>,
}

impl std::fmt::Debug for GuestSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuestSlot")
            .field("endpoint", &self.cfg.endpoint)
            .field("branches", &self.branches)
            .field("pc", &self.pc)
            .field("pending_net", &self.net.len())
            .field("pending_disk", &self.disk.len())
            .finish_non_exhaustive()
    }
}

impl GuestSlot {
    /// Creates a slot for `program` with the given clock and (replicated)
    /// disk image.
    ///
    /// # Panics
    ///
    /// Panics if `exit_every == 0` or a StopWatch mode names fewer than
    /// 3 or an even number of replicas.
    pub fn new(
        program: Box<dyn GuestProgram>,
        cfg: SlotConfig,
        clock: VirtualClock,
        image: DiskImage,
    ) -> Self {
        assert!(cfg.exit_every > 0, "exit_every must be positive");
        if let DefenseMode::StopWatch { replicas, .. } = cfg.mode {
            assert!(
                replicas >= 3 && replicas % 2 == 1,
                "StopWatch needs an odd replica count >= 3"
            );
        }
        GuestSlot {
            program,
            cfg,
            clock,
            image,
            branches: 0,
            synced_at: SimTime::ZERO,
            resume_at: SimTime::ZERO,
            pc: 0,
            compute_end: None,
            actions: VecDeque::new(),
            booted: false,
            net: BTreeMap::new(),
            disk: BTreeMap::new(),
            cache_pending: BTreeMap::new(),
            early_cache: BTreeMap::new(),
            next_op_id: 0,
            next_probe_id: 0,
            out_seq: 0,
            ticks_delivered: 0,
            counters: Counters::new(),
            delivered_log: Vec::new(),
        }
    }

    /// The guest's endpoint identity.
    pub fn endpoint(&self) -> EndpointId {
        self.cfg.endpoint
    }

    /// Slot telemetry: `net_irq`, `disk_irq`, `timer_irq`, `cache_irq`,
    /// `packets_out`, `cache_refs`, `cache_probes`, `cache_hits`,
    /// `cache_misses`, `dd_violations`, `sync_violations`, `stalls`.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// `(ingress seq, virtual delivery time)` of every network interrupt
    /// injected so far — identical across replicas; the attacker's Fig. 4
    /// observable.
    pub fn delivered_log(&self) -> &[(u64, VirtNanos)] {
        &self.delivered_log
    }

    /// Fingerprint of the guest's disk state (replica divergence checks).
    pub fn disk_fingerprint(&self) -> u64 {
        self.image.content_fingerprint()
    }

    /// A mutable handle to the guest program (for extracting recorded
    /// observations after a run).
    pub fn program_mut(&mut self) -> &mut dyn GuestProgram {
        &mut *self.program
    }

    /// The guest's logical branch position.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// `true` while the guest has queued work (it is computing or doing
    /// I/O rather than idling) — the signal that drives host contention.
    pub fn is_busy(&self) -> bool {
        !self.actions.is_empty()
    }

    /// Physical branches retired as of the last sync.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Physical branch count at arbitrary `now` (read-only projection).
    pub fn branches_at(&self, profile: &SpeedProfile, now: SimTime) -> u64 {
        let start = self.synced_at.max(self.resume_at);
        if now <= start {
            return self.branches;
        }
        self.branches + profile.branches_between(start, now)
    }

    /// Virtual time at physical `now`.
    pub fn virt_at(&self, profile: &SpeedProfile, now: SimTime) -> VirtNanos {
        self.clock.virt(self.branches_at(profile, now))
    }

    /// Virtual time as of the last guest-caused VM exit before `now` —
    /// what the network device model reads from shared memory when
    /// computing a proposal (Fig. 3).
    pub fn virt_at_last_exit(&self, profile: &SpeedProfile, now: SimTime) -> VirtNanos {
        let b = self.branches_at(profile, now);
        self.clock.virt(b - b % self.cfg.exit_every)
    }

    /// Stalls guest execution until `t` (fastest-replica pacing, Sec. V-A:
    /// the gap between the two fastest replicas "can be limited by slowing
    /// the execution of the fastest replica").
    pub fn stall_until(&mut self, profile: &SpeedProfile, now: SimTime, t: SimTime) {
        self.sync(profile, now);
        self.resume_at = self.resume_at.max(t);
        self.counters.incr("stalls");
    }

    fn sync(&mut self, profile: &SpeedProfile, now: SimTime) {
        let start = self.synced_at.max(self.resume_at);
        if now > start {
            self.branches += profile.branches_between(start, now);
        }
        self.synced_at = self.synced_at.max(now);
    }

    fn exit_ceil(&self, b: u64) -> u64 {
        b.div_ceil(self.cfg.exit_every) * self.cfg.exit_every
    }

    /// Branch count of the first guest-caused exit at which an interrupt
    /// with virtual delivery time `deliver` can be injected.
    fn injection_branch(&self, deliver: VirtNanos) -> u64 {
        self.exit_ceil(self.clock.instr_for(deliver))
    }

    fn run_handler<F>(&mut self, at_pc: u64, f: F)
    where
        F: FnOnce(&mut dyn GuestProgram, &mut GuestEnv),
    {
        let v = self.clock.virt(at_pc);
        let mut env = GuestEnv::new(
            v,
            self.cfg.clocks.pit_ticks(v),
            self.cfg.clocks.rdtsc(v),
            self.cfg.clocks.rtc_secs(v),
            at_pc,
            &mut self.actions,
        );
        f(&mut *self.program, &mut env);
    }

    /// Boots the guest and processes any immediately runnable work.
    /// `cache` is the host's shared LLC (every slot on a host gets the
    /// same one).
    ///
    /// # Panics
    ///
    /// Panics on double boot.
    pub fn boot(
        &mut self,
        profile: &SpeedProfile,
        cache: &mut CacheModel,
        now: SimTime,
    ) -> Vec<SlotOutput> {
        assert!(!self.booted, "double boot");
        self.booted = true;
        self.synced_at = now;
        self.run_handler(0, |prog, env| prog.on_boot(env));
        self.process(profile, cache, now)
    }

    /// The earliest due interrupt at physical position `phys`, ordered by
    /// `(injection branch, delivery virt, class, id)` — replica-identical.
    fn next_due_injection(&self, phys: u64) -> Option<(u64, VirtNanos, IrqClass, u64)> {
        let mut best: Option<(u64, VirtNanos, IrqClass, u64)> = None;
        let mut consider = |cand: (u64, VirtNanos, IrqClass, u64)| {
            if cand.0 <= phys && best.as_ref().is_none_or(|b| cand < *b) {
                best = Some(cand);
            }
        };
        if self.program.wants_timer() {
            let tick = self.cfg.clocks.pit_tick_time(self.ticks_delivered + 1);
            consider((self.injection_branch(tick), tick, IrqClass::Timer, 0));
        }
        for (&id, d) in &self.disk {
            if d.data.is_some() {
                consider((
                    self.injection_branch(d.deliver),
                    d.deliver,
                    IrqClass::Disk,
                    id,
                ));
            }
        }
        for (&seq, n) in &self.net {
            if let Some(deliver) = n.deliver {
                consider((self.injection_branch(deliver), deliver, IrqClass::Net, seq));
            }
        }
        for (&id, c) in &self.cache_pending {
            if let Some(deliver) = c.deliver {
                consider((self.injection_branch(deliver), deliver, IrqClass::Cache, id));
            }
        }
        best
    }

    /// Processes everything due at `now`: completes actions, injects due
    /// interrupts, runs handlers. Returns emitted outputs. `cache` is the
    /// host's shared LLC.
    pub fn process(
        &mut self,
        profile: &SpeedProfile,
        cache: &mut CacheModel,
        now: SimTime,
    ) -> Vec<SlotOutput> {
        self.sync(profile, now);
        let phys = self.branches;
        let mut out = Vec::new();
        loop {
            // Pin down the head compute's completion point in pc space.
            if self.compute_end.is_none() {
                if let Some(GuestAction::Compute { branches }) = self.actions.front() {
                    self.compute_end = Some(self.pc + branches);
                }
            }
            // Candidates, ordered by (branch position, rank): compute
            // completion (0), interrupt injection (1), zero-branch head
            // action (2). Lowest position wins; the fixed rank order keeps
            // replicas identical.
            let mut best: Option<(u64, u8)> = None;
            if let Some(end) = self.compute_end {
                if end <= phys {
                    best = Some((end, 0));
                }
            }
            let inj = self.next_due_injection(phys);
            if let Some((ib, _, _, _)) = inj {
                let pos = ib.max(self.pc);
                if best.is_none_or(|b| (pos, 1) < b) {
                    best = Some((pos, 1));
                }
            }
            let head_is_zero_branch = matches!(
                self.actions.front(),
                Some(GuestAction::DiskRead { .. })
                    | Some(GuestAction::DiskWrite { .. })
                    | Some(GuestAction::Send { .. })
                    | Some(GuestAction::Call { .. })
                    | Some(GuestAction::CacheTouch { .. })
                    | Some(GuestAction::CacheProbe { .. })
            );
            if head_is_zero_branch && best.is_none_or(|b| (self.pc, 2) < b) {
                best = Some((self.pc, 2));
            }
            let Some((pos, rank)) = best else { break };
            debug_assert!(pos <= phys, "processing beyond physical progress");
            match rank {
                0 => {
                    self.pc = self.compute_end.take().expect("compute end set");
                    self.actions.pop_front();
                }
                1 => {
                    let (ib, _deliver, class, id) = inj.expect("injection candidate");
                    self.pc = self.pc.max(ib);
                    self.inject(class, id);
                }
                _ => {
                    let action = self.actions.pop_front().expect("zero-branch head");
                    self.execute_zero_branch(action, cache, &mut out);
                }
            }
        }
        out
    }

    fn execute_zero_branch(
        &mut self,
        action: GuestAction,
        cache: &mut CacheModel,
        out: &mut Vec<SlotOutput>,
    ) {
        match action {
            GuestAction::DiskRead { range } => {
                out.push(self.issue_disk(DiskOp::Read, range, 0));
            }
            GuestAction::DiskWrite { range, value } => {
                out.push(self.issue_disk(DiskOp::Write, range, value));
            }
            GuestAction::Send { mut packet } => {
                packet.src = self.cfg.endpoint;
                let virt = self.clock.virt(self.pc);
                let seq = self.out_seq;
                self.out_seq += 1;
                self.counters.incr("packets_out");
                out.push(SlotOutput::Packet {
                    out_seq: seq,
                    packet,
                    virt,
                });
            }
            GuestAction::Call { token } => {
                let at_pc = self.pc;
                self.run_handler(at_pc, |prog, env| prog.on_call(token, env));
            }
            GuestAction::CacheTouch { set, tag } => {
                cache.touch(self.cfg.endpoint.0, set, tag);
                self.counters.incr("cache_refs");
            }
            GuestAction::CacheProbe { set, tag } => {
                let latency = cache.probe(self.cfg.endpoint.0, set, tag);
                self.counters.incr("cache_probes");
                self.counters.incr(if latency == CacheModel::HIT_NS {
                    "cache_hits"
                } else {
                    "cache_misses"
                });
                let issue_virt = self.clock.virt(self.pc);
                let proposal = issue_virt + VirtOffset::from_nanos(latency);
                let probe_id = self.next_probe_id;
                self.next_probe_id += 1;
                match self.cfg.mode {
                    DefenseMode::StopWatch { replicas, .. } => {
                        // Hidden until the replicas agree: propose our
                        // locally measured completion time and wait for
                        // the median (Fig. 3's flow, cache edition).
                        self.cache_pending.insert(
                            probe_id,
                            CachePending {
                                set,
                                tag,
                                issue_virt,
                                proposals: Vec::with_capacity(replicas),
                                needed: replicas,
                                deliver: None,
                            },
                        );
                        // Faster replicas may already have proposed this
                        // probe before our guest reached it.
                        if let Some(early) = self.early_cache.remove(&probe_id) {
                            for p in early {
                                self.add_cache_proposal(probe_id, p);
                            }
                        }
                        out.push(SlotOutput::CacheProposal { probe_id, proposal });
                    }
                    DefenseMode::Baseline => {
                        // Unprotected: the local latency is the readout.
                        self.cache_pending.insert(
                            probe_id,
                            CachePending {
                                set,
                                tag,
                                issue_virt,
                                proposals: vec![proposal],
                                needed: 1,
                                deliver: Some(proposal),
                            },
                        );
                    }
                }
            }
            GuestAction::Compute { .. } => unreachable!("compute handled in main loop"),
        }
    }

    fn inject(&mut self, class: IrqClass, id: u64) {
        let at_pc = self.pc;
        match class {
            IrqClass::Timer => {
                self.ticks_delivered += 1;
                self.counters.incr("timer_irq");
                self.run_handler(at_pc, |prog, env| prog.on_timer(env));
            }
            IrqClass::Disk => {
                let d = self.disk.remove(&id).expect("pending disk op");
                self.counters.incr("disk_irq");
                // Data is copied into the guest address space only now (no
                // early polling, Sec. V-A).
                let data = d.data.expect("due disk op has data");
                self.run_handler(at_pc, |prog, env| {
                    prog.on_disk_done(d.op, d.range, &data, env)
                });
            }
            IrqClass::Net => {
                let n = self.net.remove(&id).expect("pending packet");
                self.counters.incr("net_irq");
                let deliver = n.deliver.expect("due packet has delivery time");
                self.delivered_log.push((id, deliver));
                self.run_handler(at_pc, |prog, env| prog.on_packet(&n.packet, env));
            }
            IrqClass::Cache => {
                let c = self.cache_pending.remove(&id).expect("pending probe");
                self.counters.incr("cache_irq");
                let deliver = c.deliver.expect("due probe has delivery time");
                // The readout the guest sees: agreed completion minus the
                // (replica-identical) issue instant — a pure function of
                // agreed values, so all replicas observe the same latency.
                let latency_ns = (deliver - c.issue_virt).as_nanos();
                self.run_handler(at_pc, |prog, env| {
                    prog.on_cache_probe(c.set, c.tag, latency_ns, env)
                });
            }
        }
    }

    fn issue_disk(&mut self, op: DiskOp, range: BlockRange, value: u64) -> SlotOutput {
        let issue_virt = self.clock.virt(self.pc);
        let deliver = match self.cfg.mode {
            DefenseMode::StopWatch { delta_d, .. } => issue_virt + delta_d,
            DefenseMode::Baseline => issue_virt,
        };
        if op == DiskOp::Write {
            self.image.write(range, value);
        }
        let op_id = self.next_op_id;
        self.next_op_id += 1;
        self.disk.insert(
            op_id,
            DiskPending {
                op,
                range,
                deliver,
                data: None,
            },
        );
        SlotOutput::DiskSubmit {
            op_id,
            request: DiskRequest { op, range },
        }
    }

    /// An inbound packet reached this host's device model (step 1 of
    /// Fig. 3). Under StopWatch it is hidden from the guest and a delivery
    /// proposal is returned for multicast; under Baseline it is scheduled
    /// for the next exit.
    pub fn on_packet_arrival(
        &mut self,
        profile: &SpeedProfile,
        now: SimTime,
        ingress_seq: u64,
        packet: Packet,
    ) -> ArrivalOutcome {
        match self.cfg.mode {
            DefenseMode::StopWatch {
                delta_n, replicas, ..
            } => {
                let proposal = self.virt_at_last_exit(profile, now) + delta_n;
                self.net.insert(
                    ingress_seq,
                    NetPending {
                        packet,
                        proposals: Vec::with_capacity(replicas),
                        needed: replicas,
                        deliver: None,
                    },
                );
                ArrivalOutcome::Proposal(proposal)
            }
            DefenseMode::Baseline => {
                let deliver = self.virt_at(profile, now);
                self.net.insert(
                    ingress_seq,
                    NetPending {
                        packet,
                        proposals: vec![deliver],
                        needed: 1,
                        deliver: Some(deliver),
                    },
                );
                ArrivalOutcome::Scheduled
            }
        }
    }

    /// Records one replica's proposal for packet `ingress_seq` (including
    /// this VMM's own). When all proposals are in, adopts the median;
    /// returns `true` if the delivery time is now fixed.
    ///
    /// If the agreed median has already passed in this replica's virtual
    /// time, the synchrony assumption was violated (paper footnote 4): the
    /// packet is delivered at the next exit and `sync_violations` counts it.
    pub fn add_proposal(
        &mut self,
        profile: &SpeedProfile,
        now: SimTime,
        ingress_seq: u64,
        proposal: VirtNanos,
    ) -> bool {
        let cur_virt = self.virt_at(profile, now);
        self.record_proposal(ingress_seq, proposal, cur_virt)
    }

    /// Records a burst of proposals that reached this replica together
    /// (e.g. one PGM packet's delivered backlog): one virtual-clock read
    /// covers the whole batch, and every packet whose proposal set
    /// completes gets its median fixed by an in-place selection over its
    /// own proposal buffer — no per-packet clone-and-sort. Returns how
    /// many of the batch's packets now have a fixed delivery time
    /// (including ones that already had one), i.e. whether the caller
    /// needs to recompute the slot's wake.
    ///
    /// Behaviour is byte-identical to calling [`GuestSlot::add_proposal`]
    /// once per entry at the same `now`: all entries see the same current
    /// virtual time either way, and fixing one packet's delivery never
    /// affects another packet's proposals.
    pub fn add_proposals(
        &mut self,
        profile: &SpeedProfile,
        now: SimTime,
        batch: impl IntoIterator<Item = (u64, VirtNanos)>,
    ) -> usize {
        let cur_virt = self.virt_at(profile, now);
        batch
            .into_iter()
            .filter(|&(seq, proposal)| self.record_proposal(seq, proposal, cur_virt))
            .count()
    }

    /// The median-agreement core shared by the scalar and batched entry
    /// points. `cur_virt` is the replica's current virtual time (read once
    /// per batch by the callers).
    fn record_proposal(
        &mut self,
        ingress_seq: u64,
        proposal: VirtNanos,
        cur_virt: VirtNanos,
    ) -> bool {
        let Some(pending) = self.net.get_mut(&ingress_seq) else {
            return false;
        };
        if pending.deliver.is_some() {
            return true;
        }
        pending.proposals.push(proposal);
        if pending.proposals.len() < pending.needed {
            return false;
        }
        // All proposals are in: adopt the median by selecting the middle
        // element in place (the proposal buffer is dead after this).
        let median = timestats::order_stats::median_odd_in_place(&mut pending.proposals);
        if median < cur_virt {
            pending.deliver = Some(cur_virt);
            self.counters.incr("sync_violations");
        } else {
            pending.deliver = Some(median);
        }
        true
    }

    /// Records one replica's proposed completion time for cache probe
    /// `probe_id` (including this VMM's own). When all proposals are in,
    /// the median becomes the probe's delivery time; returns `true` once
    /// the delivery time is fixed.
    ///
    /// Unlike network packets there is no synchrony clamp against the
    /// replica's current *physical* virtual time: probe latencies are
    /// nanosecond-scale, so the agreed timestamp routinely lies behind
    /// the physical clock projection — the interrupt then simply fires at
    /// the next exit, and the *readout* (`deliver - issue`) stays a pure
    /// function of agreed values.
    pub fn add_cache_proposal(&mut self, probe_id: u64, proposal: VirtNanos) -> bool {
        let Some(pending) = self.cache_pending.get_mut(&probe_id) else {
            // A peer outran this replica: its guest proposed a probe ours
            // has not issued yet. Buffer the proposal; the local issue
            // drains it (dropping it would deadlock the agreement).
            self.early_cache.entry(probe_id).or_default().push(proposal);
            return false;
        };
        if pending.deliver.is_some() {
            return true;
        }
        pending.proposals.push(proposal);
        if pending.proposals.len() < pending.needed {
            return false;
        }
        let median = timestats::order_stats::median_odd_in_place(&mut pending.proposals);
        pending.deliver = Some(median);
        true
    }

    /// The host disk finished a transfer for `op_id`; the device model's
    /// hidden buffer now holds the data.
    ///
    /// If the virtual delivery time `V + Δd` already passed, Δd was too
    /// small (`dd_violations`), and the interrupt fires at the next exit —
    /// late relative to the other replicas.
    pub fn disk_ready(&mut self, profile: &SpeedProfile, now: SimTime, op_id: u64) {
        let cur_virt = self.virt_at(profile, now);
        let image = &self.image;
        let Some(pending) = self.disk.get_mut(&op_id) else {
            panic!("disk_ready for unknown op {op_id}");
        };
        let data = match pending.op {
            DiskOp::Read => image.read(pending.range),
            DiskOp::Write => Vec::new(),
        };
        pending.data = Some(data);
        if pending.deliver < cur_virt {
            // Under StopWatch this means Δd was sized too small (paper
            // Sec. V-A); under Baseline, delivering when the data is ready
            // is simply normal operation.
            if matches!(self.cfg.mode, DefenseMode::StopWatch { .. }) {
                self.counters.incr("dd_violations");
            }
            pending.deliver = cur_virt;
        }
    }

    /// The next absolute time at which this slot needs to run, given its
    /// pending work (`None` = fully idle until new input).
    pub fn next_wake(&self, profile: &SpeedProfile, now: SimTime) -> Option<SimTime> {
        let mut target: Option<u64> = None;
        let mut consider = |b: u64| match target {
            Some(t) if t <= b => {}
            _ => target = Some(b),
        };
        match self.actions.front() {
            Some(GuestAction::Compute { branches }) => {
                consider(self.compute_end.unwrap_or(self.pc + branches));
            }
            Some(_) => consider(self.pc), // zero-branch: due immediately
            None => {}
        }
        if self.program.wants_timer() {
            let tick = self.cfg.clocks.pit_tick_time(self.ticks_delivered + 1);
            consider(self.injection_branch(tick));
        }
        for d in self.disk.values() {
            if d.data.is_some() {
                consider(self.injection_branch(d.deliver));
            }
        }
        for n in self.net.values() {
            if let Some(deliver) = n.deliver {
                consider(self.injection_branch(deliver));
            }
        }
        for c in self.cache_pending.values() {
            if let Some(deliver) = c.deliver {
                consider(self.injection_branch(deliver));
            }
        }
        let target = target?;
        let start = now.max(self.resume_at);
        let phys = self.branches_at(profile, now);
        if target <= phys {
            return Some(start);
        }
        // time_for_branches inverts a float integration and can land a
        // branch or two short; nudge forward until the projection actually
        // reaches the target so process() at the wake finds the work due.
        let mut t = profile.time_for_branches(start, target - phys);
        for _ in 0..16 {
            if self.branches_at(profile, t) >= target {
                return Some(t);
            }
            t += simkit::time::SimDuration::from_nanos(2);
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheModel;
    use crate::guest::IdleGuest;
    use netsim::packet::Body;
    use simkit::rng::SimRng;
    use simkit::time::SimDuration;

    fn profile() -> SpeedProfile {
        // 1e9 branches/s, no jitter: 1 branch = 1 ns.
        SpeedProfile::new(
            1.0e9,
            0.0,
            SimDuration::from_millis(10),
            SimRng::new(1).stream("h"),
        )
    }

    fn stopwatch_cfg() -> SlotConfig {
        SlotConfig {
            endpoint: EndpointId(7),
            exit_every: 50_000, // 50 us at 1e9 b/s
            mode: DefenseMode::StopWatch {
                delta_n: VirtOffset::from_millis(10),
                delta_d: VirtOffset::from_millis(10),
                replicas: 3,
            },
            clocks: PlatformClocks::default(),
        }
    }

    fn clock() -> VirtualClock {
        VirtualClock::new(VirtNanos::ZERO, 1.0, None)
    }

    /// A guest that echoes each packet back to its sender and records the
    /// virtual receive times.
    #[derive(Default)]
    struct EchoGuest {
        recv_virt: Vec<VirtNanos>,
    }

    impl GuestProgram for EchoGuest {
        fn on_boot(&mut self, _env: &mut GuestEnv) {}
        fn on_packet(&mut self, packet: &Packet, env: &mut GuestEnv) {
            self.recv_virt.push(env.now);
            env.send(packet.src, Body::Raw { tag: 1, len: 64 });
        }
        fn on_disk_done(
            &mut self,
            _op: DiskOp,
            _range: BlockRange,
            _data: &[u64],
            _env: &mut GuestEnv,
        ) {
        }
    }

    /// A guest that reads a block at boot, then computes, then writes.
    struct DiskGuest;
    impl GuestProgram for DiskGuest {
        fn on_boot(&mut self, env: &mut GuestEnv) {
            env.disk_read(BlockRange::new(0, 4));
        }
        fn on_packet(&mut self, _p: &Packet, _env: &mut GuestEnv) {}
        fn on_disk_done(&mut self, op: DiskOp, _r: BlockRange, _d: &[u64], env: &mut GuestEnv) {
            if op == DiskOp::Read {
                env.compute(1_000_000);
                env.disk_write(BlockRange::new(10, 1), 99);
            }
        }
    }

    fn slot_with(program: Box<dyn GuestProgram>, mode: DefenseMode) -> GuestSlot {
        let mut cfg = stopwatch_cfg();
        cfg.mode = mode;
        GuestSlot::new(program, cfg, clock(), DiskImage::new(1 << 20))
    }

    #[test]
    fn idle_guest_has_no_wake() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(IdleGuest), DefenseMode::Baseline);
        let out = slot.boot(&p, &mut cache, SimTime::ZERO);
        assert!(out.is_empty());
        assert_eq!(slot.next_wake(&p, SimTime::ZERO), None);
    }

    #[test]
    fn virt_advances_while_idle() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(IdleGuest), DefenseMode::Baseline);
        slot.boot(&p, &mut cache, SimTime::ZERO);
        let v1 = slot.virt_at(&p, SimTime::from_millis(1));
        let v2 = slot.virt_at(&p, SimTime::from_millis(5));
        assert!(v2 > v1, "idle loop must keep virtual time moving");
        assert_eq!(v2.as_nanos(), 5_000_000); // slope 1, 1 branch/ns
    }

    #[test]
    fn virt_at_last_exit_quantizes() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(IdleGuest), DefenseMode::Baseline);
        slot.boot(&p, &mut cache, SimTime::ZERO);
        // At t=123.456us, branches=123456; last exit at 100000.
        let v = slot.virt_at_last_exit(&p, SimTime::from_nanos(123_456));
        assert_eq!(v.as_nanos(), 100_000);
    }

    #[test]
    fn stopwatch_packet_needs_median_before_delivery() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<EchoGuest>::default(), stopwatch_cfg().mode);
        slot.boot(&p, &mut cache, SimTime::ZERO);
        let pkt = Packet {
            src: EndpointId(1),
            dst: EndpointId(7),
            body: Body::Raw { tag: 0, len: 100 },
        };
        let t_arr = SimTime::from_millis(1);
        let outcome = slot.on_packet_arrival(&p, t_arr, 0, pkt);
        let ArrivalOutcome::Proposal(own) = outcome else {
            panic!("expected proposal")
        };
        // Own proposal = last-exit virt + Δn = 1ms floored to exit + 10ms.
        assert_eq!(own.as_nanos(), 1_000_000 + 10_000_000);
        // No delivery scheduled until all three proposals arrive.
        assert_eq!(slot.next_wake(&p, t_arr), None);
        assert!(!slot.add_proposal(&p, t_arr, 0, own));
        assert!(!slot.add_proposal(&p, t_arr, 0, VirtNanos::from_nanos(11_500_000)));
        assert!(slot.add_proposal(&p, t_arr, 0, VirtNanos::from_nanos(12_000_000)));
        // Median of {11.0ms, 11.5ms, 12.0ms} = 11.5ms.
        let wake = slot.next_wake(&p, t_arr).expect("delivery scheduled");
        // Injection at first exit with virt >= 11.5ms => branch 11.5e6
        // (already a multiple of 50k), at 1 branch/ns => t ~= 11.5ms.
        let ns = wake.as_nanos();
        assert!((11_500_000..11_500_050).contains(&ns), "wake at {ns}");
        // Process at the wake: packet injected, echo emitted.
        let out = slot.process(&p, &mut cache, wake);
        assert_eq!(out.len(), 1);
        match &out[0] {
            SlotOutput::Packet {
                out_seq,
                packet,
                virt,
            } => {
                assert_eq!(*out_seq, 0);
                assert_eq!(packet.src, EndpointId(7));
                assert_eq!(virt.as_nanos(), 11_500_000);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(slot.counters().get("net_irq"), 1);
        assert_eq!(slot.delivered_log().len(), 1);
        assert_eq!(slot.delivered_log()[0].1.as_nanos(), 11_500_000);
    }

    #[test]
    fn baseline_packet_delivers_at_next_exit() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<EchoGuest>::default(), DefenseMode::Baseline);
        slot.boot(&p, &mut cache, SimTime::ZERO);
        let pkt = Packet {
            src: EndpointId(1),
            dst: EndpointId(7),
            body: Body::Raw { tag: 0, len: 100 },
        };
        slot.on_packet_arrival(&p, SimTime::from_micros(130), 0, pkt);
        let wake = slot.next_wake(&p, SimTime::from_micros(130)).unwrap();
        // Delivery virt = 130us; next exit boundary at 150us (float
        // integration may land a nanosecond or two past it).
        let ns = wake.as_nanos();
        assert!((150_000..150_050).contains(&ns), "wake at {ns}");
        let out = slot.process(&p, &mut cache, wake);
        assert_eq!(out.len(), 1, "echo reply");
    }

    #[test]
    fn median_already_passed_counts_sync_violation() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<EchoGuest>::default(), stopwatch_cfg().mode);
        slot.boot(&p, &mut cache, SimTime::ZERO);
        let pkt = Packet {
            src: EndpointId(1),
            dst: EndpointId(7),
            body: Body::Raw { tag: 0, len: 100 },
        };
        slot.on_packet_arrival(&p, SimTime::from_millis(1), 0, pkt);
        // Peers propose times far in this replica's past.
        slot.add_proposal(&p, SimTime::from_millis(50), 0, VirtNanos::from_millis(2));
        slot.add_proposal(&p, SimTime::from_millis(50), 0, VirtNanos::from_millis(2));
        assert!(slot.add_proposal(&p, SimTime::from_millis(50), 0, VirtNanos::from_millis(2)));
        assert_eq!(slot.counters().get("sync_violations"), 1);
        // Still delivered (recovery), at current virt.
        let wake = slot.next_wake(&p, SimTime::from_millis(50)).unwrap();
        let out = slot.process(&p, &mut cache, wake);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn disk_flow_with_delta_d() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(DiskGuest), stopwatch_cfg().mode);
        let out = slot.boot(&p, &mut cache, SimTime::ZERO);
        // Boot issues the read immediately.
        assert_eq!(out.len(), 1);
        let SlotOutput::DiskSubmit { op_id, request } = &out[0] else {
            panic!("expected disk submit")
        };
        assert_eq!(request.op, DiskOp::Read);
        // Data ready at 3ms (before deliver = 0 + 10ms): no violation.
        slot.disk_ready(&p, SimTime::from_millis(3), *op_id);
        assert_eq!(slot.counters().get("dd_violations"), 0);
        let wake = slot.next_wake(&p, SimTime::from_millis(3)).unwrap();
        let ns = wake.as_nanos();
        assert!(
            (10_000_000..10_000_050).contains(&ns),
            "V + Δd wake at {ns}"
        );
        let out2 = slot.process(&p, &mut cache, wake);
        // Handler queues compute + write; the write issues after 1M
        // branches = 1ms later, so not yet.
        assert!(out2.is_empty());
        let wake2 = slot.next_wake(&p, wake).unwrap();
        let ns2 = wake2.as_nanos();
        assert!((11_000_000..11_000_050).contains(&ns2), "wake2 at {ns2}");
        let out3 = slot.process(&p, &mut cache, wake2);
        assert_eq!(out3.len(), 1);
        assert!(matches!(out3[0], SlotOutput::DiskSubmit { .. }));
        assert_eq!(slot.counters().get("disk_irq"), 1);
    }

    #[test]
    fn slow_disk_counts_dd_violation() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(DiskGuest), stopwatch_cfg().mode);
        let out = slot.boot(&p, &mut cache, SimTime::ZERO);
        let SlotOutput::DiskSubmit { op_id, .. } = &out[0] else {
            panic!()
        };
        // Data only ready at 25ms — past deliver = 10ms.
        slot.disk_ready(&p, SimTime::from_millis(25), *op_id);
        assert_eq!(slot.counters().get("dd_violations"), 1);
        let wake = slot.next_wake(&p, SimTime::from_millis(25)).unwrap();
        assert_eq!(wake, SimTime::from_millis(25));
        slot.process(&p, &mut cache, wake);
        assert_eq!(slot.counters().get("disk_irq"), 1);
    }

    #[test]
    fn replicas_deliver_identically_despite_speed_skew() {
        // Two replicas with different host speeds, same agreed proposals:
        // delivered virtual times AND emitted packets (content + virtual
        // stamp) must match exactly.
        let fast = SpeedProfile::new(
            1.05e9,
            0.02,
            SimDuration::from_millis(10),
            SimRng::new(2).stream("fast"),
        );
        let slow = SpeedProfile::new(
            0.95e9,
            0.02,
            SimDuration::from_millis(10),
            SimRng::new(2).stream("slow"),
        );
        let mut run = |p: &SpeedProfile| {
            let mut cache = CacheModel::new(8, 2);
            let mut slot = slot_with(Box::<EchoGuest>::default(), stopwatch_cfg().mode);
            slot.boot(p, &mut cache, SimTime::ZERO);
            let pkt = Packet {
                src: EndpointId(1),
                dst: EndpointId(7),
                body: Body::Raw { tag: 0, len: 100 },
            };
            // Packet arrives at (slightly) different real times per host.
            slot.on_packet_arrival(p, SimTime::from_micros(900), 0, pkt);
            for prop in [11_000_000u64, 11_500_000, 12_100_000] {
                slot.add_proposal(p, SimTime::from_millis(2), 0, VirtNanos::from_nanos(prop));
            }
            let wake = slot.next_wake(p, SimTime::from_millis(2)).unwrap();
            let out = slot.process(p, &mut cache, wake);
            (slot.delivered_log().to_vec(), out)
        };
        let (log_fast, out_fast) = run(&fast);
        let (log_slow, out_slow) = run(&slow);
        assert_eq!(log_fast, log_slow, "virtual delivery times identical");
        let key = |o: &SlotOutput| match o {
            SlotOutput::Packet {
                out_seq,
                packet,
                virt,
            } => (*out_seq, packet.content_hash(), *virt),
            _ => unreachable!(),
        };
        assert_eq!(key(&out_fast[0]), key(&out_slow[0]));
    }

    #[test]
    fn stall_freezes_virtual_time() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(IdleGuest), DefenseMode::Baseline);
        slot.boot(&p, &mut cache, SimTime::ZERO);
        slot.stall_until(&p, SimTime::from_millis(1), SimTime::from_millis(5));
        let v_mid = slot.virt_at(&p, SimTime::from_millis(3));
        assert_eq!(v_mid.as_nanos(), 1_000_000, "no progress while stalled");
        let v_after = slot.virt_at(&p, SimTime::from_millis(7));
        assert_eq!(v_after.as_nanos(), 3_000_000, "resumes after the stall");
        assert_eq!(slot.counters().get("stalls"), 1);
    }

    #[test]
    fn timer_irqs_delivered_when_opted_in() {
        struct TimerGuest {
            ticks: u64,
        }
        impl GuestProgram for TimerGuest {
            fn on_boot(&mut self, _env: &mut GuestEnv) {}
            fn on_packet(&mut self, _p: &Packet, _e: &mut GuestEnv) {}
            fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
            fn on_timer(&mut self, env: &mut GuestEnv) {
                self.ticks += 1;
                assert_eq!(env.pit_ticks, self.ticks);
            }
            fn wants_timer(&self) -> bool {
                true
            }
        }
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(TimerGuest { ticks: 0 }), DefenseMode::Baseline);
        slot.boot(&p, &mut cache, SimTime::ZERO);
        // First tick at virt 4ms (250 Hz).
        let wake = slot.next_wake(&p, SimTime::ZERO).unwrap();
        assert!((4_000_000..4_000_050).contains(&wake.as_nanos()));
        slot.process(&p, &mut cache, wake);
        assert_eq!(slot.counters().get("timer_irq"), 1);
        let wake2 = slot.next_wake(&p, wake).unwrap();
        assert!((8_000_000..8_000_050).contains(&wake2.as_nanos()));
    }

    #[test]
    fn mid_compute_injection_preserves_compute_completion() {
        // A packet injected mid-compute must not truncate the compute: the
        // compute still completes at its full branch allotment.
        struct BusyEcho;
        impl GuestProgram for BusyEcho {
            fn on_boot(&mut self, env: &mut GuestEnv) {
                env.compute(10_000_000); // 10ms of work
                env.send(EndpointId(1), Body::Raw { tag: 42, len: 10 });
            }
            fn on_packet(&mut self, _p: &Packet, env: &mut GuestEnv) {
                env.send(EndpointId(1), Body::Raw { tag: 43, len: 10 });
            }
            fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
        }
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(BusyEcho), DefenseMode::Baseline);
        slot.boot(&p, &mut cache, SimTime::ZERO);
        // Packet arrives at 2ms (mid-compute), delivered at exit ~2ms.
        let pkt = Packet {
            src: EndpointId(1),
            dst: EndpointId(7),
            body: Body::Raw { tag: 0, len: 10 },
        };
        slot.on_packet_arrival(&p, SimTime::from_millis(2), 0, pkt);
        let wake = slot.next_wake(&p, SimTime::from_millis(2)).unwrap();
        let out1 = slot.process(&p, &mut cache, wake);
        // The handler ran (echo 43 queued BEHIND the boot send? No: actions
        // queue FIFO: compute, send(42), then handler pushes send(43)).
        // At 2ms the compute is still running, so nothing emitted yet.
        assert!(out1.is_empty());
        let wake2 = slot.next_wake(&p, wake).unwrap();
        assert!(
            (10_000_000..10_000_050).contains(&wake2.as_nanos()),
            "compute completes near 10ms, got {wake2}"
        );
        let out2 = slot.process(&p, &mut cache, wake2);
        // Both sends now fire at pc = 10ms, in FIFO order.
        assert_eq!(out2.len(), 2);
        match (&out2[0], &out2[1]) {
            (
                SlotOutput::Packet {
                    packet: a,
                    virt: va,
                    ..
                },
                SlotOutput::Packet {
                    packet: b,
                    virt: vb,
                    ..
                },
            ) => {
                assert!(matches!(a.body, Body::Raw { tag: 42, .. }));
                assert!(matches!(b.body, Body::Raw { tag: 43, .. }));
                assert_eq!(va.as_nanos(), 10_000_000);
                assert_eq!(vb.as_nanos(), 10_000_000);
            }
            other => panic!("{other:?}"),
        }
    }

    /// A guest that probes two lines at boot (one it primed, one cold)
    /// and records the latency readouts.
    #[derive(Default)]
    struct CacheProber {
        readouts: Vec<(u64, u64)>,
    }

    impl GuestProgram for CacheProber {
        fn on_boot(&mut self, env: &mut GuestEnv) {
            env.cache_touch(3, 1); // primed: resident afterwards
            env.cache_probe(3, 1); // hit
            env.cache_probe(4, 9); // cold: miss
        }
        fn on_packet(&mut self, _p: &Packet, _env: &mut GuestEnv) {}
        fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
        fn on_cache_probe(&mut self, set: u64, _tag: u64, latency_ns: u64, _env: &mut GuestEnv) {
            self.readouts.push((set, latency_ns));
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    fn probe_readouts(slot: &mut GuestSlot) -> Vec<(u64, u64)> {
        slot.program_mut()
            .as_any_mut()
            .expect("prober")
            .downcast_mut::<CacheProber>()
            .expect("prober type")
            .readouts
            .clone()
    }

    #[test]
    fn baseline_cache_probe_reads_local_hit_and_miss() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<CacheProber>::default(), DefenseMode::Baseline);
        slot.boot(&p, &mut cache, SimTime::ZERO);
        // Probes issued at pc 0 deliver at +40/+400 ns; the injection exit
        // is the first one, at branch 50k = 50 us.
        let wake = slot.next_wake(&p, SimTime::ZERO).expect("probe wake");
        slot.process(&p, &mut cache, wake);
        assert_eq!(
            probe_readouts(&mut slot),
            vec![(3, CacheModel::HIT_NS), (4, CacheModel::MISS_NS)],
            "baseline readout is the local latency"
        );
        assert_eq!(slot.counters().get("cache_irq"), 2);
        assert_eq!(slot.counters().get("cache_probes"), 2);
        assert_eq!(slot.counters().get("cache_hits"), 1);
        assert_eq!(slot.counters().get("cache_misses"), 1);
        assert_eq!(cache.occupancy(7), 2, "primed line + cold probe resident");
    }

    #[test]
    fn stopwatch_median_overrides_the_local_miss() {
        // This replica's host had the probed line evicted (a coresident
        // victim, in the full cloud) — but the two peers read hits, so the
        // median readout is a hit: the coresidency channel is closed.
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<CacheProber>::default(), stopwatch_cfg().mode);
        let out = slot.boot(&p, &mut cache, SimTime::ZERO);
        let proposals: Vec<(u64, VirtNanos)> = out
            .iter()
            .map(|o| match o {
                SlotOutput::CacheProposal { probe_id, proposal } => (*probe_id, *proposal),
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(proposals.len(), 2, "one proposal per probe");
        assert_eq!(proposals[0].1.as_nanos(), u64::from(CacheModel::HIT_NS));
        assert_eq!(proposals[1].1.as_nanos(), u64::from(CacheModel::MISS_NS));
        // No delivery until the peers' proposals arrive.
        assert_eq!(slot.next_wake(&p, SimTime::ZERO), None);
        for (probe_id, own) in &proposals {
            // Own proposal (as the cloud would add it back), then peers.
            assert!(!slot.add_cache_proposal(*probe_id, *own));
            let peer = VirtNanos::from_nanos(CacheModel::HIT_NS);
            assert!(!slot.add_cache_proposal(*probe_id, peer));
            assert!(slot.add_cache_proposal(*probe_id, peer));
        }
        let wake = slot.next_wake(&p, SimTime::ZERO).expect("agreed wake");
        slot.process(&p, &mut cache, wake);
        assert_eq!(
            probe_readouts(&mut slot),
            vec![(3, CacheModel::HIT_NS), (4, CacheModel::HIT_NS)],
            "median of (miss, hit, hit) reads hit"
        );
    }

    #[test]
    fn early_peer_cache_proposals_are_buffered_not_dropped() {
        // A faster peer proposes probe 0 before this replica's guest even
        // reaches it; the proposal must survive until the local issue.
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<CacheProber>::default(), stopwatch_cfg().mode);
        let hit = VirtNanos::from_nanos(CacheModel::HIT_NS);
        assert!(!slot.add_cache_proposal(0, hit), "no pending yet");
        assert!(!slot.add_cache_proposal(0, hit));
        let out = slot.boot(&p, &mut cache, SimTime::ZERO);
        assert_eq!(out.len(), 2);
        // Both early proposals drained at issue; our own completes the set.
        let SlotOutput::CacheProposal { probe_id, proposal } = out[0].clone() else {
            panic!("{:?}", out[0]);
        };
        assert!(slot.add_cache_proposal(probe_id, proposal));
        let wake = slot.next_wake(&p, SimTime::ZERO).expect("probe 0 agreed");
        slot.process(&p, &mut cache, wake);
        assert_eq!(probe_readouts(&mut slot), vec![(3, CacheModel::HIT_NS)]);
    }

    #[test]
    #[should_panic(expected = "odd replica count")]
    fn even_replicas_rejected() {
        let mut cfg = stopwatch_cfg();
        cfg.mode = DefenseMode::StopWatch {
            delta_n: VirtOffset::from_millis(1),
            delta_d: VirtOffset::from_millis(1),
            replicas: 4,
        };
        GuestSlot::new(Box::new(IdleGuest), cfg, clock(), DiskImage::new(16));
    }
}
