//! The guest slot: all per-guest VMM state on one host.
//!
//! This is where the paper's mechanisms live:
//!
//! * the virtualized **branch counter** driving [`VirtualClock`];
//! * **guest-caused VM exits** every `exit_every` branches — the only
//!   points where interrupts are injected (Sec. IV-B);
//! * the **unified timing-channel core**: every interrupt class whose
//!   timing an attacker could observe — network packets (Sec. V-B,
//!   Fig. 3), shared-LLC probe readouts (Sec. III), and disk/DMA
//!   completions (Sec. V-A) — flows through one pending table, one
//!   early-proposal buffer, and one replica-median agreement path,
//!   parameterized by [`ChannelKind`] and its [`ChannelPolicy`]
//!   (Δn/Δd offsets, synchrony clamping);
//! * delivery of data *only at injection time* (no early polling);
//! * detection of synchrony violations (median already passed — paper
//!   footnote 4) and Δd violations (the local disk overran Δd).
//!
//! # Determinism model
//!
//! The slot tracks two branch counts:
//!
//! * `pc` — the guest's *logical* position in branch space. Everything the
//!   guest observes or emits is stamped at `pc`: handler clock reads, disk
//!   issue times `V`, output-packet virtual times. `pc` advances only by
//!   completed compute actions and by jumps to interrupt-injection exits —
//!   all pure functions of agreed values (median delivery times, channel
//!   offsets, tick schedule, the program's own action sizes). Three
//!   replicas therefore compute identical `pc` sequences and identical
//!   outputs.
//! * the *physical* branch count (a function of host wall-clock time via
//!   [`SpeedProfile`]) — which only *gates* when, in real time, each `pc`
//!   point is reached. Host speed differences shift real-time behaviour
//!   (absorbed by the offset/median machinery and the egress), never
//!   logical behaviour.

use crate::actions::ActionQueue;
use crate::cache::CacheModel;
use crate::channel::{ChannelKind, ChannelPolicy};
use crate::clock::VirtualClock;
pub use crate::defense::{DefenseMode, ReleaseRule};
use crate::devices::PlatformClocks;
use crate::guest::{GuestAction, GuestEnv, GuestProgram};
use crate::pending::{ChannelPayload, PendingTable};
use crate::speed::SpeedProfile;
use netsim::packet::{EndpointId, Packet};
use simkit::fxhash::FxHashMap;
use simkit::metrics::Counters;
use simkit::time::{SimTime, VirtNanos, VirtOffset};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use storage::block::{BlockRange, DiskImage};
use storage::device::{DiskOp, DiskRequest};

/// Static configuration of a guest slot.
#[derive(Debug, Clone)]
pub struct SlotConfig {
    /// The guest's network endpoint identity.
    pub endpoint: EndpointId,
    /// Branches between guest-caused VM exits (injection opportunities).
    pub exit_every: u64,
    /// Defense mode.
    pub mode: DefenseMode,
    /// Emulated platform clocks.
    pub clocks: PlatformClocks,
}

/// A structured slot failure: a malformed scenario (or a driver bug)
/// surfaces as an error that fails the owning sweep *cell*, not a panic
/// that takes down the whole sweep process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotError {
    /// `disk_ready` named an operation the device model is not tracking.
    UnknownDiskOp {
        /// The unknown slot-local operation id.
        op_id: u64,
    },
    /// A disk interrupt came due with no data in the hidden buffer.
    MissingDiskData {
        /// The affected operation id.
        op_id: u64,
    },
    /// A due interrupt's pending entry vanished or never fixed a delivery
    /// time.
    MissingDelivery {
        /// The affected channel.
        kind: ChannelKind,
        /// The channel-local id.
        id: u64,
    },
    /// A guest armed a virtual timer with an unusable program: a zero (or
    /// otherwise non-future) deadline, or a zero period.
    BadTimerDeadline {
        /// The guest-chosen timer id.
        timer_id: u64,
        /// The rejected deadline.
        deadline: VirtNanos,
    },
    /// A periodic timer's re-arm overflowed virtual time.
    TimerOverflow {
        /// The guest-chosen timer id.
        timer_id: u64,
    },
    /// `timer_elapsed` named a fire this slot is not tracking.
    UnknownTimerFire {
        /// The unknown slot-local fire sequence number.
        fire_seq: u64,
    },
}

impl std::fmt::Display for SlotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlotError::UnknownDiskOp { op_id } => {
                write!(f, "disk_ready for unknown op {op_id}")
            }
            SlotError::MissingDiskData { op_id } => {
                write!(f, "disk op {op_id} came due without data in the buffer")
            }
            SlotError::MissingDelivery { kind, id } => {
                write!(
                    f,
                    "{} interrupt {id} came due without an agreed delivery time",
                    kind.name()
                )
            }
            SlotError::BadTimerDeadline { timer_id, deadline } => {
                write!(
                    f,
                    "guest timer {timer_id} mis-programmed: deadline {}ns is not in the future \
                     (or its period is zero)",
                    deadline.as_nanos()
                )
            }
            SlotError::TimerOverflow { timer_id } => {
                write!(
                    f,
                    "periodic timer {timer_id} re-arm overflowed virtual time"
                )
            }
            SlotError::UnknownTimerFire { fire_seq } => {
                write!(f, "timer_elapsed for unknown fire {fire_seq}")
            }
        }
    }
}

impl std::error::Error for SlotError {}

/// Something the slot wants the outside world (host/cloud) to do.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotOutput {
    /// The guest emitted a packet at virtual time `virt` (output number
    /// `out_seq`); under StopWatch the host tunnels it to the egress node.
    Packet {
        /// Per-guest output sequence number (identical across replicas).
        out_seq: u64,
        /// The packet (src patched to the guest endpoint).
        packet: Packet,
        /// Virtual emission time.
        virt: VirtNanos,
    },
    /// The guest issued a disk request; submit it to the host disk.
    DiskSubmit {
        /// Slot-local operation id.
        op_id: u64,
        /// The request.
        request: DiskRequest,
    },
    /// StopWatch: this VMM proposes a delivery timestamp for channel
    /// `kind`'s event `seq`; multicast it to the peer VMMs, which adopt
    /// the median (Fig. 3's flow, for whichever channel emitted it).
    Proposal {
        /// The timing channel the proposal belongs to.
        kind: ChannelKind,
        /// Channel-local event id (identical across replicas).
        seq: u64,
        /// Proposed virtual delivery time.
        proposal: VirtNanos,
    },
    /// The guest armed a virtual timer: the host must schedule a hardware
    /// timer event at this slot's physical projection of `deadline` and
    /// call back [`GuestSlot::timer_elapsed`] with `fire_seq` when it
    /// elapses (the vCPU scheduler adds its dispatch delay there).
    TimerArm {
        /// Slot-local fire sequence number (identical across replicas).
        fire_seq: u64,
        /// The programmed absolute virtual deadline.
        deadline: VirtNanos,
    },
}

/// Outcome of channel input arriving at this slot's device model (an
/// inbound packet, a finished disk transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOutcome {
    /// StopWatch: the VMM proposes this virtual delivery time; multicast it
    /// to the peer VMMs.
    Proposal(VirtNanos),
    /// Baseline: delivery scheduled immediately; just recompute the wake.
    Scheduled,
}

/// The median of `needed` proposals when the `received` subset alone
/// determines it. With `m = needed / 2` (odd `needed`) and `missing`
/// proposals outstanding, the full-set median is bracketed by the order
/// statistics `received[m - missing]` (every missing value below) and
/// `received[m]` (every missing value above); when those coincide, no
/// completion can move the median off that value.
fn median_if_determined(received: &[VirtNanos], needed: usize) -> Option<VirtNanos> {
    let m = needed / 2;
    let missing = needed - received.len();
    if m >= received.len() || m < missing {
        return None;
    }
    let mut sorted = received.to_vec();
    sorted.sort_unstable();
    (sorted[m - missing] == sorted[m]).then(|| sorted[m])
}

/// Memo key for [`GuestSlot::next_wake`]: `(target branch, synced
/// branches, synced_at nanos, resume_at nanos, profile generation)`.
type WakeKey = (u64, u64, u64, u64, u64);

/// All per-guest state of the VMM on one host.
pub struct GuestSlot {
    program: Box<dyn GuestProgram>,
    cfg: SlotConfig,
    clock: VirtualClock,
    image: DiskImage,
    // Physical execution state.
    branches: u64,
    synced_at: SimTime,
    resume_at: SimTime,
    // Logical (deterministic) execution state.
    pc: u64,
    compute_end: Option<u64>,
    actions: ActionQueue,
    booted: bool,
    // The unified timing-channel core: one pending table and one
    // early-proposal buffer for every channel kind. The table is
    // struct-of-arrays (see [`crate::pending`]): the injection scans walk
    // dense columns of cached branch positions instead of a tree of
    // payload-sized nodes.
    pending: PendingTable,
    /// Peer proposals that arrived before this replica opened the matching
    /// pending entry (replicas run at different physical speeds); drained
    /// when the entry opens. Dropping them would deadlock the agreement.
    /// Keyed by `(kind id, seq)`; every access is a point query, so the
    /// map is hashed, not ordered.
    early: FxHashMap<(u8, u64), Vec<VirtNanos>>,
    /// Whether the guest program takes PIT ticks — a constant of the
    /// program, cached off the hot scheduling scans.
    wants_timer: bool,
    /// Memoized next PIT-tick injection point: `(tick number, tick virt
    /// nanos, injection branch)`. The tick schedule and the clock are
    /// fixed at construction, so an entry stays valid until
    /// `ticks_delivered` moves past it.
    pit_memo: Cell<(u64, u64, u64)>,
    /// Memoized [`GuestSlot::next_wake`] projection: `(key, wake nanos)`
    /// where the key captures every input the float inversion depends on
    /// — target branch, synced branch count, sync/resume instants, and
    /// the speed profile's generation. While none of those move (the
    /// common case: a burst of proposal arrivals re-probing the wake
    /// without a sync in between), the cached absolute wake time is
    /// returned with zero float work.
    wake_memo: Cell<Option<(WakeKey, u64)>>,
    next_op_id: u64,
    next_probe_id: u64,
    next_fire_seq: u64,
    /// Armed virtual timers: guest timer id -> live fire sequence number.
    armed: BTreeMap<u64, u64>,
    /// Fires cancelled after their hardware event was scheduled; the
    /// elapse callback consumes (and ignores) them, so the set never
    /// outlives its events.
    cancelled_fires: BTreeSet<u64>,
    out_seq: u64,
    ticks_delivered: u64,
    // Telemetry.
    counters: Counters,
    delivered_log: Vec<(u64, VirtNanos)>,
}

impl std::fmt::Debug for GuestSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuestSlot")
            .field("endpoint", &self.cfg.endpoint)
            .field("branches", &self.branches)
            .field("pc", &self.pc)
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl GuestSlot {
    /// Creates a slot for `program` with the given clock and (replicated)
    /// disk image.
    ///
    /// # Panics
    ///
    /// Panics if `exit_every == 0` or a StopWatch mode names fewer than
    /// 3 or an even number of replicas.
    pub fn new(
        program: Box<dyn GuestProgram>,
        cfg: SlotConfig,
        clock: VirtualClock,
        image: DiskImage,
    ) -> Self {
        assert!(cfg.exit_every > 0, "exit_every must be positive");
        if let DefenseMode::StopWatch { replicas, .. } = cfg.mode {
            assert!(
                replicas >= 3 && replicas % 2 == 1,
                "StopWatch needs an odd replica count >= 3"
            );
        }
        let wants_timer = program.wants_timer();
        GuestSlot {
            program,
            cfg,
            clock,
            image,
            branches: 0,
            synced_at: SimTime::ZERO,
            resume_at: SimTime::ZERO,
            pc: 0,
            compute_end: None,
            actions: ActionQueue::new(),
            booted: false,
            pending: PendingTable::default(),
            early: FxHashMap::default(),
            wants_timer,
            pit_memo: Cell::new((0, 0, 0)),
            wake_memo: Cell::new(None),
            next_op_id: 0,
            next_probe_id: 0,
            next_fire_seq: 0,
            armed: BTreeMap::new(),
            cancelled_fires: BTreeSet::new(),
            out_seq: 0,
            ticks_delivered: 0,
            counters: Counters::new(),
            delivered_log: Vec::new(),
        }
    }

    /// The guest's endpoint identity.
    pub fn endpoint(&self) -> EndpointId {
        self.cfg.endpoint
    }

    /// Slot telemetry: `net_irq`, `disk_irq`, `timer_irq`, `cache_irq`,
    /// `vtimer_irq`, `timer_arms`, `packets_out`, `cache_refs`,
    /// `cache_probes`, `cache_hits`, `cache_misses`, `dd_violations`,
    /// `dt_violations`, `sched_preemptions`, `sync_violations`, `stalls`.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// `(ingress seq, virtual delivery time)` of every network interrupt
    /// injected so far — identical across replicas; the attacker's Fig. 4
    /// observable.
    pub fn delivered_log(&self) -> &[(u64, VirtNanos)] {
        &self.delivered_log
    }

    /// Fingerprint of the guest's disk state (replica divergence checks).
    pub fn disk_fingerprint(&self) -> u64 {
        self.image.content_fingerprint()
    }

    /// A mutable handle to the guest program (for extracting recorded
    /// observations after a run).
    pub fn program_mut(&mut self) -> &mut dyn GuestProgram {
        &mut *self.program
    }

    /// The guest's logical branch position.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// `true` while the guest has queued work (it is computing or doing
    /// I/O rather than idling) — the signal that drives host contention.
    pub fn is_busy(&self) -> bool {
        !self.actions.is_empty()
    }

    /// Enables or disables consecutive-`Compute` coalescing in the action
    /// queue (on by default; the cloud's scalar-reference mode turns it
    /// off so the reference arm executes the pre-batching action stream
    /// entry for entry).
    pub fn set_coalesce_compute(&mut self, on: bool) {
        self.actions.set_coalesce(on);
    }

    /// Physical branches retired as of the last sync.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Physical branch count at arbitrary `now` (read-only projection).
    pub fn branches_at(&self, profile: &SpeedProfile, now: SimTime) -> u64 {
        let start = self.synced_at.max(self.resume_at);
        if now <= start {
            return self.branches;
        }
        self.branches + profile.branches_between(start, now)
    }

    /// Virtual time at physical `now`.
    pub fn virt_at(&self, profile: &SpeedProfile, now: SimTime) -> VirtNanos {
        self.clock.virt(self.branches_at(profile, now))
    }

    /// Virtual time as of the last guest-caused VM exit before `now` —
    /// what the network device model reads from shared memory when
    /// computing a proposal (Fig. 3).
    pub fn virt_at_last_exit(&self, profile: &SpeedProfile, now: SimTime) -> VirtNanos {
        let b = self.branches_at(profile, now);
        self.clock.virt(b - b % self.cfg.exit_every)
    }

    /// Stalls guest execution until `t` (fastest-replica pacing, Sec. V-A:
    /// the gap between the two fastest replicas "can be limited by slowing
    /// the execution of the fastest replica").
    pub fn stall_until(&mut self, profile: &SpeedProfile, now: SimTime, t: SimTime) {
        self.sync(profile, now);
        self.resume_at = self.resume_at.max(t);
        self.counters.incr("stalls");
    }

    fn sync(&mut self, profile: &SpeedProfile, now: SimTime) {
        let start = self.synced_at.max(self.resume_at);
        if now > start {
            self.branches += profile.branches_between(start, now);
        }
        self.synced_at = self.synced_at.max(now);
    }

    fn exit_ceil(&self, b: u64) -> u64 {
        b.div_ceil(self.cfg.exit_every) * self.cfg.exit_every
    }

    /// Branch count of the first guest-caused exit at which an interrupt
    /// with virtual delivery time `deliver` can be injected.
    fn injection_branch(&self, deliver: VirtNanos) -> u64 {
        self.exit_ceil(self.clock.instr_for(deliver))
    }

    /// The next PIT tick's `(virtual time, injection branch)`, memoized.
    /// The tick schedule and the clock never change after construction,
    /// so the pair is a pure function of `ticks_delivered` — the two
    /// scheduling scans share one float inversion per delivered tick
    /// instead of redoing it per call.
    fn pit_candidate(&self) -> (VirtNanos, u64) {
        let n = self.ticks_delivered + 1;
        let (memo_n, tick_ns, branch) = self.pit_memo.get();
        if memo_n == n {
            return (VirtNanos::from_nanos(tick_ns), branch);
        }
        let tick = self.cfg.clocks.pit_tick_time(n);
        let branch = self.injection_branch(tick);
        self.pit_memo.set((n, tick.as_nanos(), branch));
        (tick, branch)
    }

    /// The policy of one channel under the current defense mode (local
    /// arms never consult a channel policy — their entries are delivered
    /// at locally decided, release-rule-shaped times).
    fn policy(&self, kind: ChannelKind) -> Option<&ChannelPolicy> {
        match &self.cfg.mode {
            DefenseMode::StopWatch { channels, .. } => Some(channels.policy(kind)),
            DefenseMode::Local { .. } => None,
        }
    }

    /// A local arm's delivery time for an event locally observed at
    /// `local`, anchored at `reference` where the event has a
    /// replica-identical issue instant (see [`ReleaseRule::apply`]).
    /// Identity under baseline; never called in StopWatch mode.
    fn local_release(&self, local: VirtNanos, reference: Option<VirtNanos>) -> VirtNanos {
        match self.cfg.mode {
            DefenseMode::Local { release } => release.apply(local, reference),
            DefenseMode::StopWatch { .. } => local,
        }
    }

    /// Runs a guest handler at logical position `at_pc`. `irq_timestamp`
    /// is the serviced interrupt's (agreed) delivery time — what the
    /// virtual device's completion register exposes — or `None` outside
    /// interrupt handlers.
    fn run_handler<F>(&mut self, at_pc: u64, irq_timestamp: Option<VirtNanos>, f: F)
    where
        F: FnOnce(&mut dyn GuestProgram, &mut GuestEnv),
    {
        let v = self.clock.virt(at_pc);
        let mut env = GuestEnv::new(
            v,
            irq_timestamp,
            self.cfg.clocks.pit_ticks(v),
            self.cfg.clocks.rdtsc(v),
            self.cfg.clocks.rtc_secs(v),
            at_pc,
            &mut self.actions,
        );
        f(&mut *self.program, &mut env);
    }

    /// Boots the guest and processes any immediately runnable work.
    /// `cache` is the host's shared LLC (every slot on a host gets the
    /// same one).
    ///
    /// # Errors
    ///
    /// Propagates [`SlotError`]s from processing.
    ///
    /// # Panics
    ///
    /// Panics on double boot.
    pub fn boot(
        &mut self,
        profile: &SpeedProfile,
        cache: &mut CacheModel,
        now: SimTime,
    ) -> Result<Vec<SlotOutput>, SlotError> {
        assert!(!self.booted, "double boot");
        self.booted = true;
        self.synced_at = now;
        self.run_handler(0, None, |prog, env| prog.on_boot(env));
        self.process(profile, cache, now)
    }

    /// The earliest due interrupt at physical position `phys`, ordered by
    /// `(injection branch, delivery virt, class rank, id)` —
    /// replica-identical. The rank keeps the legacy timer/disk/net/cache
    /// order (see [`ChannelKind::injection_rank`]).
    fn next_due_injection(
        &self,
        phys: u64,
    ) -> Option<(u64, VirtNanos, u8, u64, Option<ChannelKind>)> {
        let mut best: Option<(u64, VirtNanos, u8, u64, Option<ChannelKind>)> = None;
        let mut consider = |cand: (u64, VirtNanos, u8, u64, Option<ChannelKind>)| {
            if cand.0 <= phys && best.as_ref().is_none_or(|b| cand < *b) {
                best = Some(cand);
            }
        };
        if self.wants_timer {
            let (tick, branch) = self.pit_candidate();
            consider((branch, tick, 0, 0, None));
        }
        self.pending.for_each_due(|branch, deliver, kind, id| {
            consider((branch, deliver, kind.injection_rank(), id, Some(kind)));
        });
        best
    }

    /// Processes everything due at `now`: completes actions, injects due
    /// interrupts, runs handlers. Returns emitted outputs. `cache` is the
    /// host's shared LLC.
    ///
    /// # Errors
    ///
    /// Surfaces malformed channel state ([`SlotError`]) instead of
    /// panicking, so a broken scenario fails its cell only.
    pub fn process(
        &mut self,
        profile: &SpeedProfile,
        cache: &mut CacheModel,
        now: SimTime,
    ) -> Result<Vec<SlotOutput>, SlotError> {
        self.sync(profile, now);
        let phys = self.branches;
        let mut out = Vec::new();
        loop {
            // Pin down the head compute's completion point in pc space.
            // The queue is told: from here on, new computes must not
            // coalesce into this (now executing) entry — its stored
            // branch count is dead, the pinned end below is the truth.
            if self.compute_end.is_none() {
                if let Some(GuestAction::Compute { branches }) = self.actions.front() {
                    self.compute_end = Some(self.pc + branches);
                    self.actions.pin_front();
                }
            }
            // Candidates, ordered by (branch position, rank): compute
            // completion (0), interrupt injection (1), zero-branch head
            // action (2). Lowest position wins; the fixed rank order keeps
            // replicas identical.
            let mut best: Option<(u64, u8)> = None;
            if let Some(end) = self.compute_end {
                if end <= phys {
                    best = Some((end, 0));
                }
            }
            let inj = self.next_due_injection(phys);
            if let Some((ib, _, _, _, _)) = inj {
                let pos = ib.max(self.pc);
                if best.is_none_or(|b| (pos, 1) < b) {
                    best = Some((pos, 1));
                }
            }
            let head_is_zero_branch = matches!(
                self.actions.front(),
                Some(GuestAction::DiskRead { .. })
                    | Some(GuestAction::DiskWrite { .. })
                    | Some(GuestAction::Send { .. })
                    | Some(GuestAction::Call { .. })
                    | Some(GuestAction::CacheTouch { .. })
                    | Some(GuestAction::CacheProbe { .. })
                    | Some(GuestAction::SetTimer { .. })
                    | Some(GuestAction::CancelTimer { .. })
            );
            if head_is_zero_branch && best.is_none_or(|b| (self.pc, 2) < b) {
                best = Some((self.pc, 2));
            }
            let Some((pos, rank)) = best else { break };
            debug_assert!(pos <= phys, "processing beyond physical progress");
            match rank {
                0 => {
                    self.pc = self.compute_end.take().expect("compute end set");
                    self.actions.pop_front();
                }
                1 => {
                    let (ib, _deliver, _rank, id, kind) = inj.expect("injection candidate");
                    self.pc = self.pc.max(ib);
                    self.inject(kind, id, &mut out)?;
                }
                _ => {
                    let action = self.actions.pop_front().expect("zero-branch head");
                    self.execute_zero_branch(action, cache, &mut out)?;
                }
            }
        }
        Ok(out)
    }

    fn execute_zero_branch(
        &mut self,
        action: GuestAction,
        cache: &mut CacheModel,
        out: &mut Vec<SlotOutput>,
    ) -> Result<(), SlotError> {
        match action {
            GuestAction::DiskRead { range } => {
                out.push(self.issue_disk(DiskOp::Read, range, 0));
            }
            GuestAction::DiskWrite { range, value } => {
                out.push(self.issue_disk(DiskOp::Write, range, value));
            }
            GuestAction::Send { dst, body } => {
                let packet = Packet::new(self.cfg.endpoint, dst, body);
                let virt = self.clock.virt(self.pc);
                let seq = self.out_seq;
                self.out_seq += 1;
                self.counters.incr("packets_out");
                out.push(SlotOutput::Packet {
                    out_seq: seq,
                    packet,
                    virt,
                });
            }
            GuestAction::Call { token } => {
                let at_pc = self.pc;
                self.run_handler(at_pc, None, |prog, env| prog.on_call(token, env));
            }
            GuestAction::CacheTouch { set, tag } => {
                cache.touch(self.cfg.endpoint.0, set, tag);
                self.counters.incr("cache_refs");
            }
            GuestAction::CacheProbe { set, tag } => {
                let latency = cache.probe(self.cfg.endpoint.0, set, tag);
                self.counters.incr("cache_probes");
                self.counters.incr(if latency == CacheModel::HIT_NS {
                    "cache_hits"
                } else {
                    "cache_misses"
                });
                let issue_virt = self.clock.virt(self.pc);
                let local = issue_virt + VirtOffset::from_nanos(latency);
                let probe_id = self.next_probe_id;
                self.next_probe_id += 1;
                let payload = ChannelPayload::Cache {
                    set,
                    tag,
                    issue_virt,
                };
                match self.policy(ChannelKind::Cache) {
                    Some(policy) => {
                        // Hidden until the replicas agree: propose our
                        // locally measured completion time and wait for
                        // the median (Fig. 3's flow, cache edition).
                        let proposal = local + policy.offset;
                        self.open_pending(ChannelKind::Cache, probe_id, payload);
                        out.push(SlotOutput::Proposal {
                            kind: ChannelKind::Cache,
                            seq: probe_id,
                            proposal,
                        });
                    }
                    None => {
                        // Local arm: the release-rule-shaped local
                        // latency is the readout (identity = baseline).
                        let deliver = self.local_release(local, Some(issue_virt));
                        let branch = self.injection_branch(deliver);
                        self.pending.insert_local(
                            ChannelKind::Cache,
                            probe_id,
                            payload,
                            deliver,
                            branch,
                        );
                    }
                }
            }
            GuestAction::SetTimer {
                timer_id,
                deadline,
                period,
            } => {
                let now_virt = self.clock.virt(self.pc);
                if deadline <= now_virt || period.is_some_and(|p| p.as_nanos() == 0) {
                    // A zero (or otherwise non-future) deadline and a
                    // zero period are guest programming errors: surface a
                    // structured failure that fails this sweep cell, not
                    // a panic that takes down the whole sweep.
                    return Err(SlotError::BadTimerDeadline { timer_id, deadline });
                }
                self.arm_timer(timer_id, deadline, period, out);
            }
            GuestAction::CancelTimer { timer_id } => {
                // Unknown ids are a silent no-op; a cancel that logically
                // follows the fire loses the race identically on every
                // replica (the fire's injection sorts before this action).
                if let Some(fire_seq) = self.armed.remove(&timer_id) {
                    self.cancel_fire(fire_seq);
                }
            }
            GuestAction::Compute { .. } => unreachable!("compute handled in main loop"),
        }
        Ok(())
    }

    /// Arms `timer_id` for `deadline` (replacing any live arm of the same
    /// id) and emits the [`SlotOutput::TimerArm`] the host turns into a
    /// hardware timer event. The pending entry opens *now*, on every
    /// replica, at the same logical point — which is why early peer timer
    /// proposals can always be buffered (see [`ChannelPolicy`]).
    fn arm_timer(
        &mut self,
        timer_id: u64,
        deadline: VirtNanos,
        period: Option<VirtOffset>,
        out: &mut Vec<SlotOutput>,
    ) {
        if let Some(old) = self.armed.remove(&timer_id) {
            self.cancel_fire(old);
        }
        let fire_seq = self.next_fire_seq;
        self.next_fire_seq += 1;
        self.armed.insert(timer_id, fire_seq);
        self.counters.incr("timer_arms");
        let payload = ChannelPayload::Timer {
            timer_id,
            deadline,
            period,
        };
        match self.cfg.mode {
            DefenseMode::StopWatch { .. } => {
                // The fire time is agreed later, when each host's timer
                // hardware elapses and the replicas exchange Δt proposals
                // (see `timer_elapsed`).
                self.open_pending(ChannelKind::Timer, fire_seq, payload);
            }
            DefenseMode::Local { .. } => {
                // Delivered at the locally observed fire; `timer_elapsed`
                // fixes the time (deadline + vCPU dispatch delay, shaped
                // by the arm's release rule).
                self.pending
                    .insert_agreeing(ChannelKind::Timer, fire_seq, payload, 1);
            }
        }
        out.push(SlotOutput::TimerArm { fire_seq, deadline });
    }

    /// Forgets a live fire: its pending entry, any buffered early peer
    /// proposals, and marks it so the already-scheduled hardware event is
    /// consumed silently.
    fn cancel_fire(&mut self, fire_seq: u64) {
        self.pending.remove(ChannelKind::Timer, fire_seq);
        self.early.remove(&(ChannelKind::Timer.id(), fire_seq));
        self.cancelled_fires.insert(fire_seq);
    }

    /// Opens an agreement entry for `(kind, seq)` and drains any peer
    /// proposals that outran this replica. The drain can never complete
    /// the proposal set (PGM dedups retransmits, so at most
    /// `replicas - 1` peers are buffered and this replica's own proposal
    /// is still outstanding), so no clamp check is needed here — the
    /// zero sentinel would skip it in the impossible case.
    fn open_pending(&mut self, kind: ChannelKind, seq: u64, payload: ChannelPayload) {
        let DefenseMode::StopWatch { replicas, .. } = self.cfg.mode else {
            unreachable!("agreement entries are a StopWatch flow");
        };
        self.pending.insert_agreeing(kind, seq, payload, replicas);
        if let Some(early) = self.early.remove(&(kind.id(), seq)) {
            for p in early {
                self.record_proposal(kind, seq, p, VirtNanos::ZERO);
            }
        }
    }

    fn inject(
        &mut self,
        kind: Option<ChannelKind>,
        id: u64,
        out: &mut Vec<SlotOutput>,
    ) -> Result<(), SlotError> {
        let at_pc = self.pc;
        let Some(kind) = kind else {
            let tick = self.cfg.clocks.pit_tick_time(self.ticks_delivered + 1);
            self.ticks_delivered += 1;
            self.counters.incr("timer_irq");
            self.run_handler(at_pc, Some(tick), |prog, env| prog.on_timer(env));
            return Ok(());
        };
        let (payload, deliver) = self
            .pending
            .remove(kind, id)
            .ok_or(SlotError::MissingDelivery { kind, id })?;
        let deliver = deliver.ok_or(SlotError::MissingDelivery { kind, id })?;
        match payload {
            ChannelPayload::Net { packet } => {
                self.counters.incr("net_irq");
                self.delivered_log.push((id, deliver));
                self.run_handler(at_pc, Some(deliver), |prog, env| {
                    prog.on_packet(&packet, env)
                });
            }
            ChannelPayload::Cache {
                set,
                tag,
                issue_virt,
            } => {
                self.counters.incr("cache_irq");
                // The readout the guest sees: agreed completion minus the
                // (replica-identical) issue instant — a pure function of
                // agreed values, so all replicas observe the same latency.
                let latency_ns = (deliver - issue_virt).as_nanos();
                self.run_handler(at_pc, Some(deliver), |prog, env| {
                    prog.on_cache_probe(set, tag, latency_ns, env)
                });
            }
            ChannelPayload::Disk {
                op, range, data, ..
            } => {
                self.counters.incr("disk_irq");
                // Data is copied into the guest address space only now (no
                // early polling, Sec. V-A).
                let data = data.ok_or(SlotError::MissingDiskData { op_id: id })?;
                self.run_handler(at_pc, Some(deliver), |prog, env| {
                    prog.on_disk_done(op, range, &data, env)
                });
            }
            ChannelPayload::Timer {
                timer_id,
                deadline,
                period,
            } => {
                self.counters.incr("vtimer_irq");
                if self.armed.get(&timer_id) == Some(&id) {
                    self.armed.remove(&timer_id);
                }
                self.run_handler(at_pc, Some(deliver), |prog, env| {
                    prog.on_vtimer(timer_id, env)
                });
                if let Some(p) = period {
                    // Periodic mode: re-arm from the *programmed* deadline
                    // (not the delivery time), catching up past periods so
                    // a delivery median beyond deadline+period cannot wedge
                    // the timer. `pc` is logical, so the catch-up target is
                    // replica-identical.
                    let now_virt = self.clock.virt(self.pc);
                    let mut next = deadline;
                    while next <= now_virt {
                        next = VirtNanos::from_nanos(
                            next.as_nanos()
                                .checked_add(p.as_nanos())
                                .ok_or(SlotError::TimerOverflow { timer_id })?,
                        );
                    }
                    self.arm_timer(timer_id, next, Some(p), out);
                }
            }
        }
        Ok(())
    }

    fn issue_disk(&mut self, op: DiskOp, range: BlockRange, value: u64) -> SlotOutput {
        if op == DiskOp::Write {
            self.image.write(range, value);
        }
        let op_id = self.next_op_id;
        self.next_op_id += 1;
        let payload = ChannelPayload::Disk {
            op,
            range,
            issue_virt: self.clock.virt(self.pc),
            data: None,
        };
        match self.cfg.mode {
            DefenseMode::StopWatch { .. } => {
                // The completion timestamp is agreed later, when the host
                // transfers finish and the replicas exchange proposals
                // (see `disk_ready`). Peers with faster disks may already
                // have proposed this op.
                self.open_pending(ChannelKind::Disk, op_id, payload);
            }
            DefenseMode::Local { .. } => {
                // Delivered when the data is ready; `disk_ready` fixes the
                // time (shaped by the arm's release rule).
                self.pending
                    .insert_agreeing(ChannelKind::Disk, op_id, payload, 1);
            }
        }
        SlotOutput::DiskSubmit {
            op_id,
            request: DiskRequest { op, range },
        }
    }

    /// An inbound packet reached this host's device model (step 1 of
    /// Fig. 3). Under StopWatch it is hidden from the guest and a delivery
    /// proposal is returned for multicast; under Baseline it is scheduled
    /// for the next exit.
    pub fn on_packet_arrival(
        &mut self,
        profile: &SpeedProfile,
        now: SimTime,
        ingress_seq: u64,
        packet: Packet,
    ) -> ArrivalOutcome {
        let payload = ChannelPayload::Net { packet };
        match self.policy(ChannelKind::Net) {
            Some(policy) => {
                let proposal = self.virt_at_last_exit(profile, now) + policy.offset;
                self.open_pending(ChannelKind::Net, ingress_seq, payload);
                ArrivalOutcome::Proposal(proposal)
            }
            None => {
                // No replica-identical anchor for an external arrival:
                // local arms shape the absolute arrival time.
                let deliver = self.local_release(self.virt_at(profile, now), None);
                let branch = self.injection_branch(deliver);
                self.pending
                    .insert_local(ChannelKind::Net, ingress_seq, payload, deliver, branch);
                ArrivalOutcome::Scheduled
            }
        }
    }

    /// The host disk finished a transfer for `op_id`; the device model's
    /// hidden buffer now holds the data.
    ///
    /// Under StopWatch this VMM now proposes the op's delivery timestamp
    /// — `issue virt + Δd`, or the current virtual time if the local disk
    /// overran Δd (sized too small, paper Sec. V-A: `dd_violations`
    /// counts it) — and the caller multicasts it; delivery happens at the
    /// replica median, so one contended disk cannot shift what any guest
    /// observes. Under Baseline the completion is simply scheduled.
    ///
    /// # Errors
    ///
    /// [`SlotError::UnknownDiskOp`] when `op_id` is not in flight.
    pub fn disk_ready(
        &mut self,
        profile: &SpeedProfile,
        now: SimTime,
        op_id: u64,
    ) -> Result<ArrivalOutcome, SlotError> {
        let cur_virt = self.virt_at(profile, now);
        let image = &self.image;
        let policy = self.policy(ChannelKind::Disk).copied();
        let release = match self.cfg.mode {
            DefenseMode::Local { release } => release,
            DefenseMode::StopWatch { .. } => ReleaseRule::Identity,
        };
        let Some(row) = self.pending.row(ChannelKind::Disk, op_id) else {
            return Err(SlotError::UnknownDiskOp { op_id });
        };
        let issue_virt = {
            let ChannelPayload::Disk {
                op,
                range,
                issue_virt,
                data,
            } = self.pending.payload_mut(row)
            else {
                return Err(SlotError::UnknownDiskOp { op_id });
            };
            *data = Some(match *op {
                DiskOp::Read => image.read(*range),
                DiskOp::Write => Vec::new(),
            });
            *issue_virt
        };
        self.pending.set_ready(row);
        match policy {
            Some(policy) => {
                // The recorded issue instant is replica-identical;
                // proposals differ only where local service times do.
                let release = issue_virt + policy.offset;
                let proposal = if release < cur_virt {
                    // Δd was sized below this disk's (possibly contended)
                    // service time — the local overrun the paper's
                    // operators watch for.
                    self.counters.incr("dd_violations");
                    cur_virt
                } else {
                    release
                };
                Ok(ArrivalOutcome::Proposal(proposal))
            }
            None => {
                // Local arm: deliver at the next exit after the data is
                // in, the completion instant shaped by the release rule
                // anchored at the replica-identical issue time.
                let deliver = release.apply(cur_virt, Some(issue_virt));
                let branch = self.injection_branch(deliver);
                self.pending.set_deliver(row, deliver, branch);
                Ok(ArrivalOutcome::Scheduled)
            }
        }
    }

    /// The host's hardware timer elapsed for `fire_seq` and the vCPU
    /// scheduler dispatched this slot after `sched_delay` of run-queue
    /// wait (zero on an uncontended host).
    ///
    /// Under StopWatch this VMM now proposes the fire's delivery
    /// timestamp — `deadline + Δt`, or the locally observed fire time if
    /// dispatch overran Δt (sized too small: `dt_violations` counts it) —
    /// and the caller multicasts it; delivery happens at the replica
    /// median, so one contended scheduler cannot shift what any guest's
    /// timer observes. Under Baseline the fire is delivered at the local
    /// dispatch time, scheduler jitter included — the leak the timer
    /// workload measures.
    ///
    /// Returns `Ok(None)` for a fire the guest cancelled after its
    /// hardware event was scheduled (the cancel already ran identically
    /// on every replica).
    ///
    /// # Errors
    ///
    /// [`SlotError::UnknownTimerFire`] when `fire_seq` is not live.
    pub fn timer_elapsed(
        &mut self,
        profile: &SpeedProfile,
        now: SimTime,
        fire_seq: u64,
        sched_delay: VirtOffset,
    ) -> Result<Option<ArrivalOutcome>, SlotError> {
        if self.cancelled_fires.remove(&fire_seq) {
            return Ok(None);
        }
        let cur_virt = self.virt_at(profile, now);
        let policy = self.policy(ChannelKind::Timer).copied();
        let release = match self.cfg.mode {
            DefenseMode::Local { release } => release,
            DefenseMode::StopWatch { .. } => ReleaseRule::Identity,
        };
        let Some(row) = self.pending.row(ChannelKind::Timer, fire_seq) else {
            return Err(SlotError::UnknownTimerFire { fire_seq });
        };
        let ChannelPayload::Timer { deadline, .. } = *self.pending.payload_of(row) else {
            return Err(SlotError::UnknownTimerFire { fire_seq });
        };
        if sched_delay.as_nanos() > 0 {
            self.counters.incr("sched_preemptions");
        }
        // The locally observed fire: the programmed deadline plus however
        // long the run queue held this vCPU (plus any lag of the hardware
        // event itself).
        let local_fire = (deadline + sched_delay).max(cur_virt);
        match policy {
            Some(policy) => {
                // The programmed deadline is replica-identical; proposals
                // differ only where local schedulers do.
                let release = deadline + policy.offset;
                let proposal = if release < local_fire {
                    // Δt was sized below this host's dispatch latency —
                    // the local overrun the paper's operators watch for.
                    self.counters.incr("dt_violations");
                    local_fire
                } else {
                    release
                };
                Ok(Some(ArrivalOutcome::Proposal(proposal)))
            }
            None => {
                // Local arm: the guest-visible fire is the release-shaped
                // dispatch time, anchored at the programmed deadline —
                // identity leaks the scheduler jitter (baseline), an
                // epoch boundary or bucket grid hides it.
                let deliver = release.apply(local_fire, Some(deadline));
                let branch = self.injection_branch(deliver);
                self.pending.set_deliver(row, deliver, branch);
                Ok(Some(ArrivalOutcome::Scheduled))
            }
        }
    }

    /// Physical time at which this slot's virtual clock first reaches `v`
    /// — how the host schedules a virtual timer's hardware event.
    pub fn phys_at_virt(&self, profile: &SpeedProfile, now: SimTime, v: VirtNanos) -> SimTime {
        let target = self.clock.instr_for(v);
        let start = now.max(self.resume_at);
        let phys = self.branches_at(profile, now);
        if target <= phys {
            return start;
        }
        // Same float-inversion nudge as `next_wake`: land at or past the
        // target branch so the elapse callback reads virt >= v.
        let mut t = profile.time_for_branches(start, target - phys);
        for _ in 0..16 {
            if self.branches_at(profile, t) >= target {
                return t;
            }
            t += simkit::time::SimDuration::from_nanos(2);
        }
        t
    }

    /// Records one replica's delivery-time proposal for channel `kind`'s
    /// event `seq` (including this VMM's own). When all proposals are in,
    /// adopts the median; returns `true` if the delivery time is now
    /// fixed.
    ///
    /// A proposal arriving before this replica opened the matching entry
    /// (a peer outran us) is buffered and drained at open — dropping it
    /// would deadlock the agreement. Whether an already-passed median is
    /// clamped to "now" (and counted) is the channel's
    /// [`ChannelPolicy::clamp_counter`].
    pub fn add_proposal(
        &mut self,
        profile: &SpeedProfile,
        now: SimTime,
        kind: ChannelKind,
        seq: u64,
        proposal: VirtNanos,
    ) -> bool {
        let cur_virt = self.virt_at(profile, now);
        self.record_proposal(kind, seq, proposal, cur_virt)
    }

    /// Records a burst of proposals that reached this replica together
    /// (e.g. one PGM packet's delivered backlog): one virtual-clock read
    /// covers the whole batch, and every event whose proposal set
    /// completes gets its median fixed by an in-place selection over its
    /// own proposal buffer — no per-event clone-and-sort. Returns how
    /// many of the batch's events now have a fixed delivery time
    /// (including ones that already had one), i.e. whether the caller
    /// needs to recompute the slot's wake.
    ///
    /// Behaviour is byte-identical to calling [`GuestSlot::add_proposal`]
    /// once per entry at the same `now`: all entries see the same current
    /// virtual time either way, and fixing one event's delivery never
    /// affects another event's proposals.
    pub fn add_proposals(
        &mut self,
        profile: &SpeedProfile,
        now: SimTime,
        batch: impl IntoIterator<Item = (ChannelKind, u64, VirtNanos)>,
    ) -> usize {
        let cur_virt = self.virt_at(profile, now);
        batch
            .into_iter()
            .filter(|&(kind, seq, proposal)| self.record_proposal(kind, seq, proposal, cur_virt))
            .count()
    }

    /// `true` when `seq` lies below `kind`'s local allocation cursor —
    /// i.e. this replica already opened (and since closed) the entry, so
    /// a proposal for it is a stray, not an early peer.
    fn already_opened(&self, kind: ChannelKind, seq: u64) -> bool {
        let next = match kind {
            ChannelKind::Cache => self.next_probe_id,
            ChannelKind::Disk => self.next_op_id,
            ChannelKind::Timer => self.next_fire_seq,
            // Net ids are ingress-assigned, not locally allocated (and
            // net never buffers early proposals anyway).
            ChannelKind::Net => return false,
        };
        seq < next
    }

    /// The median-agreement core shared by every channel and by the
    /// scalar and batched entry points. `cur_virt` is the replica's
    /// current virtual time (read once per batch by the callers).
    fn record_proposal(
        &mut self,
        kind: ChannelKind,
        seq: u64,
        proposal: VirtNanos,
        cur_virt: VirtNanos,
    ) -> bool {
        let policy = self.policy(kind).copied();
        let Some(row) = self.pending.row(kind, seq) else {
            // A peer outran this replica: it proposed an event ours has
            // not opened yet. Guest-initiated channels buffer it for the
            // guaranteed local open; net entries are created by an
            // external arrival that a lossy fabric may never deliver, so
            // their strays are dropped instead of leaking in the buffer.
            // An id *below* the kind's local allocation cursor was already
            // opened here (opens are in id order) and has since been
            // delivered or cancelled — also a stray, never re-buffered.
            if policy.is_some_and(|p| p.buffer_early) && !self.already_opened(kind, seq) {
                self.early
                    .entry((kind.id(), seq))
                    .or_default()
                    .push(proposal);
            }
            return false;
        };
        if self.pending.deliver_of(row).is_some() {
            return true;
        }
        let (received_len, needed, determined) = {
            let (received, needed) = self.pending.push_proposal(row, proposal);
            // A virtual-time-gated channel (timer) fixes delivery the
            // moment the received proposals *determine* the median: the
            // still-missing proposals come from replicas whose virtual
            // clocks lag (contended hosts), and gating injection on them
            // would push the fast replicas' next fires — and thus the next
            // median — ever later. Late stragglers hit the delivered
            // fast-path above or the `already_opened` stray filter.
            let determined = if received.len() < needed && policy.is_some_and(|p| p.fix_on_majority)
            {
                median_if_determined(received, needed)
            } else {
                None
            };
            (received.len(), needed, determined)
        };
        let median = if received_len < needed {
            match determined {
                Some(m) => m,
                None => return false,
            }
        } else {
            // All proposals are in: adopt the median by selecting the
            // middle element in place (the buffer is dead after this).
            self.pending.median_full(row)
        };
        let clamp_counter = policy.and_then(|p| p.clamp_counter);
        let fixed = match clamp_counter.filter(|_| median < cur_virt) {
            Some(counter) => {
                // The agreed time already passed in this replica's virtual
                // time: the synchrony assumption was violated (paper
                // footnote 4); deliver now and count it.
                self.counters.incr(counter);
                cur_virt
            }
            None => median,
        };
        // The injection branch is fixed here, once, alongside the
        // delivery time; the scheduling scans reuse the cached value.
        let branch = self.injection_branch(fixed);
        self.pending.set_deliver(row, fixed, branch);
        true
    }

    /// Early-buffered peer proposals currently awaiting a local open —
    /// the quantity the buffer-leak regression property pins to zero
    /// after every entry is opened or retired.
    pub fn early_buffered(&self) -> usize {
        self.early.values().map(Vec::len).sum()
    }

    /// The next absolute time at which this slot needs to run, given its
    /// pending work (`None` = fully idle until new input).
    pub fn next_wake(&self, profile: &SpeedProfile, now: SimTime) -> Option<SimTime> {
        let mut target: Option<u64> = None;
        let mut consider = |b: u64| match target {
            Some(t) if t <= b => {}
            _ => target = Some(b),
        };
        match self.actions.front() {
            Some(GuestAction::Compute { branches }) => {
                consider(self.compute_end.unwrap_or(self.pc + branches));
            }
            Some(_) => consider(self.pc), // zero-branch: due immediately
            None => {}
        }
        if self.wants_timer {
            let (_, branch) = self.pit_candidate();
            consider(branch);
        }
        self.pending
            .for_each_due(|branch, _, _, _| consider(branch));
        let target = target?;
        let start = now.max(self.resume_at);
        // The wake instant is the earliest time the slot's branch
        // trajectory reaches `target` — a function of the slot's synced
        // state and the profile, not of the probing `now` (as long as
        // `now` has not yet passed the wake). Memoize it on exactly those
        // inputs so proposal bursts that re-probe the wake between syncs
        // skip the float inversion entirely.
        let key: WakeKey = (
            target,
            self.branches,
            self.synced_at.as_nanos(),
            self.resume_at.as_nanos(),
            profile.generation(),
        );
        if let Some((k, wake_ns)) = self.wake_memo.get() {
            let t = SimTime::from_nanos(wake_ns);
            if k == key && now <= t {
                return Some(t.max(start));
            }
        }
        let phys = self.branches_at(profile, now);
        if target <= phys {
            return Some(start);
        }
        // time_for_branches inverts a float integration and can land a
        // branch or two short; nudge forward until the projection actually
        // reaches the target so process() at the wake finds the work due.
        let mut t = profile.time_for_branches(start, target - phys);
        for _ in 0..16 {
            if self.branches_at(profile, t) >= target {
                self.wake_memo.set(Some((key, t.as_nanos())));
                return Some(t);
            }
            t += simkit::time::SimDuration::from_nanos(2);
        }
        self.wake_memo.set(Some((key, t.as_nanos())));
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheModel;
    use crate::guest::IdleGuest;
    use netsim::packet::Body;
    use simkit::rng::SimRng;
    use simkit::time::SimDuration;

    fn profile() -> SpeedProfile {
        // 1e9 branches/s, no jitter: 1 branch = 1 ns.
        SpeedProfile::new(
            1.0e9,
            0.0,
            SimDuration::from_millis(10),
            SimRng::new(1).stream("h"),
        )
    }

    fn stopwatch_cfg() -> SlotConfig {
        SlotConfig {
            endpoint: EndpointId(7),
            exit_every: 50_000, // 50 us at 1e9 b/s
            mode: DefenseMode::stop_watch(
                VirtOffset::from_millis(10),
                VirtOffset::from_millis(10),
                VirtOffset::from_millis(10),
                3,
            ),
            clocks: PlatformClocks::default(),
        }
    }

    fn clock() -> VirtualClock {
        VirtualClock::new(VirtNanos::ZERO, 1.0, None)
    }

    /// A guest that echoes each packet back to its sender and records the
    /// virtual receive times.
    #[derive(Default)]
    struct EchoGuest {
        recv_virt: Vec<VirtNanos>,
    }

    impl GuestProgram for EchoGuest {
        fn on_boot(&mut self, _env: &mut GuestEnv) {}
        fn on_packet(&mut self, packet: &Packet, env: &mut GuestEnv) {
            self.recv_virt.push(env.now);
            env.send(packet.src(), Body::Raw { tag: 1, len: 64 });
        }
        fn on_disk_done(
            &mut self,
            _op: DiskOp,
            _range: BlockRange,
            _data: &[u64],
            _env: &mut GuestEnv,
        ) {
        }
    }

    /// A guest that reads a block at boot, then computes, then writes.
    struct DiskGuest;
    impl GuestProgram for DiskGuest {
        fn on_boot(&mut self, env: &mut GuestEnv) {
            env.disk_read(BlockRange::new(0, 4));
        }
        fn on_packet(&mut self, _p: &Packet, _env: &mut GuestEnv) {}
        fn on_disk_done(&mut self, op: DiskOp, _r: BlockRange, _d: &[u64], env: &mut GuestEnv) {
            if op == DiskOp::Read {
                env.compute(1_000_000);
                env.disk_write(BlockRange::new(10, 1), 99);
            }
        }
    }

    fn slot_with(program: Box<dyn GuestProgram>, mode: DefenseMode) -> GuestSlot {
        let mut cfg = stopwatch_cfg();
        cfg.mode = mode;
        GuestSlot::new(program, cfg, clock(), DiskImage::new(1 << 20))
    }

    #[test]
    fn idle_guest_has_no_wake() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(IdleGuest), DefenseMode::baseline());
        let out = slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        assert!(out.is_empty());
        assert_eq!(slot.next_wake(&p, SimTime::ZERO), None);
    }

    #[test]
    fn virt_advances_while_idle() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(IdleGuest), DefenseMode::baseline());
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let v1 = slot.virt_at(&p, SimTime::from_millis(1));
        let v2 = slot.virt_at(&p, SimTime::from_millis(5));
        assert!(v2 > v1, "idle loop must keep virtual time moving");
        assert_eq!(v2.as_nanos(), 5_000_000); // slope 1, 1 branch/ns
    }

    #[test]
    fn virt_at_last_exit_quantizes() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(IdleGuest), DefenseMode::baseline());
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        // At t=123.456us, branches=123456; last exit at 100000.
        let v = slot.virt_at_last_exit(&p, SimTime::from_nanos(123_456));
        assert_eq!(v.as_nanos(), 100_000);
    }

    #[test]
    fn stopwatch_packet_needs_median_before_delivery() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<EchoGuest>::default(), stopwatch_cfg().mode);
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let pkt = Packet::new(EndpointId(1), EndpointId(7), Body::Raw { tag: 0, len: 100 });
        let t_arr = SimTime::from_millis(1);
        let outcome = slot.on_packet_arrival(&p, t_arr, 0, pkt);
        let ArrivalOutcome::Proposal(own) = outcome else {
            panic!("expected proposal")
        };
        // Own proposal = last-exit virt + Δn = 1ms floored to exit + 10ms.
        assert_eq!(own.as_nanos(), 1_000_000 + 10_000_000);
        // No delivery scheduled until all three proposals arrive.
        assert_eq!(slot.next_wake(&p, t_arr), None);
        assert!(!slot.add_proposal(&p, t_arr, ChannelKind::Net, 0, own));
        assert!(!slot.add_proposal(
            &p,
            t_arr,
            ChannelKind::Net,
            0,
            VirtNanos::from_nanos(11_500_000)
        ));
        assert!(slot.add_proposal(
            &p,
            t_arr,
            ChannelKind::Net,
            0,
            VirtNanos::from_nanos(12_000_000)
        ));
        // Median of {11.0ms, 11.5ms, 12.0ms} = 11.5ms.
        let wake = slot.next_wake(&p, t_arr).expect("delivery scheduled");
        // Injection at first exit with virt >= 11.5ms => branch 11.5e6
        // (already a multiple of 50k), at 1 branch/ns => t ~= 11.5ms.
        let ns = wake.as_nanos();
        assert!((11_500_000..11_500_050).contains(&ns), "wake at {ns}");
        // Process at the wake: packet injected, echo emitted.
        let out = slot.process(&p, &mut cache, wake).expect("process");
        assert_eq!(out.len(), 1);
        match &out[0] {
            SlotOutput::Packet {
                out_seq,
                packet,
                virt,
            } => {
                assert_eq!(*out_seq, 0);
                assert_eq!(packet.src(), EndpointId(7));
                assert_eq!(virt.as_nanos(), 11_500_000);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(slot.counters().get("net_irq"), 1);
        assert_eq!(slot.delivered_log().len(), 1);
        assert_eq!(slot.delivered_log()[0].1.as_nanos(), 11_500_000);
    }

    #[test]
    fn baseline_packet_delivers_at_next_exit() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<EchoGuest>::default(), DefenseMode::baseline());
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let pkt = Packet::new(EndpointId(1), EndpointId(7), Body::Raw { tag: 0, len: 100 });
        slot.on_packet_arrival(&p, SimTime::from_micros(130), 0, pkt);
        let wake = slot.next_wake(&p, SimTime::from_micros(130)).unwrap();
        // Delivery virt = 130us; next exit boundary at 150us (float
        // integration may land a nanosecond or two past it).
        let ns = wake.as_nanos();
        assert!((150_000..150_050).contains(&ns), "wake at {ns}");
        let out = slot.process(&p, &mut cache, wake).expect("process");
        assert_eq!(out.len(), 1, "echo reply");
    }

    #[test]
    fn median_already_passed_counts_sync_violation() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<EchoGuest>::default(), stopwatch_cfg().mode);
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let pkt = Packet::new(EndpointId(1), EndpointId(7), Body::Raw { tag: 0, len: 100 });
        slot.on_packet_arrival(&p, SimTime::from_millis(1), 0, pkt);
        // Peers propose times far in this replica's past.
        let late = SimTime::from_millis(50);
        let two_ms = VirtNanos::from_millis(2);
        slot.add_proposal(&p, late, ChannelKind::Net, 0, two_ms);
        slot.add_proposal(&p, late, ChannelKind::Net, 0, two_ms);
        assert!(slot.add_proposal(&p, late, ChannelKind::Net, 0, two_ms));
        assert_eq!(slot.counters().get("sync_violations"), 1);
        // Still delivered (recovery), at current virt.
        let wake = slot.next_wake(&p, late).unwrap();
        let out = slot.process(&p, &mut cache, wake).expect("process");
        assert_eq!(out.len(), 1);
    }

    /// Feeds a disk op's own proposal back plus two peers at the same
    /// timestamp — the common case where every replica's disk met Δd and
    /// proposed `issue + Δd` exactly.
    fn agree_disk(slot: &mut GuestSlot, p: &SpeedProfile, now: SimTime, op: u64, at: VirtNanos) {
        for _ in 0..3 {
            slot.add_proposal(p, now, ChannelKind::Disk, op, at);
        }
    }

    #[test]
    fn disk_flow_with_delta_d() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(DiskGuest), stopwatch_cfg().mode);
        let out = slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        // Boot issues the read immediately.
        assert_eq!(out.len(), 1);
        let SlotOutput::DiskSubmit { op_id, request } = &out[0] else {
            panic!("expected disk submit")
        };
        assert_eq!(request.op, DiskOp::Read);
        // Data ready at 3ms (before issue + Δd = 10ms): the VMM proposes
        // the Δd release point, no violation.
        let t_ready = SimTime::from_millis(3);
        let outcome = slot.disk_ready(&p, t_ready, *op_id).expect("known op");
        let ArrivalOutcome::Proposal(own) = outcome else {
            panic!("stopwatch disk completion proposes")
        };
        assert_eq!(own.as_nanos(), 10_000_000, "proposal = issue + Δd");
        assert_eq!(slot.counters().get("dd_violations"), 0);
        // No injection until the replicas agree.
        assert_eq!(slot.next_wake(&p, t_ready), None);
        agree_disk(&mut slot, &p, t_ready, *op_id, own);
        let wake = slot.next_wake(&p, t_ready).unwrap();
        let ns = wake.as_nanos();
        assert!(
            (10_000_000..10_000_050).contains(&ns),
            "V + Δd wake at {ns}"
        );
        let out2 = slot.process(&p, &mut cache, wake).expect("process");
        // Handler queues compute + write; the write issues after 1M
        // branches = 1ms later, so not yet.
        assert!(out2.is_empty());
        let wake2 = slot.next_wake(&p, wake).unwrap();
        let ns2 = wake2.as_nanos();
        assert!((11_000_000..11_000_050).contains(&ns2), "wake2 at {ns2}");
        let out3 = slot.process(&p, &mut cache, wake2).expect("process");
        assert_eq!(out3.len(), 1);
        assert!(matches!(out3[0], SlotOutput::DiskSubmit { .. }));
        assert_eq!(slot.counters().get("disk_irq"), 1);
    }

    #[test]
    fn slow_disk_counts_dd_violation_but_median_prevails() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(DiskGuest), stopwatch_cfg().mode);
        let out = slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let SlotOutput::DiskSubmit { op_id, .. } = &out[0] else {
            panic!()
        };
        // Data only ready at 25ms — the local disk overran Δd (10ms), so
        // this replica proposes "now" and counts the violation...
        let t_ready = SimTime::from_millis(25);
        let ArrivalOutcome::Proposal(own) = slot.disk_ready(&p, t_ready, *op_id).expect("known op")
        else {
            panic!("proposal expected")
        };
        assert_eq!(own.as_nanos(), 25_000_000);
        assert_eq!(slot.counters().get("dd_violations"), 1);
        // ...but the two peers met Δd, so the agreed median is the Δd
        // release point — in this replica's past. No clamp for disk: the
        // interrupt fires at the next exit while the *agreed* timestamp
        // stays replica-identical (no divergence).
        slot.add_proposal(&p, t_ready, ChannelKind::Disk, *op_id, own);
        let peer = VirtNanos::from_millis(10);
        slot.add_proposal(&p, t_ready, ChannelKind::Disk, *op_id, peer);
        assert!(slot.add_proposal(&p, t_ready, ChannelKind::Disk, *op_id, peer));
        let wake = slot.next_wake(&p, t_ready).unwrap();
        assert_eq!(wake, SimTime::from_millis(25), "fires at the next exit");
        slot.process(&p, &mut cache, wake).expect("process");
        assert_eq!(slot.counters().get("disk_irq"), 1);
    }

    #[test]
    fn early_peer_disk_proposals_are_buffered_until_local_issue() {
        // Peers' disks finished before this replica's guest even issued
        // the op (it runs on a slower host): the proposals must survive.
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(DiskGuest), stopwatch_cfg().mode);
        let peer = VirtNanos::from_millis(10);
        assert!(!slot.add_proposal(&p, SimTime::ZERO, ChannelKind::Disk, 0, peer));
        assert!(!slot.add_proposal(&p, SimTime::ZERO, ChannelKind::Disk, 0, peer));
        let out = slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let SlotOutput::DiskSubmit { op_id, .. } = &out[0] else {
            panic!()
        };
        let t_ready = SimTime::from_millis(3);
        let ArrivalOutcome::Proposal(own) = slot.disk_ready(&p, t_ready, *op_id).expect("known op")
        else {
            panic!()
        };
        // Our own proposal completes the drained set of three.
        assert!(slot.add_proposal(&p, t_ready, ChannelKind::Disk, *op_id, own));
        let wake = slot.next_wake(&p, t_ready).expect("agreed");
        slot.process(&p, &mut cache, wake).expect("process");
        assert_eq!(slot.counters().get("disk_irq"), 1);
    }

    #[test]
    fn baseline_disk_delivers_when_ready() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(DiskGuest), DefenseMode::baseline());
        let out = slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let SlotOutput::DiskSubmit { op_id, .. } = &out[0] else {
            panic!()
        };
        let t_ready = SimTime::from_millis(3);
        let outcome = slot.disk_ready(&p, t_ready, *op_id).expect("known op");
        assert_eq!(
            outcome,
            ArrivalOutcome::Scheduled,
            "baseline never proposes"
        );
        assert_eq!(slot.counters().get("dd_violations"), 0);
        let wake = slot.next_wake(&p, t_ready).unwrap();
        let ns = wake.as_nanos();
        assert!((3_000_000..3_050_050).contains(&ns), "ready-time wake {ns}");
        slot.process(&p, &mut cache, wake).expect("process");
        assert_eq!(slot.counters().get("disk_irq"), 1);
    }

    #[test]
    fn unknown_disk_op_is_a_structured_error_not_a_panic() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(DiskGuest), stopwatch_cfg().mode);
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let err = slot
            .disk_ready(&p, SimTime::from_millis(1), 999)
            .expect_err("unknown op id");
        assert_eq!(err, SlotError::UnknownDiskOp { op_id: 999 });
        assert!(err.to_string().contains("unknown op 999"), "{err}");
    }

    #[test]
    fn replicas_deliver_identically_despite_speed_skew() {
        // Two replicas with different host speeds, same agreed proposals:
        // delivered virtual times AND emitted packets (content + virtual
        // stamp) must match exactly.
        let fast = SpeedProfile::new(
            1.05e9,
            0.02,
            SimDuration::from_millis(10),
            SimRng::new(2).stream("fast"),
        );
        let slow = SpeedProfile::new(
            0.95e9,
            0.02,
            SimDuration::from_millis(10),
            SimRng::new(2).stream("slow"),
        );
        let run = |p: &SpeedProfile| {
            let mut cache = CacheModel::new(8, 2);
            let mut slot = slot_with(Box::<EchoGuest>::default(), stopwatch_cfg().mode);
            slot.boot(p, &mut cache, SimTime::ZERO).expect("boot");
            let pkt = Packet::new(EndpointId(1), EndpointId(7), Body::Raw { tag: 0, len: 100 });
            // Packet arrives at (slightly) different real times per host.
            slot.on_packet_arrival(p, SimTime::from_micros(900), 0, pkt);
            for prop in [11_000_000u64, 11_500_000, 12_100_000] {
                slot.add_proposal(
                    p,
                    SimTime::from_millis(2),
                    ChannelKind::Net,
                    0,
                    VirtNanos::from_nanos(prop),
                );
            }
            let wake = slot.next_wake(p, SimTime::from_millis(2)).unwrap();
            let out = slot.process(p, &mut cache, wake).expect("process");
            (slot.delivered_log().to_vec(), out)
        };
        let (log_fast, out_fast) = run(&fast);
        let (log_slow, out_slow) = run(&slow);
        assert_eq!(log_fast, log_slow, "virtual delivery times identical");
        let key = |o: &SlotOutput| match o {
            SlotOutput::Packet {
                out_seq,
                packet,
                virt,
            } => (*out_seq, packet.content_hash(), *virt),
            _ => unreachable!(),
        };
        assert_eq!(key(&out_fast[0]), key(&out_slow[0]));
    }

    #[test]
    fn stall_freezes_virtual_time() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(IdleGuest), DefenseMode::baseline());
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        slot.stall_until(&p, SimTime::from_millis(1), SimTime::from_millis(5));
        let v_mid = slot.virt_at(&p, SimTime::from_millis(3));
        assert_eq!(v_mid.as_nanos(), 1_000_000, "no progress while stalled");
        let v_after = slot.virt_at(&p, SimTime::from_millis(7));
        assert_eq!(v_after.as_nanos(), 3_000_000, "resumes after the stall");
        assert_eq!(slot.counters().get("stalls"), 1);
    }

    #[test]
    fn timer_irqs_delivered_when_opted_in() {
        struct TimerGuest {
            ticks: u64,
        }
        impl GuestProgram for TimerGuest {
            fn on_boot(&mut self, _env: &mut GuestEnv) {}
            fn on_packet(&mut self, _p: &Packet, _e: &mut GuestEnv) {}
            fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
            fn on_timer(&mut self, env: &mut GuestEnv) {
                self.ticks += 1;
                assert_eq!(env.pit_ticks, self.ticks);
            }
            fn wants_timer(&self) -> bool {
                true
            }
        }
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(TimerGuest { ticks: 0 }), DefenseMode::baseline());
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        // First tick at virt 4ms (250 Hz).
        let wake = slot.next_wake(&p, SimTime::ZERO).unwrap();
        assert!((4_000_000..4_000_050).contains(&wake.as_nanos()));
        slot.process(&p, &mut cache, wake).expect("process");
        assert_eq!(slot.counters().get("timer_irq"), 1);
        let wake2 = slot.next_wake(&p, wake).unwrap();
        assert!((8_000_000..8_000_050).contains(&wake2.as_nanos()));
    }

    #[test]
    fn mid_compute_injection_preserves_compute_completion() {
        // A packet injected mid-compute must not truncate the compute: the
        // compute still completes at its full branch allotment.
        struct BusyEcho;
        impl GuestProgram for BusyEcho {
            fn on_boot(&mut self, env: &mut GuestEnv) {
                env.compute(10_000_000); // 10ms of work
                env.send(EndpointId(1), Body::Raw { tag: 42, len: 10 });
            }
            fn on_packet(&mut self, _p: &Packet, env: &mut GuestEnv) {
                env.send(EndpointId(1), Body::Raw { tag: 43, len: 10 });
            }
            fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
        }
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(BusyEcho), DefenseMode::baseline());
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        // Packet arrives at 2ms (mid-compute), delivered at exit ~2ms.
        let pkt = Packet::new(EndpointId(1), EndpointId(7), Body::Raw { tag: 0, len: 10 });
        slot.on_packet_arrival(&p, SimTime::from_millis(2), 0, pkt);
        let wake = slot.next_wake(&p, SimTime::from_millis(2)).unwrap();
        let out1 = slot.process(&p, &mut cache, wake).expect("process");
        // The handler ran (echo 43 queued BEHIND the boot send? No: actions
        // queue FIFO: compute, send(42), then handler pushes send(43)).
        // At 2ms the compute is still running, so nothing emitted yet.
        assert!(out1.is_empty());
        let wake2 = slot.next_wake(&p, wake).unwrap();
        assert!(
            (10_000_000..10_000_050).contains(&wake2.as_nanos()),
            "compute completes near 10ms, got {wake2}"
        );
        let out2 = slot.process(&p, &mut cache, wake2).expect("process");
        // Both sends now fire at pc = 10ms, in FIFO order.
        assert_eq!(out2.len(), 2);
        match (&out2[0], &out2[1]) {
            (
                SlotOutput::Packet {
                    packet: a,
                    virt: va,
                    ..
                },
                SlotOutput::Packet {
                    packet: b,
                    virt: vb,
                    ..
                },
            ) => {
                assert!(matches!(a.body(), Body::Raw { tag: 42, .. }));
                assert!(matches!(b.body(), Body::Raw { tag: 43, .. }));
                assert_eq!(va.as_nanos(), 10_000_000);
                assert_eq!(vb.as_nanos(), 10_000_000);
            }
            other => panic!("{other:?}"),
        }
    }

    /// A guest that probes two lines at boot (one it primed, one cold)
    /// and records the latency readouts.
    #[derive(Default)]
    struct CacheProber {
        readouts: Vec<(u64, u64)>,
    }

    impl GuestProgram for CacheProber {
        fn on_boot(&mut self, env: &mut GuestEnv) {
            env.cache_touch(3, 1); // primed: resident afterwards
            env.cache_probe(3, 1); // hit
            env.cache_probe(4, 9); // cold: miss
        }
        fn on_packet(&mut self, _p: &Packet, _env: &mut GuestEnv) {}
        fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
        fn on_cache_probe(&mut self, set: u64, _tag: u64, latency_ns: u64, _env: &mut GuestEnv) {
            self.readouts.push((set, latency_ns));
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    fn probe_readouts(slot: &mut GuestSlot) -> Vec<(u64, u64)> {
        slot.program_mut()
            .as_any_mut()
            .expect("prober")
            .downcast_mut::<CacheProber>()
            .expect("prober type")
            .readouts
            .clone()
    }

    #[test]
    fn baseline_cache_probe_reads_local_hit_and_miss() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<CacheProber>::default(), DefenseMode::baseline());
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        // Probes issued at pc 0 deliver at +40/+400 ns; the injection exit
        // is the first one, at branch 50k = 50 us.
        let wake = slot.next_wake(&p, SimTime::ZERO).expect("probe wake");
        slot.process(&p, &mut cache, wake).expect("process");
        assert_eq!(
            probe_readouts(&mut slot),
            vec![(3, CacheModel::HIT_NS), (4, CacheModel::MISS_NS)],
            "baseline readout is the local latency"
        );
        assert_eq!(slot.counters().get("cache_irq"), 2);
        assert_eq!(slot.counters().get("cache_probes"), 2);
        assert_eq!(slot.counters().get("cache_hits"), 1);
        assert_eq!(slot.counters().get("cache_misses"), 1);
        assert_eq!(cache.occupancy(7), 2, "primed line + cold probe resident");
    }

    #[test]
    fn stopwatch_median_overrides_the_local_miss() {
        // This replica's host had the probed line evicted (a coresident
        // victim, in the full cloud) — but the two peers read hits, so the
        // median readout is a hit: the coresidency channel is closed.
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<CacheProber>::default(), stopwatch_cfg().mode);
        let out = slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let proposals: Vec<(u64, VirtNanos)> = out
            .iter()
            .map(|o| match o {
                SlotOutput::Proposal {
                    kind: ChannelKind::Cache,
                    seq,
                    proposal,
                } => (*seq, *proposal),
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(proposals.len(), 2, "one proposal per probe");
        assert_eq!(proposals[0].1.as_nanos(), u64::from(CacheModel::HIT_NS));
        assert_eq!(proposals[1].1.as_nanos(), u64::from(CacheModel::MISS_NS));
        // No delivery until the peers' proposals arrive.
        assert_eq!(slot.next_wake(&p, SimTime::ZERO), None);
        for (probe_id, own) in &proposals {
            // Own proposal (as the cloud would add it back), then peers.
            assert!(!slot.add_proposal(&p, SimTime::ZERO, ChannelKind::Cache, *probe_id, *own));
            let peer = VirtNanos::from_nanos(CacheModel::HIT_NS);
            assert!(!slot.add_proposal(&p, SimTime::ZERO, ChannelKind::Cache, *probe_id, peer));
            assert!(slot.add_proposal(&p, SimTime::ZERO, ChannelKind::Cache, *probe_id, peer));
        }
        let wake = slot.next_wake(&p, SimTime::ZERO).expect("agreed wake");
        slot.process(&p, &mut cache, wake).expect("process");
        assert_eq!(
            probe_readouts(&mut slot),
            vec![(3, CacheModel::HIT_NS), (4, CacheModel::HIT_NS)],
            "median of (miss, hit, hit) reads hit"
        );
    }

    #[test]
    fn early_peer_cache_proposals_are_buffered_not_dropped() {
        // A faster peer proposes probe 0 before this replica's guest even
        // reaches it; the proposal must survive until the local issue.
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<CacheProber>::default(), stopwatch_cfg().mode);
        let hit = VirtNanos::from_nanos(CacheModel::HIT_NS);
        assert!(
            !slot.add_proposal(&p, SimTime::ZERO, ChannelKind::Cache, 0, hit),
            "no pending yet"
        );
        assert!(!slot.add_proposal(&p, SimTime::ZERO, ChannelKind::Cache, 0, hit));
        let out = slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        assert_eq!(out.len(), 2);
        // Both early proposals drained at issue; our own completes the set.
        let SlotOutput::Proposal { seq, proposal, .. } = out[0].clone() else {
            panic!("{:?}", out[0]);
        };
        assert!(slot.add_proposal(&p, SimTime::ZERO, ChannelKind::Cache, seq, proposal));
        let wake = slot.next_wake(&p, SimTime::ZERO).expect("probe 0 agreed");
        slot.process(&p, &mut cache, wake).expect("process");
        assert_eq!(probe_readouts(&mut slot), vec![(3, CacheModel::HIT_NS)]);
    }

    #[test]
    fn stray_net_proposals_are_dropped_not_buffered() {
        // A net pending entry is opened by an external packet arrival,
        // which a lossy fabric may never deliver — a stray proposal for a
        // packet this replica never received must not leak into the
        // early buffer (unlike cache/disk, whose local open is
        // guaranteed by replica determinism).
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::<EchoGuest>::default(), stopwatch_cfg().mode);
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let stray = VirtNanos::from_millis(11);
        assert!(!slot.add_proposal(&p, SimTime::ZERO, ChannelKind::Net, 0, stray));
        // The packet then does arrive: the dropped stray must NOT count
        // toward the three needed proposals.
        let pkt = Packet::new(EndpointId(1), EndpointId(7), Body::Raw { tag: 0, len: 100 });
        let t = SimTime::from_millis(1);
        slot.on_packet_arrival(&p, t, 0, pkt);
        assert!(!slot.add_proposal(&p, t, ChannelKind::Net, 0, stray));
        assert!(
            !slot.add_proposal(&p, t, ChannelKind::Net, 0, stray),
            "two live proposals + one dropped stray must not fix delivery"
        );
        assert!(slot.add_proposal(&p, t, ChannelKind::Net, 0, stray));
    }

    /// A guest that arms one-shot virtual timer 1 at boot and records each
    /// fire's `(irq_timestamp, now)` pair.
    #[derive(Default)]
    struct VtimerGuest {
        deadline_ms: u64,
        period_ms: Option<u64>,
        fires: Vec<(VirtNanos, VirtNanos)>,
    }

    impl GuestProgram for VtimerGuest {
        fn on_boot(&mut self, env: &mut GuestEnv) {
            let deadline = VirtNanos::from_millis(self.deadline_ms);
            match self.period_ms {
                Some(p) => env.set_periodic_timer(1, deadline, VirtOffset::from_millis(p)),
                None => env.set_timer(1, deadline),
            }
        }
        fn on_packet(&mut self, _p: &Packet, _env: &mut GuestEnv) {}
        fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
        fn on_vtimer(&mut self, timer_id: u64, env: &mut GuestEnv) {
            assert_eq!(timer_id, 1);
            self.fires.push((env.irq_timestamp, env.now));
        }
        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    fn vtimer_fires(slot: &mut GuestSlot) -> Vec<(VirtNanos, VirtNanos)> {
        slot.program_mut()
            .as_any_mut()
            .expect("vtimer guest")
            .downcast_mut::<VtimerGuest>()
            .expect("vtimer type")
            .fires
            .clone()
    }

    fn boot_vtimer(
        mode: DefenseMode,
        deadline_ms: u64,
        period_ms: Option<u64>,
    ) -> (GuestSlot, u64) {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let guest = VtimerGuest {
            deadline_ms,
            period_ms,
            fires: Vec::new(),
        };
        let mut slot = slot_with(Box::new(guest), mode);
        let out = slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        assert_eq!(out.len(), 1);
        let SlotOutput::TimerArm { fire_seq, deadline } = out[0] else {
            panic!("{:?}", out[0]);
        };
        assert_eq!(deadline.as_nanos(), deadline_ms * 1_000_000);
        (slot, fire_seq)
    }

    #[test]
    fn baseline_timer_delivers_scheduler_jitter() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let (mut slot, fire_seq) = boot_vtimer(DefenseMode::baseline(), 5, None);
        // Hardware event at the deadline projection; the vCPU scheduler
        // held the slot 2ms behind a busy co-resident.
        let t = slot.phys_at_virt(&p, SimTime::ZERO, VirtNanos::from_millis(5));
        let outcome = slot
            .timer_elapsed(&p, t, fire_seq, VirtOffset::from_millis(2))
            .expect("live fire");
        assert_eq!(outcome, Some(ArrivalOutcome::Scheduled));
        assert_eq!(slot.counters().get("sched_preemptions"), 1);
        let wake = slot.next_wake(&p, t).expect("delivery scheduled");
        slot.process(&p, &mut cache, wake).expect("process");
        let fires = vtimer_fires(&mut slot);
        assert_eq!(fires.len(), 1);
        // The guest-visible fire carries the dispatch delay: the leak.
        assert_eq!(fires[0].0.as_nanos(), 7_000_000);
        assert_eq!(slot.counters().get("vtimer_irq"), 1);
        assert_eq!(slot.counters().get("timer_arms"), 1);
    }

    #[test]
    fn stopwatch_timer_proposes_deadline_plus_delta_t() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let (mut slot, fire_seq) = boot_vtimer(stopwatch_cfg().mode, 5, None);
        let t = slot.phys_at_virt(&p, SimTime::ZERO, VirtNanos::from_millis(5));
        // Same 2ms of scheduler contention as the baseline test...
        let outcome = slot
            .timer_elapsed(&p, t, fire_seq, VirtOffset::from_millis(2))
            .expect("live fire");
        // ...but the proposal is deadline + Δt, independent of it.
        let Some(ArrivalOutcome::Proposal(own)) = outcome else {
            panic!("{outcome:?}");
        };
        assert_eq!(own.as_nanos(), 15_000_000, "deadline 5ms + Δt 10ms");
        assert_eq!(slot.counters().get("dt_violations"), 0);
        assert_eq!(slot.next_wake(&p, t), None, "no delivery before agreement");
        for _ in 0..2 {
            slot.add_proposal(&p, t, ChannelKind::Timer, fire_seq, own);
        }
        assert!(slot.add_proposal(&p, t, ChannelKind::Timer, fire_seq, own));
        let wake = slot.next_wake(&p, t).expect("agreed");
        slot.process(&p, &mut cache, wake).expect("process");
        let fires = vtimer_fires(&mut slot);
        assert_eq!(fires.len(), 1);
        assert_eq!(
            fires[0].0.as_nanos(),
            15_000_000,
            "guest reads the agreed median, not the local dispatch"
        );
    }

    #[test]
    fn dispatch_overrunning_delta_t_counts_a_dt_violation() {
        let p = profile();
        let (mut slot, fire_seq) = boot_vtimer(stopwatch_cfg().mode, 5, None);
        let t = slot.phys_at_virt(&p, SimTime::ZERO, VirtNanos::from_millis(5));
        // 12ms of run-queue wait overruns Δt = 10ms: propose the local
        // fire and count it.
        let outcome = slot
            .timer_elapsed(&p, t, fire_seq, VirtOffset::from_millis(12))
            .expect("live fire");
        let Some(ArrivalOutcome::Proposal(own)) = outcome else {
            panic!("{outcome:?}");
        };
        assert_eq!(own.as_nanos(), 17_000_000, "local fire 5ms + 12ms");
        assert_eq!(slot.counters().get("dt_violations"), 1);
    }

    #[test]
    fn periodic_timer_rearms_from_the_programmed_deadline() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let (mut slot, fire0) = boot_vtimer(DefenseMode::baseline(), 5, Some(3));
        let t = slot.phys_at_virt(&p, SimTime::ZERO, VirtNanos::from_millis(5));
        slot.timer_elapsed(&p, t, fire0, VirtOffset::from_nanos(0))
            .expect("live fire");
        let wake = slot.next_wake(&p, t).expect("due");
        let out = slot.process(&p, &mut cache, wake).expect("process");
        // The injection re-armed the next period: 5ms + 3ms = 8ms.
        assert_eq!(out.len(), 1);
        let SlotOutput::TimerArm { fire_seq, deadline } = out[0] else {
            panic!("{:?}", out[0]);
        };
        assert_eq!(fire_seq, fire0 + 1);
        assert_eq!(deadline.as_nanos(), 8_000_000);
        // Second round: elapse, agree (baseline: local), deliver.
        let t2 = slot.phys_at_virt(&p, wake, deadline);
        slot.timer_elapsed(&p, t2, fire_seq, VirtOffset::from_nanos(0))
            .expect("live fire");
        let wake2 = slot.next_wake(&p, t2).expect("due");
        slot.process(&p, &mut cache, wake2).expect("process");
        assert_eq!(vtimer_fires(&mut slot).len(), 2);
        // Boot arm plus one re-arm per injected fire.
        assert_eq!(slot.counters().get("timer_arms"), 3);
    }

    #[test]
    fn cancelled_fire_is_consumed_silently() {
        struct CancelGuest;
        impl GuestProgram for CancelGuest {
            fn on_boot(&mut self, env: &mut GuestEnv) {
                env.set_timer(9, VirtNanos::from_millis(20));
                env.compute(1_000_000);
                env.cancel_timer(9);
            }
            fn on_packet(&mut self, _p: &Packet, _env: &mut GuestEnv) {}
            fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
            fn on_vtimer(&mut self, _t: u64, _env: &mut GuestEnv) {
                panic!("cancelled timer must not fire");
            }
        }
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(CancelGuest), stopwatch_cfg().mode);
        let out = slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let SlotOutput::TimerArm { fire_seq, .. } = out[0] else {
            panic!("{:?}", out[0]);
        };
        // The cancel runs once the compute finishes (1ms), well before the
        // 20ms deadline.
        let t = SimTime::from_millis(2);
        slot.process(&p, &mut cache, t).expect("process");
        // An early peer proposal for the cancelled fire must not leak
        // into the buffer (the pending entry is gone and the fire is
        // poisoned locally; every replica cancels at the same pc).
        let stray = VirtNanos::from_millis(30);
        assert!(!slot.add_proposal(&p, t, ChannelKind::Timer, fire_seq, stray));
        assert_eq!(
            slot.early_buffered(),
            0,
            "stray must not re-enter the buffer"
        );
        // The hardware event still elapses; it is consumed silently.
        let elapsed = slot
            .timer_elapsed(
                &p,
                SimTime::from_millis(20),
                fire_seq,
                VirtOffset::from_nanos(0),
            )
            .expect("cancelled fire is not an error");
        assert_eq!(elapsed, None);
        assert_eq!(slot.next_wake(&p, SimTime::from_millis(20)), None);
        assert_eq!(slot.counters().get("vtimer_irq"), 0);
    }

    #[test]
    fn zero_deadline_is_a_structured_error_not_a_panic() {
        struct BadGuest;
        impl GuestProgram for BadGuest {
            fn on_boot(&mut self, env: &mut GuestEnv) {
                env.set_timer(3, VirtNanos::ZERO);
            }
            fn on_packet(&mut self, _p: &Packet, _env: &mut GuestEnv) {}
            fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
        }
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(BadGuest), stopwatch_cfg().mode);
        let err = slot
            .boot(&p, &mut cache, SimTime::ZERO)
            .expect_err("zero deadline");
        assert_eq!(
            err,
            SlotError::BadTimerDeadline {
                timer_id: 3,
                deadline: VirtNanos::ZERO
            }
        );
        assert!(err.to_string().contains("mis-programmed"), "{err}");
    }

    #[test]
    fn periodic_rearm_overflow_is_a_structured_error() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        // A period so large the first re-arm overflows u64 virtual time.
        let huge = u64::MAX - 1_000_000;
        struct OverflowGuest {
            period: u64,
        }
        impl GuestProgram for OverflowGuest {
            fn on_boot(&mut self, env: &mut GuestEnv) {
                env.set_periodic_timer(
                    4,
                    VirtNanos::from_millis(5),
                    VirtOffset::from_nanos(self.period),
                );
            }
            fn on_packet(&mut self, _p: &Packet, _env: &mut GuestEnv) {}
            fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
        }
        let mut slot = slot_with(
            Box::new(OverflowGuest { period: huge }),
            DefenseMode::baseline(),
        );
        let out = slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let SlotOutput::TimerArm { fire_seq, .. } = out[0] else {
            panic!("{:?}", out[0]);
        };
        let t = slot.phys_at_virt(&p, SimTime::ZERO, VirtNanos::from_millis(5));
        slot.timer_elapsed(&p, t, fire_seq, VirtOffset::from_nanos(0))
            .expect("live fire");
        let wake = slot.next_wake(&p, t).expect("due");
        // First fire injects fine; the catch-up re-arm (5ms + huge + huge)
        // overflows and must surface as an error, not a wrapping panic.
        let err = slot
            .process(&p, &mut cache, wake)
            .expect_err("re-arm overflows");
        assert_eq!(err, SlotError::TimerOverflow { timer_id: 4 });
    }

    #[test]
    fn rearming_a_live_timer_replaces_its_deadline() {
        struct RearmGuest;
        impl GuestProgram for RearmGuest {
            fn on_boot(&mut self, env: &mut GuestEnv) {
                env.set_timer(5, VirtNanos::from_millis(4));
                env.set_timer(5, VirtNanos::from_millis(6));
            }
            fn on_packet(&mut self, _p: &Packet, _env: &mut GuestEnv) {}
            fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _e: &mut GuestEnv) {}
        }
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(RearmGuest), DefenseMode::baseline());
        let out = slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        assert_eq!(out.len(), 2, "both arms emit hardware events");
        let SlotOutput::TimerArm { fire_seq: old, .. } = out[0] else {
            panic!()
        };
        let SlotOutput::TimerArm { fire_seq: new, .. } = out[1] else {
            panic!()
        };
        // The replaced fire's event is consumed silently; the live one
        // proposes/schedules normally.
        assert_eq!(
            slot.timer_elapsed(&p, SimTime::from_millis(4), old, VirtOffset::from_nanos(0))
                .expect("replaced fire"),
            None
        );
        assert_eq!(
            slot.timer_elapsed(&p, SimTime::from_millis(6), new, VirtOffset::from_nanos(0))
                .expect("live fire"),
            Some(ArrivalOutcome::Scheduled)
        );
    }

    #[test]
    fn unknown_timer_fire_is_a_structured_error() {
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let mut slot = slot_with(Box::new(IdleGuest), stopwatch_cfg().mode);
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let err = slot
            .timer_elapsed(&p, SimTime::from_millis(1), 42, VirtOffset::from_nanos(0))
            .expect_err("no such fire");
        assert_eq!(err, SlotError::UnknownTimerFire { fire_seq: 42 });
    }

    #[test]
    fn deterland_timer_hides_the_dispatch_delay() {
        // Same 2ms scheduler hold as `baseline_timer_delivers_scheduler_jitter`,
        // but the epoch-boundary release lands the on-time and the delayed
        // fire on the same boundary: the jitter never reaches the guest.
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let deterland = DefenseMode::Local {
            release: ReleaseRule::EpochBoundary {
                epoch: VirtOffset::from_millis(5),
            },
        };
        let mut observe = |delay_ms: u64| {
            let guest = VtimerGuest {
                deadline_ms: 5,
                period_ms: None,
                fires: Vec::new(),
            };
            let mut slot = slot_with(Box::new(guest), deterland);
            let out = slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
            let SlotOutput::TimerArm { fire_seq, .. } = out[0] else {
                panic!("{:?}", out[0]);
            };
            let t = slot.phys_at_virt(&p, SimTime::ZERO, VirtNanos::from_millis(5));
            slot.timer_elapsed(&p, t, fire_seq, VirtOffset::from_millis(delay_ms))
                .expect("live fire");
            let wake = slot.next_wake(&p, t).expect("due");
            slot.process(&p, &mut cache, wake).expect("process");
            vtimer_fires(&mut slot)[0].0
        };
        let on_time = observe(0);
        let delayed = observe(2);
        assert_eq!(on_time.as_nanos(), 10_000_000, "next 5ms boundary past 5ms");
        assert_eq!(on_time, delayed, "sub-epoch jitter is invisible");
    }

    #[test]
    fn bucketed_cache_probe_reads_one_quantized_level() {
        // Hit (~40ns) and miss (~400ns) both quantize up to the first
        // 1000ns level: the PRIME+PROBE readout collapses.
        let p = profile();
        let mut cache = CacheModel::new(8, 2);
        let bucketed = DefenseMode::Local {
            release: ReleaseRule::Quantize {
                bucket: VirtOffset::from_nanos(1_000),
                buckets: 4,
            },
        };
        let mut slot = slot_with(Box::<CacheProber>::default(), bucketed);
        slot.boot(&p, &mut cache, SimTime::ZERO).expect("boot");
        let wake = slot.next_wake(&p, SimTime::ZERO).expect("probe wake");
        slot.process(&p, &mut cache, wake).expect("process");
        assert_eq!(
            probe_readouts(&mut slot),
            vec![(3, 1_000), (4, 1_000)],
            "hit and miss read the same bucket"
        );
    }

    #[test]
    #[should_panic(expected = "odd replica count")]
    fn even_replicas_rejected() {
        let mut cfg = stopwatch_cfg();
        cfg.mode = DefenseMode::stop_watch(
            VirtOffset::from_millis(1),
            VirtOffset::from_millis(1),
            VirtOffset::from_millis(1),
            4,
        );
        GuestSlot::new(Box::new(IdleGuest), cfg, clock(), DiskImage::new(16));
    }

    #[test]
    fn median_is_fixed_early_only_when_determined() {
        let v = |ns: u64| VirtNanos::from_nanos(ns);
        // 2-of-3 equal: the third proposal cannot move the median.
        assert_eq!(median_if_determined(&[v(50), v(50)], 3), Some(v(50)));
        // 2-of-3 unequal: the third could land between them.
        assert_eq!(median_if_determined(&[v(50), v(60)], 3), None);
        // 1-of-3 is never enough, even though it equals itself.
        assert_eq!(median_if_determined(&[v(50)], 3), None);
        // 5 replicas: three equal out of three received pin the median;
        // the two missing values can only flank it.
        assert_eq!(median_if_determined(&[v(9), v(9), v(9)], 5), Some(v(9)));
        assert_eq!(median_if_determined(&[v(9), v(9), v(8)], 5), None);
        // Four received with the two middle order statistics equal.
        assert_eq!(
            median_if_determined(&[v(7), v(9), v(9), v(12)], 5),
            Some(v(9))
        );
        assert_eq!(median_if_determined(&[v(7), v(8), v(9), v(12)], 5), None);
    }
}
