//! Host execution-speed profiles.
//!
//! Each physical host retires guest branches at a base rate modulated by
//! (a) piecewise-constant jitter (background OS activity, Dom0 chatter,
//! thermal noise) and (b) a *contention factor* from coresident guests'
//! activity — the channel through which a victim VM perturbs the timing of
//! a coresident attacker replica, and through which the Sec. IX
//! "collaborating attacker" induces load.
//!
//! The profile is a pure function of (seed, epoch index, contention), so
//! branch↔time conversions are deterministic and invertible.

use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime};
use std::cell::RefCell;

/// Deterministic branches-per-second profile for one host core.
#[derive(Debug, Clone)]
pub struct SpeedProfile {
    base_ips: f64,
    jitter_frac: f64,
    epoch: SimDuration,
    seed_stream: SimRng,
    /// Multiplicative slowdown from coresident load, `0 <= c < 1`;
    /// effective speed is `base * (1 - c) * (1 ± jitter)`.
    contention: f64,
    /// Bumped on every mutation that changes the branch↔time mapping
    /// (today: contention updates). Callers that memoize conversion
    /// results key them on this counter so a profile change invalidates
    /// every cached projection at once.
    generation: u64,
    /// Memoized jitter multipliers, indexed by epoch. Each multiplier is a
    /// pure function of (seed, epoch), so caching cannot change any value —
    /// it only skips the per-query stream derivation on the branch↔time
    /// conversion hot path (every wake computation integrates over epochs).
    jitter_memo: RefCell<Vec<f64>>,
}

impl SpeedProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics unless `base_ips > 0`, `0 <= jitter_frac < 1`, and the epoch
    /// is non-zero.
    pub fn new(base_ips: f64, jitter_frac: f64, epoch: SimDuration, rng: SimRng) -> Self {
        assert!(base_ips > 0.0, "base speed must be positive");
        assert!(
            (0.0..1.0).contains(&jitter_frac),
            "jitter fraction must be in [0,1)"
        );
        assert!(!epoch.is_zero(), "epoch must be non-zero");
        SpeedProfile {
            base_ips,
            jitter_frac,
            epoch,
            seed_stream: rng,
            contention: 0.0,
            generation: 0,
            jitter_memo: RefCell::new(Vec::new()),
        }
    }

    /// The base rate, branches per second.
    pub fn base_ips(&self) -> f64 {
        self.base_ips
    }

    /// Sets the coresident-load contention factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= c < 1`.
    pub fn set_contention(&mut self, c: f64) {
        assert!((0.0..1.0).contains(&c), "contention must be in [0,1)");
        self.contention = c;
        self.generation += 1;
    }

    /// Current contention factor.
    pub fn contention(&self) -> f64 {
        self.contention
    }

    /// Mutation counter for memo invalidation (see the field doc).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Jitter multiplier for epoch `idx` — a pure function of (seed, idx),
    /// memoized densely by epoch (epoch indices grow with simulated time,
    /// so the memo is a flat vector, not a map).
    fn jitter_mult(&self, idx: u64) -> f64 {
        if self.jitter_frac == 0.0 {
            return 1.0;
        }
        let mut memo = self.jitter_memo.borrow_mut();
        let idx = idx as usize;
        if idx >= memo.len() + 1_000_000 {
            // A far-future probe (beyond any plausible run horizon) is
            // answered directly instead of dense-filling the memo to it.
            let mut s = self.seed_stream.stream(&format!("epoch#{idx}"));
            return 1.0 + s.uniform(-self.jitter_frac, self.jitter_frac);
        }
        while memo.len() <= idx {
            let i = memo.len();
            let mut s = self.seed_stream.stream(&format!("epoch#{i}"));
            memo.push(1.0 + s.uniform(-self.jitter_frac, self.jitter_frac));
        }
        memo[idx]
    }

    /// Effective branches/second during epoch `idx`.
    pub fn ips_at_epoch(&self, idx: u64) -> f64 {
        self.base_ips * (1.0 - self.contention) * self.jitter_mult(idx)
    }

    fn epoch_index(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.epoch.as_nanos()
    }

    /// Branches retired in `[t0, t1)`.
    ///
    /// # Panics
    ///
    /// Panics if `t1 < t0`.
    pub fn branches_between(&self, t0: SimTime, t1: SimTime) -> u64 {
        assert!(t1 >= t0, "negative interval");
        if t1 == t0 {
            return 0;
        }
        let mut acc = 0.0;
        let mut cur = t0;
        while cur < t1 {
            let idx = self.epoch_index(cur);
            let epoch_end = SimTime::from_nanos((idx + 1) * self.epoch.as_nanos());
            let seg_end = epoch_end.min(t1);
            let dt = seg_end.duration_since(cur).as_secs_f64();
            acc += dt * self.ips_at_epoch(idx);
            cur = seg_end;
        }
        acc as u64
    }

    /// Earliest time `t >= t0` by which `branches` more branches have
    /// retired.
    pub fn time_for_branches(&self, t0: SimTime, branches: u64) -> SimTime {
        if branches == 0 {
            return t0;
        }
        let mut remaining = branches as f64;
        let mut cur = t0;
        loop {
            let idx = self.epoch_index(cur);
            let rate = self.ips_at_epoch(idx);
            let epoch_end = SimTime::from_nanos((idx + 1) * self.epoch.as_nanos());
            let span = epoch_end.duration_since(cur).as_secs_f64();
            let capacity = span * rate;
            if capacity >= remaining {
                return cur + SimDuration::from_secs_f64(remaining / rate);
            }
            remaining -= capacity;
            cur = epoch_end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(jitter: f64) -> SpeedProfile {
        SpeedProfile::new(
            1.0e9,
            jitter,
            SimDuration::from_millis(10),
            SimRng::new(5).stream("host0"),
        )
    }

    #[test]
    fn no_jitter_is_linear() {
        let p = profile(0.0);
        let b = p.branches_between(SimTime::ZERO, SimTime::from_millis(5));
        assert_eq!(b, 5_000_000);
    }

    #[test]
    fn branches_and_time_are_inverse() {
        let p = profile(0.05);
        let t0 = SimTime::from_millis(3);
        for &n in &[1_000u64, 1_000_000, 123_456_789] {
            let t1 = p.time_for_branches(t0, n);
            let measured = p.branches_between(t0, t1);
            let err = measured.abs_diff(n);
            assert!(err <= 2, "n={n}: measured {measured}");
        }
    }

    #[test]
    fn jitter_changes_rate_across_epochs() {
        let p = profile(0.05);
        let rates: Vec<f64> = (0..10).map(|i| p.ips_at_epoch(i)).collect();
        let distinct = rates
            .windows(2)
            .filter(|w| (w[0] - w[1]).abs() > 1.0)
            .count();
        assert!(distinct >= 5, "rates too uniform: {rates:?}");
        for r in rates {
            assert!((0.95e9..=1.05e9).contains(&r));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = profile(0.05);
        let b = profile(0.05);
        assert_eq!(
            a.branches_between(SimTime::ZERO, SimTime::from_secs(1)),
            b.branches_between(SimTime::ZERO, SimTime::from_secs(1))
        );
    }

    #[test]
    fn different_hosts_differ() {
        let a = SpeedProfile::new(
            1.0e9,
            0.05,
            SimDuration::from_millis(10),
            SimRng::new(5).stream("host0"),
        );
        let b = SpeedProfile::new(
            1.0e9,
            0.05,
            SimDuration::from_millis(10),
            SimRng::new(5).stream("host1"),
        );
        assert_ne!(
            a.branches_between(SimTime::ZERO, SimTime::from_millis(25)),
            b.branches_between(SimTime::ZERO, SimTime::from_millis(25))
        );
    }

    #[test]
    fn contention_slows_execution() {
        let mut p = profile(0.0);
        let fast = p.branches_between(SimTime::ZERO, SimTime::from_millis(10));
        p.set_contention(0.3);
        let slow = p.branches_between(SimTime::ZERO, SimTime::from_millis(10));
        assert!((slow as f64 - fast as f64 * 0.7).abs() < 2.0);
    }

    #[test]
    fn additivity_across_epoch_boundaries() {
        let p = profile(0.05);
        let a = p.branches_between(SimTime::ZERO, SimTime::from_millis(25));
        let b = p.branches_between(SimTime::ZERO, SimTime::from_millis(13))
            + p.branches_between(SimTime::from_millis(13), SimTime::from_millis(25));
        assert!(a.abs_diff(b) <= 2, "{a} vs {b}");
    }

    #[test]
    fn time_for_zero_branches_is_identity() {
        let p = profile(0.05);
        assert_eq!(
            p.time_for_branches(SimTime::from_millis(7), 0),
            SimTime::from_millis(7)
        );
    }
}
