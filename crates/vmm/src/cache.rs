//! A shared last-level cache model — the substrate of the coresidency
//! channel (paper Sec. III).
//!
//! Each [`crate::host::HostMachine`] owns one [`CacheModel`] that every
//! guest slot on that host touches: a set/way-indexed line array with
//! **deterministic LRU eviction** (ties broken by way index), per-owner
//! occupancy accounting, and a probe-latency readout (hit vs. miss). The
//! model is driven purely by the access sequence, so a scenario replays
//! byte-identically; cross-replica divergence enters only through *which
//! guests* share each host — exactly the physical asymmetry a PRIME+PROBE
//! attacker senses and StopWatch's replica-median readout hides.
//!
//! The latencies are cycle-scale constants rendered in virtual
//! nanoseconds: a probe that hits costs [`CacheModel::HIT_NS`], a miss
//! costs [`CacheModel::MISS_NS`] (an LLC hit vs. a DRAM fill on the
//! testbed's 3 GHz parts). What a guest *observes* is not this local
//! number but the delivery timestamp of its probe completion — under
//! StopWatch, the median over the replicas' proposals (the unified
//! `GuestSlot::add_proposal` timing-channel core), the same machinery
//! that medians network and disk timestamps.

/// One cache line: who installed it, which tag, and when it was last
/// touched (logical LRU tick, not wall time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheLine {
    owner: u64,
    tag: u64,
    last_used: u64,
    valid: bool,
}

const EMPTY: CacheLine = CacheLine {
    owner: 0,
    tag: 0,
    last_used: 0,
    valid: false,
};

/// A set/way-indexed shared cache with deterministic LRU eviction.
#[derive(Debug, Clone)]
pub struct CacheModel {
    sets: u64,
    ways: usize,
    lines: Vec<CacheLine>,
    tick: u64,
}

impl CacheModel {
    /// Probe latency of a resident line, virtual nanoseconds (LLC hit).
    pub const HIT_NS: u64 = 40;
    /// Probe latency of an evicted line, virtual nanoseconds (DRAM fill).
    pub const MISS_NS: u64 = 400;

    /// A cache of `sets` sets with `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics on a zero set or way count.
    pub fn new(sets: u64, ways: usize) -> Self {
        assert!(sets > 0, "cache needs at least one set");
        assert!(ways > 0, "cache needs at least one way");
        CacheModel {
            sets,
            ways,
            lines: vec![EMPTY; sets as usize * ways],
            tick: 0,
        }
    }

    /// `(sets, ways)` geometry.
    pub fn geometry(&self) -> (u64, usize) {
        (self.sets, self.ways)
    }

    /// Touches line `(owner, tag)` in `set` (indices wrap modulo the set
    /// count): a hit refreshes the line's LRU position and returns `true`;
    /// a miss evicts the least-recently-used line of the set (ties broken
    /// by lowest way index — deterministic) and installs the new one.
    pub fn touch(&mut self, owner: u64, set: u64, tag: u64) -> bool {
        self.tick += 1;
        let base = (set % self.sets) as usize * self.ways;
        let ways = &mut self.lines[base..base + self.ways];
        if let Some(line) = ways
            .iter_mut()
            .find(|l| l.valid && l.owner == owner && l.tag == tag)
        {
            line.last_used = self.tick;
            return true;
        }
        // Miss: fill an invalid way first, else evict the LRU way. The
        // scan order makes the victim choice a pure function of the
        // access history.
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(i, l)| (l.valid, l.last_used, *i))
            .map(|(i, _)| i)
            .expect("ways > 0");
        ways[victim] = CacheLine {
            owner,
            tag,
            last_used: self.tick,
            valid: true,
        };
        false
    }

    /// Probes line `(owner, tag)` in `set`: the readout latency in
    /// virtual nanoseconds ([`CacheModel::HIT_NS`] if the line was
    /// resident, [`CacheModel::MISS_NS`] otherwise). Probing reloads the
    /// line, as a real PRIME+PROBE access does.
    pub fn probe(&mut self, owner: u64, set: u64, tag: u64) -> u64 {
        if self.touch(owner, set, tag) {
            CacheModel::HIT_NS
        } else {
            CacheModel::MISS_NS
        }
    }

    /// Lines currently held by `owner` across the whole cache.
    pub fn occupancy(&self, owner: u64) -> usize {
        self.lines
            .iter()
            .filter(|l| l.valid && l.owner == owner)
            .count()
    }

    /// Lines currently held by `owner` in one set.
    pub fn set_occupancy(&self, owner: u64, set: u64) -> usize {
        let base = (set % self.sets) as usize * self.ways;
        self.lines[base..base + self.ways]
            .iter()
            .filter(|l| l.valid && l.owner == owner)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_invalid_ways_before_evicting() {
        let mut c = CacheModel::new(4, 2);
        assert!(!c.touch(1, 0, 10), "cold cache misses");
        assert!(!c.touch(1, 0, 11));
        assert!(c.touch(1, 0, 10), "both lines resident");
        assert!(c.touch(1, 0, 11));
        assert_eq!(c.occupancy(1), 2);
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        let mut c = CacheModel::new(1, 2);
        c.touch(1, 0, 10); // way 0
        c.touch(1, 0, 11); // way 1
        c.touch(1, 0, 10); // refresh 10; 11 is now LRU
        assert!(!c.touch(2, 0, 99), "install evicts LRU");
        assert!(c.touch(1, 0, 10), "MRU line survives");
        assert!(!c.touch(1, 0, 11), "LRU line was the victim");
    }

    #[test]
    fn distinct_owners_with_equal_tags_do_not_alias() {
        let mut c = CacheModel::new(2, 2);
        assert!(!c.touch(1, 0, 7));
        assert!(!c.touch(2, 0, 7), "other owner's line is not a hit");
        assert!(c.touch(1, 0, 7));
        assert_eq!(c.set_occupancy(1, 0), 1);
        assert_eq!(c.set_occupancy(2, 0), 1);
    }

    #[test]
    fn probe_latency_reads_hit_vs_miss() {
        let mut c = CacheModel::new(2, 1);
        assert_eq!(c.probe(1, 0, 5), CacheModel::MISS_NS, "cold");
        assert_eq!(c.probe(1, 0, 5), CacheModel::HIT_NS, "resident");
        c.touch(2, 0, 6); // one-way set: evicts owner 1
        assert_eq!(c.probe(1, 0, 5), CacheModel::MISS_NS, "evicted");
    }

    #[test]
    fn set_indices_wrap() {
        let mut c = CacheModel::new(4, 1);
        c.touch(1, 9, 3); // lands in set 1
        assert!(c.touch(1, 1, 3));
        assert_eq!(c.set_occupancy(1, 1), 1);
    }

    #[test]
    fn identical_access_sequences_reach_identical_state() {
        let run = || {
            let mut c = CacheModel::new(8, 2);
            let mut hits = Vec::new();
            for i in 0..200u64 {
                hits.push(c.touch(i % 3, i * 7, i % 5));
            }
            (hits, c.occupancy(0), c.occupancy(1), c.occupancy(2))
        };
        assert_eq!(run(), run(), "replay is byte-identical");
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_rejected() {
        CacheModel::new(0, 1);
    }
}
