//! Virtual time (paper Sec. IV): `virt(instr) = slope × instr + start`.
//!
//! The guest's every real-time clock source reads a deterministic function
//! of its executed instruction count (here, like the prototype, its
//! *branch* count). `start` is seeded from the median of the replica
//! hosts' clocks at boot; `slope` from the machines' tick rate. Optionally,
//! after every epoch of `I` instructions the VMMs exchange
//! `(duration D_k, real time R_k)` and re-anchor:
//!
//! ```text
//! start_{k+1} = virt_k(I)
//! slope_{k+1} = clamp((R*_k − virt_k(I) + D*_k) / I, [ℓ, u])
//! ```
//!
//! with `R*`/`D*` the median values — keeping virtual time coarsely
//! synchronized with real time without letting any single machine dictate
//! it. All replicas apply identical updates, preserving determinism.

use simkit::time::{SimDuration, SimTime, VirtNanos};

/// Epoch-resynchronization settings (paper Sec. IV-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochConfig {
    /// Instructions (branches) per epoch, `I`.
    pub interval_instr: u64,
    /// Lower slope clamp ℓ (virtual ns per branch), must be positive to
    /// keep virtual time monotone.
    pub slope_min: f64,
    /// Upper slope clamp `u`.
    pub slope_max: f64,
}

/// The per-guest virtual clock.
///
/// # Examples
///
/// ```
/// use vmm::clock::VirtualClock;
/// use simkit::time::VirtNanos;
/// let c = VirtualClock::new(VirtNanos::from_nanos(1_000), 2.0, None);
/// assert_eq!(c.virt(0), VirtNanos::from_nanos(1_000));
/// assert_eq!(c.virt(500), VirtNanos::from_nanos(2_000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualClock {
    /// Virtual time at `base_instr`.
    start: VirtNanos,
    /// Virtual nanoseconds per branch.
    slope: f64,
    /// Branch count where the current epoch began.
    base_instr: u64,
    epochs: Option<EpochConfig>,
    epochs_applied: u64,
}

impl VirtualClock {
    /// Creates a clock with the given start (median of host boot clocks)
    /// and slope (ns of virtual time per branch).
    ///
    /// # Panics
    ///
    /// Panics unless `slope` is positive and finite.
    pub fn new(start: VirtNanos, slope: f64, epochs: Option<EpochConfig>) -> Self {
        assert!(slope > 0.0 && slope.is_finite(), "slope must be positive");
        if let Some(e) = &epochs {
            assert!(e.interval_instr > 0, "epoch interval must be positive");
            assert!(
                0.0 < e.slope_min && e.slope_min <= e.slope_max,
                "need 0 < slope_min <= slope_max"
            );
        }
        VirtualClock {
            start,
            slope,
            base_instr: 0,
            epochs,
            epochs_applied: 0,
        }
    }

    /// Virtual time after `instr` total branches.
    ///
    /// # Panics
    ///
    /// Panics if `instr` precedes the current epoch base (time cannot run
    /// backwards).
    pub fn virt(&self, instr: u64) -> VirtNanos {
        assert!(instr >= self.base_instr, "instruction count went backwards");
        let delta = (instr - self.base_instr) as f64 * self.slope;
        VirtNanos::from_nanos(self.start.as_nanos() + delta as u64)
    }

    /// Smallest branch count at which virtual time reaches `target`
    /// (saturating at the epoch base for past targets).
    pub fn instr_for(&self, target: VirtNanos) -> u64 {
        if target <= self.start {
            return self.base_instr;
        }
        let delta_ns = (target.as_nanos() - self.start.as_nanos()) as f64;
        self.base_instr + (delta_ns / self.slope).ceil() as u64
    }

    /// Current slope (virtual ns per branch).
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Epochs applied so far.
    pub fn epochs_applied(&self) -> u64 {
        self.epochs_applied
    }

    /// Branch count at which the next epoch ends, if epochs are enabled.
    pub fn next_epoch_at(&self) -> Option<u64> {
        self.epochs
            .as_ref()
            .map(|e| self.base_instr + e.interval_instr)
    }

    /// Applies the epoch update at the end of the current epoch, given the
    /// *median* real time `median_real` (R*) across replicas and the
    /// *matching machine's* epoch duration `median_duration` (D*).
    ///
    /// All replicas must call this with identical arguments (they agree on
    /// the medians), keeping their clocks — and hence their executions —
    /// identical.
    ///
    /// # Panics
    ///
    /// Panics if epochs were not configured.
    pub fn apply_epoch(&mut self, median_real: SimTime, median_duration: SimDuration) {
        let e = self.epochs.expect("epoch update without epoch config");
        let end_instr = self.base_instr + e.interval_instr;
        let virt_end = self.virt(end_instr);
        // slope_{k+1} = clamp((R* - virt_k(I) + D*) / I, [l, u])
        let numer = median_real.as_nanos() as f64 - virt_end.as_nanos() as f64
            + median_duration.as_nanos() as f64;
        let raw = numer / e.interval_instr as f64;
        self.slope = raw.clamp(e.slope_min, e.slope_max);
        self.start = virt_end;
        self.base_instr = end_instr;
        self.epochs_applied += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_mapping() {
        let c = VirtualClock::new(VirtNanos::from_nanos(100), 0.5, None);
        assert_eq!(c.virt(0).as_nanos(), 100);
        assert_eq!(c.virt(200).as_nanos(), 200);
        assert_eq!(c.virt(1000).as_nanos(), 600);
    }

    #[test]
    fn inverse_roundtrip() {
        let c = VirtualClock::new(VirtNanos::from_nanos(7), 1.7, None);
        for &target_ns in &[8u64, 100, 5_000, 1_000_000] {
            let target = VirtNanos::from_nanos(target_ns);
            let instr = c.instr_for(target);
            assert!(c.virt(instr) >= target, "virt({instr}) < {target_ns}");
            if instr > 0 {
                assert!(c.virt(instr - 1) < target, "not minimal");
            }
        }
    }

    #[test]
    fn instr_for_past_target_saturates() {
        let c = VirtualClock::new(VirtNanos::from_nanos(1000), 1.0, None);
        assert_eq!(c.instr_for(VirtNanos::from_nanos(10)), 0);
    }

    #[test]
    fn monotone_in_instr() {
        let c = VirtualClock::new(VirtNanos::ZERO, 0.33, None);
        let mut prev = VirtNanos::ZERO;
        for i in (0..10_000).step_by(97) {
            let v = c.virt(i);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn epoch_reanchors_continuously() {
        let cfg = EpochConfig {
            interval_instr: 1000,
            slope_min: 0.1,
            slope_max: 10.0,
        };
        let mut c = VirtualClock::new(VirtNanos::ZERO, 1.0, Some(cfg));
        let virt_end = c.virt(1000);
        // Real time ran ahead: virt should speed up.
        c.apply_epoch(SimTime::from_nanos(5_000), SimDuration::from_nanos(2_000));
        assert_eq!(c.virt(1000), virt_end, "continuity at the epoch boundary");
        // slope = (5000 - 1000 + 2000)/1000 = 6.
        assert!((c.slope() - 6.0).abs() < 1e-12);
        assert_eq!(c.epochs_applied(), 1);
        assert_eq!(c.virt(2000).as_nanos(), 1000 + 6000);
    }

    #[test]
    fn epoch_slope_clamped() {
        let cfg = EpochConfig {
            interval_instr: 100,
            slope_min: 0.5,
            slope_max: 2.0,
        };
        let mut c = VirtualClock::new(VirtNanos::ZERO, 1.0, Some(cfg));
        // Enormous real-time lead clamps at slope_max.
        c.apply_epoch(SimTime::from_millis(100), SimDuration::from_nanos(10));
        assert_eq!(c.slope(), 2.0);
        // Next epoch: virt far ahead of real now; clamps at slope_min
        // (stays positive: virtual time never reverses).
        c.apply_epoch(SimTime::from_nanos(1), SimDuration::from_nanos(1));
        assert_eq!(c.slope(), 0.5);
        assert!(c.virt(300) > c.virt(200));
    }

    #[test]
    fn identical_updates_keep_replicas_identical() {
        let cfg = EpochConfig {
            interval_instr: 500,
            slope_min: 0.2,
            slope_max: 5.0,
        };
        let mut a = VirtualClock::new(VirtNanos::from_nanos(42), 1.5, Some(cfg));
        let mut b = a.clone();
        for k in 1..10u64 {
            let r = SimTime::from_nanos(k * 700);
            let d = SimDuration::from_nanos(k * 650);
            a.apply_epoch(r, d);
            b.apply_epoch(r, d);
        }
        assert_eq!(a, b);
        assert_eq!(a.virt(12_345), b.virt(12_345));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn instr_backwards_panics() {
        let cfg = EpochConfig {
            interval_instr: 100,
            slope_min: 0.5,
            slope_max: 2.0,
        };
        let mut c = VirtualClock::new(VirtNanos::ZERO, 1.0, Some(cfg));
        c.apply_epoch(SimTime::from_nanos(100), SimDuration::from_nanos(100));
        c.virt(50); // before the epoch base
    }

    #[test]
    #[should_panic(expected = "slope must be positive")]
    fn zero_slope_panics() {
        VirtualClock::new(VirtNanos::ZERO, 0.0, None);
    }
}
