//! Experiment implementations, one per figure of the paper's evaluation.
//! Each returns plain data rows; the `experiments` binary renders them as
//! tables and CSV.

use netsim::packet::EndpointId;
use simkit::time::{SimDuration, SimTime, VirtOffset};
use stopwatch_core::cloud::CloudBuilder;
use stopwatch_core::config::{CloudConfig, DiskKind};
use timestats::detect::{Detector, PAPER_CONFIDENCES};
use timestats::dist::{Cdf, Exponential};
use timestats::noise::{compare_with_uniform_noise, NoiseComparison, TAIL_QS};
use timestats::order_stats::OrderStat;
use workloads::attack::run_attack_scenario;
use workloads::nfs::{NfsServerGuest, NhfsstoneClient};
use workloads::parsec::{CompletionWaiter, ParsecGuest, PARSEC};
use workloads::web::{
    FileServerGuest, HttpDownloadClient, UdpDownloadClient, UdpFileGuest,
};

/// Fig. 1a: one point of the analytic median-distribution curves.
#[derive(Debug, Clone, Copy)]
pub struct Fig1CurvePoint {
    /// Evaluation point x.
    pub x: f64,
    /// Baseline Exp(λ) CDF.
    pub baseline: f64,
    /// Victim Exp(λ′) CDF.
    pub victim: f64,
    /// CDF of median of three baselines.
    pub median_three_baselines: f64,
    /// CDF of median of two baselines + one victim.
    pub median_with_victim: f64,
}

/// Fig. 1b/c: observations needed at one confidence.
#[derive(Debug, Clone, Copy)]
pub struct Fig1DetectPoint {
    /// Test confidence.
    pub confidence: f64,
    /// Observations needed with StopWatch (median of three).
    pub with_stopwatch: u64,
    /// Observations needed without StopWatch (raw distributions).
    pub without_stopwatch: u64,
}

/// Full Fig. 1 output.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// λ′ of the victim distribution.
    pub lambda_prime: f64,
    /// The (a) panel curves.
    pub curves: Vec<Fig1CurvePoint>,
    /// The (b)/(c) panel sweep.
    pub detection: Vec<Fig1DetectPoint>,
}

/// Reproduces Fig. 1 analytically for `lambda = 1` and the given `λ′`.
pub fn fig1(lambda_prime: f64) -> Fig1 {
    let base = Exponential::new(1.0);
    let victim = Exponential::new(lambda_prime);
    let med_null = OrderStat::median_of_three(base, base, base);
    let med_alt = OrderStat::median_of_three(victim, base, base);
    let curves = (0..=60)
        .map(|i| {
            let x = i as f64 * 0.1;
            Fig1CurvePoint {
                x,
                baseline: base.cdf(x),
                victim: victim.cdf(x),
                median_three_baselines: med_null.cdf(x),
                median_with_victim: med_alt.cdf(x),
            }
        })
        .collect();
    let raw = Detector::from_cdfs_with_tails(&base, &victim, 10, TAIL_QS);
    let med = Detector::from_cdfs_with_tails(&med_null, &med_alt, 10, TAIL_QS);
    let detection = PAPER_CONFIDENCES
        .iter()
        .map(|&confidence| Fig1DetectPoint {
            confidence,
            with_stopwatch: med.observations_needed(confidence),
            without_stopwatch: raw.observations_needed(confidence),
        })
        .collect();
    Fig1 {
        lambda_prime,
        curves,
        detection,
    }
}

/// Fig. 4: attacker-measured inter-packet virtual delivery times from real
/// simulation runs, with and without a coresident victim, plus the
/// χ²-observations sweep on the empirical distributions.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Deltas with no victim coresident ("median of three baselines").
    pub null_deltas_ms: Vec<f64>,
    /// Deltas with the victim coresident with one replica.
    pub victim_deltas_ms: Vec<f64>,
    /// Same pair measured WITHOUT StopWatch (baseline Xen).
    pub baseline_null_ms: Vec<f64>,
    /// Baseline with victim.
    pub baseline_victim_ms: Vec<f64>,
    /// (confidence, with StopWatch, without StopWatch).
    pub detection: Vec<Fig1DetectPoint>,
}

/// Runs the Fig. 4 experiment with `probes` probe packets per scenario.
pub fn fig4(probes: u32, seed: u64) -> Fig4 {
    let sw_null = run_attack_scenario(true, false, probes, seed);
    let sw_victim = run_attack_scenario(true, true, probes, seed);
    let bl_null = run_attack_scenario(false, false, probes, seed);
    let bl_victim = run_attack_scenario(false, true, probes, seed);
    let bins = 10;
    let sw = Detector::from_samples(&sw_null.deltas_ms, &sw_victim.deltas_ms, bins);
    let bl = Detector::from_samples(&bl_null.deltas_ms, &bl_victim.deltas_ms, bins);
    let detection = PAPER_CONFIDENCES
        .iter()
        .map(|&confidence| Fig1DetectPoint {
            confidence,
            with_stopwatch: sw.observations_needed(confidence),
            without_stopwatch: bl.observations_needed(confidence),
        })
        .collect();
    Fig4 {
        null_deltas_ms: sw_null.deltas_ms,
        victim_deltas_ms: sw_victim.deltas_ms,
        baseline_null_ms: bl_null.deltas_ms,
        baseline_victim_ms: bl_victim.deltas_ms,
        detection,
    }
}

/// One Fig. 5 row: mean retrieval latency for one file size.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// File size in bytes.
    pub bytes: u64,
    /// HTTP over unmodified Xen, ms.
    pub http_baseline_ms: f64,
    /// HTTP over StopWatch, ms.
    pub http_stopwatch_ms: f64,
    /// UDP-NAK over unmodified Xen, ms.
    pub udp_baseline_ms: f64,
    /// UDP-NAK over StopWatch, ms.
    pub udp_stopwatch_ms: f64,
}

fn http_download_ms(stopwatch: bool, bytes: u64, downloads: u32, seed: u64) -> f64 {
    let mut cfg = CloudConfig::default();
    cfg.seed = seed;
    cfg.broadcast_band = Some((50.0, 100.0));
    let mut b = CloudBuilder::new(cfg, 3);
    let vm = if stopwatch {
        b.add_stopwatch_vm(&[0, 1, 2], || Box::new(FileServerGuest::new()))
    } else {
        b.add_baseline_vm(0, Box::new(FileServerGuest::new()))
    };
    let client = b.add_client(Box::new(HttpDownloadClient::new(
        EndpointId(2000),
        vm.endpoint,
        1,
        bytes,
        downloads,
    )));
    let mut sim = b.build();
    sim.run_until_clients_done(SimTime::from_secs(600));
    let c = sim.cloud.client_app::<HttpDownloadClient>(client).expect("client");
    assert!(!c.results().is_empty(), "no downloads completed");
    c.results().iter().map(|r| r.latency.as_millis_f64()).sum::<f64>() / c.results().len() as f64
}

fn udp_download_ms(stopwatch: bool, bytes: u64, downloads: u32, seed: u64) -> f64 {
    let mut cfg = CloudConfig::default();
    cfg.seed = seed;
    let mut b = CloudBuilder::new(cfg, 3);
    let vm = if stopwatch {
        b.add_stopwatch_vm(&[0, 1, 2], || Box::new(UdpFileGuest::new()))
    } else {
        b.add_baseline_vm(0, Box::new(UdpFileGuest::new()))
    };
    let client = b.add_client(Box::new(UdpDownloadClient::new(
        EndpointId(2000),
        vm.endpoint,
        1,
        bytes,
        downloads,
    )));
    let mut sim = b.build();
    sim.run_until_clients_done(SimTime::from_secs(600));
    let c = sim.cloud.client_app::<UdpDownloadClient>(client).expect("client");
    assert!(!c.results().is_empty(), "no downloads completed");
    c.results().iter().map(|r| r.latency.as_millis_f64()).sum::<f64>() / c.results().len() as f64
}

/// Runs Fig. 5 for the given file sizes, `downloads` repetitions each.
pub fn fig5(sizes: &[u64], downloads: u32, seed: u64) -> Vec<Fig5Row> {
    sizes
        .iter()
        .map(|&bytes| Fig5Row {
            bytes,
            http_baseline_ms: http_download_ms(false, bytes, downloads, seed),
            http_stopwatch_ms: http_download_ms(true, bytes, downloads, seed),
            udp_baseline_ms: udp_download_ms(false, bytes, downloads, seed),
            udp_stopwatch_ms: udp_download_ms(true, bytes, downloads, seed),
        })
        .collect()
}

/// One Fig. 6 row.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Offered load, operations per second.
    pub rate: f64,
    /// Mean latency per op, baseline Xen, ms.
    pub baseline_ms: f64,
    /// Mean latency per op, StopWatch, ms.
    pub stopwatch_ms: f64,
    /// Client→server TCP packets per op (StopWatch run).
    pub client_to_server_per_op: f64,
    /// Server→client TCP packets per op (StopWatch run).
    pub server_to_client_per_op: f64,
}

fn nfs_run(stopwatch: bool, rate: f64, ops: u64, seed: u64) -> (f64, f64, f64) {
    let mut cfg = CloudConfig::default();
    cfg.seed = seed;
    let mut b = CloudBuilder::new(cfg, 3);
    let vm = if stopwatch {
        b.add_stopwatch_vm(&[0, 1, 2], || Box::new(NfsServerGuest::new()))
    } else {
        b.add_baseline_vm(0, Box::new(NfsServerGuest::new()))
    };
    let client = b.add_client(Box::new(NhfsstoneClient::new(
        EndpointId(2000),
        vm.endpoint,
        rate,
        ops,
        seed,
    )));
    let mut sim = b.build();
    sim.run_until_clients_done(SimTime::from_secs(600));
    let c = sim.cloud.client_app::<NhfsstoneClient>(client).expect("client");
    let done = c.completed().max(1);
    (
        c.mean_latency_ms(),
        c.sent_segments as f64 / done as f64,
        c.received_segments as f64 / done as f64,
    )
}

/// Runs Fig. 6 for the given offered rates, `ops` operations per run.
pub fn fig6(rates: &[f64], ops: u64, seed: u64) -> Vec<Fig6Row> {
    rates
        .iter()
        .map(|&rate| {
            let (baseline_ms, _, _) = nfs_run(false, rate, ops, seed);
            let (stopwatch_ms, c2s, s2c) = nfs_run(true, rate, ops, seed);
            Fig6Row {
                rate,
                baseline_ms,
                stopwatch_ms,
                client_to_server_per_op: c2s,
                server_to_client_per_op: s2c,
            }
        })
        .collect()
}

/// One Fig. 7 row.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Application name.
    pub name: &'static str,
    /// Measured baseline runtime, ms.
    pub baseline_ms: f64,
    /// Measured StopWatch runtime, ms.
    pub stopwatch_ms: f64,
    /// Disk interrupts during the run (one replica).
    pub disk_interrupts: u64,
    /// The paper's baseline runtime, ms.
    pub paper_baseline_ms: u64,
    /// The paper's StopWatch runtime, ms.
    pub paper_stopwatch_ms: u64,
    /// The paper's disk-interrupt count.
    pub paper_disk_interrupts: u64,
}

fn parsec_run(name: &str, stopwatch: bool, disk: DiskKind, seed: u64) -> (f64, u64) {
    let prof = workloads::parsec::profile(name).expect("known app");
    let mut cfg = CloudConfig::default();
    cfg.seed = seed;
    cfg.disk = disk;
    if disk == DiskKind::Ssd {
        // The Sec. VII-D conjecture: faster media shrink the worst-case
        // access time that sizes Δd. SSD worst case is ~3 ms here.
        cfg.delta_d = VirtOffset::from_millis(3);
    }
    cfg.broadcast_band = None; // computation benchmarks ran without clients
    let mut b = CloudBuilder::new(cfg, 3);
    let monitor_ep = EndpointId(2000);
    let vm = if stopwatch {
        b.add_stopwatch_vm(&[0, 1, 2], move || Box::new(ParsecGuest::new(prof, monitor_ep)))
    } else {
        b.add_baseline_vm(0, Box::new(ParsecGuest::new(prof, monitor_ep)))
    };
    let client = b.add_client(Box::new(CompletionWaiter::new(1)));
    let mut sim = b.build();
    sim.run_until_clients_done(SimTime::from_secs(120));
    let w = sim.cloud.client_app::<CompletionWaiter>(client).expect("waiter");
    assert_eq!(w.arrivals().len(), 1, "{name} did not complete");
    let ms = w.arrivals()[0].as_millis_f64();
    let (h, s) = sim.cloud.vm_replicas(vm)[0];
    let irqs = sim.cloud.host(h).slot(s).counters().get("disk_irq");
    (ms, irqs)
}

/// Runs one PARSEC app pair (baseline + StopWatch); used by the Criterion
/// benches to track a single figure point cheaply.
pub fn fig7_app(name: &str, disk: DiskKind, seed: u64) -> Fig7Row {
    let p = workloads::parsec::profile(name).expect("known app");
    let (baseline_ms, _) = parsec_run(name, false, disk, seed);
    let (stopwatch_ms, disk_interrupts) = parsec_run(name, true, disk, seed);
    Fig7Row {
        name: p.name,
        baseline_ms,
        stopwatch_ms,
        disk_interrupts,
        paper_baseline_ms: p.paper_baseline_ms,
        paper_stopwatch_ms: p.paper_stopwatch_ms,
        paper_disk_interrupts: p.disk_interrupts,
    }
}

/// Runs Fig. 7 (all five PARSEC apps, baseline and StopWatch).
pub fn fig7(disk: DiskKind, seed: u64) -> Vec<Fig7Row> {
    PARSEC
        .iter()
        .map(|p| {
            let (baseline_ms, _) = parsec_run(p.name, false, disk, seed);
            let (stopwatch_ms, disk_interrupts) = parsec_run(p.name, true, disk, seed);
            Fig7Row {
                name: p.name,
                baseline_ms,
                stopwatch_ms,
                disk_interrupts,
                paper_baseline_ms: p.paper_baseline_ms,
                paper_stopwatch_ms: p.paper_stopwatch_ms,
                paper_disk_interrupts: p.disk_interrupts,
            }
        })
        .collect()
}

/// Fig. 8: re-exported from `timestats` (pure analysis).
pub fn fig8(lambda_prime: f64) -> Vec<NoiseComparison> {
    compare_with_uniform_noise(1.0, lambda_prime, &PAPER_CONFIDENCES, 10, 0.9999)
}

/// One Δ-calibration row (Sec. VII-A).
#[derive(Debug, Clone, Copy)]
pub struct CalibrationRow {
    /// The Δ value swept, ms (applies to Δn or Δd per experiment half).
    pub delta_ms: u64,
    /// Synchrony violations observed (Δn sweep).
    pub sync_violations: u64,
    /// Δd violations observed (Δd sweep).
    pub dd_violations: u64,
    /// Mean HTTP retrieval latency at this Δ, ms.
    pub latency_ms: f64,
}

/// Sweeps Δn = Δd over `deltas_ms`, measuring violation counts and
/// latency — reproducing how the paper sized Δn (7–12 ms) and Δd
/// (8–15 ms) for its platform.
pub fn calibrate(deltas_ms: &[u64], seed: u64) -> Vec<CalibrationRow> {
    deltas_ms
        .iter()
        .map(|&d| {
            let mut cfg = CloudConfig::default();
            cfg.seed = seed;
            cfg.delta_n = VirtOffset::from_millis(d);
            cfg.delta_d = VirtOffset::from_millis(d);
            let mut b = CloudBuilder::new(cfg, 3);
            let vm = b.add_stopwatch_vm(&[0, 1, 2], || Box::new(FileServerGuest::new()));
            let client = b.add_client(Box::new(HttpDownloadClient::new(
                EndpointId(2000),
                vm.endpoint,
                1,
                100_000,
                3,
            )));
            let mut sim = b.build();
            sim.run_until_clients_done(SimTime::from_secs(120));
            let lat = {
                let c = sim.cloud.client_app::<HttpDownloadClient>(client).expect("client");
                if c.results().is_empty() {
                    f64::NAN
                } else {
                    c.results().iter().map(|r| r.latency.as_millis_f64()).sum::<f64>()
                        / c.results().len() as f64
                }
            };
            CalibrationRow {
                delta_ms: d,
                sync_violations: sim.cloud.total_counter("sync_violations"),
                dd_violations: sim.cloud.total_counter("dd_violations"),
                latency_ms: lat,
            }
        })
        .collect()
}

/// Sec. IX: collaborating-attacker marginalization experiment.
#[derive(Debug, Clone, Copy)]
pub struct CollabRow {
    /// Replica count of the attacker VM.
    pub replicas: usize,
    /// Whether the collaborator load VM ran on the attacker's first host.
    pub load_present: bool,
    /// Mean attacker-observed inter-packet delta, ms.
    pub mean_delta_ms: f64,
    /// Mean absolute shift from the no-load run, ms (0 for the reference).
    pub shift_ms: f64,
}

/// Runs the collaborating-attacker experiment: a load VM tries to
/// marginalize one attacker replica from the median; more replicas make
/// the attack harder (Sec. IX suggests going from 3 to 5).
pub fn collab(probes: u32, seed: u64) -> Vec<CollabRow> {
    use workloads::attack::{AttackerGuest, LoadGuest, ProbeClient, VictimGuest};

    let run = |replicas: usize, load: bool| -> f64 {
        let hosts = replicas;
        let mut cfg = CloudConfig::fast_test();
        cfg.seed = seed;
        cfg.replicas = replicas;
        cfg.client_tick = SimDuration::from_millis(2);
        let mut b = CloudBuilder::new(cfg, hosts);
        let host_list: Vec<usize> = (0..replicas).collect();
        let attacker = b.add_stopwatch_vm(&host_list, || Box::new(AttackerGuest::new()));
        // The victim always coresides with replica 0 (what the attacker
        // wants to sense); the collaborator loads the same host to push
        // replica 0 out of the median.
        b.add_baseline_vm(0, Box::new(VictimGuest::new(100_000_000, 50)));
        if load {
            b.add_baseline_vm(0, Box::new(LoadGuest::new(50_000_000)));
        }
        b.add_client(Box::new(ProbeClient::new(
            EndpointId(2000),
            attacker.endpoint,
            probes,
            SimDuration::from_millis(40),
            seed ^ 0xc0,
        )));
        let mut sim = b.build();
        sim.run_until_clients_done(SimTime::from_secs(600));
        let drain = sim.now() + SimDuration::from_millis(500);
        sim.run_until(drain);
        let g = sim
            .cloud
            .guest_program::<AttackerGuest>(attacker, 0)
            .expect("attacker");
        let deltas = g.deltas_ms();
        deltas.iter().sum::<f64>() / deltas.len().max(1) as f64
    };

    let mut rows = Vec::new();
    for &replicas in &[3usize, 5] {
        let reference = run(replicas, false);
        for &load in &[false, true] {
            let mean = if load { run(replicas, true) } else { reference };
            rows.push(CollabRow {
                replicas,
                load_present: load,
                mean_delta_ms: mean,
                shift_ms: (mean - reference).abs(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shapes() {
        let f = fig1(0.5);
        assert_eq!(f.curves.len(), 61);
        // Median curves lie between their component CDFs' extremes and the
        // two median curves are closer together than the raw pair.
        let mid = &f.curves[20]; // x = 2.0
        let raw_gap = (mid.baseline - mid.victim).abs();
        let med_gap = (mid.median_three_baselines - mid.median_with_victim).abs();
        assert!(med_gap < raw_gap);
        // Detection: StopWatch needs more observations, monotone in
        // confidence.
        for p in &f.detection {
            assert!(p.with_stopwatch > p.without_stopwatch);
        }
        for w in f.detection.windows(2) {
            assert!(w[1].with_stopwatch >= w[0].with_stopwatch);
        }
    }

    #[test]
    fn fig8_noise_scales_worse() {
        let rows = fig8(0.5);
        let last = rows.last().unwrap();
        assert!(last.noise_delay_null > last.stopwatch_delay_null);
    }

    #[test]
    fn fig5_small_sweep_shape() {
        let rows = fig5(&[10_000, 100_000], 1, 7);
        for r in &rows {
            assert!(r.http_stopwatch_ms > r.http_baseline_ms, "{r:?}");
            // The paper's crossover: UDP-NAK over StopWatch becomes
            // competitive for files of 100 KB or more (one Δn crossing
            // amortized over the stream), while HTTP keeps paying per ACK.
            if r.bytes >= 100_000 {
                let http_ratio = r.http_stopwatch_ms / r.http_baseline_ms;
                let udp_ratio = r.udp_stopwatch_ms / r.udp_baseline_ms;
                assert!(udp_ratio < http_ratio, "{r:?}");
            }
        }
    }

    #[test]
    fn calibration_violations_fall_with_delta() {
        let rows = calibrate(&[1, 12], 5);
        assert!(
            rows[0].sync_violations + rows[0].dd_violations
                >= rows[1].sync_violations + rows[1].dd_violations,
            "{rows:?}"
        );
        assert_eq!(rows[1].dd_violations, 0, "paper-sized Δd has no violations");
    }
}
