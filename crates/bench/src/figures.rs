//! Experiment implementations, one per figure of the paper's evaluation.
//! Each returns plain data rows; the `experiments` binary renders them as
//! tables and CSV.
//!
//! Simulated runs are declared as [`harness`] scenarios and executed
//! through its parallel runner, so a figure's grid points run concurrently
//! on all cores and every run shares the one scenario→cloud construction
//! path (no per-figure cloud wiring).

use harness::prelude::*;
use simkit::time::SimDuration;
use stopwatch_core::config::DiskKind;
use timestats::detect::{Detector, PAPER_CONFIDENCES};
use timestats::dist::{Cdf, Exponential};
use timestats::noise::{compare_with_uniform_noise, NoiseComparison, TAIL_QS};
use timestats::order_stats::OrderStat;
use workloads::attack::run_attack_scenario;
use workloads::parsec::PARSEC;

/// Fig. 1a: one point of the analytic median-distribution curves.
#[derive(Debug, Clone, Copy)]
pub struct Fig1CurvePoint {
    /// Evaluation point x.
    pub x: f64,
    /// Baseline Exp(λ) CDF.
    pub baseline: f64,
    /// Victim Exp(λ′) CDF.
    pub victim: f64,
    /// CDF of median of three baselines.
    pub median_three_baselines: f64,
    /// CDF of median of two baselines + one victim.
    pub median_with_victim: f64,
}

/// Fig. 1b/c: observations needed at one confidence.
#[derive(Debug, Clone, Copy)]
pub struct Fig1DetectPoint {
    /// Test confidence.
    pub confidence: f64,
    /// Observations needed with StopWatch (median of three).
    pub with_stopwatch: u64,
    /// Observations needed without StopWatch (raw distributions).
    pub without_stopwatch: u64,
}

/// Full Fig. 1 output.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// λ′ of the victim distribution.
    pub lambda_prime: f64,
    /// The (a) panel curves.
    pub curves: Vec<Fig1CurvePoint>,
    /// The (b)/(c) panel sweep.
    pub detection: Vec<Fig1DetectPoint>,
}

/// Reproduces Fig. 1 analytically for `lambda = 1` and the given `λ′`.
pub fn fig1(lambda_prime: f64) -> Fig1 {
    let base = Exponential::new(1.0);
    let victim = Exponential::new(lambda_prime);
    let med_null = OrderStat::median_of_three(base, base, base);
    let med_alt = OrderStat::median_of_three(victim, base, base);
    let curves = (0..=60)
        .map(|i| {
            let x = i as f64 * 0.1;
            Fig1CurvePoint {
                x,
                baseline: base.cdf(x),
                victim: victim.cdf(x),
                median_three_baselines: med_null.cdf(x),
                median_with_victim: med_alt.cdf(x),
            }
        })
        .collect();
    let raw = Detector::from_cdfs_with_tails(&base, &victim, 10, TAIL_QS);
    let med = Detector::from_cdfs_with_tails(&med_null, &med_alt, 10, TAIL_QS);
    let detection = PAPER_CONFIDENCES
        .iter()
        .map(|&confidence| Fig1DetectPoint {
            confidence,
            with_stopwatch: med.observations_needed(confidence),
            without_stopwatch: raw.observations_needed(confidence),
        })
        .collect();
    Fig1 {
        lambda_prime,
        curves,
        detection,
    }
}

/// Fig. 4: attacker-measured inter-packet virtual delivery times from real
/// simulation runs, with and without a coresident victim, plus the
/// χ²-observations sweep on the empirical distributions.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Deltas with no victim coresident ("median of three baselines").
    pub null_deltas_ms: Vec<f64>,
    /// Deltas with the victim coresident with one replica.
    pub victim_deltas_ms: Vec<f64>,
    /// Same pair measured WITHOUT StopWatch (baseline Xen).
    pub baseline_null_ms: Vec<f64>,
    /// Baseline with victim.
    pub baseline_victim_ms: Vec<f64>,
    /// (confidence, with StopWatch, without StopWatch).
    pub detection: Vec<Fig1DetectPoint>,
}

/// Runs the Fig. 4 experiment with `probes` probe packets per scenario.
pub fn fig4(probes: u32, seed: u64) -> Fig4 {
    let sw_null = run_attack_scenario(true, false, probes, seed);
    let sw_victim = run_attack_scenario(true, true, probes, seed);
    let bl_null = run_attack_scenario(false, false, probes, seed);
    let bl_victim = run_attack_scenario(false, true, probes, seed);
    let bins = 10;
    let sw = Detector::from_samples(&sw_null.deltas_ms, &sw_victim.deltas_ms, bins);
    let bl = Detector::from_samples(&bl_null.deltas_ms, &bl_victim.deltas_ms, bins);
    let detection = PAPER_CONFIDENCES
        .iter()
        .map(|&confidence| Fig1DetectPoint {
            confidence,
            with_stopwatch: sw.observations_needed(confidence),
            without_stopwatch: bl.observations_needed(confidence),
        })
        .collect();
    Fig4 {
        null_deltas_ms: sw_null.deltas_ms,
        victim_deltas_ms: sw_victim.deltas_ms,
        baseline_null_ms: bl_null.deltas_ms,
        baseline_victim_ms: bl_victim.deltas_ms,
        detection,
    }
}

/// One Fig. 5 row: mean retrieval latency for one file size.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// File size in bytes.
    pub bytes: u64,
    /// HTTP over unmodified Xen, ms.
    pub http_baseline_ms: f64,
    /// HTTP over StopWatch, ms.
    pub http_stopwatch_ms: f64,
    /// UDP-NAK over unmodified Xen, ms.
    pub udp_baseline_ms: f64,
    /// UDP-NAK over StopWatch, ms.
    pub udp_stopwatch_ms: f64,
}

/// The figures' shared scenario shape: a single protected (or baseline)
/// service VM under the paper's default cloud, measured by one client.
fn figure_scenario(
    workload: &str,
    stopwatch: bool,
    params: &[(&str, &str)],
    overrides: &[(&str, &str)],
    seed: u64,
) -> Scenario {
    let arm = if stopwatch { "stopwatch" } else { "baseline" };
    let mut s = Scenario::new(workload, seed);
    s.label = format!("{workload}:{arm}#{seed}");
    s.duration = SimDuration::from_secs(600);
    s.workload_params = params
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    s.overrides = overrides
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    s.overrides.push(("defense".to_string(), arm.to_string()));
    s
}

/// Runs a figure's scenario list on all cores, asserting success.
fn run_figure(scenarios: &[Scenario]) -> Vec<ScenarioResult> {
    run_scenarios(scenarios, &RunnerOptions::default())
        .into_iter()
        .map(|o| o.result.expect("figure scenario"))
        .collect()
}

fn mean_ms(result: &ScenarioResult) -> f64 {
    assert!(!result.samples_ms.is_empty(), "no operations completed");
    result.samples_ms.iter().sum::<f64>() / result.samples_ms.len() as f64
}

/// Like [`mean_ms`] but NaN when nothing completed — for figures whose
/// overload points may legitimately time out with zero finished ops.
fn mean_ms_or_nan(result: &ScenarioResult) -> f64 {
    if result.samples_ms.is_empty() {
        f64::NAN
    } else {
        mean_ms(result)
    }
}

/// Runs Fig. 5 for the given file sizes, `downloads` repetitions each.
/// All `4 × sizes` grid points execute in parallel.
pub fn fig5(sizes: &[u64], downloads: u32, seed: u64) -> Vec<Fig5Row> {
    let downloads = downloads.to_string();
    let mut scenarios = Vec::new();
    for &bytes in sizes {
        let bytes_s = bytes.to_string();
        let params = [
            ("bytes", bytes_s.as_str()),
            ("downloads", downloads.as_str()),
        ];
        for workload in ["web-http", "web-udp"] {
            for stopwatch in [false, true] {
                scenarios.push(figure_scenario(workload, stopwatch, &params, &[], seed));
            }
        }
    }
    let results = run_figure(&scenarios);
    sizes
        .iter()
        .zip(results.chunks_exact(4))
        .map(|(&bytes, chunk)| Fig5Row {
            bytes,
            http_baseline_ms: mean_ms(&chunk[0]),
            http_stopwatch_ms: mean_ms(&chunk[1]),
            udp_baseline_ms: mean_ms(&chunk[2]),
            udp_stopwatch_ms: mean_ms(&chunk[3]),
        })
        .collect()
}

/// One Fig. 6 row.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Offered load, operations per second.
    pub rate: f64,
    /// Mean latency per op, baseline Xen, ms.
    pub baseline_ms: f64,
    /// Mean latency per op, StopWatch, ms.
    pub stopwatch_ms: f64,
    /// Client→server TCP packets per op (StopWatch run).
    pub client_to_server_per_op: f64,
    /// Server→client TCP packets per op (StopWatch run).
    pub server_to_client_per_op: f64,
}

/// Runs Fig. 6 for the given offered rates, `ops` operations per run.
/// Both defense arms of every rate execute in parallel.
pub fn fig6(rates: &[f64], ops: u64, seed: u64) -> Vec<Fig6Row> {
    let ops = ops.to_string();
    let mut scenarios = Vec::new();
    for &rate in rates {
        let rate_s = rate.to_string();
        let params = [("rate", rate_s.as_str()), ("ops", ops.as_str())];
        for stopwatch in [false, true] {
            scenarios.push(figure_scenario("nfs", stopwatch, &params, &[], seed));
        }
    }
    let results = run_figure(&scenarios);
    rates
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(&rate, chunk)| {
            let sw = &chunk[1];
            let done = sw.completed.max(1) as f64;
            Fig6Row {
                rate,
                baseline_ms: mean_ms_or_nan(&chunk[0]),
                stopwatch_ms: mean_ms_or_nan(sw),
                client_to_server_per_op: sw.extra("sent_segments") / done,
                server_to_client_per_op: sw.extra("received_segments") / done,
            }
        })
        .collect()
}

/// One Fig. 7 row.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Application name.
    pub name: &'static str,
    /// Measured baseline runtime, ms.
    pub baseline_ms: f64,
    /// Measured StopWatch runtime, ms.
    pub stopwatch_ms: f64,
    /// Disk interrupts during the run (one replica).
    pub disk_interrupts: u64,
    /// The paper's baseline runtime, ms.
    pub paper_baseline_ms: u64,
    /// The paper's StopWatch runtime, ms.
    pub paper_stopwatch_ms: u64,
    /// The paper's disk-interrupt count.
    pub paper_disk_interrupts: u64,
}

fn parsec_scenario(name: &str, stopwatch: bool, disk: DiskKind, seed: u64) -> Scenario {
    // The Sec. VII-D conjecture: faster media shrink the worst-case access
    // time that sizes Δd. SSD worst case is ~3 ms here. Computation
    // benchmarks ran without background chatter.
    let mut overrides = vec![("broadcast_band", "off")];
    match disk {
        DiskKind::Rotating => overrides.push(("disk", "rotating")),
        DiskKind::Ssd => {
            overrides.push(("disk", "ssd"));
            overrides.push(("delta_d_ms", "3"));
        }
    }
    let mut s = figure_scenario(&format!("parsec:{name}"), stopwatch, &[], &overrides, seed);
    s.duration = SimDuration::from_secs(120);
    s
}

fn parsec_row(baseline: &ScenarioResult, protected: &ScenarioResult) -> (f64, f64, u64) {
    assert_eq!(protected.completed, 1, "app did not complete");
    assert_eq!(baseline.completed, 1, "baseline app did not complete");
    // Replicas are deterministic and identical, so one replica's disk
    // interrupts are the summed counter over the actual replica count.
    let irqs = protected.counter("disk_irq") / protected.replicas.max(1);
    (mean_ms(baseline), mean_ms(protected), irqs)
}

/// Runs one PARSEC app pair (baseline + StopWatch); used by the Criterion
/// benches to track a single figure point cheaply.
pub fn fig7_app(name: &str, disk: DiskKind, seed: u64) -> Fig7Row {
    let p = workloads::parsec::profile(name).expect("known app");
    let results = run_figure(&[
        parsec_scenario(name, false, disk, seed),
        parsec_scenario(name, true, disk, seed),
    ]);
    let (baseline_ms, stopwatch_ms, disk_interrupts) = parsec_row(&results[0], &results[1]);
    Fig7Row {
        name: p.name,
        baseline_ms,
        stopwatch_ms,
        disk_interrupts,
        paper_baseline_ms: p.paper_baseline_ms,
        paper_stopwatch_ms: p.paper_stopwatch_ms,
        paper_disk_interrupts: p.disk_interrupts,
    }
}

/// Runs Fig. 7 (all five PARSEC apps, baseline and StopWatch, all ten
/// runs in parallel).
pub fn fig7(disk: DiskKind, seed: u64) -> Vec<Fig7Row> {
    let scenarios: Vec<Scenario> = PARSEC
        .iter()
        .flat_map(|p| {
            [
                parsec_scenario(p.name, false, disk, seed),
                parsec_scenario(p.name, true, disk, seed),
            ]
        })
        .collect();
    let results = run_figure(&scenarios);
    PARSEC
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(p, chunk)| {
            let (baseline_ms, stopwatch_ms, disk_interrupts) = parsec_row(&chunk[0], &chunk[1]);
            Fig7Row {
                name: p.name,
                baseline_ms,
                stopwatch_ms,
                disk_interrupts,
                paper_baseline_ms: p.paper_baseline_ms,
                paper_stopwatch_ms: p.paper_stopwatch_ms,
                paper_disk_interrupts: p.disk_interrupts,
            }
        })
        .collect()
}

/// Fig. 8: re-exported from `timestats` (pure analysis).
pub fn fig8(lambda_prime: f64) -> Vec<NoiseComparison> {
    compare_with_uniform_noise(1.0, lambda_prime, &PAPER_CONFIDENCES, 10, 0.9999)
}

/// One Δ-calibration row (Sec. VII-A).
#[derive(Debug, Clone, Copy)]
pub struct CalibrationRow {
    /// The Δ value swept, ms (applies to Δn or Δd per experiment half).
    pub delta_ms: u64,
    /// Synchrony violations observed (Δn sweep).
    pub sync_violations: u64,
    /// Δd violations observed (Δd sweep).
    pub dd_violations: u64,
    /// Mean HTTP retrieval latency at this Δ, ms.
    pub latency_ms: f64,
}

/// Sweeps Δn = Δd over `deltas_ms`, measuring violation counts and
/// latency — reproducing how the paper sized Δn (7–12 ms) and Δd
/// (8–15 ms) for its platform. All grid points run in parallel.
pub fn calibrate(deltas_ms: &[u64], seed: u64) -> Vec<CalibrationRow> {
    let scenarios: Vec<Scenario> = deltas_ms
        .iter()
        .map(|&d| {
            let d_s = d.to_string();
            let mut s = figure_scenario(
                "web-http",
                true,
                &[("bytes", "100000"), ("downloads", "3")],
                &[("delta_n_ms", d_s.as_str()), ("delta_d_ms", d_s.as_str())],
                seed,
            );
            s.duration = SimDuration::from_secs(120);
            s
        })
        .collect();
    let results = run_figure(&scenarios);
    deltas_ms
        .iter()
        .zip(&results)
        .map(|(&delta_ms, r)| CalibrationRow {
            delta_ms,
            sync_violations: r.counter("sync_violations"),
            dd_violations: r.counter("dd_violations"),
            latency_ms: mean_ms_or_nan(r),
        })
        .collect()
}

/// Sec. IX: collaborating-attacker marginalization experiment.
#[derive(Debug, Clone, Copy)]
pub struct CollabRow {
    /// Replica count of the attacker VM.
    pub replicas: usize,
    /// Whether the collaborator load VM ran on the attacker's first host.
    pub load_present: bool,
    /// Mean attacker-observed inter-packet delta, ms.
    pub mean_delta_ms: f64,
    /// Mean absolute shift from the no-load run, ms (0 for the reference).
    pub shift_ms: f64,
}

/// Runs the collaborating-attacker experiment: a load VM tries to
/// marginalize one attacker replica from the median; more replicas make
/// the attack harder (Sec. IX suggests going from 3 to 5). The
/// `(replicas × load)` grid runs in parallel.
pub fn collab(probes: u32, seed: u64) -> Vec<CollabRow> {
    let probes = probes.to_string();
    let grid: Vec<(usize, bool)> = [3usize, 5]
        .iter()
        .flat_map(|&r| [(r, false), (r, true)])
        .collect();
    let scenarios: Vec<Scenario> = grid
        .iter()
        .map(|&(replicas, load)| {
            let replicas_s = replicas.to_string();
            let load_s = load.to_string();
            // The victim always coresides with replica 0 (what the
            // attacker wants to sense); the collaborator loads the same
            // host to push replica 0 out of the median.
            figure_scenario(
                "attack",
                true,
                &[
                    ("probes", probes.as_str()),
                    ("victim", "true"),
                    ("load", load_s.as_str()),
                ],
                &[
                    ("broadcast_band", "off"),
                    ("disk", "ssd"),
                    ("replicas", replicas_s.as_str()),
                    ("client_tick_ms", "2"),
                ],
                seed,
            )
        })
        .collect();
    let results = run_figure(&scenarios);
    let mean = |r: &ScenarioResult| -> f64 {
        r.samples_ms.iter().sum::<f64>() / r.samples_ms.len().max(1) as f64
    };
    grid.iter()
        .zip(&results)
        .map(|(&(replicas, load_present), r)| {
            let reference = results
                .iter()
                .zip(&grid)
                .find(|(_, &(rr, ll))| rr == replicas && !ll)
                .map(|(r, _)| mean(r))
                .expect("reference arm present");
            CollabRow {
                replicas,
                load_present,
                mean_delta_ms: mean(r),
                shift_ms: (mean(r) - reference).abs(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shapes() {
        let f = fig1(0.5);
        assert_eq!(f.curves.len(), 61);
        // Median curves lie between their component CDFs' extremes and the
        // two median curves are closer together than the raw pair.
        let mid = &f.curves[20]; // x = 2.0
        let raw_gap = (mid.baseline - mid.victim).abs();
        let med_gap = (mid.median_three_baselines - mid.median_with_victim).abs();
        assert!(med_gap < raw_gap);
        // Detection: StopWatch needs more observations, monotone in
        // confidence.
        for p in &f.detection {
            assert!(p.with_stopwatch > p.without_stopwatch);
        }
        for w in f.detection.windows(2) {
            assert!(w[1].with_stopwatch >= w[0].with_stopwatch);
        }
    }

    #[test]
    fn fig8_noise_scales_worse() {
        let rows = fig8(0.5);
        let last = rows.last().unwrap();
        assert!(last.noise_delay_null > last.stopwatch_delay_null);
    }

    #[test]
    fn fig5_small_sweep_shape() {
        let rows = fig5(&[10_000, 100_000], 1, 7);
        for r in &rows {
            assert!(r.http_stopwatch_ms > r.http_baseline_ms, "{r:?}");
            // The paper's crossover: UDP-NAK over StopWatch becomes
            // competitive for files of 100 KB or more (one Δn crossing
            // amortized over the stream), while HTTP keeps paying per ACK.
            if r.bytes >= 100_000 {
                let http_ratio = r.http_stopwatch_ms / r.http_baseline_ms;
                let udp_ratio = r.udp_stopwatch_ms / r.udp_baseline_ms;
                assert!(udp_ratio < http_ratio, "{r:?}");
            }
        }
    }

    #[test]
    fn calibration_violations_fall_with_delta() {
        let rows = calibrate(&[1, 12], 5);
        assert!(
            rows[0].sync_violations + rows[0].dd_violations
                >= rows[1].sync_violations + rows[1].dd_violations,
            "{rows:?}"
        );
        assert_eq!(rows[1].dd_violations, 0, "paper-sized Δd has no violations");
    }
}
