//! Plain-text table rendering and CSV output for the experiment harness.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV to `path` (creating parent directories).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut s = String::new();
        s.push_str(&self.header.join(","));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        fs::write(path, s)
    }
}

/// Shorthand: format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Shorthand: format a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].find('1'), lines[3].find('2'), "aligned");
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_mismatch_panics() {
        Table::new(&["a"]).row(&["x".into(), "y".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("swrepro-test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
    }
}
