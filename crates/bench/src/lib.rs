//! # bench — the experiment harness of the StopWatch reproduction
//!
//! [`figures`] implements one experiment per result figure of the paper
//! (Figs. 1, 4, 5, 6, 7, 8, plus the Sec. VII-A Δ calibration, the
//! Sec. VIII placement analysis and the Sec. IX collaborating-attacker
//! study); [`report`] renders tables/CSV. The `experiments` binary drives
//! them; Criterion benches under `benches/` time representative points.
//!
//! Simulated figures are expressed as [`harness`] scenarios and run
//! through its parallel sweep runner; for free-form grids beyond the
//! paper's figures, use the `swbench` binary of the `harness` crate.

pub mod figures;
pub mod report;
