//! Regenerates every result figure of the StopWatch paper.
//!
//! ```text
//! experiments [--quick] [fig1|fig4|fig5|fig6|fig7|fig8|placement|calibrate|collab|all]
//! ```
//!
//! Tables print to stdout; CSVs land in `results/`.

use bench::figures;
use bench::report::{f2, f4, Table};
use placement::prelude::*;
use std::path::PathBuf;
use stopwatch_core::config::DiskKind;

fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

fn run_fig1() {
    for (panel, lp) in [("b", 0.5), ("c", 10.0 / 11.0)] {
        let f = figures::fig1(lp);
        let mut curves = Table::new(&[
            "x",
            "baseline",
            "victim",
            "median_3_baselines",
            "median_2_baselines_1_victim",
        ]);
        for p in &f.curves {
            curves.row(&[
                f2(p.x),
                f4(p.baseline),
                f4(p.victim),
                f4(p.median_three_baselines),
                f4(p.median_with_victim),
            ]);
        }
        let mut det = Table::new(&["confidence", "obs_with_stopwatch", "obs_without"]);
        for p in &f.detection {
            det.row(&[
                f2(p.confidence),
                p.with_stopwatch.to_string(),
                p.without_stopwatch.to_string(),
            ]);
        }
        println!("== Fig 1a (lambda'={lp:.4}) — CDFs (head) ==");
        let head: Vec<String> = curves.render().lines().take(12).map(String::from).collect();
        println!("{}\n...", head.join("\n"));
        println!("== Fig 1{panel} (lambda'={lp:.4}) — observations to detect victim ==");
        println!("{}", det.render());
        curves
            .write_csv(&results_dir().join(format!("fig1a_lambda_{lp:.3}.csv")))
            .expect("write csv");
        det.write_csv(&results_dir().join(format!("fig1{panel}_detect.csv")))
            .expect("write csv");
    }
}

fn run_fig4(quick: bool) {
    let probes = if quick { 300 } else { 1500 };
    let f = figures::fig4(probes, 42);
    let summarize = |name: &str, v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!("  {name}: n={} mean={:.3}ms", v.len(), mean);
    };
    println!("== Fig 4a — attacker-observed inter-packet virtual deltas ==");
    summarize("StopWatch, no victim   ", &f.null_deltas_ms);
    summarize("StopWatch, with victim ", &f.victim_deltas_ms);
    summarize("Baseline,  no victim   ", &f.baseline_null_ms);
    summarize("Baseline,  with victim ", &f.baseline_victim_ms);
    let mut det = Table::new(&["confidence", "obs_with_stopwatch", "obs_without"]);
    for p in &f.detection {
        det.row(&[
            f2(p.confidence),
            p.with_stopwatch.to_string(),
            p.without_stopwatch.to_string(),
        ]);
    }
    println!("== Fig 4b — observations to distinguish (empirical) ==");
    println!("{}", det.render());
    det.write_csv(&results_dir().join("fig4b_detect.csv"))
        .expect("write csv");
    // CDF series for plotting.
    let mut cdf = Table::new(&["delta_ms", "cdf_no_victim", "cdf_with_victim"]);
    let mut all: Vec<f64> = f.null_deltas_ms.clone();
    all.extend(&f.victim_deltas_ms);
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let null = timestats::dist::Empirical::from_samples(f.null_deltas_ms.iter().copied());
    let alt = timestats::dist::Empirical::from_samples(f.victim_deltas_ms.iter().copied());
    use timestats::dist::Cdf;
    for i in (0..all.len()).step_by((all.len() / 60).max(1)) {
        let x = all[i];
        cdf.row(&[f2(x), f4(null.cdf(x)), f4(alt.cdf(x))]);
    }
    cdf.write_csv(&results_dir().join("fig4a_cdf.csv"))
        .expect("write csv");
}

fn run_fig5(quick: bool) {
    let sizes: &[u64] = if quick {
        &[1_000, 10_000, 100_000, 1_000_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000, 10_000_000]
    };
    let downloads = if quick { 2 } else { 5 };
    let rows = figures::fig5(sizes, downloads, 42);
    let mut t = Table::new(&[
        "bytes",
        "http_baseline_ms",
        "http_stopwatch_ms",
        "http_ratio",
        "udp_baseline_ms",
        "udp_stopwatch_ms",
        "udp_ratio",
    ]);
    for r in &rows {
        t.row(&[
            r.bytes.to_string(),
            f2(r.http_baseline_ms),
            f2(r.http_stopwatch_ms),
            f2(r.http_stopwatch_ms / r.http_baseline_ms),
            f2(r.udp_baseline_ms),
            f2(r.udp_stopwatch_ms),
            f2(r.udp_stopwatch_ms / r.udp_baseline_ms),
        ]);
    }
    println!("== Fig 5 — file retrieval latency ==");
    println!("{}", t.render());
    t.write_csv(&results_dir().join("fig5_downloads.csv"))
        .expect("write csv");
}

fn run_fig6(quick: bool) {
    let rates: &[f64] = if quick {
        &[25.0, 100.0, 400.0]
    } else {
        &[25.0, 50.0, 100.0, 200.0, 400.0]
    };
    let ops = if quick { 150 } else { 400 };
    let rows = figures::fig6(rates, ops, 42);
    let mut t = Table::new(&[
        "ops_per_sec",
        "baseline_ms",
        "stopwatch_ms",
        "ratio",
        "c2s_pkts_per_op",
        "s2c_pkts_per_op",
    ]);
    for r in &rows {
        t.row(&[
            f2(r.rate),
            f2(r.baseline_ms),
            f2(r.stopwatch_ms),
            f2(r.stopwatch_ms / r.baseline_ms),
            f2(r.client_to_server_per_op),
            f2(r.server_to_client_per_op),
        ]);
    }
    println!("== Fig 6 — NFS (nhfsstone) ==");
    println!("{}", t.render());
    t.write_csv(&results_dir().join("fig6_nfs.csv"))
        .expect("write csv");
}

fn run_fig7() {
    let rows = figures::fig7(DiskKind::Rotating, 42);
    let mut t = Table::new(&[
        "app",
        "baseline_ms",
        "stopwatch_ms",
        "ratio",
        "paper_base",
        "paper_sw",
        "paper_ratio",
        "disk_irqs",
        "paper_irqs",
    ]);
    for r in &rows {
        t.row(&[
            r.name.to_string(),
            f2(r.baseline_ms),
            f2(r.stopwatch_ms),
            f2(r.stopwatch_ms / r.baseline_ms),
            r.paper_baseline_ms.to_string(),
            r.paper_stopwatch_ms.to_string(),
            f2(r.paper_stopwatch_ms as f64 / r.paper_baseline_ms as f64),
            r.disk_interrupts.to_string(),
            r.paper_disk_interrupts.to_string(),
        ]);
    }
    println!("== Fig 7 — PARSEC (rotating disk) ==");
    println!("{}", t.render());
    t.write_csv(&results_dir().join("fig7_parsec.csv"))
        .expect("write csv");

    // The Sec. VII-D conjecture: SSDs shrink the needed Δd and the penalty.
    let ssd = figures::fig7(DiskKind::Ssd, 42);
    let mut t2 = Table::new(&["app", "ssd_baseline_ms", "ssd_stopwatch_ms", "ratio"]);
    for r in &ssd {
        t2.row(&[
            r.name.to_string(),
            f2(r.baseline_ms),
            f2(r.stopwatch_ms),
            f2(r.stopwatch_ms / r.baseline_ms),
        ]);
    }
    println!("== Fig 7 ablation — same apps on SSD (Sec. VII-D conjecture) ==");
    println!("{}", t2.render());
    t2.write_csv(&results_dir().join("fig7_parsec_ssd.csv"))
        .expect("write csv");
}

fn run_fig8() {
    for (panel, lp) in [("a", 0.5), ("b", 10.0 / 11.0)] {
        let rows = figures::fig8(lp);
        let mut t = Table::new(&[
            "confidence",
            "observations",
            "delta_n",
            "noise_bound_b",
            "E[X23+dn]",
            "E[X'23+dn]",
            "E[X1+XN]",
            "E[X'1+XN]",
        ]);
        for r in &rows {
            t.row(&[
                f2(r.confidence),
                r.observations.to_string(),
                f2(r.delta_n),
                f2(r.noise_bound),
                f2(r.stopwatch_delay_null),
                f2(r.stopwatch_delay_victim),
                f2(r.noise_delay_null),
                f2(r.noise_delay_victim),
            ]);
        }
        println!("== Fig 8{panel} (lambda'={lp:.4}) — StopWatch vs uniform noise ==");
        println!("{}", t.render());
        t.write_csv(&results_dir().join(format!("fig8{panel}_noise.csv")))
            .expect("write csv");
    }
}

fn run_placement() {
    // Theorem 1: maximum packings.
    let mut t1 = Table::new(&["n", "max_vms_theorem1", "isolation", "speedup"]);
    for n in [3usize, 7, 9, 15, 21, 33, 45, 63, 99] {
        let k = max_triangle_packing(n);
        t1.row(&[
            n.to_string(),
            k.to_string(),
            isolation_capacity(n).to_string(),
            f2(k as f64 / n as f64),
        ]);
    }
    println!("== Sec VIII / Theorem 1 — max edge-disjoint triangle packings ==");
    println!("{}", t1.render());
    t1.write_csv(&results_dir().join("placement_theorem1.csv"))
        .expect("write csv");

    // Theorem 2: constructive placements with capacities.
    let mut t2 = Table::new(&[
        "n",
        "capacity",
        "vms_placed",
        "bose_promise",
        "valid",
        "utilization",
    ]);
    for n in [9usize, 15, 21, 33] {
        for c in [1usize, 2, 3, 4, 7, 10] {
            if c > (n - 1) / 2 {
                continue;
            }
            let mut p = PlacementPlanner::new(n, c, Strategy::Bose).expect("bose planner");
            let placed = p.place_all();
            let sys = BoseSystem::new(n).expect("bose system");
            t2.row(&[
                n.to_string(),
                c.to_string(),
                placed.to_string(),
                sys.theorem2_count(c).to_string(),
                p.validate().is_ok().to_string(),
                f2(p.utilization()),
            ]);
        }
    }
    println!("== Sec VIII / Theorem 2 — constructive capacity-constrained placements ==");
    println!("{}", t2.render());
    t2.write_csv(&results_dir().join("placement_theorem2.csv"))
        .expect("write csv");

    // Greedy fallback for non-Bose shapes.
    let mut t3 = Table::new(&["n", "capacity", "greedy_vms", "theorem1_bound"]);
    for n in [10usize, 12, 16, 20, 40] {
        let c = (n - 1) / 2;
        let placed = greedy_packing(n, c, 42);
        t3.row(&[
            n.to_string(),
            c.to_string(),
            placed.len().to_string(),
            max_triangle_packing(n).to_string(),
        ]);
    }
    println!("== Sec VIII — greedy packing on arbitrary cloud shapes ==");
    println!("{}", t3.render());
    t3.write_csv(&results_dir().join("placement_greedy.csv"))
        .expect("write csv");
}

fn run_calibrate(quick: bool) {
    let deltas: &[u64] = if quick {
        &[2, 8, 12]
    } else {
        &[1, 2, 4, 6, 8, 10, 12, 15]
    };
    let rows = figures::calibrate(deltas, 42);
    let mut t = Table::new(&[
        "delta_ms",
        "sync_violations",
        "dd_violations",
        "http_latency_ms",
    ]);
    for r in &rows {
        t.row(&[
            r.delta_ms.to_string(),
            r.sync_violations.to_string(),
            r.dd_violations.to_string(),
            f2(r.latency_ms),
        ]);
    }
    println!("== Sec VII-A — Δ calibration (violations vs latency) ==");
    println!("{}", t.render());
    t.write_csv(&results_dir().join("calibration.csv"))
        .expect("write csv");
}

fn run_collab(quick: bool) {
    let probes = if quick { 150 } else { 600 };
    let rows = figures::collab(probes, 42);
    let mut t = Table::new(&["replicas", "collaborator_load", "mean_delta_ms", "shift_ms"]);
    for r in &rows {
        t.row(&[
            r.replicas.to_string(),
            r.load_present.to_string(),
            f2(r.mean_delta_ms),
            f2(r.shift_ms),
        ]);
    }
    println!("== Sec IX — collaborating attacker (marginalize one replica) ==");
    println!("{}", t.render());
    t.write_csv(&results_dir().join("collab.csv"))
        .expect("write csv");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = which.is_empty() || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    if want("fig1") {
        run_fig1();
    }
    if want("fig4") {
        run_fig4(quick);
    }
    if want("fig5") {
        run_fig5(quick);
    }
    if want("fig6") {
        run_fig6(quick);
    }
    if want("fig7") {
        run_fig7();
    }
    if want("fig8") {
        run_fig8();
    }
    if want("placement") {
        run_placement();
    }
    if want("calibrate") {
        run_calibrate(quick);
    }
    if want("collab") {
        run_collab(quick);
    }
    println!("CSV output in {}/", results_dir().display());
}
