//! One-shot Fig. 5 measurement at 10 MB, expressed as a harness sweep:
//! the four arms (HTTP/UDP × baseline/StopWatch) run as one parallel
//! 4-scenario grid.
use harness::prelude::*;
use simkit::time::SimDuration;

fn main() {
    let mut spec = SweepSpec::new("fig5-10mb", "web-http")
        .axis("workload", &["web-http", "web-udp"])
        .axis("stopwatch", &["false", "true"]);
    spec.base_params = vec![
        ("bytes".to_string(), "10000000".to_string()),
        ("downloads".to_string(), "1".to_string()),
    ];
    spec.duration = SimDuration::from_secs(600);
    let scenarios = spec.scenarios().expect("spec expands");
    let outcomes = run_scenarios(&scenarios, &RunnerOptions::default());
    let report = SweepReport::from_outcomes(&spec.name, &outcomes, None);
    let mean = |cell: &str| -> f64 {
        report
            .cells
            .iter()
            .find(|c| c.cell == cell)
            .unwrap_or_else(|| panic!("missing cell {cell}"))
            .latency_ms
            .mean
    };
    let http_base = mean("workload=web-http,stopwatch=false");
    let http_sw = mean("workload=web-http,stopwatch=true");
    let udp_base = mean("workload=web-udp,stopwatch=false");
    let udp_sw = mean("workload=web-udp,stopwatch=true");
    println!(
        "10MB: http_base {http_base:.1} http_sw {http_sw:.1} ratio {:.2} | udp_base {udp_base:.1} udp_sw {udp_sw:.1} ratio {:.2}",
        http_sw / http_base,
        udp_sw / udp_base
    );
}
