//! One-shot Fig. 5 measurement at 10 MB (single download per config).
use bench::figures;

fn main() {
    let rows = figures::fig5(&[10_000_000], 1, 42);
    let r = &rows[0];
    println!(
        "10MB: http_base {:.1} http_sw {:.1} ratio {:.2} | udp_base {:.1} udp_sw {:.1} ratio {:.2}",
        r.http_baseline_ms,
        r.http_stopwatch_ms,
        r.http_stopwatch_ms / r.http_baseline_ms,
        r.udp_baseline_ms,
        r.udp_stopwatch_ms,
        r.udp_stopwatch_ms / r.udp_baseline_ms
    );
}
