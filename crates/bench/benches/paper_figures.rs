//! Criterion benches: one representative point per paper figure, so the
//! regeneration cost of every result is tracked over time.

use bench::figures;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stopwatch_core::config::DiskKind;

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_median_analysis", |b| {
        b.iter(|| black_box(figures::fig1(black_box(0.5))))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("attacker_trace_quick", |b| {
        b.iter(|| black_box(figures::fig4(black_box(60), 42)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("file_download_100kb", |b| {
        b.iter(|| black_box(figures::fig5(&[100_000], 1, 42)))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("nfs_100ops_at_100", |b| {
        b.iter(|| black_box(figures::fig6(&[100.0], 100, 42)))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("parsec_ferret_pair", |b| {
        // One baseline + one StopWatch run of the lightest app.
        b.iter(|| black_box(figures::fig7_app("ferret", DiskKind::Rotating, 42)))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("noise_comparison", |b| {
        b.iter(|| black_box(figures::fig8(black_box(0.5))))
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    use placement::prelude::*;
    c.bench_function("placement_bose_n33_c10", |b| {
        b.iter(|| {
            let mut p = PlacementPlanner::new(33, 10, Strategy::Bose).unwrap();
            black_box(p.place_all())
        })
    });
    c.bench_function("placement_greedy_n21", |b| {
        b.iter(|| black_box(greedy_packing(21, 10, 42)))
    });
    c.bench_function("placement_theorem1_n999", |b| {
        b.iter(|| black_box(max_triangle_packing(black_box(999))))
    });
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_placement
);
criterion_main!(benches);
