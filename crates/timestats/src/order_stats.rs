//! Order statistics of independent (not necessarily identically distributed)
//! random variables — the mathematical heart of StopWatch's median
//! microaggregation (paper Appendix).
//!
//! For independent `X₁..X_m` with CDFs `F₁..F_m`, the CDF of the r-th
//! smallest is (Güngör et al., Result 2.4, as cited by the paper):
//!
//! ```text
//! F_{r:m}(x) = Σ_{ℓ=r}^{m} (-1)^{ℓ-r} C(ℓ-1, r-1) e_ℓ(F₁(x), …, F_m(x))
//! ```
//!
//! where `e_ℓ` is the ℓ-th elementary symmetric polynomial (the sum over all
//! size-ℓ subsets of the product of their CDF values). For the median of
//! three this reduces to the paper's closed form
//! `F_{2:3} = F₁F₂ + F₁F₃ + F₂F₃ − 2·F₁F₂F₃`.

use crate::dist::{Cdf, Sample};
use rand::Rng;

/// Elementary symmetric polynomials `e_0..e_n` of `vals`, via the standard
/// DP over `∏ (1 + v_i t)`.
fn elem_sym(vals: &[f64]) -> Vec<f64> {
    let mut e = vec![0.0; vals.len() + 1];
    e[0] = 1.0;
    for (i, &v) in vals.iter().enumerate() {
        for k in (1..=i + 1).rev() {
            e[k] += v * e[k - 1];
        }
    }
    e
}

fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Evaluates `F_{r:m}(x)` for the given component CDF values at a point.
///
/// `r` is 1-based: `r = 1` is the minimum, `r = m` the maximum.
///
/// # Panics
///
/// Panics if `r` is 0 or exceeds the number of components.
///
/// # Examples
///
/// ```
/// use timestats::order_stats::order_stat_cdf_at;
/// // Median of three identical fair values F(x) = 1/2:
/// // e2 - 2 e3 = 3/4 - 2/8 = 1/2.
/// let f = order_stat_cdf_at(&[0.5, 0.5, 0.5], 2);
/// assert!((f - 0.5).abs() < 1e-12);
/// ```
pub fn order_stat_cdf_at(component_cdf_values: &[f64], r: usize) -> f64 {
    let m = component_cdf_values.len();
    assert!(r >= 1 && r <= m, "order statistic index out of range");
    for &v in component_cdf_values {
        debug_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "CDF value out of [0,1]");
    }
    let e = elem_sym(component_cdf_values);
    let mut acc = 0.0;
    for (l, &e_l) in e.iter().enumerate().skip(r) {
        let sign = if (l - r).is_multiple_of(2) { 1.0 } else { -1.0 };
        acc += sign * binomial(l as u64 - 1, r as u64 - 1) * e_l;
    }
    acc.clamp(0.0, 1.0)
}

/// The distribution of the r-th order statistic of independent components.
///
/// # Examples
///
/// ```
/// use timestats::dist::{Cdf, Exponential};
/// use timestats::order_stats::OrderStat;
/// let base = Exponential::new(1.0);
/// let med = OrderStat::median_of_three(base, base, base);
/// // Median of three Exp(1): F(x) = 3F² - 2F³.
/// let f = base.cdf(1.0);
/// assert!((med.cdf(1.0) - (3.0 * f * f - 2.0 * f * f * f)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct OrderStat<D> {
    components: Vec<D>,
    r: usize,
}

impl<D: Cdf> OrderStat<D> {
    /// Builds the r-th order statistic (1-based) of the given components.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or `r` is out of `1..=m`.
    pub fn new(components: Vec<D>, r: usize) -> Self {
        assert!(!components.is_empty(), "need at least one component");
        assert!(
            r >= 1 && r <= components.len(),
            "order statistic index out of range"
        );
        OrderStat { components, r }
    }

    /// The median of three independent components — StopWatch's
    /// microaggregation function.
    pub fn median_of_three(a: D, b: D, c: D) -> Self {
        OrderStat::new(vec![a, b, c], 2)
    }

    /// The median of an odd number `m` of components (Sec. IX discusses
    /// raising the replica count from 3 to 5).
    ///
    /// # Panics
    ///
    /// Panics if the component count is even or zero.
    pub fn median_of(components: Vec<D>) -> Self {
        let m = components.len();
        assert!(m % 2 == 1 && m > 0, "median needs an odd component count");
        OrderStat::new(components, m / 2 + 1)
    }

    /// The components.
    pub fn components(&self) -> &[D] {
        &self.components
    }

    /// The (1-based) order index r.
    pub fn rank(&self) -> usize {
        self.r
    }
}

impl<D: Cdf> Cdf for OrderStat<D> {
    fn cdf(&self, x: f64) -> f64 {
        let vals: Vec<f64> = self.components.iter().map(|c| c.cdf(x)).collect();
        order_stat_cdf_at(&vals, self.r)
    }
}

impl<D: Cdf + Sample> Sample for OrderStat<D> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut draws: Vec<f64> = self.components.iter().map(|c| c.sample(rng)).collect();
        draws.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN draw"));
        draws[self.r - 1]
    }
}

/// Median of three values (not distributions) — used by the runtime median
/// agreement on proposed delivery times.
///
/// # Examples
///
/// ```
/// use timestats::order_stats::median3;
/// assert_eq!(median3(3, 1, 2), 2);
/// assert_eq!(median3(9, 9, 1), 9);
/// ```
pub fn median3<T: Ord + Copy>(a: T, b: T, c: T) -> T {
    a.max(b).min(a.min(b).max(c))
}

/// Median of an odd-length slice (by value ordering).
///
/// # Panics
///
/// Panics if `xs` is empty or has even length.
pub fn median_odd<T: Ord + Copy>(xs: &[T]) -> T {
    let mut v: Vec<T> = xs.to_vec();
    median_odd_in_place(&mut v)
}

/// Median of an odd-length slice **in place**: selects the middle element
/// without allocating (O(n) selection rather than a full sort, reordering
/// the slice). This is the runtime median-agreement hot path — a VMM
/// fixing a burst of packet delivery times calls it once per packet over
/// the packet's own proposal buffer, with no clone.
///
/// The returned value is identical to `sort-then-middle`: selection and
/// sorting agree on which element ranks `len/2`.
///
/// # Panics
///
/// Panics if `xs` is empty or has even length.
pub fn median_odd_in_place<T: Ord + Copy>(xs: &mut [T]) -> T {
    assert!(!xs.is_empty() && xs.len() % 2 == 1, "need odd-length input");
    let mid = xs.len() / 2;
    *xs.select_nth_unstable(mid).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Cdf, Exponential, Sample};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn elem_sym_matches_manual() {
        let e = elem_sym(&[2.0, 3.0, 5.0]);
        assert_eq!(e[0], 1.0);
        assert_eq!(e[1], 10.0);
        assert_eq!(e[2], 31.0); // 6 + 10 + 15
        assert_eq!(e[3], 30.0);
    }

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(1, 1), 1.0);
        assert_eq!(binomial(2, 1), 2.0);
        assert_eq!(binomial(3, 5), 0.0);
    }

    #[test]
    fn median3_closed_form_matches_general_formula() {
        // F_{2:3} = F1F2 + F1F3 + F2F3 - 2 F1F2F3 (paper appendix).
        let cases = [
            [0.1, 0.5, 0.9],
            [0.0, 0.0, 0.0],
            [1.0, 1.0, 1.0],
            [0.3, 0.3, 0.3],
            [0.25, 0.5, 0.75],
        ];
        for [f1, f2, f3] in cases {
            let closed = f1 * f2 + f1 * f3 + f2 * f3 - 2.0 * f1 * f2 * f3;
            let general = order_stat_cdf_at(&[f1, f2, f3], 2);
            assert!((closed - general).abs() < 1e-12, "{f1},{f2},{f3}");
        }
    }

    #[test]
    fn min_and_max_special_cases() {
        // F_{1:m} = 1 - Π(1-Fi), F_{m:m} = ΠFi.
        let vals = [0.2, 0.6, 0.7];
        let min = order_stat_cdf_at(&vals, 1);
        let expect_min = 1.0 - (1.0 - 0.2) * (1.0 - 0.6) * (1.0 - 0.7);
        assert!((min - expect_min).abs() < 1e-12);
        let max = order_stat_cdf_at(&vals, 3);
        assert!((max - 0.2 * 0.6 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn median_of_three_matches_monte_carlo() {
        let base = Exponential::new(1.0);
        let victim = Exponential::new(0.5);
        let med = OrderStat::median_of_three(victim, base, base);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| med.sample(&mut rng)).collect();
        for &x in &[0.3, 0.7, 1.0, 2.0, 4.0] {
            let emp = samples.iter().filter(|&&v| v <= x).count() as f64 / n as f64;
            assert!(
                (med.cdf(x) - emp).abs() < 0.005,
                "x={x}: {} vs {}",
                med.cdf(x),
                emp
            );
        }
    }

    #[test]
    fn median_of_five_matches_monte_carlo() {
        let comps = vec![
            Exponential::new(1.0),
            Exponential::new(1.0),
            Exponential::new(0.5),
            Exponential::new(1.0),
            Exponential::new(1.0),
        ];
        let med = OrderStat::median_of(comps);
        assert_eq!(med.rank(), 3);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| med.sample(&mut rng)).collect();
        for &x in &[0.5, 1.0, 2.0] {
            let emp = samples.iter().filter(|&&v| v <= x).count() as f64 / n as f64;
            assert!((med.cdf(x) - emp).abs() < 0.006, "x={x}");
        }
    }

    #[test]
    fn order_stat_cdf_is_monotone() {
        let med = OrderStat::median_of_three(
            Exponential::new(1.0),
            Exponential::new(0.5),
            Exponential::new(2.0),
        );
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.05;
            let f = med.cdf(x);
            assert!(f >= prev - 1e-12, "non-monotone at {x}");
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
    }

    #[test]
    fn median3_values() {
        assert_eq!(median3(1, 2, 3), 2);
        assert_eq!(median3(3, 2, 1), 2);
        assert_eq!(median3(2, 3, 1), 2);
        assert_eq!(median3(5, 5, 5), 5);
        assert_eq!(median3(1, 1, 9), 1);
        assert_eq!(median3(9, 1, 9), 9);
    }

    #[test]
    fn median_odd_slice() {
        assert_eq!(median_odd(&[5, 1, 4, 2, 3]), 3);
        assert_eq!(median_odd(&[7]), 7);
    }

    #[test]
    fn median_in_place_matches_sorted_reference() {
        // Pseudo-random odd-length slices: the in-place selection must
        // agree with the scalar sort-then-middle reference everywhere.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [1usize, 3, 5, 7, 33, 101] {
            for _ in 0..50 {
                let xs: Vec<u64> = (0..len).map(|_| next() % 1000).collect();
                let mut sorted = xs.clone();
                sorted.sort_unstable();
                let reference = sorted[len / 2];
                let mut scratch = xs.clone();
                assert_eq!(median_odd_in_place(&mut scratch), reference, "{xs:?}");
                assert_eq!(median_odd(&xs), reference);
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd-length")]
    fn median_in_place_even_panics() {
        median_odd_in_place(&mut [1, 2]);
    }

    #[test]
    #[should_panic(expected = "odd-length")]
    fn median_even_panics() {
        median_odd(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn order_stat_bad_rank_panics() {
        OrderStat::new(vec![Exponential::new(1.0)], 2);
    }
}
