//! χ²-based distinguishability: how many observations does an attacker need
//! to reject, at a given confidence, the hypothesis that it is *not*
//! coresident with the victim? (Figs. 1b, 1c, 4b of the paper.)
//!
//! Methodology: bin the observation space into `k` equal-probability bins
//! under the null (no victim) distribution. If the attacker actually samples
//! the alternative (victim present), the Pearson χ² statistic grows linearly
//! in the sample size `N` with slope equal to the χ² divergence
//! `δ = Σ_i (p′_i − p_i)² / p_i`. The expected number of observations for
//! the test to clear the critical value at confidence `c` is therefore
//! `N*(c) = χ²_{k−1}(c) / δ` — the standard non-centrality power
//! approximation. The paper does not spell out its exact test construction;
//! absolute counts may differ by a constant, the *shape* (growth in
//! confidence, with/without-StopWatch gap) is what we reproduce.

use crate::dist::Cdf;
use crate::special::{chi2_cdf, chi2_quantile};

/// Interior bin edges giving `k` equal-probability bins under `null`.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn equal_prob_edges<D: Cdf>(null: &D, k: usize) -> Vec<f64> {
    assert!(k >= 2, "need at least two bins");
    (1..k).map(|i| null.quantile(i as f64 / k as f64)).collect()
}

/// Probability mass of each bin (edges as from [`equal_prob_edges`]) under `d`.
///
/// Returns `edges.len() + 1` probabilities summing to 1.
pub fn bin_probs<D: Cdf>(d: &D, edges: &[f64]) -> Vec<f64> {
    let mut probs = Vec::with_capacity(edges.len() + 1);
    let mut prev = 0.0;
    for &e in edges {
        let c = d.cdf(e);
        probs.push((c - prev).max(0.0));
        prev = c;
    }
    probs.push((1.0 - prev).max(0.0));
    probs
}

/// The χ² divergence `Σ (p′ − p)²/p` between binned alternative `alt` and
/// null `null` probabilities.
///
/// Bins with null mass below `1e-12` are skipped (they contribute unbounded,
/// unphysical divergence).
///
/// # Panics
///
/// Panics if the two slices differ in length.
pub fn chi2_divergence(null: &[f64], alt: &[f64]) -> f64 {
    assert_eq!(null.len(), alt.len(), "bin count mismatch");
    null.iter()
        .zip(alt)
        .filter(|(p, _)| **p > 1e-12)
        .map(|(p, q)| (q - p) * (q - p) / p)
        .sum()
}

/// Pearson χ² statistic of observed counts against expected probabilities.
///
/// # Panics
///
/// Panics if lengths differ or the expected probabilities do not sum to ≈ 1.
pub fn chi2_statistic(counts: &[u64], expected_probs: &[f64]) -> f64 {
    assert_eq!(counts.len(), expected_probs.len(), "bin count mismatch");
    let total: u64 = counts.iter().sum();
    let psum: f64 = expected_probs.iter().sum();
    assert!((psum - 1.0).abs() < 1e-6, "expected probs must sum to 1");
    let n = total as f64;
    counts
        .iter()
        .zip(expected_probs)
        .filter(|(_, p)| **p > 1e-12)
        .map(|(&c, &p)| {
            let e = n * p;
            (c as f64 - e) * (c as f64 - e) / e
        })
        .sum()
}

/// p-value of a Pearson goodness-of-fit test (upper tail, df = bins − 1).
pub fn chi2_gof_pvalue(counts: &[u64], expected_probs: &[f64]) -> f64 {
    let stat = chi2_statistic(counts, expected_probs);
    let df = (counts.len() - 1).max(1) as u32;
    1.0 - chi2_cdf(stat, df)
}

/// A configured distinguishability analysis between a null and an
/// alternative distribution.
///
/// # Examples
///
/// ```
/// use timestats::detect::Detector;
/// use timestats::dist::Exponential;
/// // Distinguishing Exp(1) from Exp(1/2) directly is easy...
/// let direct = Detector::from_cdfs(&Exponential::new(1.0), &Exponential::new(0.5), 10);
/// let n_direct = direct.observations_needed(0.95);
/// // ... and must get strictly harder at higher confidence.
/// assert!(direct.observations_needed(0.99) >= n_direct);
/// ```
#[derive(Debug, Clone)]
pub struct Detector {
    null_probs: Vec<f64>,
    alt_probs: Vec<f64>,
}

impl Detector {
    /// Builds a detector by binning two analytic CDFs into `bins`
    /// equal-probability (under null) bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2`.
    pub fn from_cdfs<N: Cdf, A: Cdf>(null: &N, alt: &A, bins: usize) -> Self {
        let edges = equal_prob_edges(null, bins);
        Detector {
            null_probs: bin_probs(null, &edges),
            alt_probs: bin_probs(alt, &edges),
        }
    }

    /// Like [`Detector::from_cdfs`] but with extra bin edges at the null
    /// quantiles in `tail_qs` (e.g. `[0.99, 0.999]`).
    ///
    /// Tail-sensitive binning matters for the appendix's noise comparison:
    /// uniform noise cannot hide the exponential tail of a victim's timing
    /// distribution, whereas the median of three replicas thins the tail
    /// quadratically. A detector that never looks past the 90th percentile
    /// misses exactly the region where the two defenses differ.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2` or any tail quantile is outside `(0, 1)`.
    pub fn from_cdfs_with_tails<N: Cdf, A: Cdf>(
        null: &N,
        alt: &A,
        bins: usize,
        tail_qs: &[f64],
    ) -> Self {
        let mut edges = equal_prob_edges(null, bins);
        for &q in tail_qs {
            assert!(q > 0.0 && q < 1.0, "tail quantile must be in (0,1)");
            edges.push(null.quantile(q));
        }
        edges.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite edges"));
        edges.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        Detector {
            null_probs: bin_probs(null, &edges),
            alt_probs: bin_probs(alt, &edges),
        }
    }

    /// Builds a detector from two empirical sample sets. Bin edges are the
    /// null sample's quantiles.
    ///
    /// # Panics
    ///
    /// Panics if either sample set is empty or `bins < 2`.
    pub fn from_samples(null: &[f64], alt: &[f64], bins: usize) -> Self {
        let null_d = crate::dist::Empirical::from_samples(null.iter().copied());
        let alt_d = crate::dist::Empirical::from_samples(alt.iter().copied());
        Self::from_cdfs(&null_d, &alt_d, bins)
    }

    /// Builds directly from binned probabilities.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or fewer than two bins are supplied.
    pub fn from_probs(null_probs: Vec<f64>, alt_probs: Vec<f64>) -> Self {
        assert_eq!(null_probs.len(), alt_probs.len(), "bin count mismatch");
        assert!(null_probs.len() >= 2, "need at least two bins");
        Detector {
            null_probs,
            alt_probs,
        }
    }

    /// The binned null probabilities.
    pub fn null_probs(&self) -> &[f64] {
        &self.null_probs
    }

    /// The binned alternative probabilities.
    pub fn alt_probs(&self) -> &[f64] {
        &self.alt_probs
    }

    /// χ² divergence per observation.
    pub fn divergence(&self) -> f64 {
        chi2_divergence(&self.null_probs, &self.alt_probs)
    }

    /// Expected observations needed to reject the null at `confidence`.
    ///
    /// Returns `u64::MAX` when the distributions are (numerically)
    /// indistinguishable.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is outside `(0, 1)`.
    pub fn observations_needed(&self, confidence: f64) -> u64 {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1)"
        );
        let delta = self.divergence();
        if delta < 1e-15 {
            return u64::MAX;
        }
        let df = (self.null_probs.len() - 1).max(1) as u32;
        let crit = chi2_quantile(confidence, df);
        (crit / delta).ceil() as u64
    }

    /// Sweeps [`Self::observations_needed`] over several confidences,
    /// returning `(confidence, observations)` pairs.
    pub fn sweep(&self, confidences: &[f64]) -> Vec<(f64, u64)> {
        confidences
            .iter()
            .map(|&c| (c, self.observations_needed(c)))
            .collect()
    }
}

/// The confidence grid the paper uses on its x-axes (Figs. 1b, 1c, 4b, 8).
pub const PAPER_CONFIDENCES: [f64; 7] = [0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.99];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Sample, Uniform};
    use crate::order_stats::OrderStat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn equal_prob_edges_split_mass() {
        let e = Exponential::new(1.0);
        let edges = equal_prob_edges(&e, 4);
        assert_eq!(edges.len(), 3);
        let probs = bin_probs(&e, &edges);
        assert_eq!(probs.len(), 4);
        for p in &probs {
            assert!((p - 0.25).abs() < 1e-9, "probs {probs:?}");
        }
    }

    #[test]
    fn divergence_zero_for_identical() {
        let p = vec![0.25; 4];
        assert!(chi2_divergence(&p, &p) < 1e-15);
    }

    #[test]
    fn divergence_positive_for_different() {
        let p = vec![0.25, 0.25, 0.25, 0.25];
        let q = vec![0.4, 0.3, 0.2, 0.1];
        assert!(chi2_divergence(&p, &q) > 0.01);
    }

    #[test]
    fn statistic_matches_hand_computation() {
        // counts [8, 12], expected [0.5, 0.5], n=20 -> E=10 each.
        // chi2 = (8-10)^2/10 + (12-10)^2/10 = 0.8
        let s = chi2_statistic(&[8, 12], &[0.5, 0.5]);
        assert!((s - 0.8).abs() < 1e-12);
    }

    #[test]
    fn gof_pvalue_uniform_counts_high() {
        let p = chi2_gof_pvalue(&[100, 100, 100, 100], &[0.25; 4]);
        assert!(p > 0.99, "perfect fit p-value {p}");
        let p2 = chi2_gof_pvalue(&[400, 0, 0, 0], &[0.25; 4]);
        assert!(p2 < 1e-6, "terrible fit p-value {p2}");
    }

    #[test]
    fn observations_grow_with_confidence() {
        let d = Detector::from_cdfs(&Exponential::new(1.0), &Exponential::new(0.5), 10);
        let sweep = d.sweep(&PAPER_CONFIDENCES);
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1, "non-monotone in confidence: {sweep:?}");
        }
    }

    #[test]
    fn stopwatch_median_needs_many_more_observations() {
        // The Fig. 1b effect: distinguishing medians is much harder than
        // distinguishing the raw distributions.
        let base = Exponential::new(1.0);
        let victim = Exponential::new(0.5);
        let without = Detector::from_cdfs(&base, &victim, 10);
        let m_null = OrderStat::median_of_three(base, base, base);
        let m_alt = OrderStat::median_of_three(victim, base, base);
        let with = Detector::from_cdfs(&m_null, &m_alt, 10);
        let n_without = without.observations_needed(0.95);
        let n_with = with.observations_needed(0.95);
        // Theorem 4 guarantees a KS-distance factor of 2, i.e. a chi-square
        // power factor of at least ~4; empirically the factor is ~6 at this
        // binning and grows with tail-sensitive binning.
        assert!(
            n_with >= 5 * n_without,
            "expected >=5x gap, got {n_with} vs {n_without}"
        );
        let without_t = Detector::from_cdfs_with_tails(&base, &victim, 10, &[0.99, 0.999, 0.9999]);
        let with_t = Detector::from_cdfs_with_tails(&m_null, &m_alt, 10, &[0.99, 0.999, 0.9999]);
        assert!(
            with_t.observations_needed(0.95) > 5 * without_t.observations_needed(0.95),
            "tail-binned gap should also hold"
        );
    }

    #[test]
    fn identical_distributions_unreachable() {
        let e = Exponential::new(1.0);
        let d = Detector::from_cdfs(&e, &e, 10);
        assert_eq!(d.observations_needed(0.95), u64::MAX);
    }

    #[test]
    fn empirical_detector_close_to_analytic() {
        let mut rng = StdRng::seed_from_u64(11);
        let null = Exponential::new(1.0);
        let alt = Exponential::new(0.5);
        let n = 100_000;
        let ns: Vec<f64> = (0..n).map(|_| null.sample(&mut rng)).collect();
        let as_: Vec<f64> = (0..n).map(|_| alt.sample(&mut rng)).collect();
        let emp = Detector::from_samples(&ns, &as_, 10);
        let ana = Detector::from_cdfs(&null, &alt, 10);
        let (de, da) = (emp.divergence(), ana.divergence());
        assert!(
            (de - da).abs() / da < 0.1,
            "empirical {de} vs analytic {da}"
        );
    }

    #[test]
    fn uniform_vs_uniform_shifted() {
        let d = Detector::from_cdfs(&Uniform::new(0.0, 1.0), &Uniform::new(0.1, 1.1), 5);
        assert!(d.observations_needed(0.9) < 1000);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_panics() {
        let e = Exponential::new(1.0);
        Detector::from_cdfs(&e, &Exponential::new(0.5), 4).observations_needed(1.0);
    }
}
