//! Distributions used throughout the paper's analysis: the exponential
//! baseline/victim models, uniform noise, the exponential-plus-uniform
//! convolution (the "add random noise" alternative of the appendix), and
//! empirical distributions built from simulation traces.

use rand::Rng;

/// A cumulative distribution function over the reals.
///
/// Implementors must be proper CDFs: monotone non-decreasing, with limits
/// 0 and 1. All distributions in this crate have support on `[0, ∞)`.
pub trait Cdf {
    /// `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Smallest `x` with `cdf(x) >= q`, found by bracketing + bisection.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1)`.
    fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile arg must be in [0,1)");
        if q == 0.0 {
            return 0.0;
        }
        let mut hi = 1.0;
        while self.cdf(hi) < q {
            hi *= 2.0;
            assert!(hi.is_finite(), "quantile failed to bracket");
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Mean of a non-negative random variable, `∫₀^∞ (1 - F(x)) dx`,
    /// by trapezoidal integration up to the `1 - 1e-9` quantile.
    fn mean_nonneg(&self) -> f64 {
        let upper = self.quantile(1.0 - 1e-9).max(1e-12);
        let n = 20_000;
        let h = upper / n as f64;
        let mut acc = 0.0;
        let mut prev = 1.0 - self.cdf(0.0);
        for i in 1..=n {
            let x = i as f64 * h;
            let cur = 1.0 - self.cdf(x);
            acc += 0.5 * (prev + cur) * h;
            prev = cur;
        }
        acc
    }
}

/// Draws samples; separated from [`Cdf`] because some CDFs (e.g. analytic
/// order statistics) are never sampled directly.
pub trait Sample {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
///
/// The paper models baseline inter-event timings as `Exp(λ)` and
/// victim-influenced timings as `Exp(λ′)` with `λ′ < λ` (Fig. 1).
///
/// # Examples
///
/// ```
/// use timestats::dist::{Cdf, Exponential};
/// let e = Exponential::new(1.0);
/// assert!((e.cdf(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// assert!((e.mean_nonneg() - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { rate }
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Cdf for Exponential {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile arg must be in [0,1)");
        -(1.0 - q).ln() / self.rate
    }

    fn mean_nonneg(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        -(1.0 - u).ln() / self.rate
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
        Uniform { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Cdf for Uniform {
    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / (self.hi - self.lo)
        }
    }

    fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile arg must be in [0,1)");
        self.lo + q * (self.hi - self.lo)
    }

    fn mean_nonneg(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

impl Sample for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        self.lo + u * (self.hi - self.lo)
    }
}

/// The convolution `X + N` where `X ~ Exp(λ)` and `N ~ U(0, b)`: the
/// "obscure timings with uniformly random noise" alternative that the
/// appendix compares StopWatch against (Fig. 8).
///
/// Closed form:
/// `F(x) = (x - (1 - e^{-λx})/λ)/b` for `0 < x < b`, and
/// `F(x) = 1 - (e^{-λ(x-b)} - e^{-λx})/(λ b)` for `x >= b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpPlusUniform {
    rate: f64,
    b: f64,
}

impl ExpPlusUniform {
    /// Creates the convolution with exponential rate `rate` and noise bound `b`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are strictly positive and finite.
    pub fn new(rate: f64, b: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        assert!(b > 0.0 && b.is_finite(), "noise bound must be positive");
        ExpPlusUniform { rate, b }
    }

    /// The exponential rate λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The noise upper bound `b`.
    pub fn noise_bound(&self) -> f64 {
        self.b
    }
}

impl Cdf for ExpPlusUniform {
    fn cdf(&self, x: f64) -> f64 {
        let (l, b) = (self.rate, self.b);
        if x <= 0.0 {
            0.0
        } else if x < b {
            (x - (1.0 - (-l * x).exp()) / l) / b
        } else {
            1.0 - ((-l * (x - b)).exp() - (-l * x).exp()) / (l * b)
        }
    }

    fn mean_nonneg(&self) -> f64 {
        1.0 / self.rate + self.b / 2.0
    }
}

impl Sample for ExpPlusUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Exponential::new(self.rate).sample(rng) + Uniform::new(0.0, self.b).sample(rng)
    }
}

/// A distribution shifted right by a constant (e.g. `X_{2:3} + Δn`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shifted<D> {
    inner: D,
    shift: f64,
}

impl<D> Shifted<D> {
    /// Wraps `inner`, shifting it right by `shift >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `shift` is negative or non-finite.
    pub fn new(inner: D, shift: f64) -> Self {
        assert!(shift >= 0.0 && shift.is_finite(), "shift must be >= 0");
        Shifted { inner, shift }
    }

    /// The wrapped distribution.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The shift amount.
    pub fn shift(&self) -> f64 {
        self.shift
    }
}

impl<D: Cdf> Cdf for Shifted<D> {
    fn cdf(&self, x: f64) -> f64 {
        self.inner.cdf(x - self.shift)
    }

    fn mean_nonneg(&self) -> f64 {
        self.inner.mean_nonneg() + self.shift
    }
}

impl<D: Sample> Sample for Shifted<D> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng) + self.shift
    }
}

/// Empirical distribution over a recorded sample (e.g. inter-packet virtual
/// delivery times from a simulation run, as in Fig. 4).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Builds an empirical CDF from observations (any order).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains NaN.
    pub fn from_samples(xs: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = xs.into_iter().collect();
        assert!(!sorted.is_empty(), "empirical distribution needs samples");
        assert!(sorted.iter().all(|x| !x.is_nan()), "NaN sample");
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Empirical { sorted }
    }

    /// Number of underlying observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` iff there are no observations (unreachable through the public
    /// constructor; kept for completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// A view of the sorted observations.
    pub fn as_sorted(&self) -> &[f64] {
        &self.sorted
    }
}

impl Cdf for Empirical {
    fn cdf(&self, x: f64) -> f64 {
        let cnt = self.sorted.partition_point(|&v| v <= x);
        cnt as f64 / self.sorted.len() as f64
    }

    fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile arg must be in [0,1)");
        let idx = (q * self.sorted.len() as f64).floor() as usize;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    fn mean_nonneg(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

impl Cdf for Box<dyn Cdf + '_> {
    fn cdf(&self, x: f64) -> f64 {
        (**self).cdf(x)
    }
}

impl<D: Cdf + ?Sized> Cdf for &D {
    fn cdf(&self, x: f64) -> f64 {
        (**self).cdf(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_cdf_and_quantile() {
        let e = Exponential::new(2.0);
        assert_eq!(e.cdf(0.0), 0.0);
        assert_eq!(e.cdf(-1.0), 0.0);
        assert!((e.cdf(0.5) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        let q = e.quantile(0.5);
        assert!((e.cdf(q) - 0.5).abs() < 1e-12);
        assert!((e.mean_nonneg() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exponential_sample_mean() {
        let e = Exponential::new(4.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let m: f64 = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - 0.25).abs() < 0.01);
    }

    #[test]
    fn uniform_cdf() {
        let u = Uniform::new(1.0, 3.0);
        assert_eq!(u.cdf(0.5), 0.0);
        assert_eq!(u.cdf(3.5), 1.0);
        assert!((u.cdf(2.0) - 0.5).abs() < 1e-12);
        assert!((u.quantile(0.25) - 1.5).abs() < 1e-12);
        assert!((u.mean_nonneg() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exp_plus_uniform_matches_monte_carlo() {
        let d = ExpPlusUniform::new(1.0, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        for &x in &[0.5, 1.0, 2.0, 3.0, 5.0] {
            let emp = samples.iter().filter(|&&v| v <= x).count() as f64 / n as f64;
            assert!(
                (d.cdf(x) - emp).abs() < 0.005,
                "x={x}: analytic {} vs mc {}",
                d.cdf(x),
                emp
            );
        }
        assert!((d.mean_nonneg() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exp_plus_uniform_is_continuous_at_b() {
        let d = ExpPlusUniform::new(1.3, 0.7);
        let below = d.cdf(0.7 - 1e-9);
        let above = d.cdf(0.7 + 1e-9);
        assert!((below - above).abs() < 1e-6);
    }

    #[test]
    fn shifted_shifts() {
        let s = Shifted::new(Exponential::new(1.0), 2.0);
        assert_eq!(s.cdf(1.9), 0.0);
        assert!((s.cdf(3.0) - Exponential::new(1.0).cdf(1.0)).abs() < 1e-12);
        assert!((s.mean_nonneg() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_cdf_steps() {
        let e = Empirical::from_samples([3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.cdf(0.9), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(3.0), 1.0);
        assert!((e.mean_nonneg() - 2.0).abs() < 1e-12);
        assert_eq!(e.quantile(0.5), 2.0);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empirical_empty_panics() {
        Empirical::from_samples(std::iter::empty());
    }

    #[test]
    fn default_quantile_via_bisection() {
        // ExpPlusUniform has no closed-form quantile; exercise the default.
        let d = ExpPlusUniform::new(1.0, 1.0);
        for &q in &[0.1, 0.5, 0.9, 0.999] {
            let x = d.quantile(q);
            assert!((d.cdf(x) - q).abs() < 1e-9, "q={q}");
        }
    }

    #[test]
    fn generic_mean_matches_closed_form() {
        let d = ExpPlusUniform::new(2.0, 3.0);
        // Generic integration path vs closed form.
        struct Opaque<'a>(&'a ExpPlusUniform);
        impl Cdf for Opaque<'_> {
            fn cdf(&self, x: f64) -> f64 {
                self.0.cdf(x)
            }
        }
        let generic = Opaque(&d).mean_nonneg();
        assert!(
            (generic - d.mean_nonneg()).abs() < 1e-3,
            "generic {generic}"
        );
    }
}
