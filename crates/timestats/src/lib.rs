//! # timestats — the statistical machinery of the StopWatch paper
//!
//! Implements everything the paper's security analysis (Sec. III, Sec. V-B,
//! Appendix) needs:
//!
//! * [`dist`] — exponential / uniform / empirical distributions and the
//!   exponential-plus-uniform-noise convolution, behind one [`dist::Cdf`]
//!   trait;
//! * [`order_stats`] — CDFs of order statistics of independent,
//!   non-identically-distributed variables (Güngör et al. Result 2.4), with
//!   the median-of-three closed form the paper's defense rests on;
//! * [`special`] — log-gamma, incomplete gamma, erf, χ² CDF/quantile
//!   (implemented from scratch);
//! * [`detect`] — χ²-based "observations needed to detect the victim"
//!   calculations (Figs. 1b, 1c, 4b);
//! * [`ks`] — Kolmogorov–Smirnov distance and Theorems 3/4;
//! * [`noise`] — the median-vs-uniform-noise delay comparison (Fig. 8).
//!
//! # Examples
//!
//! Reproducing the heart of Fig. 1: the median of three replicas makes a
//! coresident victim dramatically harder to detect.
//!
//! ```
//! use timestats::dist::Exponential;
//! use timestats::order_stats::OrderStat;
//! use timestats::detect::Detector;
//!
//! let base = Exponential::new(1.0);
//! let victim = Exponential::new(0.5);
//!
//! // Without StopWatch the attacker compares raw distributions...
//! let raw = Detector::from_cdfs(&base, &victim, 10);
//! // ...with StopWatch it sees only medians of three replicas, at most one
//! // of which is coresident with the victim.
//! let med_null = OrderStat::median_of_three(base, base, base);
//! let med_alt  = OrderStat::median_of_three(victim, base, base);
//! let sw = Detector::from_cdfs(&med_null, &med_alt, 10);
//!
//! let n_raw = raw.observations_needed(0.95);
//! let n_sw = sw.observations_needed(0.95);
//! assert!(n_sw > 5 * n_raw); // far harder under the median defense
//! ```

pub mod detect;
pub mod dist;
pub mod ks;
pub mod noise;
pub mod order_stats;
pub mod special;

pub use detect::{Detector, PAPER_CONFIDENCES};
pub use dist::{Cdf, Empirical, ExpPlusUniform, Exponential, Sample, Shifted, Uniform};
pub use ks::{ks_distance, median_attenuation};
pub use noise::{compare_with_uniform_noise, NoiseComparison};
pub use order_stats::{median3, median_odd, OrderStat};
