//! Special functions needed for the paper's statistical machinery:
//! log-gamma, regularized incomplete gamma, error function, and the χ²
//! distribution (CDF and quantile).
//!
//! Implemented from scratch (no external numerics crate is in the offline
//! set); accuracy targets are ~1e-10 relative, far tighter than the
//! experiment needs.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// # Panics
///
/// Panics for `x <= 0` (not needed by this crate).
///
/// # Examples
///
/// ```
/// use timestats::special::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-12);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    // Published Lanczos(g=7) coefficients, kept verbatim; the extra
    // digits round to the nearest f64.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x)/Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes style).
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive");
    assert!(x >= 0.0, "argument must be non-negative");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive");
    assert!(x >= 0.0, "argument must be non-negative");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_fraction(a, x)
    }
}

fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cont_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// The error function, via `erf(x) = P(1/2, x²)` for `x >= 0`.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else if x == 0.0 {
        0.0
    } else {
        reg_lower_gamma(0.5, x * x)
    }
}

/// Standard normal CDF.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// CDF of the χ² distribution with `k` degrees of freedom.
///
/// # Panics
///
/// Panics if `k == 0` or `x < 0`.
pub fn chi2_cdf(x: f64, k: u32) -> f64 {
    assert!(k > 0, "degrees of freedom must be positive");
    assert!(x >= 0.0, "chi-square support is non-negative");
    reg_lower_gamma(k as f64 / 2.0, x / 2.0)
}

/// Quantile (inverse CDF) of the χ² distribution with `k` degrees of freedom.
///
/// Solved by bracketing + bisection; accurate to ~1e-10 in probability.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` or `k == 0`.
///
/// # Examples
///
/// ```
/// use timestats::special::chi2_quantile;
/// // Known value: χ²₁(0.95) ≈ 3.841
/// assert!((chi2_quantile(0.95, 1) - 3.841).abs() < 1e-3);
/// // χ²₉(0.99) ≈ 21.666
/// assert!((chi2_quantile(0.99, 9) - 21.666).abs() < 1e-3);
/// ```
pub fn chi2_quantile(p: f64, k: u32) -> f64 {
    assert!(k > 0, "degrees of freedom must be positive");
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1), got {p}");
    let mut hi = k as f64 + 10.0;
    while chi2_cdf(hi, k) < p {
        hi *= 2.0;
        assert!(hi.is_finite(), "chi2_quantile failed to bracket");
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi2_cdf(mid, k) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(n) = (n-1)!
        let facts: [(f64, f64); 5] = [(1.0, 1.0), (2.0, 1.0), (3.0, 2.0), (4.0, 6.0), (6.0, 120.0)];
        for (x, f) in facts {
            assert!((ln_gamma(x) - f.ln()).abs() < 1e-10, "Γ({x})");
        }
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        // Reflection region: Γ(1/4) ≈ 3.6256099082
        assert!((ln_gamma(0.25) - 3.625_609_908_2_f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.1, 1.0, 5.0, 30.0, 100.0] {
                let p = reg_lower_gamma(a, x);
                let q = reg_upper_gamma(a, x);
                assert!((p + q - 1.0).abs() < 1e-12, "a={a} x={x}");
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.0, 0.5, 1.0, 3.0, 10.0] {
            assert!((reg_lower_gamma(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(1.0) - 0.842_700_792_949_715).abs() < 1e-10);
        assert!((erf(-1.0) + 0.842_700_792_949_715).abs() < 1e-10);
        assert!((erf(2.0) - 0.995_322_265_018_953).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        for &x in &[0.3, 1.0, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn chi2_cdf_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.5;
            let c = chi2_cdf(x, 5);
            assert!(c >= prev && (0.0..=1.0).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn chi2_quantile_tables() {
        // Standard table values.
        let cases: [(f64, u32, f64); 6] = [
            (0.95, 1, 3.8415),
            (0.99, 1, 6.6349),
            (0.95, 9, 16.919),
            (0.99, 9, 21.666),
            (0.90, 4, 7.7794),
            (0.70, 9, 10.656),
        ];
        for (p, k, want) in cases {
            let got = chi2_quantile(p, k);
            assert!(
                (got - want).abs() < 2e-3,
                "p={p} k={k}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn chi2_quantile_roundtrip() {
        for &k in &[1u32, 3, 9, 20] {
            for &p in &[0.1, 0.5, 0.7, 0.95, 0.999] {
                let x = chi2_quantile(p, k);
                assert!((chi2_cdf(x, k) - p).abs() < 1e-9, "k={k} p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn chi2_zero_df_panics() {
        chi2_cdf(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn chi2_quantile_bad_p_panics() {
        chi2_quantile(1.0, 3);
    }
}
