//! Kolmogorov–Smirnov distance between CDFs, and the paper's Theorems 3/4
//! about how median microaggregation shrinks that distance.
//!
//! * **Theorem 3**: if the distributions of X₂ and X₃ overlap (no point where
//!   one CDF is 0 while the other is 1), then
//!   `D(F_{2:3}, F′_{2:3}) < D(F₁, F′₁)`.
//! * **Theorem 4**: if X₂ and X₃ are identically distributed, then
//!   `D(F_{2:3}, F′_{2:3}) ≤ ½ · D(F₁, F′₁)`.

use crate::dist::Cdf;
use crate::order_stats::OrderStat;

/// Kolmogorov–Smirnov distance `max_x |F(x) − G(x)|` over a dense grid on
/// `[lo, hi]`.
///
/// # Panics
///
/// Panics unless `lo < hi` and `points >= 2`.
pub fn ks_distance_grid<F: Cdf, G: Cdf>(f: &F, g: &G, lo: f64, hi: f64, points: usize) -> f64 {
    assert!(lo < hi, "bad interval");
    assert!(points >= 2, "need at least two grid points");
    let mut best: f64 = 0.0;
    for i in 0..points {
        let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
        best = best.max((f.cdf(x) - g.cdf(x)).abs());
    }
    best
}

/// KS distance with automatic bounds: the grid covers both distributions up
/// to their `1 − 1e-6` quantiles, with 4000 points.
pub fn ks_distance<F: Cdf, G: Cdf>(f: &F, g: &G) -> f64 {
    let hi = f.quantile(1.0 - 1e-6).max(g.quantile(1.0 - 1e-6));
    ks_distance_grid(f, g, 0.0, hi.max(1e-9), 4000)
}

/// Both sides of Theorem 3/4: returns
/// `(D(F_{2:3}, F′_{2:3}), D(F₁, F′₁))` for baseline components `f2, f3`
/// and the swapped component `f1 → f1p`.
pub fn median_attenuation<A, B, C, D>(f1: &A, f1p: &B, f2: &C, f3: &D) -> (f64, f64)
where
    A: Cdf + Clone,
    B: Cdf + Clone,
    C: Cdf + Clone,
    D: Cdf + Clone,
{
    // Box the components to unify types for OrderStat.
    let null: OrderStat<Box<dyn Cdf>> = OrderStat::median_of_three(
        Box::new(f1.clone()) as Box<dyn Cdf>,
        Box::new(f2.clone()),
        Box::new(f3.clone()),
    );
    let alt: OrderStat<Box<dyn Cdf>> = OrderStat::median_of_three(
        Box::new(f1p.clone()) as Box<dyn Cdf>,
        Box::new(f2.clone()),
        Box::new(f3.clone()),
    );
    let med = ks_distance(&null, &alt);
    let raw = ks_distance(f1, f1p);
    (med, raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Uniform};

    #[test]
    fn ks_identical_is_zero() {
        let e = Exponential::new(1.0);
        assert!(ks_distance(&e, &e) < 1e-12);
    }

    #[test]
    fn ks_exponential_pair_known_value() {
        // D(Exp(1), Exp(1/2)): |e^{-x/2} - e^{-x}| maximized at x = 2 ln 2,
        // where the value is 1/4.
        let d = ks_distance(&Exponential::new(1.0), &Exponential::new(0.5));
        assert!((d - 0.25).abs() < 1e-4, "got {d}");
    }

    #[test]
    fn ks_symmetry() {
        let a = Exponential::new(1.0);
        let b = Exponential::new(0.7);
        assert!((ks_distance(&a, &b) - ks_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn theorem3_strict_inequality_for_overlapping() {
        let base = Exponential::new(1.0);
        let victim = Exponential::new(0.5);
        let (med, raw) = median_attenuation(&base, &victim, &base, &base);
        assert!(med < raw, "Theorem 3 violated: {med} !< {raw}");
    }

    #[test]
    fn theorem4_half_bound_for_identical_f2_f3() {
        let base = Exponential::new(1.0);
        let victim = Exponential::new(0.5);
        let (med, raw) = median_attenuation(&base, &victim, &base, &base);
        assert!(
            med <= 0.5 * raw + 1e-9,
            "Theorem 4 violated: {med} > 0.5 * {raw}"
        );
    }

    #[test]
    fn theorem3_with_heterogeneous_components() {
        let base = Exponential::new(1.0);
        let victim = Exponential::new(10.0 / 11.0);
        let f2 = Exponential::new(1.2);
        let f3 = Exponential::new(0.9);
        let (med, raw) = median_attenuation(&base, &victim, &f2, &f3);
        assert!(med < raw, "Theorem 3 violated: {med} !< {raw}");
    }

    #[test]
    fn attenuation_with_uniform_components() {
        let base = Uniform::new(0.0, 1.0);
        let victim = Uniform::new(0.2, 1.2);
        let f2 = Uniform::new(0.0, 1.0);
        let (med, raw) = median_attenuation(&base, &victim, &f2, &f2);
        assert!(med <= 0.5 * raw + 1e-9);
    }

    #[test]
    fn grid_distance_respects_bounds() {
        let a = Exponential::new(1.0);
        let b = Exponential::new(0.5);
        // Max difference is at x = 2 ln 2 ≈ 1.386; a grid excluding it
        // underestimates, a grid including it finds it.
        let narrow = ks_distance_grid(&a, &b, 0.0, 0.5, 100);
        let wide = ks_distance_grid(&a, &b, 0.0, 10.0, 4000);
        assert!(narrow < wide);
    }
}
