//! The appendix's "median vs. uniform random noise" comparison (Fig. 8).
//!
//! StopWatch delays an event by Δn beyond the median of three replica
//! timings; the alternative defense adds `U(0, b)` noise to a single VM's
//! timings. For a fair comparison the paper:
//!
//! 1. picks Δn so that the probability of replica desynchronization at an
//!    event is tiny: `Pr[|X₁ − X′₁| ≤ Δn] ≥ 0.9999`;
//! 2. computes the observations `N*` an attacker needs under StopWatch to
//!    distinguish `X_{2:3} + Δn` from `X′_{2:3} + Δn` at each confidence;
//! 3. solves for the minimum `b` that forces the noise defense to the same
//!    `N*`; and
//! 4. compares the expected delays `E[X_{2:3} + Δn]` vs `E[X₁ + X_N]`.

use crate::detect::Detector;
use crate::dist::{Cdf, ExpPlusUniform, Exponential};
use crate::order_stats::OrderStat;

/// Tail quantiles added to the equal-probability binning in this module's
/// detectors. The comparison between the median defense and additive noise
/// is tail-driven (see [`Detector::from_cdfs_with_tails`]); these depths
/// keep both defenses measured by the same, tail-aware test.
pub const TAIL_QS: &[f64] = &[0.99, 0.999, 0.9999];

/// `Pr[|X − Y| <= delta]` for independent `X ~ Exp(l1)`, `Y ~ Exp(l2)`.
///
/// The difference `D = X − Y` is asymmetric Laplace:
/// `P(D <= t) = 1 − l2/(l1+l2) e^{−l1 t}` for `t >= 0` and
/// `P(D <= t) = l1/(l1+l2) e^{l2 t}` for `t < 0`.
///
/// # Panics
///
/// Panics if a rate is non-positive or `delta` is negative.
pub fn abs_diff_exp_cdf(delta: f64, l1: f64, l2: f64) -> f64 {
    assert!(l1 > 0.0 && l2 > 0.0, "rates must be positive");
    assert!(delta >= 0.0, "delta must be non-negative");
    let s = l1 + l2;
    let upper = 1.0 - l2 / s * (-l1 * delta).exp();
    let lower = l1 / s * (-l2 * delta).exp();
    upper - lower
}

/// Smallest Δ with `Pr[|X₁ − X′₁| <= Δ] >= prob` (bisection).
///
/// This is how the paper sizes Δn for the Fig. 8 comparison
/// ("the probability of a desynchronization at this event is less than
/// 0.0001" for `prob = 0.9999`).
///
/// # Panics
///
/// Panics if `prob` is outside `(0, 1)`.
pub fn delta_for_desync_prob(l1: f64, l2: f64, prob: f64) -> f64 {
    assert!(prob > 0.0 && prob < 1.0, "prob must be in (0,1)");
    let mut hi = 1.0;
    while abs_diff_exp_cdf(hi, l1, l2) < prob {
        hi *= 2.0;
        assert!(hi.is_finite(), "failed to bracket delta");
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if abs_diff_exp_cdf(mid, l1, l2) < prob {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// One row of the Fig. 8 comparison at a fixed confidence level.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseComparison {
    /// Confidence level of the attacker's test.
    pub confidence: f64,
    /// Observations needed under StopWatch at this confidence.
    pub observations: u64,
    /// Δn used by StopWatch (from the desync-probability rule).
    pub delta_n: f64,
    /// Minimum uniform-noise bound `b` giving the attacker the same
    /// difficulty.
    pub noise_bound: f64,
    /// `E[X_{2:3} + Δn]` — StopWatch's expected delay, null case.
    pub stopwatch_delay_null: f64,
    /// `E[X′_{2:3} + Δn]` — StopWatch's expected delay, victim case.
    pub stopwatch_delay_victim: f64,
    /// `E[X₁ + X_N]` — noise defense expected delay, null case.
    pub noise_delay_null: f64,
    /// `E[X′₁ + X_N]` — noise defense expected delay, victim case.
    pub noise_delay_victim: f64,
}

/// Computes the Fig. 8 comparison for baseline rate `lambda`, victim rate
/// `lambda_prime`, at each confidence in `confidences`.
///
/// `bins` is the χ² bin count (10 reproduces the paper's granularity well);
/// `desync_prob` is the Δn sizing rule (paper: 0.9999).
///
/// # Panics
///
/// Panics if rates are non-positive or `lambda_prime >= lambda` is violated
/// in a way that makes the distributions identical (equal rates).
pub fn compare_with_uniform_noise(
    lambda: f64,
    lambda_prime: f64,
    confidences: &[f64],
    bins: usize,
    desync_prob: f64,
) -> Vec<NoiseComparison> {
    assert!(lambda > 0.0 && lambda_prime > 0.0, "rates must be positive");
    assert!(
        (lambda - lambda_prime).abs() > 1e-12,
        "victim must differ from baseline"
    );
    let base = Exponential::new(lambda);
    let victim = Exponential::new(lambda_prime);
    let delta_n = delta_for_desync_prob(lambda, lambda_prime, desync_prob);

    let med_null = OrderStat::median_of_three(base, base, base);
    let med_alt = OrderStat::median_of_three(victim, base, base);
    let stopwatch = Detector::from_cdfs_with_tails(&med_null, &med_alt, bins, TAIL_QS);

    let e_med_null = med_null.mean_nonneg();
    let e_med_alt = med_alt.mean_nonneg();

    confidences
        .iter()
        .map(|&confidence| {
            let observations = stopwatch.observations_needed(confidence);
            let noise_bound = min_noise_bound(lambda, lambda_prime, confidence, observations, bins);
            NoiseComparison {
                confidence,
                observations,
                delta_n,
                noise_bound,
                stopwatch_delay_null: e_med_null + delta_n,
                stopwatch_delay_victim: e_med_alt + delta_n,
                noise_delay_null: 1.0 / lambda + noise_bound / 2.0,
                noise_delay_victim: 1.0 / lambda_prime + noise_bound / 2.0,
            }
        })
        .collect()
}

/// Minimum uniform-noise bound `b` such that distinguishing
/// `X₁ + U(0,b)` from `X′₁ + U(0,b)` at `confidence` needs at least
/// `target_observations` samples.
///
/// The χ² divergence is monotone decreasing in `b`, so we bisect.
///
/// # Panics
///
/// Panics on non-positive rates, equal rates, or a zero observation target.
pub fn min_noise_bound(
    lambda: f64,
    lambda_prime: f64,
    confidence: f64,
    target_observations: u64,
    bins: usize,
) -> f64 {
    assert!(lambda > 0.0 && lambda_prime > 0.0, "rates must be positive");
    assert!(target_observations > 0, "target must be positive");
    let needed = |b: f64| -> u64 {
        let null = ExpPlusUniform::new(lambda, b);
        let alt = ExpPlusUniform::new(lambda_prime, b);
        Detector::from_cdfs_with_tails(&null, &alt, bins, TAIL_QS).observations_needed(confidence)
    };
    // If no noise at all already suffices, b = 0.
    let bare = Detector::from_cdfs_with_tails(
        &Exponential::new(lambda),
        &Exponential::new(lambda_prime),
        bins,
        TAIL_QS,
    )
    .observations_needed(confidence);
    if bare >= target_observations {
        return 0.0;
    }
    let mut hi = 1.0;
    while needed(hi) < target_observations {
        hi *= 2.0;
        assert!(hi < 1e9, "noise bound failed to bracket");
    }
    let mut lo = 0.0;
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if mid <= 0.0 {
            break;
        }
        if needed(mid) < target_observations {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::PAPER_CONFIDENCES;

    #[test]
    fn abs_diff_cdf_properties() {
        assert!(abs_diff_exp_cdf(0.0, 1.0, 0.5) < 1e-12);
        let mut prev = 0.0;
        for i in 1..50 {
            let d = i as f64 * 0.2;
            let p = abs_diff_exp_cdf(d, 1.0, 0.5);
            assert!(p >= prev && p <= 1.0);
            prev = p;
        }
        assert!(abs_diff_exp_cdf(100.0, 1.0, 0.5) > 0.999999);
    }

    #[test]
    fn abs_diff_cdf_symmetric_in_rates() {
        // |X - Y| distribution is symmetric under swapping the rates.
        for &d in &[0.1, 0.5, 2.0] {
            assert!((abs_diff_exp_cdf(d, 1.0, 0.5) - abs_diff_exp_cdf(d, 0.5, 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn abs_diff_matches_monte_carlo() {
        use crate::dist::Sample;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        let x = Exponential::new(1.0);
        let y = Exponential::new(0.5);
        let n = 200_000;
        let mut within = 0u32;
        let delta = 1.5;
        for _ in 0..n {
            if (x.sample(&mut rng) - y.sample(&mut rng)).abs() <= delta {
                within += 1;
            }
        }
        let emp = within as f64 / n as f64;
        let ana = abs_diff_exp_cdf(delta, 1.0, 0.5);
        assert!((emp - ana).abs() < 0.005, "{emp} vs {ana}");
    }

    #[test]
    fn delta_for_desync_hits_target() {
        let d = delta_for_desync_prob(1.0, 0.5, 0.9999);
        let p = abs_diff_exp_cdf(d, 1.0, 0.5);
        assert!((p - 0.9999).abs() < 1e-9, "p={p}");
        assert!(d > 0.0);
    }

    #[test]
    fn noise_bound_increases_with_target() {
        let b1 = min_noise_bound(1.0, 0.5, 0.9, 100, 10);
        let b2 = min_noise_bound(1.0, 0.5, 0.9, 1000, 10);
        assert!(b2 > b1, "{b2} !> {b1}");
    }

    #[test]
    fn noise_bound_zero_when_target_trivial() {
        assert_eq!(min_noise_bound(1.0, 0.5, 0.99, 1, 10), 0.0);
    }

    #[test]
    fn comparison_scales_like_paper() {
        // Fig. 8a: StopWatch delay stays near-flat in confidence while the
        // noise bound (and so noise delay) grows.
        let rows = compare_with_uniform_noise(1.0, 0.5, &PAPER_CONFIDENCES, 10, 0.9999);
        assert_eq!(rows.len(), PAPER_CONFIDENCES.len());
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        // StopWatch delay does not depend on confidence at all.
        assert!((first.stopwatch_delay_null - last.stopwatch_delay_null).abs() < 1e-12);
        // Noise delay grows with confidence.
        assert!(last.noise_delay_null > first.noise_delay_null);
        // At the top confidence, noise is costlier than StopWatch (the
        // paper's headline claim for distinctive victims).
        assert!(last.noise_delay_null > last.stopwatch_delay_null);
    }

    #[test]
    fn comparison_null_and_victim_delays_close_under_stopwatch() {
        // E[X_{2:3}+Δn] ≈ E[X'_{2:3}+Δn]: their gap is exactly what the
        // attacker exploits, and the median squeezes it.
        let rows = compare_with_uniform_noise(1.0, 10.0 / 11.0, &PAPER_CONFIDENCES, 10, 0.9999);
        for r in &rows {
            let gap = (r.stopwatch_delay_victim - r.stopwatch_delay_null).abs();
            let raw_gap = (11.0 / 10.0_f64 - 1.0).abs();
            assert!(gap < raw_gap, "median should shrink the mean gap");
        }
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn equal_rates_panic() {
        compare_with_uniform_noise(1.0, 1.0, &[0.9], 10, 0.9999);
    }
}
