//! Deterministic, fast hashing for simulation-internal maps.
//!
//! `std`'s default hasher is SipHash behind a per-process random seed —
//! robust against adversarial keys, but slow for the small integer/tuple
//! keys the hot paths use (per-packet link lookups, per-slot wake
//! tables), and randomly ordered between processes. Simulation state is
//! never attacker-controlled, so these maps use the rustc-style "Fx"
//! multiply-xor hash instead: a few cycles per key, **no random state**,
//! so iteration order — like everything else here — is a pure function
//! of the inputs.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by the deterministic Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by the deterministic Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// The rustc Fx word hasher: `state = rotl5(state) ^ word, * K`.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
        // Length fold keeps `"ab" + "c"` and `"a" + "bc"` distinct.
        self.add(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&(3usize, 7usize)), hash_of(&(3usize, 7usize)));
        assert_eq!(hash_of(&"delta_n"), hash_of(&"delta_n"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let keys: Vec<u64> = (0..1000).map(|i| hash_of(&(i as usize, 0usize))).collect();
        let distinct: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        assert_eq!(distinct.len(), keys.len(), "no collisions on a dense range");
    }

    #[test]
    fn byte_stream_chunking_is_length_stable() {
        // Same concatenated bytes split differently must differ (the
        // length fold), same split must agree.
        assert_ne!(hash_of(&("ab", "c")), hash_of(&("a", "bc")));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<(usize, usize), u64> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }
}
