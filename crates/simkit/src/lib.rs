//! # simkit — deterministic discrete-event simulation kernel
//!
//! The substrate under the StopWatch reproduction. The original StopWatch
//! (Li, Gao, Reiter — DSN 2013) is a Xen modification running on physical
//! hosts; this workspace re-creates the whole platform as a deterministic
//! discrete-event simulation, and `simkit` provides the three primitives the
//! rest of the stack builds on:
//!
//! * [`time`] — nanosecond [`time::SimTime`] (simulated real time) and
//!   [`time::VirtNanos`] (guest virtual time), kept apart by the type system;
//! * [`engine`] — the event loop ([`engine::Sim`]) with deterministic
//!   tie-breaking;
//! * [`rng`] — seeded, label-splittable random streams ([`rng::SimRng`]);
//! * [`metrics`] — summaries, exact-percentile sample sets and counters.
//!
//! # Examples
//!
//! ```
//! use simkit::prelude::*;
//!
//! #[derive(Default)]
//! struct World { arrivals: u32 }
//!
//! let mut sim: Sim<World> = Sim::new();
//! let mut world = World::default();
//! // A Poisson-ish arrival process, deterministic under the seed.
//! let mut rng = SimRng::new(42).stream("arrivals");
//! let mut t = SimTime::ZERO;
//! for _ in 0..10 {
//!     t = t + rng.exp_duration(SimDuration::from_millis(3));
//!     sim.schedule(t, |_, w: &mut World| w.arrivals += 1);
//! }
//! sim.run(&mut world);
//! assert_eq!(world.arrivals, 10);
//! ```

pub mod engine;
pub mod fxhash;
pub mod metrics;
pub mod rng;
pub mod time;
mod wheel;

/// One-line import for the common types.
pub mod prelude {
    pub use crate::engine::{EventId, Sim};
    pub use crate::metrics::{Counters, Samples, Summary};
    pub use crate::rng::SimRng;
    pub use crate::time::{SimDuration, SimTime, VirtNanos, VirtOffset};
}
