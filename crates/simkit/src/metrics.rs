//! Lightweight measurement collectors used across the reproduction:
//! running summaries, sample sets with exact percentiles, and counters.

use std::collections::BTreeMap;
use std::fmt;

/// Online running summary (count / mean / variance / min / max) using
/// Welford's algorithm. Constant memory; no percentiles.
///
/// # Examples
///
/// ```
/// use simkit::metrics::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] { s.record(x); }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n;
        self.m2 += other.m2 + d * d * self.n as f64 * other.n as f64 / n;
        self.mean = mean;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Stores every observation; supports exact quantiles and empirical CDFs.
///
/// # Examples
///
/// ```
/// use simkit::metrics::Samples;
/// let s: Samples = (1..=99).map(|i| i as f64).collect();
/// assert_eq!(s.quantile(0.5), 50.0);
/// assert_eq!(s.quantile(0.0), 1.0);
/// assert_eq!(s.quantile(1.0), 99.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Samples {
    xs: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples {
            xs: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.xs.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.xs.is_empty() {
            0.0
        } else {
            self.xs.iter().sum::<f64>() / self.xs.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.xs
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
    }

    /// Exact sample quantile with nearest-rank interpolation.
    ///
    /// # Panics
    ///
    /// Panics when empty or when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.xs.is_empty(), "quantile of empty sample set");
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let mut me = self.clone();
        me.ensure_sorted();
        let idx = (q * (me.xs.len() - 1) as f64).round() as usize;
        me.xs[idx]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Empirical CDF evaluated at `x`: fraction of observations `<= x`.
    pub fn ecdf(&self, x: f64) -> f64 {
        if self.xs.is_empty() {
            return 0.0;
        }
        let mut me = self.clone();
        me.ensure_sorted();
        let cnt = me.xs.partition_point(|&v| v <= x);
        cnt as f64 / me.xs.len() as f64
    }

    /// Consumes the set and returns the sorted observations.
    pub fn into_sorted(mut self) -> Vec<f64> {
        self.ensure_sorted();
        self.xs
    }

    /// A view of the raw (insertion-ordered) observations.
    pub fn as_slice(&self) -> &[f64] {
        &self.xs
    }

    /// Converts to a [`Summary`].
    pub fn summary(&self) -> Summary {
        let mut s = Summary::new();
        for &x in &self.xs {
            s.record(x);
        }
        s
    }

    /// Merges another sample set into this one (observation multiset
    /// union, like [`Summary::merge`] but keeping exact quantiles).
    ///
    /// # Examples
    ///
    /// ```
    /// use simkit::metrics::Samples;
    /// let mut a: Samples = [1.0, 3.0].into_iter().collect();
    /// let b: Samples = [2.0].into_iter().collect();
    /// a.merge(&b);
    /// assert_eq!(a.median(), 2.0);
    /// ```
    pub fn merge(&mut self, other: &Samples) {
        self.xs.extend_from_slice(&other.xs);
        self.sorted = self.xs.len() <= 1;
    }

    /// Exports the standard percentile summary used in reports, sorting
    /// the observations once for all eight statistics.
    pub fn percentiles(&self) -> Percentiles {
        if self.is_empty() {
            return Percentiles::default();
        }
        let mut xs = self.xs.clone();
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
        // Same nearest-rank rule as [`Samples::quantile`].
        let at = |q: f64| xs[(q * (xs.len() - 1) as f64).round() as usize];
        Percentiles {
            count: xs.len() as u64,
            mean: self.mean(),
            min: xs[0],
            p50: at(0.5),
            p90: at(0.9),
            p95: at(0.95),
            p99: at(0.99),
            max: xs[xs.len() - 1],
        }
    }
}

/// A fixed percentile summary of one sample set — the exchange format
/// merged aggregates are reported in.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Percentiles {
    /// Number of observations (0 means every other field is 0).
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest observation.
    pub max: f64,
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

/// Interns a counter name as a `&'static str`. Counter names are a small
/// closed set in practice ("disk_irq", "stalls", ...), but sweeps build
/// thousands of short-lived [`Counters`] instances; interning means the
/// per-instance miss path stores a shared static key instead of an owned
/// `String` per counter per instance. Unseen names leak exactly once per
/// process — bounded by the number of distinct counter names ever used.
fn intern(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{OnceLock, RwLock};
    static TABLE: OnceLock<RwLock<BTreeSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| RwLock::new(BTreeSet::new()));
    if let Some(&interned) = table.read().expect("intern table").get(name) {
        return interned;
    }
    let mut writer = table.write().expect("intern table");
    if let Some(&interned) = writer.get(name) {
        return interned; // raced another thread's insert
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    writer.insert(leaked);
    leaked
}

/// A set of named monotone counters (packets sent, interrupts injected, ...).
///
/// Keys are interned `&'static str`s: the [`Counters::incr`] hot path
/// (once per simulated event) never allocates, and the first touch of a
/// name per instance stores a shared static key (see [`intern`]).
///
/// # Examples
///
/// ```
/// use simkit::metrics::Counters;
/// let mut c = Counters::new();
/// c.add("disk_irq", 2);
/// c.incr("disk_irq");
/// assert_eq!(c.get("disk_irq"), 3);
/// assert_eq!(c.get("missing"), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        // Hot path: the existing-key case is a pure lookup, no allocation
        // and no interning round-trip.
        if let Some(v) = self.map.get_mut(name) {
            *v += n;
        } else {
            self.map.insert(intern(name), n);
        }
    }

    /// Adds one to counter `name`.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges another counter set into this one (values add).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_matches_combined() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(1.0);
        let before = a.mean();
        a.merge(&Summary::new());
        assert_eq!(a.mean(), before);
        let mut e = Summary::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn samples_quantiles_and_ecdf() {
        let s: Samples = [5.0, 1.0, 3.0, 2.0, 4.0].into_iter().collect();
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!((s.ecdf(3.0) - 0.6).abs() < 1e-12);
        assert_eq!(s.ecdf(0.5), 0.0);
        assert_eq!(s.ecdf(10.0), 1.0);
    }

    #[test]
    fn samples_into_sorted() {
        let s: Samples = [3.0, 1.0, 2.0].into_iter().collect();
        assert_eq!(s.into_sorted(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn samples_reject_nan() {
        Samples::new().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        Samples::new().quantile(0.5);
    }

    #[test]
    fn samples_merge_matches_combined() {
        let mut a: Samples = [5.0, 1.0].into_iter().collect();
        let b: Samples = [3.0, 2.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.median(), 3.0);
        assert_eq!(a.quantile(1.0), 5.0);
        let p = a.percentiles();
        assert_eq!(p.count, 5);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.p50, 3.0);
        assert_eq!(p.max, 5.0);
        assert!((p.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_percentiles_are_zero() {
        let p = Samples::new().percentiles();
        assert_eq!(p, Percentiles::default());
        assert_eq!(p.count, 0);
    }

    #[test]
    fn counter_keys_are_interned_and_shared_across_instances() {
        let mut a = Counters::new();
        let dynamic = format!("dyn_{}", "counter"); // not a literal
        a.incr(&dynamic);
        a.incr(&dynamic);
        assert_eq!(a.get("dyn_counter"), 2);
        let mut b = Counters::new();
        b.add(&format!("dyn_{}", "counter"), 5);
        // Both instances share the one interned static key.
        let ka = a.iter().find(|&(k, _)| k == "dyn_counter").unwrap().0;
        let kb = b.iter().find(|&(k, _)| k == "dyn_counter").unwrap().0;
        assert_eq!(ka.as_ptr(), kb.as_ptr(), "interned keys are shared");
        // Report output is unchanged by interning.
        assert_eq!(format!("{a}"), "dyn_counter=2");
    }

    #[test]
    fn counters_roundtrip() {
        let mut c = Counters::new();
        c.incr("a");
        c.add("b", 5);
        let mut d = Counters::new();
        d.add("b", 2);
        d.incr("c");
        c.merge(&d);
        assert_eq!(c.get("a"), 1);
        assert_eq!(c.get("b"), 7);
        assert_eq!(c.get("c"), 1);
        assert_eq!(format!("{c}"), "a=1 b=7 c=1");
    }
}
