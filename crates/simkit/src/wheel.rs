//! Hierarchical time-wheel backing the batched event queue.
//!
//! The batched run loop's access pattern is "pop every event at the next
//! timestamp, then jump there": a classic hierarchical timing wheel serves
//! it with O(1) inserts and per-*batch* (not per-event) advancement, where
//! the binary heap paid a log-depth sift per event. Layout:
//!
//! * [`LEVELS`] levels of 64 slots each; level 0 slots are 2^12 ns
//!   (~4.1 µs) wide and each level's slots are 64× the previous, so the
//!   wheel spans 2^36 ns (~68.7 s) ahead of the cursor. Events beyond the
//!   span wait in an unsorted overflow list (far-future deadlines are rare
//!   and re-home when the cursor crosses a top-level window).
//! * Slots are indexed by the *absolute* time bits of the level, and an
//!   event is filed at the lowest level whose next-coarser slot it shares
//!   with the cursor. That alignment makes every occupancy scan a simple
//!   mask-and-`trailing_zeros` with no ring wraparound.
//! * Bucket vectors, the sorted *active* bucket, and the cascade scratch
//!   buffer are pooled: capacity circulates between them via `swap`, so a
//!   steady-state run performs no queue allocations at all.
//!
//! Exactness: the wheel reproduces the heap's `(at, seq)` total order
//! bit-for-bit. A drained bucket is sorted by `(at, seq)` before delivery,
//! and [`Wheel::next_at`] is read-only so probing the queue (e.g. against
//! a `run_until` deadline) commits nothing. Cursor movement — and thus
//! cascading — happens only in [`Wheel::drain_at`], once the engine has
//! committed to executing that timestamp. The scalar reference loop keeps
//! using the binary heap; the differential tests in `engine` and the
//! `engine_wheel` proptests pin the two orders against each other.

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64 slots per level
const LEVELS: usize = 4;
/// Level-0 slot width exponent: 2^12 ns ≈ 4.1 µs.
const L0_SHIFT: u32 = 12;
/// Everything at or beyond 2^36 ns (~68.7 s) past the cursor overflows.
const TOP_SHIFT: u32 = L0_SHIFT + (LEVELS as u32) * SLOT_BITS;

#[inline]
fn level_shift(level: usize) -> u32 {
    L0_SHIFT + (level as u32) * SLOT_BITS
}

#[inline]
fn slot_index(at: u64, level: usize) -> usize {
    ((at >> level_shift(level)) & (SLOTS as u64 - 1)) as usize
}

/// One queued event: absolute nanosecond deadline, scheduling sequence
/// number (the FIFO tiebreak), and the caller's payload.
pub(crate) struct Entry<T> {
    pub at: u64,
    pub seq: u64,
    pub item: T,
}

pub(crate) struct Wheel<T> {
    /// Cursor: the last committed timestamp. Invariant: `cur` never
    /// exceeds the engine's `now`, and every stored entry has `at >= cur`.
    cur: u64,
    len: usize,
    /// Per-level slot-occupancy bitmaps.
    occ: [u64; LEVELS],
    /// `LEVELS * SLOTS` bucket vectors (level-major).
    buckets: Vec<Vec<Entry<T>>>,
    /// The opened earliest bucket, sorted *descending* by `(at, seq)` so
    /// pops from the back deliver ascending order.
    active: Vec<Entry<T>>,
    /// `at >> L0_SHIFT` of the open bucket; `None` iff `active` is empty.
    active_slot: Option<u64>,
    /// Entries beyond the wheel span, unsorted.
    overflow: Vec<Entry<T>>,
    /// Cascade scratch (capacity pooled with the buckets).
    scratch: Vec<Entry<T>>,
}

impl<T> Wheel<T> {
    pub fn new() -> Self {
        Wheel {
            cur: 0,
            len: 0,
            occ: [0; LEVELS],
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            active: Vec::new(),
            active_slot: None,
            overflow: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Entries stored (cancellation tombstones included, like the heap).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn insert(&mut self, at: u64, seq: u64, item: T) {
        debug_assert!(at >= self.cur, "insert behind the wheel cursor");
        self.len += 1;
        if let Some(key) = self.active_slot {
            debug_assert!(at >> L0_SHIFT >= key, "insert before the open bucket");
            if at >> L0_SHIFT == key {
                // The open bucket's slot: merge in sorted (descending)
                // position so the drain order stays exact.
                let pos = self.active.partition_point(|e| (e.at, e.seq) > (at, seq));
                self.active.insert(pos, Entry { at, seq, item });
                return;
            }
        }
        self.insert_raw(Entry { at, seq, item });
    }

    /// Files an entry relative to the current cursor without touching the
    /// active bucket or the length counter.
    fn insert_raw(&mut self, e: Entry<T>) {
        let x = e.at ^ self.cur;
        if x >> TOP_SHIFT != 0 {
            self.overflow.push(e);
            return;
        }
        // The lowest level whose parent slot the entry shares with the
        // cursor — derived from the highest differing time bit.
        let msb = 63u32.saturating_sub(x.leading_zeros());
        let level = (msb.saturating_sub(L0_SHIFT) / SLOT_BITS) as usize;
        let idx = slot_index(e.at, level);
        self.occ[level] |= 1u64 << idx;
        self.buckets[level * SLOTS + idx].push(e);
    }

    /// The earliest stored deadline. Read-only: no cursor movement, no
    /// cascading — safe to call for deadline probes that never commit.
    pub fn next_at(&self) -> Option<u64> {
        if let Some(e) = self.active.last() {
            return Some(e.at);
        }
        let c0 = slot_index(self.cur, 0);
        let m = self.occ[0] & (!0u64 << c0);
        if m != 0 {
            let i = m.trailing_zeros() as usize;
            return bucket_min(&self.buckets[i]);
        }
        for level in 1..LEVELS {
            // The cursor's own slot at level >= 1 is always empty (its
            // contents live at lower levels), so scan strictly after it.
            let cl = slot_index(self.cur, level);
            let m = self.occ[level] & ((!0u64 << cl) << 1);
            if m != 0 {
                let i = m.trailing_zeros() as usize;
                return bucket_min(&self.buckets[level * SLOTS + i]);
            }
        }
        self.overflow.iter().map(|e| e.at).min()
    }

    /// Pops every entry with deadline exactly `t` — which must be the
    /// value [`Wheel::next_at`] returned — into `sink` in `seq` order,
    /// advancing the cursor (and cascading higher levels) as needed.
    pub fn drain_at(&mut self, t: u64, sink: &mut impl FnMut(u64, T)) {
        debug_assert!(t >= self.cur, "drain behind the wheel cursor");
        if (t >> TOP_SHIFT) != (self.cur >> TOP_SHIFT) {
            // Crossing a top-level window: every in-window bucket is empty
            // (t is the global minimum), so jump the cursor and re-home
            // the overflow list against it.
            debug_assert!(self.active.is_empty());
            self.cur = t;
            let mut ovf = std::mem::take(&mut self.overflow);
            for e in ovf.drain(..) {
                self.insert_raw(e);
            }
            // Hand the drained vector's capacity back.
            if self.overflow.capacity() == 0 {
                self.overflow = ovf;
            }
        }
        if self.active_slot == Some(t >> L0_SHIFT) {
            self.cur = t;
            self.pop_active_matching(t, sink);
            return;
        }
        self.close_active();
        loop {
            let c0 = slot_index(self.cur, 0);
            let m = self.occ[0] & (!0u64 << c0);
            if m != 0 {
                let i = m.trailing_zeros() as usize;
                self.occ[0] &= !(1u64 << i);
                debug_assert!(self.active.is_empty());
                std::mem::swap(&mut self.buckets[i], &mut self.active);
                self.active
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
                let min = self.active.last().expect("occupied bucket is non-empty");
                debug_assert_eq!(min.at, t, "drain_at must be given the minimum");
                self.active_slot = Some(min.at >> L0_SHIFT);
                self.cur = t;
                self.pop_active_matching(t, sink);
                return;
            }
            let mut cascaded = false;
            for level in 1..LEVELS {
                let cl = slot_index(self.cur, level);
                let m = self.occ[level] & ((!0u64 << cl) << 1);
                if m != 0 {
                    let j = m.trailing_zeros() as usize;
                    self.occ[level] &= !(1u64 << j);
                    let shift = level_shift(level);
                    let parent_mask = !((1u64 << (shift + SLOT_BITS)) - 1);
                    let slot_start = (self.cur & parent_mask) | ((j as u64) << shift);
                    debug_assert!(slot_start > self.cur && slot_start <= t);
                    self.cur = slot_start;
                    let bi = level * SLOTS + j;
                    let mut scratch = std::mem::take(&mut self.scratch);
                    std::mem::swap(&mut self.buckets[bi], &mut scratch);
                    for e in scratch.drain(..) {
                        self.insert_raw(e);
                    }
                    self.scratch = scratch;
                    cascaded = true;
                    break;
                }
            }
            if !cascaded {
                // Only the overflow can still hold t (defensive: the
                // top-window branch above normally re-homed it already).
                debug_assert!(!self.overflow.is_empty());
                self.cur = t;
                let mut ovf = std::mem::take(&mut self.overflow);
                for e in ovf.drain(..) {
                    self.insert_raw(e);
                }
                if self.overflow.capacity() == 0 {
                    self.overflow = ovf;
                }
            }
        }
    }

    fn pop_active_matching(&mut self, t: u64, sink: &mut impl FnMut(u64, T)) {
        while self.active.last().is_some_and(|e| e.at == t) {
            let e = self.active.pop().expect("just observed an entry");
            self.len -= 1;
            sink(e.seq, e.item);
        }
        if self.active.is_empty() {
            self.active_slot = None;
        }
    }

    /// Returns the open bucket's remaining entries to their slot.
    fn close_active(&mut self) {
        let Some(key) = self.active_slot.take() else {
            return;
        };
        if self.active.is_empty() {
            return;
        }
        let i = (key & (SLOTS as u64 - 1)) as usize;
        self.occ[0] |= 1u64 << i;
        if self.buckets[i].is_empty() {
            std::mem::swap(&mut self.buckets[i], &mut self.active);
        } else {
            self.buckets[i].append(&mut self.active);
        }
    }

    /// Empties the wheel through `sink` in no particular order (the
    /// scalar-mode migration re-sorts via the heap).
    pub fn drain_all(&mut self, sink: &mut impl FnMut(u64, u64, T)) {
        for e in self.active.drain(..) {
            sink(e.at, e.seq, e.item);
        }
        self.active_slot = None;
        for b in &mut self.buckets {
            for e in b.drain(..) {
                sink(e.at, e.seq, e.item);
            }
        }
        self.occ = [0; LEVELS];
        for e in self.overflow.drain(..) {
            sink(e.at, e.seq, e.item);
        }
        self.len = 0;
    }
}

fn bucket_min<T>(bucket: &[Entry<T>]) -> Option<u64> {
    bucket.iter().map(|e| e.at).min()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_next<T>(w: &mut Wheel<T>) -> Option<(u64, Vec<(u64, T)>)> {
        let t = w.next_at()?;
        let mut out = Vec::new();
        w.drain_at(t, &mut |seq, item| out.push((seq, item)));
        Some((t, out))
    }

    #[test]
    fn delivers_in_time_then_seq_order() {
        let mut w: Wheel<u32> = Wheel::new();
        w.insert(50, 2, 2);
        w.insert(10, 0, 0);
        w.insert(50, 1, 1);
        assert_eq!(w.len(), 3);
        assert_eq!(drain_next(&mut w), Some((10, vec![(0, 0)])));
        assert_eq!(drain_next(&mut w), Some((50, vec![(1, 1), (2, 2)])));
        assert_eq!(drain_next(&mut w), None);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn same_slot_burst_stays_fifo() {
        let mut w: Wheel<u32> = Wheel::new();
        // All inside one level-0 slot (4.1 µs), several distinct times.
        for seq in 0..100u64 {
            w.insert(1000 + (seq % 3) * 7, seq, seq as u32);
        }
        let mut got = Vec::new();
        while let Some((t, batch)) = drain_next(&mut w) {
            for (seq, _) in batch {
                got.push((t, seq));
            }
        }
        let mut want = got.clone();
        want.sort_unstable();
        assert_eq!(got, want, "ascending (at, seq) order");
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn far_future_deadlines_cross_every_level_and_overflow() {
        let mut w: Wheel<u64> = Wheel::new();
        // One event per level span plus one beyond the wheel (overflow).
        let ats = [
            1u64 << 10,
            1 << 20,
            1 << 26,
            1 << 32,
            1 << 40, // overflow: >= 2^36
            (1 << 40) + 5,
        ];
        for (seq, &at) in ats.iter().enumerate() {
            w.insert(at, seq as u64, at);
        }
        let mut got = Vec::new();
        while let Some((t, batch)) = drain_next(&mut w) {
            for (_, item) in batch {
                assert_eq!(item, t);
                got.push(t);
            }
        }
        let mut want = ats.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn inserts_between_drains_keep_order() {
        let mut w: Wheel<u32> = Wheel::new();
        w.insert(100, 0, 0);
        w.insert(5_000_000, 1, 1);
        assert_eq!(drain_next(&mut w).unwrap().0, 100);
        // New work lands between the cursor and the far event — including
        // inside the (now empty) active slot and in higher levels.
        w.insert(101, 2, 2);
        w.insert(70_000, 3, 3);
        assert_eq!(drain_next(&mut w), Some((101, vec![(2, 2)])));
        assert_eq!(drain_next(&mut w), Some((70_000, vec![(3, 3)])));
        assert_eq!(drain_next(&mut w), Some((5_000_000, vec![(1, 1)])));
    }

    #[test]
    fn next_at_is_read_only() {
        let mut w: Wheel<u32> = Wheel::new();
        w.insert(1 << 30, 0, 0);
        for _ in 0..3 {
            assert_eq!(w.next_at(), Some(1 << 30));
        }
        // A later insert at an earlier time must still surface first.
        w.insert(1 << 14, 1, 1);
        assert_eq!(w.next_at(), Some(1 << 14));
        assert_eq!(drain_next(&mut w), Some((1 << 14, vec![(1, 1)])));
        assert_eq!(drain_next(&mut w), Some((1 << 30, vec![(0, 0)])));
    }

    #[test]
    fn overflow_rehomes_on_window_crossings() {
        let mut w: Wheel<u64> = Wheel::new();
        let far = (1u64 << 36) + 123; // just past the first top window
        let farther = (1u64 << 37) + 7;
        w.insert(far, 0, far);
        w.insert(farther, 1, farther);
        w.insert(50, 2, 50);
        assert_eq!(drain_next(&mut w).unwrap().0, 50);
        assert_eq!(drain_next(&mut w).unwrap().0, far);
        // After crossing, nearer work still beats the remaining overflow.
        w.insert(far + 10, 3, far + 10);
        assert_eq!(drain_next(&mut w).unwrap().0, far + 10);
        assert_eq!(drain_next(&mut w).unwrap().0, farther);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn drain_all_returns_everything() {
        let mut w: Wheel<u32> = Wheel::new();
        w.insert(10, 0, 0);
        w.insert(1 << 25, 1, 1);
        w.insert(1 << 50, 2, 2);
        let mut seen = Vec::new();
        w.drain_all(&mut |at, seq, item| seen.push((at, seq, item)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(10, 0, 0), (1 << 25, 1, 1), (1 << 50, 2, 2)]);
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_at(), None);
    }
}
