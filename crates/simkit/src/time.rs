//! Simulation time types.
//!
//! Two distinct notions of time exist in the StopWatch reproduction, and they
//! must never be confused:
//!
//! * [`SimTime`] — *real* time inside the simulated world (what a wall clock
//!   on a physical host would read). The discrete-event engine advances this.
//! * [`VirtNanos`] — *virtual* time as exposed to a guest VM by StopWatch
//!   (Sec. IV of the paper): a deterministic function of the guest's executed
//!   instructions, `virt(instr) = slope * instr + start`.
//!
//! Both are nanosecond-granular. They are separate newtypes so the compiler
//! rejects accidental cross-assignments (C-NEWTYPE).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated *real* time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use simkit::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A length of simulated real time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use simkit::time::SimDuration;
/// assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// A point in guest *virtual* time, in virtual nanoseconds.
///
/// Virtual time is what a StopWatch guest observes through every real-time
/// clock source (PIT, TSC, RTC); see [`crate::time`] module docs.
///
/// # Examples
///
/// ```
/// use simkit::time::VirtNanos;
/// let v = VirtNanos::from_nanos(10) + VirtNanos::from_nanos(5).as_offset();
/// assert_eq!(v.as_nanos(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtNanos(u64);

/// A length of virtual time (an offset such as the paper's Δn or Δd).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtOffset(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable time; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// This time expressed as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is later than self"),
        )
    }

    /// Duration since `earlier`, or zero if `earlier` is in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at the bounds.
    ///
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1.0e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Creates a duration from fractional milliseconds (clamped like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1.0e3)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// `true` when this duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float, saturating at the bounds.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl VirtNanos {
    /// Virtual time zero.
    pub const ZERO: VirtNanos = VirtNanos(0);
    /// Largest representable virtual instant; an "unset / infinite" marker.
    pub const MAX: VirtNanos = VirtNanos(u64::MAX);

    /// Creates a virtual instant from raw virtual nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        VirtNanos(ns)
    }

    /// Creates a virtual instant from virtual milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtNanos(ms * 1_000_000)
    }

    /// Raw virtual nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional virtual milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Fractional virtual seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Reinterprets this instant as an offset from virtual zero.
    pub const fn as_offset(self) -> VirtOffset {
        VirtOffset(self.0)
    }

    /// Offset elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: VirtNanos) -> VirtOffset {
        VirtOffset(self.0.saturating_sub(earlier.0))
    }
}

impl VirtOffset {
    /// Zero offset.
    pub const ZERO: VirtOffset = VirtOffset(0);

    /// Creates an offset from raw virtual nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        VirtOffset(ns)
    }

    /// Creates an offset from virtual microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VirtOffset(us * 1_000)
    }

    /// Creates an offset from virtual milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtOffset(ms * 1_000_000)
    }

    /// Raw virtual nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional virtual milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Add<VirtOffset> for VirtNanos {
    type Output = VirtNanos;
    fn add(self, d: VirtOffset) -> VirtNanos {
        VirtNanos(self.0 + d.0)
    }
}

impl AddAssign<VirtOffset> for VirtNanos {
    fn add_assign(&mut self, d: VirtOffset) {
        self.0 += d.0;
    }
}

impl Sub<VirtNanos> for VirtNanos {
    type Output = VirtOffset;
    fn sub(self, rhs: VirtNanos) -> VirtOffset {
        VirtOffset(
            self.0
                .checked_sub(rhs.0)
                .expect("virtual time subtraction underflow"),
        )
    }
}

impl Add for VirtOffset {
    type Output = VirtOffset;
    fn add(self, rhs: VirtOffset) -> VirtOffset {
        VirtOffset(self.0 + rhs.0)
    }
}

impl Mul<u64> for VirtOffset {
    type Output = VirtOffset;
    fn mul(self, k: u64) -> VirtOffset {
        VirtOffset(self.0 * k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for VirtNanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for VirtOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(3);
        assert_eq!((t + d).as_nanos(), 13_000_000);
        assert_eq!((t - d).as_nanos(), 7_000_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_since_works() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(12);
        assert_eq!(b.duration_since(a), SimDuration::from_millis(7));
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_panics_on_negative() {
        let _ = SimTime::from_millis(1).duration_since(SimTime::from_millis(2));
    }

    #[test]
    fn duration_float_roundtrip() {
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d.as_nanos(), 250_000_000);
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
    }

    #[test]
    fn virt_time_arithmetic() {
        let v = VirtNanos::from_millis(4);
        let off = VirtOffset::from_millis(8);
        assert_eq!((v + off).as_nanos(), 12_000_000);
        assert_eq!((v + off) - v, off);
        assert_eq!(v.saturating_since(v + off), VirtOffset::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000000s");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", VirtNanos::from_millis(1)), "v0.001000s");
        assert_eq!(format!("{}", VirtOffset::from_millis(7)), "v7.000ms");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(5) < SimTime::from_nanos(6));
        assert!(VirtNanos::from_nanos(5) < VirtNanos::from_nanos(6));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
