//! Deterministic, stream-splittable randomness for simulations.
//!
//! Every source of stochastic behaviour (host speed jitter, disk access
//! draws, link latencies, workload arrivals) pulls from its own named
//! sub-stream derived from one master seed. Two runs with the same seed are
//! bit-identical; changing one component's draw count never perturbs another
//! component's stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// Derives a child seed from `(seed, label)` with the SplitMix64 finalizer
/// over an FNV-1a hash of the label.
fn derive_seed(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut z = seed ^ h;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic RNG stream.
///
/// # Examples
///
/// ```
/// use simkit::rng::SimRng;
/// let mut a = SimRng::new(7).stream("disk");
/// let mut b = SimRng::new(7).stream("disk");
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut c = SimRng::new(7).stream("net");
/// assert_ne!(SimRng::new(7).stream("disk").next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates the master stream for `seed`.
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream identified by `label`.
    pub fn stream(&self, label: &str) -> SimRng {
        let child = derive_seed(self.seed, label);
        SimRng {
            seed: child,
            inner: StdRng::seed_from_u64(child),
        }
    }

    /// Derives an independent child stream identified by `label` and `index`
    /// (e.g. one stream per host).
    pub fn stream_indexed(&self, label: &str, index: usize) -> SimRng {
        self.stream(&format!("{label}#{index}"))
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "bad range");
        self.inner.random_range(lo..hi)
    }

    /// Picks a uniformly random index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() on empty range");
        self.inner.random_range(0..n)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform01() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed draw with rate `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        let u = self.uniform01();
        -(1.0 - u).ln() / lambda
    }

    /// Standard-normal draw (Box–Muller; one value per call).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative standard deviation");
        let u1 = loop {
            let u = self.uniform01();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform01();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        let mean_s = mean.as_secs_f64();
        if mean_s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(self.exponential(1.0 / mean_s))
    }

    /// Uniform duration in `[lo, hi)`.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        if hi <= lo {
            return lo;
        }
        SimDuration::from_nanos(self.uniform_u64(lo.as_nanos(), hi.as_nanos()))
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let root = SimRng::new(1);
        let mut xs = Vec::new();
        for label in ["a", "b", "c", "a#0", "a#1"] {
            xs.push(root.stream(label).next_u64());
        }
        xs.sort_unstable();
        xs.dedup();
        assert_eq!(xs.len(), 5, "all derived streams must differ");
    }

    #[test]
    fn stream_indexed_matches_manual_label() {
        let root = SimRng::new(9);
        assert_eq!(
            root.stream_indexed("host", 3).next_u64(),
            root.stream("host#3").next_u64()
        );
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let n = r.uniform_u64(10, 20);
            assert!((10..20).contains(&n));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03);
        assert!((var - 4.0).abs() < 0.1);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0), "clamped above 1");
    }

    #[test]
    fn exp_duration_zero_mean() {
        let mut r = SimRng::new(4);
        assert_eq!(r.exp_duration(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(21);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
