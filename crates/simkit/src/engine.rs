//! The discrete-event simulation engine.
//!
//! [`Sim<W>`] owns a priority queue of scheduled events. Each event is a
//! closure receiving the engine (to schedule more events) and the user world
//! `W`. Ties at equal timestamps are broken by scheduling order, making every
//! run fully deterministic — a property the StopWatch reproduction leans on
//! heavily (replica determinism is part of the defense itself).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

type Handler<W> = Box<dyn FnOnce(&mut Sim<W>, &mut W)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    handler: Handler<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}

impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, then FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulation executor.
///
/// # Examples
///
/// ```
/// use simkit::engine::Sim;
/// use simkit::time::{SimDuration, SimTime};
///
/// let mut sim: Sim<Vec<u64>> = Sim::new();
/// let mut world = Vec::new();
/// sim.schedule_in(SimDuration::from_millis(2), |_, w: &mut Vec<u64>| w.push(2));
/// sim.schedule_in(SimDuration::from_millis(1), |sim, w: &mut Vec<u64>| {
///     w.push(1);
///     sim.schedule_in(SimDuration::from_millis(5), |_, w: &mut Vec<u64>| w.push(6));
/// });
/// sim.run(&mut world);
/// assert_eq!(world, vec![1, 2, 6]);
/// assert_eq!(sim.now(), SimTime::from_millis(6));
/// ```
pub struct Sim<W> {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    cancelled: HashSet<u64>,
    executed: u64,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            executed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled tombstones).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `handler` to run at absolute time `at`.
    ///
    /// Events scheduled for a time earlier than `now` run "immediately" (at
    /// `now`): the engine never moves time backwards.
    pub fn schedule(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            handler: Box::new(handler),
        });
        EventId(seq)
    }

    /// Schedules `handler` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        handler: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) -> EventId {
        self.schedule(self.now + delay, handler)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet run (it will be silently
    /// dropped when its time comes). Cancelling an already-executed event
    /// returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Runs events until the queue is empty; returns the final time.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        self.run_until(world, SimTime::MAX)
    }

    /// Runs events with timestamps `<= deadline`; time stops at the deadline
    /// (or at the last event, whichever is earlier). Returns the final time.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                self.now = deadline.min(head.at);
                return self.now;
            }
            let ev = self.queue.pop().expect("peeked entry must pop");
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.executed += 1;
            (ev.handler)(self, world);
        }
        self.now
    }

    /// Runs at most `n` (non-cancelled) events; returns how many ran.
    pub fn step(&mut self, world: &mut W, n: u64) -> u64 {
        let mut ran = 0;
        while ran < n {
            let Some(ev) = self.queue.pop() else { break };
            self.now = ev.at;
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.executed += 1;
            ran += 1;
            (ev.handler)(self, world);
        }
        ran
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        sim.schedule(SimTime::from_millis(30), |_, w: &mut Vec<u32>| w.push(3));
        sim.schedule(SimTime::from_millis(10), |_, w: &mut Vec<u32>| w.push(1));
        sim.schedule(SimTime::from_millis(20), |_, w: &mut Vec<u32>| w.push(2));
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_run_fifo() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            sim.schedule(t, move |_, w: &mut Vec<u32>| w.push(i));
        }
        sim.run(&mut w);
        assert_eq!(w, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling() {
        let mut sim: Sim<Vec<&'static str>> = Sim::new();
        let mut w = Vec::new();
        sim.schedule_in(SimDuration::from_millis(1), |sim, w: &mut Vec<_>| {
            w.push("outer");
            sim.schedule_in(SimDuration::from_millis(1), |_, w: &mut Vec<_>| {
                w.push("inner");
            });
        });
        sim.schedule_in(SimDuration::from_millis(3), |_, w: &mut Vec<_>| {
            w.push("late");
        });
        sim.run(&mut w);
        assert_eq!(w, vec!["outer", "inner", "late"]);
        assert_eq!(sim.now(), SimTime::from_millis(3));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        let id = sim.schedule(SimTime::from_millis(1), |_, w: &mut Vec<u32>| w.push(1));
        sim.schedule(SimTime::from_millis(2), |_, w: &mut Vec<u32>| w.push(2));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        sim.run(&mut w);
        assert_eq!(w, vec![2]);
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Sim<()> = Sim::new();
        assert!(!sim.cancel(EventId(42)));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        sim.schedule(SimTime::from_millis(1), |_, w: &mut Vec<u32>| w.push(1));
        sim.schedule(SimTime::from_millis(10), |_, w: &mut Vec<u32>| w.push(10));
        let t = sim.run_until(&mut w, SimTime::from_millis(5));
        assert_eq!(w, vec![1]);
        assert_eq!(t, SimTime::from_millis(5));
        sim.run(&mut w);
        assert_eq!(w, vec![1, 10]);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut w = Vec::new();
        sim.schedule(SimTime::from_millis(10), |sim, w: &mut Vec<u64>| {
            // Scheduling "in the past" runs at now, not before.
            sim.schedule(SimTime::from_millis(1), |sim, w: &mut Vec<u64>| {
                w.push(sim.now().as_nanos());
            });
            w.push(sim.now().as_nanos());
        });
        sim.run(&mut w);
        assert_eq!(w, vec![10_000_000, 10_000_000]);
    }

    #[test]
    fn step_runs_bounded_count() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        for i in 0..5 {
            sim.schedule(
                SimTime::from_millis(i as u64),
                move |_, w: &mut Vec<u32>| w.push(i),
            );
        }
        assert_eq!(sim.step(&mut w, 2), 2);
        assert_eq!(w, vec![0, 1]);
        assert_eq!(sim.step(&mut w, 10), 3);
    }

    #[test]
    fn periodic_self_rescheduling() {
        struct W {
            ticks: u32,
        }
        fn tick(sim: &mut Sim<W>, w: &mut W) {
            w.ticks += 1;
            if w.ticks < 10 {
                sim.schedule_in(SimDuration::from_millis(4), tick);
            }
        }
        let mut sim = Sim::new();
        let mut w = W { ticks: 0 };
        sim.schedule(SimTime::ZERO, tick);
        sim.run(&mut w);
        assert_eq!(w.ticks, 10);
        assert_eq!(sim.now(), SimTime::from_millis(36));
    }
}
