//! The discrete-event simulation engine.
//!
//! [`Sim<W>`] owns a priority queue of scheduled events. Each event is a
//! closure receiving the engine (to schedule more events) and the user world
//! `W`. Ties at equal timestamps are broken by scheduling order, making every
//! run fully deterministic — a property the StopWatch reproduction leans on
//! heavily (replica determinism is part of the defense itself).
//!
//! # Batched scheduling over a hierarchical time-wheel
//!
//! The run loop advances time in **timestamp batches**: when the clock
//! reaches the next pending timestamp, every event sharing it is drained
//! from the queue into a FIFO *lane* in one pass, then executed in
//! sequence order. Events scheduled *at the current time* (immediate work,
//! past times clamped to `now`) are appended straight to the lane and
//! never touch the queue — the common "N packets land on one tick" case
//! pays one queue operation per *timestamp*, not per event, and
//! handler-chained immediate events pay no queue traffic at all. The lane
//! is a persistent allocation reused across batches and runs.
//!
//! The batched queue itself is a hierarchical time-wheel
//! (`crate::wheel`): O(1) filing per event, occupancy-bitmap scans to the
//! next timestamp, and pooled bucket storage so steady-state runs perform
//! no queue allocations. The scalar reference loop keeps the original
//! binary heap.
//!
//! Batching changes only *where* events wait, never *when* or in what
//! order they run: the execution order is identical to the scalar
//! one-pop-per-event loop, which is retained as
//! [`Sim::set_scalar_reference`] so differential tests can prove it.
//! Switching modes migrates the pending events between the wheel and the
//! heap; their `(at, seq)` keys restore the exact order either way.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::fxhash::FxHashSet;
use crate::time::{SimDuration, SimTime};
use crate::wheel::Wheel;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

type Handler<W> = Box<dyn FnOnce(&mut Sim<W>, &mut W)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    handler: Handler<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}

impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, then FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event simulation executor.
///
/// # Examples
///
/// ```
/// use simkit::engine::Sim;
/// use simkit::time::{SimDuration, SimTime};
///
/// let mut sim: Sim<Vec<u64>> = Sim::new();
/// let mut world = Vec::new();
/// sim.schedule_in(SimDuration::from_millis(2), |_, w: &mut Vec<u64>| w.push(2));
/// sim.schedule_in(SimDuration::from_millis(1), |sim, w: &mut Vec<u64>| {
///     w.push(1);
///     sim.schedule_in(SimDuration::from_millis(5), |_, w: &mut Vec<u64>| w.push(6));
/// });
/// sim.run(&mut world);
/// assert_eq!(world, vec![1, 2, 6]);
/// assert_eq!(sim.now(), SimTime::from_millis(6));
/// ```
pub struct Sim<W> {
    now: SimTime,
    next_seq: u64,
    /// Scalar-reference queue: only populated in scalar mode.
    queue: BinaryHeap<Scheduled<W>>,
    /// Batched-mode queue: a hierarchical time-wheel with pooled buckets.
    wheel: Wheel<Handler<W>>,
    /// Same-time FIFO lane: events due exactly at `now`, in `seq` order.
    /// Invariant: whenever the lane is non-empty, every queued entry is
    /// strictly later than `now`, so draining the lane first preserves
    /// global `(at, seq)` order.
    lane: VecDeque<Scheduled<W>>,
    cancelled: FxHashSet<u64>,
    executed: u64,
    /// Run the pre-batching one-pop-per-event loop instead (differential
    /// reference; see [`Sim::set_scalar_reference`]).
    scalar_reference: bool,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
            wheel: Wheel::new(),
            lane: VecDeque::new(),
            cancelled: FxHashSet::default(),
            executed: 0,
            scalar_reference: false,
        }
    }

    /// Switches between the batched run loop (default) and the scalar
    /// one-pop-per-event reference loop. The two execute identical event
    /// orders; the scalar path exists so determinism tests can diff the
    /// batched engine against it.
    ///
    /// Pending events migrate between the batched time-wheel (plus the
    /// same-time lane) and the scalar heap in both directions — their
    /// `(at, seq)` keys restore their exact place, so flipping the mode
    /// never reorders anything.
    pub fn set_scalar_reference(&mut self, scalar: bool) {
        if scalar && !self.scalar_reference {
            while let Some(ev) = self.lane.pop_front() {
                self.queue.push(ev);
            }
            let queue = &mut self.queue;
            self.wheel.drain_all(&mut |at, seq, handler| {
                queue.push(Scheduled {
                    at: SimTime::from_nanos(at),
                    seq,
                    handler,
                });
            });
        } else if !scalar && self.scalar_reference {
            for ev in std::mem::take(&mut self.queue) {
                self.wheel.insert(ev.at.as_nanos(), ev.seq, ev.handler);
            }
        }
        self.scalar_reference = scalar;
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled tombstones).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.wheel.len() + self.lane.len()
    }

    /// Schedules `handler` to run at absolute time `at`.
    ///
    /// Events scheduled for a time earlier than `now` run "immediately" (at
    /// `now`): the engine never moves time backwards.
    pub fn schedule(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.scalar_reference {
            self.queue.push(Scheduled {
                at,
                seq,
                handler: Box::new(handler),
            });
        } else if at == self.now {
            // Same-time fast path: an event due right now joins the FIFO
            // lane (its seq is larger than everything staged there) and
            // skips the queue entirely.
            self.lane.push_back(Scheduled {
                at,
                seq,
                handler: Box::new(handler),
            });
        } else {
            self.wheel.insert(at.as_nanos(), seq, Box::new(handler));
        }
        EventId(seq)
    }

    /// Schedules `handler` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        handler: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) -> EventId {
        self.schedule(self.now + delay, handler)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet run (it will be silently
    /// dropped when its time comes). Cancelling an already-executed event
    /// returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// `true` when `seq` carries a cancellation tombstone (consuming it).
    /// The empty-set check keeps the no-cancellations case a branch, not a
    /// hash probe per event.
    fn take_tombstone(&mut self, seq: u64) -> bool {
        !self.cancelled.is_empty() && self.cancelled.remove(&seq)
    }

    /// Runs events until the queue is empty; returns the final time.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        self.run_until(world, SimTime::MAX)
    }

    /// Runs events with timestamps `<= deadline`; time stops at the deadline
    /// (or at the last event, whichever is earlier). Returns the final time.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        if self.scalar_reference {
            return self.run_until_scalar(world, deadline);
        }
        loop {
            // Drain the same-time lane: everything staged at `now`, plus
            // whatever handlers append to it while it drains.
            while let Some(ev) = self.lane.pop_front() {
                if self.take_tombstone(ev.seq) {
                    continue;
                }
                self.executed += 1;
                (ev.handler)(self, world);
            }
            // Advance to the next timestamp and stage its whole batch.
            let Some(t_nanos) = self.wheel.next_at() else {
                return self.now;
            };
            let t = SimTime::from_nanos(t_nanos);
            if t > deadline {
                self.now = deadline;
                return self.now;
            }
            debug_assert!(t >= self.now, "event queue went backwards");
            self.now = t;
            self.stage_batch(t_nanos);
        }
    }

    /// Moves every wheel event due exactly at `t_nanos` onto the lane,
    /// dropping cancellation tombstones on the way.
    fn stage_batch(&mut self, t_nanos: u64) {
        let t = SimTime::from_nanos(t_nanos);
        let (wheel, lane, cancelled) = (&mut self.wheel, &mut self.lane, &mut self.cancelled);
        wheel.drain_at(t_nanos, &mut |seq, handler| {
            if !cancelled.is_empty() && cancelled.remove(&seq) {
                return;
            }
            lane.push_back(Scheduled {
                at: t,
                seq,
                handler,
            });
        });
    }

    /// The pre-batching scalar loop: pops one event per heap operation.
    /// Kept as the differential-testing reference for the batched
    /// [`Sim::run_until`]; only runs events scheduled in scalar mode.
    fn run_until_scalar(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                self.now = deadline.min(head.at);
                return self.now;
            }
            let ev = self.queue.pop().expect("peeked entry must pop");
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            if self.take_tombstone(ev.seq) {
                continue;
            }
            self.executed += 1;
            (ev.handler)(self, world);
        }
        self.now
    }

    /// Runs at most `n` (non-cancelled) events; returns how many ran.
    pub fn step(&mut self, world: &mut W, n: u64) -> u64 {
        let mut ran = 0;
        while ran < n {
            if let Some(ev) = self.lane.pop_front() {
                if self.take_tombstone(ev.seq) {
                    continue;
                }
                self.executed += 1;
                ran += 1;
                (ev.handler)(self, world);
                continue;
            }
            if self.scalar_reference {
                let Some(ev) = self.queue.pop() else { break };
                self.now = ev.at;
                if self.take_tombstone(ev.seq) {
                    continue;
                }
                self.executed += 1;
                ran += 1;
                (ev.handler)(self, world);
                continue;
            }
            // Lane empty: advance to the next timestamp and stage its
            // whole batch, so later same-time schedules keep FIFO order
            // with the not-yet-run remainder. Time advances even when the
            // batch was all tombstones, matching the scalar loop.
            let Some(t_nanos) = self.wheel.next_at() else {
                break;
            };
            self.now = SimTime::from_nanos(t_nanos);
            self.stage_batch(t_nanos);
        }
        ran
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        sim.schedule(SimTime::from_millis(30), |_, w: &mut Vec<u32>| w.push(3));
        sim.schedule(SimTime::from_millis(10), |_, w: &mut Vec<u32>| w.push(1));
        sim.schedule(SimTime::from_millis(20), |_, w: &mut Vec<u32>| w.push(2));
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_run_fifo() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            sim.schedule(t, move |_, w: &mut Vec<u32>| w.push(i));
        }
        sim.run(&mut w);
        assert_eq!(w, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling() {
        let mut sim: Sim<Vec<&'static str>> = Sim::new();
        let mut w = Vec::new();
        sim.schedule_in(SimDuration::from_millis(1), |sim, w: &mut Vec<_>| {
            w.push("outer");
            sim.schedule_in(SimDuration::from_millis(1), |_, w: &mut Vec<_>| {
                w.push("inner");
            });
        });
        sim.schedule_in(SimDuration::from_millis(3), |_, w: &mut Vec<_>| {
            w.push("late");
        });
        sim.run(&mut w);
        assert_eq!(w, vec!["outer", "inner", "late"]);
        assert_eq!(sim.now(), SimTime::from_millis(3));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        let id = sim.schedule(SimTime::from_millis(1), |_, w: &mut Vec<u32>| w.push(1));
        sim.schedule(SimTime::from_millis(2), |_, w: &mut Vec<u32>| w.push(2));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        sim.run(&mut w);
        assert_eq!(w, vec![2]);
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn cancel_works_on_staged_same_time_events() {
        // An event already staged in the same-time lane (scheduled at
        // `now`) must still honour cancellation.
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        let id = sim.schedule(SimTime::ZERO, |_, w: &mut Vec<u32>| w.push(1));
        sim.schedule(SimTime::ZERO, |_, w: &mut Vec<u32>| w.push(2));
        assert!(sim.cancel(id));
        sim.run(&mut w);
        assert_eq!(w, vec![2]);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Sim<()> = Sim::new();
        assert!(!sim.cancel(EventId(42)));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        sim.schedule(SimTime::from_millis(1), |_, w: &mut Vec<u32>| w.push(1));
        sim.schedule(SimTime::from_millis(10), |_, w: &mut Vec<u32>| w.push(10));
        let t = sim.run_until(&mut w, SimTime::from_millis(5));
        assert_eq!(w, vec![1]);
        assert_eq!(t, SimTime::from_millis(5));
        sim.run(&mut w);
        assert_eq!(w, vec![1, 10]);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut w = Vec::new();
        sim.schedule(SimTime::from_millis(10), |sim, w: &mut Vec<u64>| {
            // Scheduling "in the past" runs at now, not before.
            sim.schedule(SimTime::from_millis(1), |sim, w: &mut Vec<u64>| {
                w.push(sim.now().as_nanos());
            });
            w.push(sim.now().as_nanos());
        });
        sim.run(&mut w);
        assert_eq!(w, vec![10_000_000, 10_000_000]);
    }

    #[test]
    fn step_runs_bounded_count() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        for i in 0..5 {
            sim.schedule(
                SimTime::from_millis(i as u64),
                move |_, w: &mut Vec<u32>| w.push(i),
            );
        }
        assert_eq!(sim.step(&mut w, 2), 2);
        assert_eq!(w, vec![0, 1]);
        assert_eq!(sim.step(&mut w, 10), 3);
    }

    #[test]
    fn step_interrupting_a_same_time_batch_keeps_fifo_order() {
        // step() stops mid-batch; a fresh same-time schedule must still run
        // after the staged remainder of the batch.
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        let t = SimTime::from_millis(1);
        for i in 0..3 {
            sim.schedule(t, move |_, w: &mut Vec<u32>| w.push(i));
        }
        assert_eq!(sim.step(&mut w, 1), 1);
        assert_eq!(sim.now(), t);
        sim.schedule(t, |_, w: &mut Vec<u32>| w.push(99));
        sim.run(&mut w);
        assert_eq!(w, vec![0, 1, 2, 99]);
    }

    #[test]
    fn periodic_self_rescheduling() {
        struct W {
            ticks: u32,
        }
        fn tick(sim: &mut Sim<W>, w: &mut W) {
            w.ticks += 1;
            if w.ticks < 10 {
                sim.schedule_in(SimDuration::from_millis(4), tick);
            }
        }
        let mut sim = Sim::new();
        let mut w = W { ticks: 0 };
        sim.schedule(SimTime::ZERO, tick);
        sim.run(&mut w);
        assert_eq!(w.ticks, 10);
        assert_eq!(sim.now(), SimTime::from_millis(36));
    }

    #[test]
    fn same_time_chains_skip_the_heap() {
        // A handler that schedules at `now` repeatedly: the chain lives
        // entirely in the FIFO lane (this asserts behaviour, the lane is
        // the mechanism).
        fn chain(sim: &mut Sim<Vec<u64>>, w: &mut Vec<u64>) {
            w.push(sim.now().as_nanos());
            if w.len() < 5 {
                let now = sim.now();
                sim.schedule(now, chain);
            }
        }
        let mut sim: Sim<Vec<u64>> = Sim::new();
        let mut w = Vec::new();
        sim.schedule(SimTime::from_millis(2), chain);
        sim.run(&mut w);
        assert_eq!(w, vec![2_000_000; 5]);
        assert_eq!(sim.events_executed(), 5);
        assert_eq!(sim.pending(), 0);
    }

    /// One pseudo-random torture trace, executed by both loops.
    fn torture_trace(scalar: bool) -> Vec<(u64, u64)> {
        fn next(state: &mut u64) -> u64 {
            *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *state >> 33
        }
        struct W {
            log: Vec<(u64, u64)>, // (now_ns, event tag)
            rng: u64,
            spawned: u32,
        }
        fn ev(sim: &mut Sim<W>, w: &mut W, tag: u64) {
            w.log.push((sim.now().as_nanos(), tag));
            // Spawn a few follow-ups at pseudo-random (often colliding)
            // times, sometimes cancelling one.
            for _ in 0..=(next(&mut w.rng) % 3) {
                if w.spawned >= 400 {
                    break;
                }
                w.spawned += 1;
                let tag = u64::from(w.spawned);
                let delta = next(&mut w.rng) % 4; // 0..3 ms, 0 = same time
                let id = sim.schedule_in(SimDuration::from_millis(delta), move |sim, w| {
                    ev(sim, w, tag)
                });
                if next(&mut w.rng) % 7 == 0 {
                    sim.cancel(id);
                }
            }
        }
        let mut sim: Sim<W> = Sim::new();
        sim.set_scalar_reference(scalar);
        let mut w = W {
            log: Vec::new(),
            rng: 0x5eed,
            spawned: 0,
        };
        for i in 0..10 {
            sim.schedule(SimTime::from_millis(i % 3), move |sim, w: &mut W| {
                ev(sim, w, 1000 + i)
            });
        }
        sim.run(&mut w);
        w.log
    }

    #[test]
    fn entering_scalar_mode_returns_staged_events_to_the_heap() {
        // Events staged in the same-time lane before the mode flip (the
        // build-then-flip pattern) must survive it in order.
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut w = Vec::new();
        sim.schedule(SimTime::ZERO, |_, w: &mut Vec<u32>| w.push(1)); // lane
        sim.schedule(SimTime::from_millis(1), |_, w: &mut Vec<u32>| w.push(2));
        sim.set_scalar_reference(true);
        assert_eq!(sim.pending(), 2);
        sim.run(&mut w);
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn batched_loop_matches_scalar_reference_on_torture_trace() {
        let batched = torture_trace(false);
        let scalar = torture_trace(true);
        assert!(batched.len() > 100, "trace too small to be convincing");
        assert_eq!(batched, scalar, "batched loop must replay scalar order");
    }
}
