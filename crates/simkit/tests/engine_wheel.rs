//! Property tests: the hierarchical time-wheel run loop is observationally
//! identical to the scalar binary-heap reference.
//!
//! The batched engine (`Sim::run_until`) and the scalar reference
//! (`set_scalar_reference(true)`) must execute the exact same event
//! sequence for any schedule — that equivalence is what lets every
//! downstream determinism test diff the two. These properties feed the
//! engine randomized schedules biased toward the cases where the wheel's
//! bookkeeping could diverge from a heap's total order:
//!
//! * dense same-timestamp bursts (the wheel's bucket sort + FIFO lane);
//! * timestamps spread across L0 slots, upper wheel levels, and the
//!   beyond-top-window overflow list (re-homed as the cursor advances);
//! * cancellations, whose tombstones must still advance time identically;
//! * handlers that schedule children at `now` (lane fast path) and in the
//!   near future while the loop is draining;
//! * mid-run engine-mode flips, which migrate pending events between the
//!   wheel and the heap in both directions.
//!
//! Each observation is `(now at execution, tag)`; the full logs must match
//! element for element.

use proptest::prelude::*;
use simkit::prelude::*;

#[derive(Default)]
struct World {
    log: Vec<(u64, u32)>,
}

/// Maps one raw draw to a timestamp in a wheel-hostile distribution.
fn time_for(sel: u64) -> SimTime {
    SimTime::from_nanos(match sel % 4 {
        // A handful of hot timestamps inside one L0 slot: same-timestamp
        // bursts plus same-slot different-timestamp ordering.
        0 => 4096 + (sel >> 2) % 3,
        // Near future: spreads across L0 slots.
        1 => (sel >> 2) % (1 << 16),
        // Mid future: climbs the upper wheel levels.
        2 => (sel >> 2) % (1 << 24),
        // Beyond the top window: lands on the overflow list and must be
        // re-homed when the cursor's window crosses it.
        _ => (1 << 36) + (sel >> 2) % (1 << 38),
    })
}

/// Applies one (sel, kind) op: schedule a plain event, an event that
/// spawns a same-time or near-future child, or cancel an earlier event.
fn apply_op(sim: &mut Sim<World>, ids: &mut Vec<EventId>, tag: u32, sel: u64, kind: u64) {
    let at = time_for(sel);
    match kind % 8 {
        0 if !ids.is_empty() => {
            let pick = ids[(sel as usize) % ids.len()];
            sim.cancel(pick);
        }
        1 => {
            // Parent logs, then schedules a same-timestamp child: it must
            // join the in-flight batch at the back of the lane.
            ids.push(sim.schedule(at, move |sim, w: &mut World| {
                w.log.push((sim.now().as_nanos(), tag));
                let child = tag + 1_000_000;
                sim.schedule(sim.now(), move |sim, w: &mut World| {
                    w.log.push((sim.now().as_nanos(), child));
                });
            }));
        }
        2 => {
            // Near-future child scheduled while the loop is draining.
            let delta = SimDuration::from_nanos(1 + sel % 5_000);
            ids.push(sim.schedule(at, move |sim, w: &mut World| {
                w.log.push((sim.now().as_nanos(), tag));
                let child = tag + 2_000_000;
                sim.schedule_in(delta, move |sim, w: &mut World| {
                    w.log.push((sim.now().as_nanos(), child));
                });
            }));
        }
        _ => {
            ids.push(sim.schedule(at, move |sim, w: &mut World| {
                w.log.push((sim.now().as_nanos(), tag));
            }));
        }
    }
}

/// Builds the schedule from `ops` and runs it to completion in one mode.
fn run_trace(ops: &[(u64, u64)], scalar: bool) -> Vec<(u64, u32)> {
    let mut sim: Sim<World> = Sim::new();
    sim.set_scalar_reference(scalar);
    let mut world = World::default();
    let mut ids = Vec::new();
    for (i, &(sel, kind)) in ops.iter().enumerate() {
        apply_op(&mut sim, &mut ids, i as u32, sel, kind);
    }
    sim.run(&mut world);
    assert_eq!(sim.pending(), 0, "run() drains everything");
    world.log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wheel_and_scalar_heap_execute_identical_orders(
        ops in prop::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 1..120),
    ) {
        let batched = run_trace(&ops, false);
        let scalar = run_trace(&ops, true);
        prop_assert_eq!(batched, scalar);
    }

    #[test]
    fn mode_flips_mid_run_preserve_the_order(
        ops in prop::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 1..80),
        flip_a in 0u64..40,
        flip_b in 0u64..40,
    ) {
        // Reference: the whole trace in scalar mode.
        let reference = run_trace(&ops, true);

        // Same schedule, but the engine flips batched -> scalar -> batched
        // while events are in flight; each flip migrates the pending set.
        let mut sim: Sim<World> = Sim::new();
        let mut world = World::default();
        let mut ids = Vec::new();
        for (i, &(sel, kind)) in ops.iter().enumerate() {
            apply_op(&mut sim, &mut ids, i as u32, sel, kind);
        }
        sim.step(&mut world, flip_a);
        sim.set_scalar_reference(true);
        sim.step(&mut world, flip_b);
        sim.set_scalar_reference(false);
        sim.run(&mut world);
        prop_assert_eq!(world.log, reference);
    }
}
