//! # workloads — the guest programs and clients of the paper's evaluation
//!
//! * [`web`] — file retrieval over HTTP/TCP and UDP-NAK (Fig. 5);
//! * [`nfs`] — NFS server + nhfsstone generator with the paper's op mix
//!   (Fig. 6);
//! * [`parsec`] — the five PARSEC profiles (ferret, blackscholes, canneal,
//!   dedup, streamcluster) calibrated to the paper's runtimes and disk
//!   interrupt counts (Fig. 7);
//! * [`attack`] — attacker/victim/collaborator guests and the probe client
//!   (Fig. 4, Sec. IX);
//! * [`registry`] — the named workload factory sweep harnesses build
//!   scenarios from.

pub mod attack;
pub mod nfs;
pub mod parsec;
pub mod registry;
pub mod web;

/// One-line import for the common types.
pub mod prelude {
    pub use crate::attack::{
        run_attack_scenario, AttackTrace, AttackerGuest, LoadGuest, ProbeClient, VictimGuest,
    };
    pub use crate::nfs::{NfsOp, NfsServerGuest, NhfsstoneClient, PAPER_MIX};
    pub use crate::parsec::{profile, CompletionWaiter, ParsecGuest, ParsecProfile, PARSEC};
    pub use crate::registry::{
        install as install_workload, workload_names, InstalledWorkload, WorkloadOutcome,
        WorkloadParams,
    };
    pub use crate::web::{
        DownloadResult, FileServerGuest, HttpDownloadClient, UdpDownloadClient, UdpFileGuest,
    };
}
