//! # workloads — the guest programs and clients of the paper's evaluation
//!
//! * [`web`] — file retrieval over HTTP/TCP and UDP-NAK (Fig. 5);
//! * [`nfs`] — NFS server + nhfsstone generator with the paper's op mix
//!   (Fig. 6);
//! * [`parsec`] — the five PARSEC profiles (ferret, blackscholes, canneal,
//!   dedup, streamcluster) calibrated to the paper's runtimes and disk
//!   interrupt counts (Fig. 7);
//! * [`attack`] — attacker/victim/collaborator guests and the probe client
//!   (Fig. 4, Sec. IX);
//! * [`cache`] — the PRIME+PROBE guest pair exercising the shared-LLC
//!   coresidency channel directly (Sec. III);
//! * [`disk`] — the seek-timing guest pair exercising the shared-disk
//!   channel the Δd release times close (Sec. V-A);
//! * [`timer`] — the virtual-timer guest pair exercising the vCPU
//!   scheduler-beat channel the Δt release times close;
//! * [`registry`] — the typed workload API: the open [`registry::Workload`]
//!   trait + registration table sweep harnesses build scenarios from, with
//!   a self-describing [`registry::ParamSpec`] schema per workload (each
//!   workload also names the timing channels it exercises).
//!
//! Adding a workload is implementing [`registry::Workload`] (in its own
//! module, like the ones above) and calling [`registry::register`] — no
//! central dispatch to edit.

pub mod attack;
pub mod cache;
pub mod disk;
pub mod nfs;
pub mod parsec;
pub mod registry;
pub mod timer;
pub mod web;

/// One-line import for the common types.
pub mod prelude {
    pub use crate::attack::{
        run_attack_scenario, AttackTrace, AttackWorkload, AttackerGuest, LoadGuest, ProbeClient,
        VictimGuest,
    };
    pub use crate::cache::{CacheChannelWorkload, CacheVictimGuest, PrimeProbeGuest};
    pub use crate::disk::{DiskChannelWorkload, DiskProbeGuest, DiskSeekVictimGuest};
    pub use crate::nfs::{NfsOp, NfsServerGuest, NfsWorkload, NhfsstoneClient, PAPER_MIX};
    pub use crate::parsec::{
        profile, CompletionWaiter, ParsecGuest, ParsecProfile, ParsecWorkload, PARSEC,
    };
    pub use crate::registry::{
        find as find_workload, install as install_workload, register as register_workload,
        require as require_workload, workload_names, workloads, InstallCtx, InstalledWorkload,
        ParamSpec, Workload, WorkloadOutcome, WorkloadParams,
    };
    pub use crate::timer::{TimerChannelWorkload, TimerProbeGuest, TimerVictimGuest};
    pub use crate::web::{
        DownloadResult, FileServerGuest, HttpDownloadClient, UdpDownloadClient, UdpFileGuest,
        WebHttpWorkload, WebUdpWorkload,
    };
}
