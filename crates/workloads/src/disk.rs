//! The disk-channel experiment: a latency-measuring attacker sensing a
//! coresident victim through the shared host disk.
//!
//! This is the channel the paper's Δd release times exist to close
//! (Sec. V-A): on a rotating disk, one guest's secret-dependent seek
//! pattern parks the head (and occupies the FIFO service queue) in ways a
//! coresident guest can time. A [`DiskProbeGuest`] reads one block in
//! each of `arms` regions spread across the platter and records each
//! completion latency; a [`DiskSeekVictimGuest`] coresides with the
//! attacker's **first replica only** and keeps re-reading a block inside
//! its *secret* region — so the attacker's probe of that region pays
//! almost no seek while every other region pays a distance-proportional
//! one, and the per-arm latency minimum recovers the secret.
//!
//! Under Baseline (one replica) completions are delivered when the local
//! disk finishes, and the signal shows through round after round. Under
//! StopWatch each replica proposes `issue + Δd` (or later if its local
//! disk overran Δd) and delivery happens at the **replica-median**
//! timestamp — with only one of 3 (or 5) replicas' disks perturbed, the
//! median is the clean `issue + Δd` release point, every probe reads the
//! same flat latency, and the attacker's recovery accuracy collapses to
//! chance. The per-probe latency samples feed the sweep layer's leakage
//! verdicts exactly like network timings and cache readouts do.

use crate::parsec::CompletionWaiter;
use crate::registry::{
    InstallCtx, InstalledWorkload, ParamSpec, Workload, WorkloadOutcome, WorkloadParams,
};
use netsim::packet::{Body, EndpointId, Packet};
use simkit::time::VirtNanos;
use stopwatch_core::cloud::{ClientHandle, CloudBuilder, CloudSim, VmHandle};
use stopwatch_core::schema::ValueType;
use storage::block::BlockRange;
use storage::device::DiskOp;
use vmm::channel::ChannelKind;
use vmm::guest::{GuestEnv, GuestProgram};

/// Completion-report tag understood by [`CompletionWaiter`].
const DONE_TAG: u64 = 0xD0E;

/// The disk-probing attacker guest.
///
/// Round structure (all decisions driven by injected events only, so the
/// replicas stay in lockstep):
///
/// 1. every `probe_gap_ticks` PIT ticks — and only once the previous
///    probe completed, so probes never queue behind each other — read one
///    block at the current arm's platter position and note the issue
///    instant;
/// 2. when the completion interrupt arrives, add `completion − issue` to
///    the arm's latency total; after `probes_per_arm` probes move to the
///    next arm;
/// 3. after the last arm, **guess**: the arm with the *smallest* total
///    latency is the round's recovered secret (the victim's parked head
///    makes its region the cheapest seek) — unless every arm reads the
///    same (no signal), in which case the attacker cycles through arms,
///    the deterministic stand-in for guessing at random.
///
/// After the final round it reports completion to the monitor client.
pub struct DiskProbeGuest {
    arms: u64,
    probes_per_arm: u64,
    probe_gap_ticks: u64,
    rounds: u32,
    arm_span: u64,
    monitor: EndpointId,
    round: u32,
    probe_idx: u64,
    outstanding: bool,
    next_probe_tick: u64,
    last_issue: VirtNanos,
    arm_latency: Vec<u64>,
    arm_min: Vec<u64>,
    samples_ns: Vec<u64>,
    guesses: Vec<u64>,
    done: bool,
}

impl DiskProbeGuest {
    /// An attacker probing `arms` regions spaced `arm_span` blocks apart,
    /// `probes_per_arm` probes each, one probe every `probe_gap_ticks`
    /// ticks, for `rounds` rounds; reports completion to `monitor`.
    pub fn new(
        arms: u64,
        probes_per_arm: u64,
        probe_gap_ticks: u64,
        rounds: u32,
        arm_span: u64,
        monitor: EndpointId,
    ) -> Self {
        DiskProbeGuest {
            arms: arms.max(2),
            probes_per_arm: probes_per_arm.max(1),
            probe_gap_ticks: probe_gap_ticks.max(1),
            rounds: rounds.max(1),
            arm_span: arm_span.max(1),
            monitor,
            round: 0,
            probe_idx: 0,
            outstanding: false,
            next_probe_tick: 0,
            last_issue: VirtNanos::ZERO,
            arm_latency: Vec::new(),
            arm_min: Vec::new(),
            guesses: Vec::new(),
            samples_ns: Vec::new(),
            done: false,
        }
    }

    /// Per-arm latency totals, one entry per `(round, arm)` pair in
    /// round-major order, virtual nanoseconds.
    pub fn samples_ns(&self) -> &[u64] {
        &self.samples_ns
    }

    /// The recovered arm per completed round.
    pub fn guesses(&self) -> &[u64] {
        &self.guesses
    }

    /// Completed rounds.
    pub fn rounds_done(&self) -> u32 {
        self.round
    }

    /// Platter position of one arm's probe block.
    fn arm_block(&self, arm: u64) -> u64 {
        arm * self.arm_span
    }

    fn finish_round(&mut self, env: &mut GuestEnv) {
        self.samples_ns.extend(self.arm_latency.iter().copied());
        let min = *self.arm_min.iter().min().expect("arms > 0");
        let max = *self.arm_min.iter().max().expect("arms > 0");
        let guess = if min == max {
            // Flat readout: no signal. Cycle deterministically — the
            // determinism-safe stand-in for a random guess.
            u64::from(self.round) % self.arms
        } else {
            // The victim's region is the cheapest seek from the parked
            // head. The per-arm *minimum* is the sharpest estimator: one
            // probe that caught the head parked reads almost pure seek
            // time, while totals smear rotational noise over the round.
            self.arm_min
                .iter()
                .position(|&l| l == min)
                .expect("min exists") as u64
        };
        self.guesses.push(guess);
        self.round += 1;
        self.probe_idx = 0;
        if self.round >= self.rounds {
            self.done = true;
            env.send(
                self.monitor,
                Body::Raw {
                    tag: DONE_TAG,
                    len: 64,
                },
            );
        }
    }
}

impl GuestProgram for DiskProbeGuest {
    fn on_boot(&mut self, _env: &mut GuestEnv) {}

    fn on_packet(&mut self, _packet: &Packet, _env: &mut GuestEnv) {}

    fn on_timer(&mut self, env: &mut GuestEnv) {
        if self.done || self.outstanding || env.pit_ticks < self.next_probe_tick {
            return;
        }
        if self.probe_idx == 0 {
            self.arm_latency = vec![0; self.arms as usize];
            self.arm_min = vec![u64::MAX; self.arms as usize];
        }
        let arm = self.probe_idx / self.probes_per_arm;
        self.outstanding = true;
        self.last_issue = env.now;
        self.next_probe_tick = env.pit_ticks + self.probe_gap_ticks;
        env.disk_read(BlockRange::new(self.arm_block(arm), 1));
    }

    fn on_disk_done(&mut self, _op: DiskOp, _r: BlockRange, _d: &[u64], env: &mut GuestEnv) {
        if !self.outstanding {
            return;
        }
        self.outstanding = false;
        let arm = (self.probe_idx / self.probes_per_arm) as usize;
        // The observable is the device's completion timestamp minus the
        // issue instant. Under StopWatch `irq_timestamp` is the agreed
        // median — a pure function of agreed values, identical on every
        // replica — so one perturbed disk moves nothing.
        let latency = (env.irq_timestamp - self.last_issue).as_nanos();
        self.arm_latency[arm] += latency;
        self.arm_min[arm] = self.arm_min[arm].min(latency);
        self.probe_idx += 1;
        if self.probe_idx >= self.arms * self.probes_per_arm {
            self.finish_round(env);
        }
    }

    fn wants_timer(&self) -> bool {
        true
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// The victim: a guest whose disk access pattern depends on its secret.
/// Every `every_ticks` PIT ticks it re-reads a block inside its secret
/// region — parking the shared disk's head there and occupying the FIFO
/// queue, the two effects the attacker times.
pub struct DiskSeekVictimGuest {
    position: u64,
    every_ticks: u64,
}

impl DiskSeekVictimGuest {
    /// A victim re-reading block `position` every `every_ticks` ticks.
    pub fn new(position: u64, every_ticks: u64) -> Self {
        DiskSeekVictimGuest {
            position,
            every_ticks: every_ticks.max(1),
        }
    }
}

impl GuestProgram for DiskSeekVictimGuest {
    fn on_boot(&mut self, _env: &mut GuestEnv) {}

    fn on_packet(&mut self, _packet: &Packet, _env: &mut GuestEnv) {}

    fn on_disk_done(&mut self, _o: DiskOp, _r: BlockRange, _d: &[u64], _env: &mut GuestEnv) {}

    fn on_timer(&mut self, env: &mut GuestEnv) {
        if env.pit_ticks.is_multiple_of(self.every_ticks) {
            env.disk_read(BlockRange::new(self.position, 1));
        }
    }

    fn wants_timer(&self) -> bool {
        true
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Parameter schema of the `"disk-channel"` workload.
const DISK_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "arms",
        ty: ValueType::Int,
        default: "4",
        doc: "platter regions the attacker probes (the secret's alphabet)",
    },
    ParamSpec {
        key: "probes_per_arm",
        ty: ValueType::Int,
        default: "4",
        doc: "probes per arm per round (totals average out rotational noise)",
    },
    ParamSpec {
        key: "probe_gap_ticks",
        ty: ValueType::Int,
        default: "10",
        doc: "min PIT ticks between probes (sized so every probe, agreement included, finishes inside the gap)",
    },
    ParamSpec {
        key: "rounds",
        ty: ValueType::Int32,
        default: "20",
        doc: "probe rounds per run",
    },
    ParamSpec {
        key: "secret",
        ty: ValueType::Int,
        default: "2",
        doc: "the victim's secret arm: which platter region it keeps reading",
    },
    ParamSpec {
        key: "victim",
        ty: ValueType::Bool,
        default: "true",
        doc: "coreside the secret-dependent victim with the first replica",
    },
    ParamSpec {
        key: "victim_every",
        ty: ValueType::Int,
        default: "3",
        doc: "ticks between victim reads of its secret region",
    },
];

/// The `"disk-channel"` workload: a [`DiskProbeGuest`] attacker VM,
/// optionally coresident with a [`DiskSeekVictimGuest`] on its first
/// replica host, measured until the attacker finishes its rounds.
/// Samples are per-arm latency totals; `extra` carries the arm-recovery
/// score. Pair it with `disk=rotating` and a Δd above the disk's
/// worst-case access time (the preset does) — that is the configuration
/// the paper's Sec. V-A sizing rule prescribes.
pub struct DiskChannelWorkload;

struct DiskChannelInstalled {
    vm: VmHandle,
    client: ClientHandle,
    secret: u64,
    arms: u64,
}

impl InstalledWorkload for DiskChannelInstalled {
    fn vm(&self) -> VmHandle {
        self.vm
    }

    fn client(&self) -> Option<ClientHandle> {
        Some(self.client)
    }

    fn collect(&self, sim: &mut CloudSim) -> WorkloadOutcome {
        let g = sim
            .cloud
            .guest_program::<DiskProbeGuest>(self.vm, 0)
            .expect("attacker program");
        let samples: Vec<f64> = g.samples_ns().iter().map(|&ns| ns as f64 / 1.0e6).collect();
        let rounds = g.rounds_done();
        let recovered = g
            .guesses()
            .iter()
            .filter(|&&guess| guess == self.secret)
            .count() as f64;
        let accuracy = if rounds > 0 {
            recovered / f64::from(rounds)
        } else {
            0.0
        };
        WorkloadOutcome {
            samples_ms: samples,
            completed: u64::from(rounds),
            extra: vec![
                ("probe_rounds".to_string(), f64::from(rounds)),
                ("recovered_rounds".to_string(), recovered),
                ("recovery_accuracy".to_string(), accuracy),
                ("chance_accuracy".to_string(), 1.0 / self.arms as f64),
            ],
        }
    }
}

impl Workload for DiskChannelWorkload {
    fn name(&self) -> &str {
        "disk-channel"
    }

    fn about(&self) -> &str {
        "seek-timing attacker vs coresident secret-dependent victim on the shared disk (Sec. V-A)"
    }

    fn params(&self) -> &[ParamSpec] {
        DISK_PARAMS
    }

    fn channels(&self) -> &'static [ChannelKind] {
        &[ChannelKind::Net, ChannelKind::Disk]
    }

    fn install(
        &self,
        b: &mut CloudBuilder,
        ctx: &InstallCtx<'_>,
        params: &WorkloadParams,
    ) -> Result<Box<dyn InstalledWorkload>, String> {
        let arms: u64 = params.get(DISK_PARAMS, "arms")?;
        let probes_per_arm = params.get(DISK_PARAMS, "probes_per_arm")?;
        let probe_gap_ticks = params.get(DISK_PARAMS, "probe_gap_ticks")?;
        let rounds = params.get(DISK_PARAMS, "rounds")?;
        let secret: u64 = params.get(DISK_PARAMS, "secret")?;
        let victim: bool = params.get(DISK_PARAMS, "victim")?;
        let victim_every = params.get(DISK_PARAMS, "victim_every")?;
        if arms < 2 {
            return Err("disk-channel needs arms >= 2".to_string());
        }
        if secret >= arms {
            return Err(format!(
                "disk-channel secret arm {secret} is out of range (arms = {arms})"
            ));
        }
        // Spread the arms across the guest image so seek distances (and
        // with them the head-position signal) are as large as the platter
        // allows.
        let image_blocks = b.config().image_blocks;
        let arm_span = image_blocks / arms;
        if arm_span == 0 {
            return Err(format!(
                "disk-channel needs an image of at least {arms} blocks (cfg.image_blocks = {image_blocks})"
            ));
        }
        let monitor = b.next_client_endpoint();
        let vm = ctx.add_vm(b, &move || {
            Box::new(DiskProbeGuest::new(
                arms,
                probes_per_arm,
                probe_gap_ticks,
                rounds,
                arm_span,
                monitor,
            ))
        });
        if victim {
            // The coresidency under attack: the victim shares exactly the
            // attacker's first replica host — and with it that host's
            // disk head and FIFO queue.
            b.add_baseline_vm(
                ctx.replica_hosts[0],
                Box::new(DiskSeekVictimGuest::new(
                    secret * arm_span + 1,
                    victim_every,
                )),
            );
        }
        let client = b.add_client(Box::new(CompletionWaiter::new(1)));
        Ok(Box::new(DiskChannelInstalled {
            vm,
            client,
            secret,
            arms,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{install, WorkloadParams};
    use simkit::time::{SimDuration, SimTime};
    use stopwatch_core::config::CloudConfig;

    fn run(stopwatch: bool, victim: bool, seed: u64) -> WorkloadOutcome {
        let params = WorkloadParams::from_pairs([
            ("rounds", "6"),
            ("victim", if victim { "true" } else { "false" }),
        ]);
        let mut cfg = CloudConfig::fast_test();
        // The disk channel needs the rotating medium (the head-position
        // signal), a Δd above its worst-case access time, and a large
        // image so the arms sit far apart on the platter.
        cfg.apply_all([
            ("disk", "rotating"),
            ("delta_d_ms", "25"),
            ("image_blocks", "16000000"),
        ])
        .expect("overrides");
        cfg.seed = seed;
        cfg.defense = if stopwatch { "stopwatch" } else { "baseline" }.to_string();
        let mut b = CloudBuilder::new(cfg, 3);
        let wl = install("disk-channel", &mut b, &[0, 1, 2], &params, seed).expect("install");
        let mut sim = b.build();
        sim.run_until_clients_done(SimTime::from_secs(120));
        let drain = sim.now() + SimDuration::from_millis(500);
        sim.run_until(drain);
        wl.collect(&mut sim)
    }

    fn extra(out: &WorkloadOutcome, key: &str) -> f64 {
        out.extra
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .expect(key)
    }

    #[test]
    fn baseline_with_victim_sees_a_perturbed_latency_distribution() {
        let out = run(false, true, 7);
        assert_eq!(out.completed, 6, "all rounds finished");
        assert_eq!(out.samples_ms.len(), 24, "6 rounds x 4 arms");
        // The victim's parked head + queueing shows in the raw latencies:
        // the samples are not all equal.
        let first = out.samples_ms[0];
        assert!(
            out.samples_ms.iter().any(|&s| (s - first).abs() > 1e-9),
            "baseline latencies must carry signal: {:?}",
            &out.samples_ms[..8]
        );
        assert!(
            extra(&out, "recovery_accuracy") >= 0.75,
            "attacker recovers the secret arm most rounds under baseline: {out:?}"
        );
    }

    #[test]
    fn stopwatch_median_reads_flat_delta_d_latencies() {
        let out = run(true, true, 7);
        assert_eq!(out.completed, 6);
        // Every replica proposed issue + Δd (the victim only perturbs one
        // of three disks, and the median ignores it): every probe reads
        // the identical flat latency.
        let first = out.samples_ms[0];
        assert!(
            out.samples_ms.iter().all(|&s| (s - first).abs() < 1e-12),
            "stopwatch latencies must be flat: {:?}",
            &out.samples_ms[..8]
        );
        // Per-arm totals = probes_per_arm x ~Δd each.
        assert!(
            first >= 4.0 * 25.0,
            "arm total at least probes x Δd: {first}"
        );
        let chance = extra(&out, "chance_accuracy");
        assert!(
            extra(&out, "recovery_accuracy") <= chance + 1e-9,
            "accuracy collapses to the deterministic cycle: {out:?}"
        );
    }

    #[test]
    fn stopwatch_victim_cell_is_indistinguishable_from_clean() {
        let with_victim = run(true, true, 9);
        let clean = run(true, false, 9);
        assert_eq!(
            with_victim.samples_ms, clean.samples_ms,
            "the agreed release times are identical with and without the victim"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(false, true, 11);
        let b = run(false, true, 11);
        assert_eq!(a.samples_ms, b.samples_ms);
        assert_eq!(a.extra, b.extra);
    }

    #[test]
    fn bad_geometry_is_rejected() {
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        let bad = WorkloadParams::from_pairs([("secret", "99")]);
        let err = install("disk-channel", &mut b, &[0, 1, 2], &bad, 1)
            .err()
            .expect("out-of-range secret");
        assert!(err.contains("out of range"), "{err}");
        let one_arm = WorkloadParams::from_pairs([("arms", "1"), ("secret", "0")]);
        let err = install("disk-channel", &mut b, &[0, 1, 2], &one_arm, 1)
            .err()
            .expect("one arm");
        assert!(err.contains("arms >= 2"), "{err}");
    }
}
