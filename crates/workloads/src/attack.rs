//! The Fig. 4 security experiment: an attacker VM measures the virtual
//! inter-packet delivery times of a probe stream, while a victim VM on one
//! of the attacker's replica hosts perturbs that host's timing through
//! shared-hardware contention. Under StopWatch the perturbation is
//! microaggregated away by the median; under Baseline it shows through.
//!
//! Also provides the Sec. IX collaborating-attacker load generator.

use crate::registry::{
    InstallCtx, InstalledWorkload, ParamSpec, Workload, WorkloadOutcome, WorkloadParams,
};
use netsim::packet::{Body, EndpointId, Packet};
use simkit::rng::SimRng;
use simkit::time::{SimDuration, SimTime, VirtNanos};
use stopwatch_core::cloud::{ClientApp, ClientHandle, CloudBuilder, CloudSim, VmHandle};
use stopwatch_core::schema::ValueType;
use storage::block::BlockRange;
use storage::device::DiskOp;
use vmm::guest::{GuestEnv, GuestProgram};

/// The attacker guest: records the virtual time at which each probe packet
/// is delivered (its IO-clock observable).
#[derive(Debug, Default)]
pub struct AttackerGuest {
    arrivals: Vec<VirtNanos>,
}

impl AttackerGuest {
    /// Creates the attacker.
    pub fn new() -> Self {
        AttackerGuest::default()
    }

    /// Virtual arrival times recorded so far.
    pub fn arrivals(&self) -> &[VirtNanos] {
        &self.arrivals
    }

    /// Inter-packet deltas in virtual milliseconds — the Fig. 4 observable.
    pub fn deltas_ms(&self) -> Vec<f64> {
        self.arrivals
            .windows(2)
            .map(|w| (w[1].as_nanos() - w[0].as_nanos()) as f64 / 1.0e6)
            .collect()
    }
}

impl GuestProgram for AttackerGuest {
    fn on_boot(&mut self, _env: &mut GuestEnv) {}

    fn on_packet(&mut self, packet: &Packet, env: &mut GuestEnv) {
        if matches!(packet.body(), Body::Raw { tag: 0xBEEF, .. }) {
            self.arrivals.push(env.now);
        }
    }

    fn on_disk_done(&mut self, _op: DiskOp, _r: BlockRange, _d: &[u64], _env: &mut GuestEnv) {}

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Sends probe packets to the attacker at exponential inter-arrival times
/// (the paper models packet inter-arrivals as exponential, after
/// Karagiannis et al.).
pub struct ProbeClient {
    me: EndpointId,
    attacker: EndpointId,
    remaining: u32,
    next_at: Option<SimTime>,
    mean_gap: SimDuration,
    rng: SimRng,
}

impl ProbeClient {
    /// Sends `count` probes with exponential gaps of the given mean.
    pub fn new(
        me: EndpointId,
        attacker: EndpointId,
        count: u32,
        mean_gap: SimDuration,
        seed: u64,
    ) -> Self {
        ProbeClient {
            me,
            attacker,
            remaining: count,
            next_at: None,
            mean_gap,
            rng: SimRng::new(seed).stream("probe"),
        }
    }

    fn due(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        loop {
            if self.remaining == 0 {
                break;
            }
            let next = match self.next_at {
                Some(t) => t,
                None => {
                    let t = now + self.rng.exp_duration(self.mean_gap);
                    self.next_at = Some(t);
                    t
                }
            };
            if next > now {
                break;
            }
            self.remaining -= 1;
            out.push(Packet::new(
                self.me,
                self.attacker,
                Body::Raw {
                    tag: 0xBEEF,
                    len: 100,
                },
            ));
            let gap = self.rng.exp_duration(self.mean_gap);
            self.next_at = Some(next + gap);
        }
        out
    }
}

impl ClientApp for ProbeClient {
    fn on_start(&mut self, now: SimTime) -> Vec<Packet> {
        self.due(now)
    }

    fn on_packet(&mut self, _packet: &Packet, _now: SimTime) -> Vec<Packet> {
        Vec::new()
    }

    fn on_tick(&mut self, now: SimTime) -> Vec<Packet> {
        self.due(now)
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The victim: a guest that works in bursts (serving a file continuously,
/// in the paper's run), perturbing its host's timing while busy.
pub struct VictimGuest {
    burst_branches: u64,
    period_ticks: u64,
    duty_on: bool,
}

impl VictimGuest {
    /// A victim computing `burst_branches` every `period_ticks` PIT ticks
    /// (4 ms each at 250 Hz).
    pub fn new(burst_branches: u64, period_ticks: u64) -> Self {
        VictimGuest {
            burst_branches,
            period_ticks: period_ticks.max(1),
            duty_on: true,
        }
    }
}

impl GuestProgram for VictimGuest {
    fn on_boot(&mut self, env: &mut GuestEnv) {
        env.compute(self.burst_branches);
    }

    fn on_packet(&mut self, _packet: &Packet, _env: &mut GuestEnv) {}

    fn on_disk_done(&mut self, _op: DiskOp, _r: BlockRange, _d: &[u64], _env: &mut GuestEnv) {}

    fn on_timer(&mut self, env: &mut GuestEnv) {
        if env.pit_ticks.is_multiple_of(self.period_ticks) && self.duty_on {
            env.compute(self.burst_branches);
        }
    }

    fn wants_timer(&self) -> bool {
        true
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// The Sec. IX collaborating attacker: a second attacker VM that induces
/// heavy sustained load on one machine, trying to marginalize the replica
/// of the first attacker that runs there.
pub struct LoadGuest {
    chunk: u64,
}

impl LoadGuest {
    /// A guest that computes continuously in chunks.
    pub fn new(chunk: u64) -> Self {
        LoadGuest {
            chunk: chunk.max(1),
        }
    }
}

impl GuestProgram for LoadGuest {
    fn on_boot(&mut self, env: &mut GuestEnv) {
        env.compute(self.chunk);
        env.call_after(0);
    }

    fn on_packet(&mut self, _packet: &Packet, _env: &mut GuestEnv) {}

    fn on_disk_done(&mut self, _op: DiskOp, _r: BlockRange, _d: &[u64], _env: &mut GuestEnv) {}

    fn on_call(&mut self, _token: u64, env: &mut GuestEnv) {
        env.compute(self.chunk);
        env.call_after(0);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Outcome of one attack measurement run.
#[derive(Debug, Clone)]
pub struct AttackTrace {
    /// Inter-packet virtual deltas (ms) observed by the attacker.
    pub deltas_ms: Vec<f64>,
}

/// Runs the Fig. 4 scenario and returns the attacker's observations.
///
/// * `stopwatch`: protect the attacker VM with StopWatch (vs. baseline Xen);
/// * `victim_present`: place a victim VM on the attacker's first host;
/// * `probes`: number of probe packets;
/// * `seed`: run seed.
pub fn run_attack_scenario(
    stopwatch: bool,
    victim_present: bool,
    probes: u32,
    seed: u64,
) -> AttackTrace {
    use stopwatch_core::cloud::CloudBuilder;
    use stopwatch_core::config::CloudConfig;

    let mut cfg = CloudConfig::fast_test();
    cfg.seed = seed;
    cfg.ips_jitter = 0.03;
    cfg.client_tick = SimDuration::from_millis(2);
    let mut b = CloudBuilder::new(cfg, 3);
    let attacker = if stopwatch {
        b.add_stopwatch_vm(&[0, 1, 2], || Box::new(AttackerGuest::new()))
    } else {
        b.add_baseline_vm(0, Box::new(AttackerGuest::new()))
    };
    if victim_present {
        // Victim coresides with the attacker's replica on host 0 only.
        // Busy ~half the time in 200 ms-scale bursts.
        b.add_baseline_vm(0, Box::new(VictimGuest::new(100_000_000, 50)));
    }
    let probe = ProbeClient::new(
        EndpointId(2000),
        attacker.endpoint,
        probes,
        SimDuration::from_millis(40),
        seed ^ 0x5eed,
    );
    b.add_client(Box::new(probe));
    let mut sim = b.build();
    sim.run_until_clients_done(SimTime::from_secs(600));
    // Let the tail of in-flight deliveries drain.
    let drain = sim.now() + SimDuration::from_millis(500);
    sim.run_until(drain);
    let guest = sim
        .cloud
        .guest_program::<AttackerGuest>(attacker, 0)
        .expect("attacker downcast");
    AttackTrace {
        deltas_ms: guest.deltas_ms(),
    }
}

/// Parameter schema of the `"attack"` workload.
const ATTACK_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "probes",
        ty: ValueType::Int32,
        default: "300",
        doc: "probe packets sent at the attacker VM",
    },
    ParamSpec {
        key: "gap_ms",
        ty: ValueType::DurationMs,
        default: "40",
        doc: "mean gap between probe packets, ms",
    },
    ParamSpec {
        key: "victim",
        ty: ValueType::Bool,
        default: "false",
        doc: "coreside a bursty victim with the attacker's first replica",
    },
    ParamSpec {
        key: "victim_burst",
        ty: ValueType::Int,
        default: "100000000",
        doc: "victim compute burst, branches",
    },
    ParamSpec {
        key: "victim_period",
        ty: ValueType::Int,
        default: "50",
        doc: "victim burst period, PIT ticks",
    },
    ParamSpec {
        key: "load",
        ty: ValueType::Bool,
        default: "false",
        doc: "coreside a collaborating load VM (Sec. IX marginalization)",
    },
    ParamSpec {
        key: "load_chunk",
        ty: ValueType::Int,
        default: "50000000",
        doc: "collaborator compute chunk, branches",
    },
];

/// The `"attack"` workload: an [`AttackerGuest`] probed by a
/// [`ProbeClient`], optionally coresident with a [`VictimGuest`] and/or a
/// collaborating [`LoadGuest`] (Fig. 4, Sec. IX). Samples are the
/// attacker-observed inter-packet deltas.
pub struct AttackWorkload;

struct AttackInstalled {
    vm: VmHandle,
    client: ClientHandle,
}

impl InstalledWorkload for AttackInstalled {
    fn vm(&self) -> VmHandle {
        self.vm
    }

    fn client(&self) -> Option<ClientHandle> {
        Some(self.client)
    }

    fn collect(&self, sim: &mut CloudSim) -> WorkloadOutcome {
        let g = sim
            .cloud
            .guest_program::<AttackerGuest>(self.vm, 0)
            .expect("attacker program");
        let samples = g.deltas_ms();
        WorkloadOutcome {
            completed: samples.len() as u64,
            samples_ms: samples,
            extra: Vec::new(),
        }
    }
}

impl Workload for AttackWorkload {
    fn name(&self) -> &str {
        "attack"
    }

    fn about(&self) -> &str {
        "probe-timing attacker, optional coresident victim/collaborator (Fig. 4, Sec. IX)"
    }

    fn params(&self) -> &[ParamSpec] {
        ATTACK_PARAMS
    }

    fn install(
        &self,
        b: &mut CloudBuilder,
        ctx: &InstallCtx<'_>,
        params: &WorkloadParams,
    ) -> Result<Box<dyn InstalledWorkload>, String> {
        let probes = params.get(ATTACK_PARAMS, "probes")?;
        let gap_ms: u64 = params.get(ATTACK_PARAMS, "gap_ms")?;
        let victim: bool = params.get(ATTACK_PARAMS, "victim")?;
        let victim_burst = params.get(ATTACK_PARAMS, "victim_burst")?;
        let victim_period = params.get(ATTACK_PARAMS, "victim_period")?;
        let load: bool = params.get(ATTACK_PARAMS, "load")?;
        let load_chunk = params.get(ATTACK_PARAMS, "load_chunk")?;
        let vm = ctx.add_vm(b, &|| Box::new(AttackerGuest::new()));
        if victim {
            // The victim coresides with the attacker's first replica —
            // the coresidency the attacker is trying to sense (Fig. 4).
            b.add_baseline_vm(
                ctx.replica_hosts[0],
                Box::new(VictimGuest::new(victim_burst, victim_period)),
            );
        }
        if load {
            // Sec. IX: a collaborating attacker loads the same host,
            // trying to marginalize that replica from the median.
            b.add_baseline_vm(ctx.replica_hosts[0], Box::new(LoadGuest::new(load_chunk)));
        }
        let me = b.next_client_endpoint();
        let client = b.add_client(Box::new(ProbeClient::new(
            me,
            vm.endpoint,
            probes,
            SimDuration::from_millis(gap_ms),
            ctx.seed ^ 0xa77a_c4ed,
        )));
        Ok(Box::new(AttackInstalled { vm, client }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attacker_records_probes_baseline() {
        let trace = run_attack_scenario(false, false, 40, 7);
        assert!(trace.deltas_ms.len() >= 30, "got {}", trace.deltas_ms.len());
        let mean: f64 = trace.deltas_ms.iter().sum::<f64>() / trace.deltas_ms.len() as f64;
        // Mean probe gap is 40 ms.
        assert!((20.0..80.0).contains(&mean), "mean delta {mean}");
    }

    #[test]
    fn attacker_records_probes_stopwatch() {
        let trace = run_attack_scenario(true, false, 40, 7);
        assert!(trace.deltas_ms.len() >= 30);
        assert!(trace.deltas_ms.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn victim_shifts_baseline_distribution() {
        // Without StopWatch the victim's bursts visibly shift the
        // attacker's observed inter-packet deltas.
        let clean = run_attack_scenario(false, false, 120, 11);
        let dirty = run_attack_scenario(false, true, 120, 11);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mc, md) = (mean(&clean.deltas_ms), mean(&dirty.deltas_ms));
        let shift = (mc - md).abs() / mc;
        assert!(shift > 0.01, "victim shifted baseline mean by only {shift}");
    }

    #[test]
    fn stopwatch_dampens_victim_shift() {
        let clean_sw = run_attack_scenario(true, false, 120, 11);
        let dirty_sw = run_attack_scenario(true, true, 120, 11);
        let clean_bl = run_attack_scenario(false, false, 120, 11);
        let dirty_bl = run_attack_scenario(false, true, 120, 11);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let shift_sw = (mean(&clean_sw.deltas_ms) - mean(&dirty_sw.deltas_ms)).abs()
            / mean(&clean_sw.deltas_ms);
        let shift_bl = (mean(&clean_bl.deltas_ms) - mean(&dirty_bl.deltas_ms)).abs()
            / mean(&clean_bl.deltas_ms);
        assert!(
            shift_sw < shift_bl,
            "StopWatch shift {shift_sw} should be below baseline shift {shift_bl}"
        );
    }
}
