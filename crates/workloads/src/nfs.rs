//! The Fig. 6 workload: an NFSv4-style RPC server driven by an
//! nhfsstone-like load generator with the paper's measured operation mix
//! (11.37% setattr, 24.07% lookup, 11.92% write, 7.93% getattr,
//! 32.34% read, 12.37% create) issued by five client processes at a
//! constant aggregate rate.

use crate::registry::{
    InstallCtx, InstalledWorkload, ParamSpec, Workload, WorkloadOutcome, WorkloadParams,
};
use netsim::packet::{AppData, Body, EndpointId, Packet};
use netsim::tcp::{TcpConfig, TcpEndpoint, TcpEvent};
use simkit::time::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use stopwatch_core::cloud::{ClientApp, ClientHandle, CloudBuilder, CloudSim, VmHandle};
use stopwatch_core::schema::ValueType;
use storage::block::BlockRange;
use storage::device::DiskOp;
use vmm::channel::ChannelKind;
use vmm::guest::{GuestEnv, GuestProgram};

/// NFS operation types with the paper's mix percentages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfsOp {
    /// Set attributes (metadata write).
    Setattr,
    /// Name lookup (CPU only).
    Lookup,
    /// Write one block.
    Write,
    /// Get attributes (CPU only).
    Getattr,
    /// Read one block.
    Read,
    /// Create a file (metadata write).
    Create,
}

/// The paper's measured operation mix, as (op, weight) pairs.
pub const PAPER_MIX: [(NfsOp, f64); 6] = [
    (NfsOp::Setattr, 0.1137),
    (NfsOp::Lookup, 0.2407),
    (NfsOp::Write, 0.1192),
    (NfsOp::Getattr, 0.0793),
    (NfsOp::Read, 0.3234),
    (NfsOp::Create, 0.1237),
];

impl NfsOp {
    /// Wire encoding used in [`AppData::kind`].
    pub fn code(self) -> u32 {
        match self {
            NfsOp::Setattr => 10,
            NfsOp::Lookup => 11,
            NfsOp::Write => 12,
            NfsOp::Getattr => 13,
            NfsOp::Read => 14,
            NfsOp::Create => 15,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u32) -> Option<NfsOp> {
        Some(match code {
            10 => NfsOp::Setattr,
            11 => NfsOp::Lookup,
            12 => NfsOp::Write,
            13 => NfsOp::Getattr,
            14 => NfsOp::Read,
            15 => NfsOp::Create,
            _ => return None,
        })
    }

    /// Server CPU cost (branches) before any disk work.
    pub fn cpu_branches(self) -> u64 {
        match self {
            NfsOp::Lookup => 120_000,
            NfsOp::Getattr => 60_000,
            NfsOp::Setattr => 100_000,
            NfsOp::Read => 150_000,
            NfsOp::Write => 180_000,
            NfsOp::Create => 250_000,
        }
    }

    /// Whether (and how) the op touches the disk.
    pub fn disk(self) -> Option<DiskOp> {
        match self {
            NfsOp::Lookup | NfsOp::Getattr => None,
            NfsOp::Read => Some(DiskOp::Read),
            NfsOp::Setattr | NfsOp::Write | NfsOp::Create => Some(DiskOp::Write),
        }
    }

    /// Response payload bytes.
    pub fn response_bytes(self) -> u64 {
        match self {
            NfsOp::Read => 4096,
            _ => 128,
        }
    }

    /// Picks an op from the paper mix given a uniform draw in `[0,1)`.
    pub fn pick(mix_draw: f64) -> NfsOp {
        let mut acc = 0.0;
        for (op, w) in PAPER_MIX {
            acc += w;
            if mix_draw < acc {
                return op;
            }
        }
        NfsOp::Create
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingOp {
    op: NfsOp,
    block: u64,
}

/// The NFS server guest. Ops on one connection are served in order
/// (pipelined ops queue behind each other, like RPCs on one stream).
pub struct NfsServerGuest {
    cfg: TcpConfig,
    conns: HashMap<u64, TcpEndpoint>,
    // Per-connection op FIFO; the head is in service.
    queues: HashMap<u64, VecDeque<PendingOp>>,
    in_service: HashMap<u64, bool>,
    awaiting_disk: VecDeque<u64>, // conn ids whose head op awaits disk
    ops_done: u64,
}

impl NfsServerGuest {
    /// Creates the server.
    pub fn new() -> Self {
        NfsServerGuest {
            cfg: TcpConfig::default(),
            conns: HashMap::new(),
            queues: HashMap::new(),
            in_service: HashMap::new(),
            awaiting_disk: VecDeque::new(),
            ops_done: 0,
        }
    }

    /// Operations completed.
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    fn vnow(env: &GuestEnv) -> SimTime {
        SimTime::from_nanos(env.now.as_nanos())
    }

    fn maybe_start(&mut self, conn: u64, env: &mut GuestEnv) {
        if *self.in_service.get(&conn).unwrap_or(&false) {
            return;
        }
        let Some(q) = self.queues.get(&conn) else {
            return;
        };
        let Some(&head) = q.front() else { return };
        self.in_service.insert(conn, true);
        env.compute(head.op.cpu_branches());
        match head.op.disk() {
            Some(DiskOp::Read) => {
                self.awaiting_disk.push_back(conn);
                env.disk_read(BlockRange::new(head.block, 1));
            }
            Some(DiskOp::Write) => {
                self.awaiting_disk.push_back(conn);
                env.disk_write(BlockRange::new(head.block, 1), head.block ^ 0xA5A5);
            }
            None => {
                // CPU-only op: respond after the compute completes.
                env.call_after(conn);
            }
        }
    }

    fn finish_head(&mut self, conn: u64, env: &mut GuestEnv) {
        let Some(q) = self.queues.get_mut(&conn) else {
            return;
        };
        let Some(head) = q.pop_front() else { return };
        self.in_service.insert(conn, false);
        self.ops_done += 1;
        let now = Self::vnow(env);
        let _ = now;
        if let Some(ep) = self.conns.get_mut(&conn) {
            for pkt in ep.send_stream(head.op.response_bytes(), None, false) {
                env.send(pkt.dst(), pkt.into_body());
            }
        }
        self.maybe_start(conn, env);
    }
}

impl Default for NfsServerGuest {
    fn default() -> Self {
        Self::new()
    }
}

impl GuestProgram for NfsServerGuest {
    fn on_boot(&mut self, _env: &mut GuestEnv) {}

    fn on_packet(&mut self, packet: &Packet, env: &mut GuestEnv) {
        let Body::Tcp(seg) = packet.body() else {
            return;
        };
        let now = Self::vnow(env);
        let ep = self.conns.entry(seg.conn).or_insert_with(|| {
            TcpEndpoint::server(self.cfg, seg.conn, packet.dst(), packet.src(), now)
        });
        let out = ep.on_segment(seg, now);
        for pkt in out.packets {
            env.send(pkt.dst(), pkt.into_body());
        }
        for ev in out.events {
            if let TcpEvent::Request(app) = ev {
                if let Some(op) = NfsOp::from_code(app.kind) {
                    self.queues
                        .entry(seg.conn)
                        .or_default()
                        .push_back(PendingOp {
                            op,
                            block: app.a % 1_000_000,
                        });
                    self.maybe_start(seg.conn, env);
                }
            }
        }
    }

    fn on_disk_done(&mut self, _op: DiskOp, _range: BlockRange, _data: &[u64], env: &mut GuestEnv) {
        if let Some(conn) = self.awaiting_disk.pop_front() {
            self.finish_head(conn, env);
        }
    }

    fn on_call(&mut self, token: u64, env: &mut GuestEnv) {
        self.finish_head(token, env);
    }

    fn on_timer(&mut self, env: &mut GuestEnv) {
        let now = Self::vnow(env);
        let mut out = Vec::new();
        for ep in self.conns.values_mut() {
            out.extend(ep.on_tick(now));
        }
        for pkt in out {
            env.send(pkt.dst(), pkt.into_body());
        }
    }

    fn wants_timer(&self) -> bool {
        true
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    issued: SimTime,
    response_bytes: u64,
}

struct Proc {
    ep: Option<TcpEndpoint>,
    outstanding: VecDeque<Outstanding>,
    delivered: u64, // in-order bytes consumed toward the front outstanding
}

/// The nhfsstone-style load generator: five "processes" (one TCP
/// connection each) issuing the paper mix at a constant aggregate rate.
pub struct NhfsstoneClient {
    me: EndpointId,
    server: EndpointId,
    rate_per_sec: f64,
    target_ops: u64,
    cfg: TcpConfig,
    procs: Vec<Proc>,
    issued: u64,
    completed: u64,
    latencies: Vec<SimDuration>,
    mix_stream: simkit::rng::SimRng,
    started: Option<SimTime>,
    last_issue_check: Option<SimTime>,
    backlog: f64,
    next_rr: usize,
    /// TCP segments sent (client → server).
    pub sent_segments: u64,
    /// TCP segments received (server → client).
    pub received_segments: u64,
}

impl NhfsstoneClient {
    /// Creates a generator issuing `target_ops` operations at
    /// `rate_per_sec` (aggregate over 5 processes).
    pub fn new(
        me: EndpointId,
        server: EndpointId,
        rate_per_sec: f64,
        target_ops: u64,
        seed: u64,
    ) -> Self {
        NhfsstoneClient {
            me,
            server,
            rate_per_sec,
            target_ops,
            cfg: TcpConfig::default(),
            procs: Vec::new(),
            issued: 0,
            completed: 0,
            latencies: Vec::new(),
            mix_stream: simkit::rng::SimRng::new(seed).stream("nfs-mix"),
            started: None,
            last_issue_check: None,
            backlog: 0.0,
            next_rr: 0,
            sent_segments: 0,
            received_segments: 0,
        }
    }

    /// Completed-op latencies.
    pub fn latencies(&self) -> &[SimDuration] {
        &self.latencies
    }

    /// Mean latency per op in milliseconds (NaN if none completed).
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies.is_empty() {
            return f64::NAN;
        }
        self.latencies
            .iter()
            .map(|l| l.as_millis_f64())
            .sum::<f64>()
            / self.latencies.len() as f64
    }

    /// Operations completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    fn issue_due(&mut self, now: SimTime) -> Vec<Packet> {
        let Some(last) = self.last_issue_check else {
            self.last_issue_check = Some(now);
            return Vec::new();
        };
        let dt = now.saturating_duration_since(last).as_secs_f64();
        self.last_issue_check = Some(now);
        self.backlog += dt * self.rate_per_sec;
        let mut pkts = Vec::new();
        while self.backlog >= 1.0 && self.issued < self.target_ops {
            self.backlog -= 1.0;
            self.issued += 1;
            let op = NfsOp::pick(self.mix_stream.uniform01());
            let pi = self.next_rr % self.procs.len();
            self.next_rr += 1;
            let proc = &mut self.procs[pi];
            let Some(ep) = proc.ep.as_mut() else { continue };
            let app = AppData {
                kind: op.code(),
                a: self.mix_stream.uniform_u64(0, 1_000_000),
                b: 0,
            };
            let out = ep.send_stream(100, Some(app), false);
            self.sent_segments += out.len() as u64;
            pkts.extend(out);
            proc.outstanding.push_back(Outstanding {
                issued: now,
                response_bytes: op.response_bytes(),
            });
        }
        pkts
    }
}

impl ClientApp for NhfsstoneClient {
    fn on_start(&mut self, now: SimTime) -> Vec<Packet> {
        self.started = Some(now);
        let mut pkts = Vec::new();
        for i in 0..5 {
            let (ep, syn) = TcpEndpoint::client(self.cfg, 100 + i, self.me, self.server, now);
            self.procs.push(Proc {
                ep: Some(ep),
                outstanding: VecDeque::new(),
                delivered: 0,
            });
            self.sent_segments += 1;
            pkts.push(syn);
        }
        pkts
    }

    fn on_packet(&mut self, packet: &Packet, now: SimTime) -> Vec<Packet> {
        let Body::Tcp(seg) = packet.body() else {
            return Vec::new();
        };
        self.received_segments += 1;
        let Some(pi) = seg.conn.checked_sub(100).map(|i| i as usize) else {
            return Vec::new();
        };
        if pi >= self.procs.len() {
            return Vec::new();
        }
        let proc = &mut self.procs[pi];
        let Some(ep) = proc.ep.as_mut() else {
            return Vec::new();
        };
        let out = ep.on_segment(seg, now);
        self.sent_segments += out.packets.len() as u64;
        for ev in out.events {
            if let TcpEvent::Delivered { new_bytes, .. } = ev {
                proc.delivered += new_bytes;
                // Consume delivered bytes against outstanding responses
                // (the server answers in order per connection).
                while let Some(front) = proc.outstanding.front() {
                    if proc.delivered >= front.response_bytes {
                        proc.delivered -= front.response_bytes;
                        let lat = now.duration_since(front.issued);
                        self.latencies.push(lat);
                        self.completed += 1;
                        proc.outstanding.pop_front();
                    } else {
                        break;
                    }
                }
            }
        }
        out.packets
    }

    fn on_tick(&mut self, now: SimTime) -> Vec<Packet> {
        let mut pkts = self.issue_due(now);
        for proc in &mut self.procs {
            if let Some(ep) = proc.ep.as_mut() {
                let out = ep.on_tick(now);
                self.sent_segments += out.len() as u64;
                pkts.extend(out);
            }
        }
        pkts
    }

    fn is_done(&self) -> bool {
        self.completed >= self.target_ops
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Parameter schema of the `"nfs"` workload.
const NFS_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "rate",
        ty: ValueType::Float,
        default: "100",
        doc: "offered load, operations per second (aggregate)",
    },
    ParamSpec {
        key: "ops",
        ty: ValueType::Int,
        default: "200",
        doc: "total operations issued per run",
    },
];

/// The `"nfs"` workload: an [`NfsServerGuest`] driven by an
/// [`NhfsstoneClient`] with the paper's op mix (Fig. 6).
pub struct NfsWorkload;

struct NfsInstalled {
    vm: VmHandle,
    client: ClientHandle,
}

impl InstalledWorkload for NfsInstalled {
    fn vm(&self) -> VmHandle {
        self.vm
    }

    fn client(&self) -> Option<ClientHandle> {
        Some(self.client)
    }

    fn collect(&self, sim: &mut CloudSim) -> WorkloadOutcome {
        let c = sim
            .cloud
            .client_app::<NhfsstoneClient>(self.client)
            .expect("client type");
        WorkloadOutcome {
            samples_ms: c.latencies().iter().map(|l| l.as_millis_f64()).collect(),
            completed: c.completed(),
            extra: vec![
                ("sent_segments".to_string(), c.sent_segments as f64),
                ("received_segments".to_string(), c.received_segments as f64),
            ],
        }
    }
}

impl Workload for NfsWorkload {
    fn name(&self) -> &str {
        "nfs"
    }

    fn about(&self) -> &str {
        "NFS server under an nhfsstone-style op mix at a constant rate (Fig. 6)"
    }

    fn params(&self) -> &[ParamSpec] {
        NFS_PARAMS
    }

    fn channels(&self) -> &'static [ChannelKind] {
        &[ChannelKind::Net, ChannelKind::Disk]
    }

    fn install(
        &self,
        b: &mut CloudBuilder,
        ctx: &InstallCtx<'_>,
        params: &WorkloadParams,
    ) -> Result<Box<dyn InstalledWorkload>, String> {
        let rate = params.get(NFS_PARAMS, "rate")?;
        let ops = params.get(NFS_PARAMS, "ops")?;
        let vm = ctx.add_vm(b, &|| Box::new(NfsServerGuest::new()));
        let me = b.next_client_endpoint();
        let client = b.add_client(Box::new(NhfsstoneClient::new(
            me,
            vm.endpoint,
            rate,
            ops,
            ctx.seed,
        )));
        Ok(Box::new(NfsInstalled { vm, client }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopwatch_core::cloud::CloudBuilder;
    use stopwatch_core::config::CloudConfig;

    #[test]
    fn op_mix_sums_to_one() {
        let total: f64 = PAPER_MIX.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9, "mix sums to {total}");
    }

    #[test]
    fn op_codes_roundtrip() {
        for (op, _) in PAPER_MIX {
            assert_eq!(NfsOp::from_code(op.code()), Some(op));
        }
        assert_eq!(NfsOp::from_code(99), None);
    }

    #[test]
    fn pick_respects_weights() {
        let mut rng = simkit::rng::SimRng::new(7);
        let n = 100_000;
        let mut reads = 0;
        for _ in 0..n {
            if NfsOp::pick(rng.uniform01()) == NfsOp::Read {
                reads += 1;
            }
        }
        let frac = reads as f64 / n as f64;
        assert!((frac - 0.3234).abs() < 0.01, "read fraction {frac}");
    }

    fn run_nfs(stopwatch: bool, rate: f64, ops: u64) -> (f64, u64, u64) {
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        let vm = if stopwatch {
            b.add_stopwatch_vm(&[0, 1, 2], || Box::new(NfsServerGuest::new()))
        } else {
            b.add_baseline_vm(0, Box::new(NfsServerGuest::new()))
        };
        let client = b.add_client(Box::new(NhfsstoneClient::new(
            EndpointId(2000),
            vm.endpoint,
            rate,
            ops,
            1,
        )));
        let mut sim = b.build();
        sim.run_until_clients_done(SimTime::from_secs(120));
        let c = sim.cloud.client_app::<NhfsstoneClient>(client).unwrap();
        assert_eq!(c.completed(), ops, "all ops must complete");
        (c.mean_latency_ms(), c.sent_segments, c.received_segments)
    }

    #[test]
    fn nfs_completes_baseline() {
        let (lat, sent, recv) = run_nfs(false, 50.0, 25);
        assert!(lat.is_finite() && lat > 0.0);
        assert!(sent > 25 && recv > 25);
    }

    #[test]
    fn nfs_stopwatch_slower_than_baseline() {
        let (base, _, _) = run_nfs(false, 50.0, 25);
        let (sw, _, _) = run_nfs(true, 50.0, 25);
        assert!(sw > base, "StopWatch {sw}ms vs baseline {base}ms");
        assert!(
            sw < base * 20.0,
            "overhead should stay bounded: {sw} vs {base}"
        );
    }
}
