//! The Fig. 5 workload: file retrieval from a cloud web server, over HTTP
//! (TCP-lite, ACK-per-segment — slow under StopWatch because every inbound
//! ACK crosses the Δn/median machinery) and over UDP with NAK reliability
//! (fast under StopWatch: almost nothing flows inbound).

use crate::registry::{
    InstallCtx, InstalledWorkload, ParamSpec, Workload, WorkloadOutcome, WorkloadParams,
};
use netsim::packet::{AppData, Body, EndpointId, Packet};
use netsim::tcp::{TcpConfig, TcpEndpoint, TcpEvent, TcpState};
use netsim::udp::{UdpClientEvent, UdpFileClient, UdpFileServer};
use simkit::time::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use stopwatch_core::cloud::{ClientApp, ClientHandle, CloudBuilder, CloudSim, VmHandle};
use stopwatch_core::schema::ValueType;
use storage::block::BlockRange;
use storage::device::DiskOp;
use vmm::channel::ChannelKind;
use vmm::guest::{GuestEnv, GuestProgram};

/// Request kind: fetch file `a` of `b` bytes.
pub const APP_GET: u32 = 1;

fn file_range(file_id: u64, bytes: u64) -> BlockRange {
    let blocks = bytes
        .div_ceil(u64::from(storage::block::BLOCK_BYTES))
        .max(1) as u32;
    // Files laid out contiguously, 4 MiB apart.
    BlockRange::new(file_id * 1024, blocks.min(4096))
}

fn vnow(env: &GuestEnv) -> SimTime {
    // Guest-side protocol timers run on virtual time (determinism).
    SimTime::from_nanos(env.now.as_nanos())
}

/// A web server guest serving files over TCP (Apache in the paper).
pub struct FileServerGuest {
    cfg: TcpConfig,
    conns: HashMap<u64, TcpEndpoint>,
    awaiting_disk: VecDeque<(u64, u64)>, // (conn, bytes) FIFO
    ready_to_send: VecDeque<(u64, u64)>, // disk done, waiting for handshake
    served: u64,
}

impl FileServerGuest {
    /// Creates the server.
    pub fn new() -> Self {
        FileServerGuest {
            cfg: TcpConfig::default(),
            conns: HashMap::new(),
            awaiting_disk: VecDeque::new(),
            ready_to_send: VecDeque::new(),
            served: 0,
        }
    }

    /// Files fully handed to TCP so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    fn pump(out: netsim::tcp::TcpOutput, env: &mut GuestEnv) -> Vec<TcpEvent> {
        for pkt in out.packets {
            env.send(pkt.dst(), pkt.into_body());
        }
        out.events
    }

    /// Sends every disk-completed response whose connection has finished its
    /// handshake. A request can overtake the handshake ACK on the fabric, so
    /// a response may become ready while the connection is still in
    /// `SynReceived`; it is held here until the ACK lands.
    fn flush_ready(&mut self, env: &mut GuestEnv) {
        let mut held = VecDeque::new();
        while let Some((conn, bytes)) = self.ready_to_send.pop_front() {
            match self.conns.get_mut(&conn) {
                Some(ep) if ep.state() == TcpState::Established => {
                    self.served += 1;
                    for pkt in ep.send_stream(bytes, None, true) {
                        env.send(pkt.dst(), pkt.into_body());
                    }
                }
                Some(_) => held.push_back((conn, bytes)),
                None => {}
            }
        }
        self.ready_to_send = held;
    }
}

impl Default for FileServerGuest {
    fn default() -> Self {
        Self::new()
    }
}

impl GuestProgram for FileServerGuest {
    fn on_boot(&mut self, _env: &mut GuestEnv) {}

    fn on_packet(&mut self, packet: &Packet, env: &mut GuestEnv) {
        let Body::Tcp(seg) = packet.body() else {
            return;
        };
        let now = vnow(env);
        let ep = self.conns.entry(seg.conn).or_insert_with(|| {
            TcpEndpoint::server(self.cfg, seg.conn, packet.dst(), packet.src(), now)
        });
        let events = Self::pump(ep.on_segment(seg, now), env);
        for ev in events {
            if let TcpEvent::Request(app) = ev {
                if app.kind == APP_GET {
                    // Cold start: read the file from disk, then respond
                    // (the response is sent from on_disk_done).
                    self.awaiting_disk.push_back((seg.conn, app.b));
                    env.disk_read(file_range(app.a, app.b));
                }
            }
        }
        self.flush_ready(env);
    }

    fn on_disk_done(&mut self, op: DiskOp, _range: BlockRange, _data: &[u64], env: &mut GuestEnv) {
        if op != DiskOp::Read {
            return;
        }
        let Some((conn, bytes)) = self.awaiting_disk.pop_front() else {
            return;
        };
        self.ready_to_send.push_back((conn, bytes));
        self.flush_ready(env);
    }

    fn on_timer(&mut self, env: &mut GuestEnv) {
        // Drive retransmission timers in virtual time.
        let now = vnow(env);
        let mut out = Vec::new();
        for ep in self.conns.values_mut() {
            out.extend(ep.on_tick(now));
        }
        for pkt in out {
            env.send(pkt.dst(), pkt.into_body());
        }
        self.flush_ready(env);
    }

    fn wants_timer(&self) -> bool {
        true
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// One completed download's measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownloadResult {
    /// Wall-clock latency as the client saw it.
    pub latency: SimDuration,
    /// Bytes retrieved.
    pub bytes: u64,
}

/// An HTTP (TCP) download client — the paper's laptop on campus wireless.
pub struct HttpDownloadClient {
    me: EndpointId,
    server: EndpointId,
    file_id: u64,
    bytes: u64,
    remaining: u32,
    cfg: TcpConfig,
    next_conn: u64,
    current: Option<(TcpEndpoint, SimTime)>,
    results: Vec<DownloadResult>,
    /// Total TCP segments the client sent / received (Fig. 6b-style
    /// accounting).
    pub sent_segments: u64,
    /// Total TCP segments received.
    pub received_segments: u64,
}

impl HttpDownloadClient {
    /// A client that downloads file `file_id` (`bytes` long) `count` times
    /// sequentially, a fresh connection each time.
    pub fn new(me: EndpointId, server: EndpointId, file_id: u64, bytes: u64, count: u32) -> Self {
        HttpDownloadClient {
            me,
            server,
            file_id,
            bytes,
            remaining: count,
            cfg: TcpConfig::default(),
            next_conn: 1,
            current: None,
            results: Vec::new(),
            sent_segments: 0,
            received_segments: 0,
        }
    }

    /// Completed downloads.
    pub fn results(&self) -> &[DownloadResult] {
        &self.results
    }

    fn start_download(&mut self, now: SimTime) -> Vec<Packet> {
        if self.remaining == 0 || self.current.is_some() {
            return Vec::new();
        }
        self.remaining -= 1;
        let conn = self.next_conn;
        self.next_conn += 1;
        let (ep, syn) = TcpEndpoint::client(self.cfg, conn, self.me, self.server, now);
        self.current = Some((ep, now));
        self.sent_segments += 1;
        vec![syn]
    }
}

impl ClientApp for HttpDownloadClient {
    fn on_start(&mut self, now: SimTime) -> Vec<Packet> {
        self.start_download(now)
    }

    fn on_packet(&mut self, packet: &Packet, now: SimTime) -> Vec<Packet> {
        let Body::Tcp(seg) = packet.body() else {
            return Vec::new();
        };
        self.received_segments += 1;
        let Some((ep, started)) = self.current.as_mut() else {
            return Vec::new();
        };
        let out = ep.on_segment(seg, now);
        self.sent_segments += out.packets.len() as u64;
        let mut pkts = out.packets;
        for ev in out.events {
            match ev {
                TcpEvent::Connected => {
                    // Request the file.
                    let app = AppData {
                        kind: APP_GET,
                        a: self.file_id,
                        b: self.bytes,
                    };
                    let reqs = ep.send_stream(200, Some(app), false);
                    self.sent_segments += reqs.len() as u64;
                    pkts.extend(reqs);
                }
                TcpEvent::PeerFinished { total } => {
                    let latency = now.duration_since(*started);
                    self.results.push(DownloadResult {
                        latency,
                        bytes: total,
                    });
                    self.current = None;
                    pkts.extend(self.start_download(now));
                    break;
                }
                _ => {}
            }
        }
        pkts
    }

    fn on_tick(&mut self, now: SimTime) -> Vec<Packet> {
        if let Some((ep, _)) = self.current.as_mut() {
            let pkts = ep.on_tick(now);
            self.sent_segments += pkts.len() as u64;
            pkts
        } else {
            self.start_download(now)
        }
    }

    fn is_done(&self) -> bool {
        self.remaining == 0 && self.current.is_none()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A web server guest serving files over UDP with NAK reliability.
pub struct UdpFileGuest {
    inner: UdpFileServer,
    awaiting_disk: VecDeque<(EndpointId, netsim::packet::UdpSegment)>,
}

impl UdpFileGuest {
    /// Creates the server (its endpoint is patched from the first packet).
    pub fn new() -> Self {
        UdpFileGuest {
            inner: UdpFileServer::new(EndpointId(0)),
            awaiting_disk: VecDeque::new(),
        }
    }
}

impl Default for UdpFileGuest {
    fn default() -> Self {
        Self::new()
    }
}

impl GuestProgram for UdpFileGuest {
    fn on_boot(&mut self, _env: &mut GuestEnv) {}

    fn on_packet(&mut self, packet: &Packet, env: &mut GuestEnv) {
        let Body::Udp(seg) = packet.body() else {
            return;
        };
        self.inner = UdpFileServer::new(packet.dst()); // keep local id fresh
        match &seg.kind {
            netsim::packet::UdpKind::Request(app) => {
                // Cold start: disk first, stream from on_disk_done.
                self.awaiting_disk.push_back((packet.src(), seg.clone()));
                env.disk_read(file_range(app.a, app.b));
            }
            netsim::packet::UdpKind::Nak(_) => {
                // Retransmissions come from the page cache: no disk.
                for pkt in self.inner.on_datagram(packet.src(), seg) {
                    env.send(pkt.dst(), pkt.into_body());
                }
            }
            _ => {}
        }
    }

    fn on_disk_done(&mut self, op: DiskOp, _range: BlockRange, _data: &[u64], env: &mut GuestEnv) {
        if op != DiskOp::Read {
            return;
        }
        let Some((from, seg)) = self.awaiting_disk.pop_front() else {
            return;
        };
        for pkt in self.inner.on_datagram(from, &seg) {
            env.send(pkt.dst(), pkt.into_body());
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A UDP-NAK download client.
pub struct UdpDownloadClient {
    me: EndpointId,
    server: EndpointId,
    file_id: u64,
    bytes: u64,
    remaining: u32,
    next_stream: u64,
    current: Option<(UdpFileClient, SimTime)>,
    results: Vec<DownloadResult>,
    /// Datagrams this client sent toward the server.
    pub sent_datagrams: u64,
}

impl UdpDownloadClient {
    /// A client that fetches file `file_id` (`bytes` long) `count` times.
    pub fn new(me: EndpointId, server: EndpointId, file_id: u64, bytes: u64, count: u32) -> Self {
        UdpDownloadClient {
            me,
            server,
            file_id,
            bytes,
            remaining: count,
            next_stream: 1,
            current: None,
            results: Vec::new(),
            sent_datagrams: 0,
        }
    }

    /// Completed downloads.
    pub fn results(&self) -> &[DownloadResult] {
        &self.results
    }

    fn start(&mut self, now: SimTime) -> Vec<Packet> {
        if self.remaining == 0 || self.current.is_some() {
            return Vec::new();
        }
        self.remaining -= 1;
        let stream = self.next_stream;
        self.next_stream += 1;
        let app = AppData {
            kind: APP_GET,
            a: self.file_id,
            b: self.bytes,
        };
        let (client, req) = UdpFileClient::start(
            self.me,
            self.server,
            stream,
            app,
            now,
            SimDuration::from_millis(100),
        );
        self.current = Some((client, now));
        self.sent_datagrams += 1;
        vec![req]
    }
}

impl ClientApp for UdpDownloadClient {
    fn on_start(&mut self, now: SimTime) -> Vec<Packet> {
        self.start(now)
    }

    fn on_packet(&mut self, packet: &Packet, now: SimTime) -> Vec<Packet> {
        let Body::Udp(seg) = packet.body() else {
            return Vec::new();
        };
        let Some((client, started)) = self.current.as_mut() else {
            return Vec::new();
        };
        let (pkts, events) = client.on_datagram(seg, now);
        self.sent_datagrams += pkts.len() as u64;
        if let Some(UdpClientEvent::Complete { .. }) = events.into_iter().next() {
            let latency = now.duration_since(*started);
            self.results.push(DownloadResult {
                latency,
                bytes: self.bytes,
            });
            self.current = None;
            let mut out = pkts;
            out.extend(self.start(now));
            return out;
        }
        pkts
    }

    fn on_tick(&mut self, now: SimTime) -> Vec<Packet> {
        if let Some((client, _)) = self.current.as_mut() {
            let pkts = client.on_tick(now);
            self.sent_datagrams += pkts.len() as u64;
            pkts
        } else {
            self.start(now)
        }
    }

    fn is_done(&self) -> bool {
        self.remaining == 0 && self.current.is_none()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Shared parameter schema of the two file-retrieval workloads.
const WEB_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "bytes",
        ty: ValueType::Int,
        default: "100000",
        doc: "file size retrieved per download, bytes",
    },
    ParamSpec {
        key: "downloads",
        ty: ValueType::Int32,
        default: "3",
        doc: "sequential downloads per run",
    },
    ParamSpec {
        key: "file_id",
        ty: ValueType::Int,
        default: "1",
        doc: "file identifier requested from the server",
    },
];

/// The `"web-http"` workload: a [`FileServerGuest`] measured by an
/// [`HttpDownloadClient`] (Fig. 5's TCP arm).
pub struct WebHttpWorkload;

struct WebHttpInstalled {
    vm: VmHandle,
    client: ClientHandle,
}

impl InstalledWorkload for WebHttpInstalled {
    fn vm(&self) -> VmHandle {
        self.vm
    }

    fn client(&self) -> Option<ClientHandle> {
        Some(self.client)
    }

    fn collect(&self, sim: &mut CloudSim) -> WorkloadOutcome {
        let c = sim
            .cloud
            .client_app::<HttpDownloadClient>(self.client)
            .expect("client type");
        let samples: Vec<f64> = c
            .results()
            .iter()
            .map(|r| r.latency.as_millis_f64())
            .collect();
        WorkloadOutcome {
            completed: samples.len() as u64,
            samples_ms: samples,
            extra: vec![
                ("sent_segments".to_string(), c.sent_segments as f64),
                ("received_segments".to_string(), c.received_segments as f64),
            ],
        }
    }
}

impl Workload for WebHttpWorkload {
    fn name(&self) -> &str {
        "web-http"
    }

    fn about(&self) -> &str {
        "file retrieval over HTTP/TCP, ACK-per-segment (Fig. 5)"
    }

    fn params(&self) -> &[ParamSpec] {
        WEB_PARAMS
    }

    fn channels(&self) -> &'static [ChannelKind] {
        &[ChannelKind::Net, ChannelKind::Disk]
    }

    fn install(
        &self,
        b: &mut CloudBuilder,
        ctx: &InstallCtx<'_>,
        params: &WorkloadParams,
    ) -> Result<Box<dyn InstalledWorkload>, String> {
        let bytes = params.get(WEB_PARAMS, "bytes")?;
        let downloads = params.get(WEB_PARAMS, "downloads")?;
        let file_id = params.get(WEB_PARAMS, "file_id")?;
        let vm = ctx.add_vm(b, &|| Box::new(FileServerGuest::new()));
        let me = b.next_client_endpoint();
        let client = b.add_client(Box::new(HttpDownloadClient::new(
            me,
            vm.endpoint,
            file_id,
            bytes,
            downloads,
        )));
        Ok(Box::new(WebHttpInstalled { vm, client }))
    }
}

/// The `"web-udp"` workload: a [`UdpFileGuest`] measured by a
/// [`UdpDownloadClient`] (Fig. 5's UDP-NAK arm).
pub struct WebUdpWorkload;

struct WebUdpInstalled {
    vm: VmHandle,
    client: ClientHandle,
}

impl InstalledWorkload for WebUdpInstalled {
    fn vm(&self) -> VmHandle {
        self.vm
    }

    fn client(&self) -> Option<ClientHandle> {
        Some(self.client)
    }

    fn collect(&self, sim: &mut CloudSim) -> WorkloadOutcome {
        let c = sim
            .cloud
            .client_app::<UdpDownloadClient>(self.client)
            .expect("client type");
        let samples: Vec<f64> = c
            .results()
            .iter()
            .map(|r| r.latency.as_millis_f64())
            .collect();
        WorkloadOutcome {
            completed: samples.len() as u64,
            samples_ms: samples,
            extra: vec![("sent_datagrams".to_string(), c.sent_datagrams as f64)],
        }
    }
}

impl Workload for WebUdpWorkload {
    fn name(&self) -> &str {
        "web-udp"
    }

    fn about(&self) -> &str {
        "file retrieval over UDP with NAK reliability (Fig. 5)"
    }

    fn params(&self) -> &[ParamSpec] {
        WEB_PARAMS
    }

    fn channels(&self) -> &'static [ChannelKind] {
        &[ChannelKind::Net, ChannelKind::Disk]
    }

    fn install(
        &self,
        b: &mut CloudBuilder,
        ctx: &InstallCtx<'_>,
        params: &WorkloadParams,
    ) -> Result<Box<dyn InstalledWorkload>, String> {
        let bytes = params.get(WEB_PARAMS, "bytes")?;
        let downloads = params.get(WEB_PARAMS, "downloads")?;
        let file_id = params.get(WEB_PARAMS, "file_id")?;
        let vm = ctx.add_vm(b, &|| Box::new(UdpFileGuest::new()));
        let me = b.next_client_endpoint();
        let client = b.add_client(Box::new(UdpDownloadClient::new(
            me,
            vm.endpoint,
            file_id,
            bytes,
            downloads,
        )));
        Ok(Box::new(WebUdpInstalled { vm, client }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::time::SimTime;
    use stopwatch_core::cloud::CloudBuilder;
    use stopwatch_core::config::CloudConfig;

    fn download_once(stopwatch: bool, udp: bool, bytes: u64) -> (SimDuration, u64) {
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        let vm = if udp {
            if stopwatch {
                b.add_stopwatch_vm(&[0, 1, 2], || Box::new(UdpFileGuest::new()))
            } else {
                b.add_baseline_vm(0, Box::new(UdpFileGuest::new()))
            }
        } else if stopwatch {
            b.add_stopwatch_vm(&[0, 1, 2], || Box::new(FileServerGuest::new()))
        } else {
            b.add_baseline_vm(0, Box::new(FileServerGuest::new()))
        };
        let client_ep = EndpointId(2000);
        let client = if udp {
            b.add_client(Box::new(UdpDownloadClient::new(
                client_ep,
                vm.endpoint,
                1,
                bytes,
                1,
            )))
        } else {
            b.add_client(Box::new(HttpDownloadClient::new(
                client_ep,
                vm.endpoint,
                1,
                bytes,
                1,
            )))
        };
        let mut sim = b.build();
        sim.run_until_clients_done(SimTime::from_secs(60));
        let (latency, inbound) = if udp {
            let c = sim.cloud.client_app::<UdpDownloadClient>(client).unwrap();
            assert_eq!(c.results().len(), 1, "download must complete");
            (c.results()[0].latency, c.sent_datagrams)
        } else {
            let c = sim.cloud.client_app::<HttpDownloadClient>(client).unwrap();
            assert_eq!(c.results().len(), 1, "download must complete");
            (c.results()[0].latency, c.sent_segments)
        };
        (latency, inbound)
    }

    #[test]
    fn http_download_completes_baseline() {
        let (lat, _) = download_once(false, false, 100_000);
        assert!(lat.as_millis_f64() > 1.0);
        assert!(lat.as_millis_f64() < 2_000.0, "latency {lat}");
    }

    #[test]
    fn http_download_completes_stopwatch_and_is_slower() {
        let (base, _) = download_once(false, false, 100_000);
        let (sw, _) = download_once(true, false, 100_000);
        assert!(
            sw.as_millis_f64() > base.as_millis_f64() * 1.5,
            "StopWatch {sw} should cost much more than baseline {base}"
        );
    }

    #[test]
    fn udp_download_needs_few_inbound_packets() {
        let (_, inbound_udp) = download_once(true, true, 100_000);
        let (_, inbound_tcp) = download_once(true, false, 100_000);
        assert!(
            inbound_udp * 10 <= inbound_tcp,
            "UDP sent {inbound_udp} inbound packets vs TCP {inbound_tcp}"
        );
    }

    #[test]
    fn udp_stopwatch_competitive_with_udp_baseline() {
        let (base, _) = download_once(false, true, 200_000);
        let (sw, _) = download_once(true, true, 200_000);
        // The paper's headline: UDP-NAK over StopWatch is competitive with
        // baseline for files >= 100 KB (one Δn crossing amortized).
        assert!(
            sw.as_millis_f64() < base.as_millis_f64() * 2.5,
            "UDP StopWatch {sw} vs baseline {base}"
        );
    }
}
