//! The timer-channel experiment: an attacker inferring a coresident
//! victim's secret-dependent CPU bursts from its own virtual-timer
//! dispatch jitter (the scheduler-beat channel).
//!
//! A [`TimerProbeGuest`] divides each round into `arms` equal windows and
//! arms a one-shot virtual timer at every window's midpoint; the sample
//! it records is `irq_timestamp - deadline` — the guest-visible latency
//! of its own timer interrupt. A [`TimerVictimGuest`] coresides with the
//! attacker's **first replica only** and burns a secret-phased CPU burst
//! spanning exactly one window per round (driven by its own *periodic*
//! virtual timer): during that window the attacker's waking vCPU queues
//! behind the busy victim for a scheduler timeslice. Under Baseline (one
//! replica) the run-queue wait shows through and the window with the
//! largest latency names the secret, round after round. Under StopWatch
//! every replica proposes `deadline + Δt` (Δt is measured from the
//! *programmed* deadline, not the jittery dispatch instant) and the fire
//! is delivered at the replica median — a constant readout that carries
//! no trace of the victim's schedule.
//!
//! The per-window latency samples feed the sweep layer's leakage-verdict
//! pipeline exactly like network timings do.

use crate::parsec::CompletionWaiter;
use crate::registry::{
    InstallCtx, InstalledWorkload, ParamSpec, Workload, WorkloadOutcome, WorkloadParams,
};
use netsim::packet::{Body, EndpointId, Packet};
use simkit::time::{VirtNanos, VirtOffset};
use stopwatch_core::cloud::{ClientHandle, CloudBuilder, CloudSim, VmHandle};
use stopwatch_core::schema::ValueType;
use storage::block::BlockRange;
use storage::device::DiskOp;
use vmm::channel::ChannelKind;
use vmm::guest::{GuestEnv, GuestProgram};

/// Completion-report tag understood by [`CompletionWaiter`].
const DONE_TAG: u64 = 0xD0E;

/// The attacker's one-shot probe timer id (re-armed each window).
const PROBE_TIMER: u64 = 1;

/// The victim's periodic burst timer id.
const BURST_TIMER: u64 = 7;

/// The scheduler-beat attacker guest.
///
/// Round structure (all decisions driven by injected timer fires only, so
/// the replicas stay in lockstep):
///
/// 1. **Arm** a one-shot virtual timer at the midpoint of the current
///    window (deadlines follow a fixed absolute schedule, so delivery
///    jitter never accumulates into the next probe);
/// 2. **Sample** `irq_timestamp - deadline` when the fire is injected —
///    the only scheduler-latency view the guest has;
/// 3. After `arms` windows, **guess**: the window with the strictly
///    largest latency is the round's recovered secret — unless every
///    window read the same (no signal), in which case the attacker
///    cycles through windows, the deterministic stand-in for guessing at
///    random.
///
/// After the final round it reports completion to the monitor client.
pub struct TimerProbeGuest {
    arms: u64,
    window: VirtOffset,
    start: VirtNanos,
    rounds: u32,
    monitor: EndpointId,
    round: u32,
    arm: u64,
    window_delay: Vec<u64>,
    samples_ns: Vec<u64>,
    guesses: Vec<u64>,
    done: bool,
}

impl TimerProbeGuest {
    /// An attacker probing `arms` windows of `window` length per round,
    /// for `rounds` rounds, with round 0 starting at absolute virtual
    /// time `start`; reports completion to `monitor`.
    pub fn new(
        arms: u64,
        window: VirtOffset,
        start: VirtNanos,
        rounds: u32,
        monitor: EndpointId,
    ) -> Self {
        TimerProbeGuest {
            arms: arms.max(1),
            window,
            start,
            rounds: rounds.max(1),
            monitor,
            round: 0,
            arm: 0,
            window_delay: Vec::new(),
            samples_ns: Vec::new(),
            guesses: Vec::new(),
            done: false,
        }
    }

    /// Per-window timer-latency samples, one entry per `(round, window)`
    /// pair in round-major order, virtual nanoseconds.
    pub fn samples_ns(&self) -> &[u64] {
        &self.samples_ns
    }

    /// The recovered window per completed round.
    pub fn guesses(&self) -> &[u64] {
        &self.guesses
    }

    /// Completed rounds.
    pub fn rounds_done(&self) -> u32 {
        self.round
    }

    /// The fixed probe schedule: window `arm` of round `round` is probed
    /// at its midpoint.
    fn deadline(&self, round: u32, arm: u64) -> VirtNanos {
        let w = self.window.as_nanos();
        let slots = u64::from(round) * self.arms + arm;
        VirtNanos::from_nanos(self.start.as_nanos() + slots * w + w / 2)
    }

    fn arm_probe(&mut self, env: &mut GuestEnv) {
        let deadline = self.deadline(self.round, self.arm);
        env.set_timer(PROBE_TIMER, deadline);
    }

    fn finish_round(&mut self, env: &mut GuestEnv) {
        self.samples_ns.extend(self.window_delay.iter().copied());
        let max = *self.window_delay.iter().max().expect("arms > 0");
        let min = *self.window_delay.iter().min().expect("arms > 0");
        let guess = if max == min {
            // Flat readout: no signal. Cycle deterministically — the
            // determinism-safe stand-in for a random guess.
            u64::from(self.round) % self.arms
        } else {
            self.window_delay
                .iter()
                .position(|&d| d == max)
                .expect("max exists") as u64
        };
        self.guesses.push(guess);
        self.window_delay.clear();
        self.round += 1;
        self.arm = 0;
        if self.round >= self.rounds {
            self.done = true;
            env.send(
                self.monitor,
                Body::Raw {
                    tag: DONE_TAG,
                    len: 64,
                },
            );
        } else {
            self.arm_probe(env);
        }
    }
}

impl GuestProgram for TimerProbeGuest {
    fn on_boot(&mut self, env: &mut GuestEnv) {
        self.arm_probe(env);
    }

    fn on_packet(&mut self, _packet: &Packet, _env: &mut GuestEnv) {}

    fn on_disk_done(&mut self, _op: DiskOp, _r: BlockRange, _d: &[u64], _env: &mut GuestEnv) {}

    fn on_vtimer(&mut self, timer_id: u64, env: &mut GuestEnv) {
        if timer_id != PROBE_TIMER || self.done {
            return;
        }
        let deadline = self.deadline(self.round, self.arm);
        let delay = env
            .irq_timestamp
            .as_nanos()
            .saturating_sub(deadline.as_nanos());
        self.window_delay.push(delay);
        self.arm += 1;
        if self.arm >= self.arms {
            self.finish_round(env);
        } else {
            self.arm_probe(env);
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// The victim: a guest whose CPU schedule depends on its secret. A
/// periodic virtual timer beats once per round, phased into window
/// `secret`; each fire queues one window-spanning compute burst, keeping
/// the victim's vCPU busy for exactly that window — which is what the
/// coresident attacker's run-queue wait betrays.
pub struct TimerVictimGuest {
    secret: u64,
    window: VirtOffset,
    start: VirtNanos,
    period: VirtOffset,
}

impl TimerVictimGuest {
    /// A victim bursting through window `secret` of every `arms`-window
    /// round (rounds start at `start`, windows are `window` long).
    pub fn new(secret: u64, arms: u64, window: VirtOffset, start: VirtNanos) -> Self {
        TimerVictimGuest {
            secret,
            window,
            start,
            period: VirtOffset::from_nanos(window.as_nanos() * arms.max(1)),
        }
    }
}

impl GuestProgram for TimerVictimGuest {
    fn on_boot(&mut self, env: &mut GuestEnv) {
        let first =
            VirtNanos::from_nanos(self.start.as_nanos() + self.secret * self.window.as_nanos());
        env.set_periodic_timer(BURST_TIMER, first, self.period);
    }

    fn on_packet(&mut self, _packet: &Packet, _env: &mut GuestEnv) {}

    fn on_disk_done(&mut self, _op: DiskOp, _r: BlockRange, _d: &[u64], _env: &mut GuestEnv) {}

    fn on_vtimer(&mut self, timer_id: u64, env: &mut GuestEnv) {
        if timer_id == BURST_TIMER {
            // ~1 branch per virtual nanosecond at the default slope: the
            // burst spans the window it starts.
            env.compute(self.window.as_nanos());
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Parameter schema of the `"timer-channel"` workload.
const TIMER_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "arms",
        ty: ValueType::Int,
        default: "4",
        doc: "windows per round; the victim bursts in exactly one of them",
    },
    ParamSpec {
        key: "window_ms",
        ty: ValueType::Int,
        default: "20",
        doc: "window length, virtual ms (probe deadlines sit at midpoints)",
    },
    ParamSpec {
        key: "rounds",
        ty: ValueType::Int32,
        default: "12",
        doc: "probe rounds per run",
    },
    ParamSpec {
        key: "secret",
        ty: ValueType::Int,
        default: "2",
        doc: "the victim's secret arm: which window its CPU burst fills",
    },
    ParamSpec {
        key: "victim",
        ty: ValueType::Bool,
        default: "true",
        doc: "coreside the secret-phased victim with the first replica",
    },
    ParamSpec {
        key: "start_ms",
        ty: ValueType::Int,
        default: "50",
        doc: "virtual time of round 0's first window, ms (boot settle)",
    },
];

/// The `"timer-channel"` workload: a [`TimerProbeGuest`] attacker VM,
/// optionally coresident with a [`TimerVictimGuest`] on its first replica
/// host, measured until the attacker finishes its rounds. Samples are
/// per-window timer latencies; `extra` carries the window-recovery score.
pub struct TimerChannelWorkload;

struct TimerChannelInstalled {
    vm: VmHandle,
    client: ClientHandle,
    secret: u64,
    arms: u64,
}

impl InstalledWorkload for TimerChannelInstalled {
    fn vm(&self) -> VmHandle {
        self.vm
    }

    fn client(&self) -> Option<ClientHandle> {
        Some(self.client)
    }

    fn collect(&self, sim: &mut CloudSim) -> WorkloadOutcome {
        let g = sim
            .cloud
            .guest_program::<TimerProbeGuest>(self.vm, 0)
            .expect("attacker program");
        let samples: Vec<f64> = g.samples_ns().iter().map(|&ns| ns as f64 / 1.0e6).collect();
        let rounds = g.rounds_done();
        let recovered = g
            .guesses()
            .iter()
            .filter(|&&guess| guess == self.secret)
            .count() as f64;
        let accuracy = if rounds > 0 {
            recovered / f64::from(rounds)
        } else {
            0.0
        };
        WorkloadOutcome {
            samples_ms: samples,
            completed: u64::from(rounds),
            extra: vec![
                ("probe_rounds".to_string(), f64::from(rounds)),
                ("recovered_rounds".to_string(), recovered),
                ("recovery_accuracy".to_string(), accuracy),
                ("chance_accuracy".to_string(), 1.0 / self.arms as f64),
            ],
        }
    }
}

impl Workload for TimerChannelWorkload {
    fn name(&self) -> &str {
        "timer-channel"
    }

    fn about(&self) -> &str {
        "virtual-timer attacker vs coresident secret-phased CPU victim on the vCPU scheduler beat"
    }

    fn params(&self) -> &[ParamSpec] {
        TIMER_PARAMS
    }

    fn channels(&self) -> &'static [ChannelKind] {
        &[ChannelKind::Net, ChannelKind::Timer]
    }

    fn install(
        &self,
        b: &mut CloudBuilder,
        ctx: &InstallCtx<'_>,
        params: &WorkloadParams,
    ) -> Result<Box<dyn InstalledWorkload>, String> {
        let arms: u64 = params.get(TIMER_PARAMS, "arms")?;
        let window_ms: u64 = params.get(TIMER_PARAMS, "window_ms")?;
        let rounds = params.get(TIMER_PARAMS, "rounds")?;
        let secret: u64 = params.get(TIMER_PARAMS, "secret")?;
        let victim: bool = params.get(TIMER_PARAMS, "victim")?;
        let start_ms: u64 = params.get(TIMER_PARAMS, "start_ms")?;
        if arms < 2 || window_ms == 0 {
            return Err("timer-channel needs arms >= 2 and window_ms >= 1".to_string());
        }
        if secret >= arms {
            return Err(format!(
                "timer-channel secret arm {secret} is out of range (arms = {arms})"
            ));
        }
        let window = VirtOffset::from_millis(window_ms);
        let start = VirtNanos::from_millis(start_ms);
        let monitor = b.next_client_endpoint();
        let vm = ctx.add_vm(b, &move || {
            Box::new(TimerProbeGuest::new(arms, window, start, rounds, monitor))
        });
        if victim {
            // The coresidency under attack: the victim shares exactly the
            // attacker's first replica host (Sec. III's threat model).
            b.add_baseline_vm(
                ctx.replica_hosts[0],
                Box::new(TimerVictimGuest::new(secret, arms, window, start)),
            );
        }
        let client = b.add_client(Box::new(CompletionWaiter::new(1)));
        Ok(Box::new(TimerChannelInstalled {
            vm,
            client,
            secret,
            arms,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{install, WorkloadParams};
    use simkit::time::{SimDuration, SimTime};
    use stopwatch_core::config::CloudConfig;

    fn run(stopwatch: bool, victim: bool, seed: u64) -> WorkloadOutcome {
        let params =
            WorkloadParams::from_pairs([("victim", if victim { "true" } else { "false" })]);
        let mut cfg = CloudConfig::fast_test();
        cfg.defense = if stopwatch { "stopwatch" } else { "baseline" }.to_string();
        let mut b = CloudBuilder::new(cfg, 3);
        let wl = install("timer-channel", &mut b, &[0, 1, 2], &params, seed).expect("install");
        let mut sim = b.build();
        sim.run_until_clients_done(SimTime::from_secs(120));
        let drain = sim.now() + SimDuration::from_millis(500);
        sim.run_until(drain);
        wl.collect(&mut sim)
    }

    fn extra(out: &WorkloadOutcome, key: &str) -> f64 {
        out.extra
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .expect(key)
    }

    #[test]
    fn baseline_with_victim_recovers_the_secret_window() {
        let out = run(false, true, 7);
        assert_eq!(out.completed, 12, "all rounds finished");
        assert_eq!(out.samples_ms.len(), 48, "12 rounds x 4 windows");
        assert!(
            extra(&out, "recovery_accuracy") >= 0.75,
            "baseline attacker should read the victim's burst window: {out:?}"
        );
        // The leak is the scheduler timeslice: one window per round reads
        // ~2 ms late, the rest are on time.
        let slow = out.samples_ms.iter().filter(|&&s| s > 1.0).count();
        assert_eq!(slow, 12, "one queued-behind-victim window per round");
    }

    #[test]
    fn baseline_without_victim_reads_on_time_fires() {
        let out = run(false, false, 7);
        assert_eq!(out.completed, 12);
        assert!(
            out.samples_ms.iter().all(|&s| s < 0.1),
            "an idle host dispatches every fire at its deadline: {:?}",
            &out.samples_ms[..4]
        );
    }

    #[test]
    fn stopwatch_median_pins_fires_at_delta_t() {
        let out = run(true, true, 7);
        assert_eq!(out.completed, 12);
        // Every replica proposes deadline + Δt (10 ms default) and the
        // median is that constant: the victim's schedule is invisible.
        assert!(
            out.samples_ms.iter().all(|&s| (s - 10.0).abs() < 1e-12),
            "agreed fires read exactly deadline + Δt: {:?}",
            &out.samples_ms[..4]
        );
        let chance = extra(&out, "chance_accuracy");
        assert!(
            extra(&out, "recovery_accuracy") <= chance + 0.05,
            "accuracy should collapse to chance under StopWatch: {out:?}"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(true, true, 11);
        let b = run(true, true, 11);
        assert_eq!(a.samples_ms, b.samples_ms);
        assert_eq!(a.extra, b.extra);
    }

    #[test]
    fn bad_arms_are_rejected() {
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        let bad = WorkloadParams::from_pairs([("secret", "9")]);
        let err = install("timer-channel", &mut b, &[0, 1, 2], &bad, 1)
            .err()
            .expect("out-of-range secret");
        assert!(err.contains("out of range"), "{err}");
        let one = WorkloadParams::from_pairs([("arms", "1"), ("secret", "0")]);
        let err = install("timer-channel", &mut b, &[0, 1, 2], &one, 1)
            .err()
            .expect("one arm");
        assert!(err.contains("arms >= 2"), "{err}");
    }
}
