//! Named workload factory: build any of the paper's workloads into a
//! [`CloudBuilder`] from a string key plus string-keyed parameters, and
//! extract its measurements afterward without knowing the concrete types.
//!
//! This is the joint between the declarative sweep layer (`harness`) and
//! the concrete guests/clients of this crate: a scenario names a workload
//! (`"web-http"`, `"parsec:ferret"`, ...) and the registry does the
//! wiring. Every workload reports its results the same way — a vector of
//! latency-like samples in milliseconds plus a completion count — which is
//! what sweep aggregation consumes.

use crate::attack::{AttackerGuest, LoadGuest, ProbeClient, VictimGuest};
use crate::nfs::{NfsServerGuest, NhfsstoneClient};
use crate::parsec::{profile, CompletionWaiter, ParsecGuest, PARSEC};
use crate::web::{FileServerGuest, HttpDownloadClient, UdpDownloadClient, UdpFileGuest};
use simkit::time::SimDuration;
use std::collections::BTreeMap;
use stopwatch_core::cloud::{ClientHandle, CloudBuilder, CloudSim, VmHandle};
use vmm::guest::IdleGuest;

/// String-keyed workload parameters (grid-cell coordinates land here).
///
/// Unknown keys are rejected at install time so a typo in a sweep axis
/// fails loudly instead of silently running defaults.
#[derive(Debug, Clone, Default)]
pub struct WorkloadParams {
    map: BTreeMap<String, String>,
}

impl WorkloadParams {
    /// An empty parameter set (workload defaults apply).
    pub fn new() -> Self {
        WorkloadParams::default()
    }

    /// Builds from `(key, value)` pairs; later pairs win.
    pub fn from_pairs<'a, I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut p = WorkloadParams::new();
        for (k, v) in pairs {
            p.set(k, v);
        }
        p
    }

    /// Sets one parameter.
    pub fn set(&mut self, key: &str, value: &str) {
        self.map.insert(key.to_string(), value.to_string());
    }

    fn ensure_known(&self, workload: &str, allowed: &[&str]) -> Result<(), String> {
        for key in self.map.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "workload {workload:?} does not take parameter {key:?} (allowed: {allowed:?})"
                ));
            }
        }
        Ok(())
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| format!("bad value {raw:?} for workload parameter {key:?}")),
        }
    }
}

/// Which concrete workload was installed (drives result extraction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Idle,
    WebHttp,
    WebUdp,
    Nfs,
    Parsec,
    Attack,
}

/// Handle to a workload wired into a cloud, used to pull measurements out
/// of the finished simulation.
#[derive(Debug, Clone, Copy)]
pub struct InstalledWorkload {
    kind: Kind,
    vm: VmHandle,
    client: Option<ClientHandle>,
}

/// What a workload measured, in registry-neutral form.
#[derive(Debug, Clone, Default)]
pub struct WorkloadOutcome {
    /// Per-operation latency-like samples in milliseconds. For the attack
    /// workload these are the attacker-observed inter-packet deltas — the
    /// quantity whose distribution leaks (or, under StopWatch, does not).
    pub samples_ms: Vec<f64>,
    /// Completed operations (downloads, NFS ops, finished apps, probes).
    pub completed: u64,
    /// Workload-specific side measurements (e.g. `sent_segments` /
    /// `received_segments` for the TCP workloads — Fig. 6b's
    /// packets-per-op accounting).
    pub extra: Vec<(String, f64)>,
}

impl InstalledWorkload {
    /// The workload's protected VM.
    pub fn vm(&self) -> VmHandle {
        self.vm
    }

    /// The workload's measuring client, if it has one.
    pub fn client(&self) -> Option<ClientHandle> {
        self.client
    }

    /// Extracts the measurements after a run.
    pub fn collect(&self, sim: &mut CloudSim) -> WorkloadOutcome {
        match self.kind {
            Kind::Idle => WorkloadOutcome::default(),
            Kind::WebHttp => {
                let c = sim
                    .cloud
                    .client_app::<HttpDownloadClient>(self.client.expect("web-http has a client"))
                    .expect("client type");
                let samples: Vec<f64> = c
                    .results()
                    .iter()
                    .map(|r| r.latency.as_millis_f64())
                    .collect();
                WorkloadOutcome {
                    completed: samples.len() as u64,
                    samples_ms: samples,
                    extra: vec![
                        ("sent_segments".to_string(), c.sent_segments as f64),
                        ("received_segments".to_string(), c.received_segments as f64),
                    ],
                }
            }
            Kind::WebUdp => {
                let c = sim
                    .cloud
                    .client_app::<UdpDownloadClient>(self.client.expect("web-udp has a client"))
                    .expect("client type");
                let samples: Vec<f64> = c
                    .results()
                    .iter()
                    .map(|r| r.latency.as_millis_f64())
                    .collect();
                WorkloadOutcome {
                    completed: samples.len() as u64,
                    samples_ms: samples,
                    extra: vec![("sent_datagrams".to_string(), c.sent_datagrams as f64)],
                }
            }
            Kind::Nfs => {
                let c = sim
                    .cloud
                    .client_app::<NhfsstoneClient>(self.client.expect("nfs has a client"))
                    .expect("client type");
                WorkloadOutcome {
                    samples_ms: c.latencies().iter().map(|l| l.as_millis_f64()).collect(),
                    completed: c.completed(),
                    extra: vec![
                        ("sent_segments".to_string(), c.sent_segments as f64),
                        ("received_segments".to_string(), c.received_segments as f64),
                    ],
                }
            }
            Kind::Parsec => {
                let c = sim
                    .cloud
                    .client_app::<CompletionWaiter>(self.client.expect("parsec has a client"))
                    .expect("client type");
                let samples: Vec<f64> = c.arrivals().iter().map(|t| t.as_millis_f64()).collect();
                WorkloadOutcome {
                    completed: samples.len() as u64,
                    samples_ms: samples,
                    extra: Vec::new(),
                }
            }
            Kind::Attack => {
                let g = sim
                    .cloud
                    .guest_program::<AttackerGuest>(self.vm, 0)
                    .expect("attacker program");
                let samples = g.deltas_ms();
                WorkloadOutcome {
                    completed: samples.len() as u64,
                    samples_ms: samples,
                    extra: Vec::new(),
                }
            }
        }
    }
}

/// Every installable workload name (parsec apps enumerated).
pub fn workload_names() -> Vec<String> {
    let mut names = vec![
        "idle".to_string(),
        "web-http".to_string(),
        "web-udp".to_string(),
        "nfs".to_string(),
        "attack".to_string(),
    ];
    names.extend(PARSEC.iter().map(|p| format!("parsec:{}", p.name)));
    names
}

/// Wires workload `name` into the builder: the protected (or baseline) VM
/// on `replica_hosts`, plus its measuring client.
///
/// With `stopwatch` false the VM is an unprotected baseline instance on
/// `replica_hosts[0]` — the comparison arm of every paper figure.
///
/// # Errors
///
/// Unknown workload names, unknown/bad parameters, and empty
/// `replica_hosts` are reported as messages.
pub fn install(
    name: &str,
    b: &mut CloudBuilder,
    stopwatch: bool,
    replica_hosts: &[usize],
    params: &WorkloadParams,
    seed: u64,
) -> Result<InstalledWorkload, String> {
    if replica_hosts.is_empty() {
        return Err("workload needs at least one replica host".to_string());
    }
    let add_vm =
        |b: &mut CloudBuilder, make: &dyn Fn() -> Box<dyn vmm::guest::GuestProgram>| -> VmHandle {
            if stopwatch {
                b.add_stopwatch_vm(replica_hosts, make)
            } else {
                b.add_baseline_vm(replica_hosts[0], make())
            }
        };

    if let Some(app) = name.strip_prefix("parsec:") {
        params.ensure_known(name, &[])?;
        let prof = profile(app).ok_or_else(|| {
            format!(
                "unknown PARSEC app {app:?} (have: {:?})",
                PARSEC.iter().map(|p| p.name).collect::<Vec<_>>()
            )
        })?;
        let monitor = b.next_client_endpoint();
        let vm = add_vm(b, &move || Box::new(ParsecGuest::new(prof, monitor)));
        let client = b.add_client(Box::new(CompletionWaiter::new(1)));
        return Ok(InstalledWorkload {
            kind: Kind::Parsec,
            vm,
            client: Some(client),
        });
    }

    match name {
        "idle" => {
            params.ensure_known(name, &[])?;
            let vm = add_vm(b, &|| Box::new(IdleGuest));
            Ok(InstalledWorkload {
                kind: Kind::Idle,
                vm,
                client: None,
            })
        }
        "web-http" => {
            params.ensure_known(name, &["bytes", "downloads", "file_id"])?;
            let bytes = params.get("bytes", 100_000u64)?;
            let downloads = params.get("downloads", 3u32)?;
            let file_id = params.get("file_id", 1u64)?;
            let vm = add_vm(b, &|| Box::new(FileServerGuest::new()));
            let me = b.next_client_endpoint();
            let client = b.add_client(Box::new(HttpDownloadClient::new(
                me,
                vm.endpoint,
                file_id,
                bytes,
                downloads,
            )));
            Ok(InstalledWorkload {
                kind: Kind::WebHttp,
                vm,
                client: Some(client),
            })
        }
        "web-udp" => {
            params.ensure_known(name, &["bytes", "downloads", "file_id"])?;
            let bytes = params.get("bytes", 100_000u64)?;
            let downloads = params.get("downloads", 3u32)?;
            let file_id = params.get("file_id", 1u64)?;
            let vm = add_vm(b, &|| Box::new(UdpFileGuest::new()));
            let me = b.next_client_endpoint();
            let client = b.add_client(Box::new(UdpDownloadClient::new(
                me,
                vm.endpoint,
                file_id,
                bytes,
                downloads,
            )));
            Ok(InstalledWorkload {
                kind: Kind::WebUdp,
                vm,
                client: Some(client),
            })
        }
        "nfs" => {
            params.ensure_known(name, &["rate", "ops"])?;
            let rate = params.get("rate", 100.0f64)?;
            let ops = params.get("ops", 200u64)?;
            let vm = add_vm(b, &|| Box::new(NfsServerGuest::new()));
            let me = b.next_client_endpoint();
            let client = b.add_client(Box::new(NhfsstoneClient::new(
                me,
                vm.endpoint,
                rate,
                ops,
                seed,
            )));
            Ok(InstalledWorkload {
                kind: Kind::Nfs,
                vm,
                client: Some(client),
            })
        }
        "attack" => {
            params.ensure_known(
                name,
                &[
                    "probes",
                    "gap_ms",
                    "victim",
                    "victim_burst",
                    "victim_period",
                    "load",
                    "load_chunk",
                ],
            )?;
            let probes = params.get("probes", 300u32)?;
            let gap_ms = params.get("gap_ms", 40u64)?;
            let victim = params.get("victim", false)?;
            let victim_burst = params.get("victim_burst", 100_000_000u64)?;
            let victim_period = params.get("victim_period", 50u64)?;
            let load = params.get("load", false)?;
            let load_chunk = params.get("load_chunk", 50_000_000u64)?;
            let vm = add_vm(b, &|| Box::new(AttackerGuest::new()));
            if victim {
                // The victim coresides with the attacker's first replica —
                // the coresidency the attacker is trying to sense (Fig. 4).
                b.add_baseline_vm(
                    replica_hosts[0],
                    Box::new(VictimGuest::new(victim_burst, victim_period)),
                );
            }
            if load {
                // Sec. IX: a collaborating attacker loads the same host,
                // trying to marginalize that replica from the median.
                b.add_baseline_vm(replica_hosts[0], Box::new(LoadGuest::new(load_chunk)));
            }
            let me = b.next_client_endpoint();
            let client = b.add_client(Box::new(ProbeClient::new(
                me,
                vm.endpoint,
                probes,
                SimDuration::from_millis(gap_ms),
                seed ^ 0xa77a_c4ed,
            )));
            Ok(InstalledWorkload {
                kind: Kind::Attack,
                vm,
                client: Some(client),
            })
        }
        other => Err(format!(
            "unknown workload {other:?} (have: {:?})",
            workload_names()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::time::SimTime;
    use stopwatch_core::config::CloudConfig;

    fn run(name: &str, stopwatch: bool, params: WorkloadParams) -> WorkloadOutcome {
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        let wl = install(name, &mut b, stopwatch, &[0, 1, 2], &params, 7).expect("install");
        let mut sim = b.build();
        sim.run_until_clients_done(SimTime::from_secs(120));
        let drain = sim.now() + SimDuration::from_millis(500);
        sim.run_until(drain);
        wl.collect(&mut sim)
    }

    #[test]
    fn names_cover_parsec_apps() {
        let names = workload_names();
        assert!(names.iter().any(|n| n == "web-http"));
        assert!(names.iter().any(|n| n == "parsec:ferret"));
        assert_eq!(names.len(), 5 + PARSEC.len());
    }

    #[test]
    fn unknown_workload_and_params_error() {
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        assert!(install(
            "no-such",
            &mut b,
            true,
            &[0, 1, 2],
            &WorkloadParams::new(),
            1
        )
        .is_err());
        let bad = WorkloadParams::from_pairs([("byts", "10")]);
        assert!(install("web-http", &mut b, true, &[0, 1, 2], &bad, 1).is_err());
        let unparsable = WorkloadParams::from_pairs([("bytes", "many")]);
        assert!(install("web-http", &mut b, true, &[0, 1, 2], &unparsable, 1).is_err());
        assert!(install(
            "parsec:quake",
            &mut b,
            true,
            &[0, 1, 2],
            &WorkloadParams::new(),
            1
        )
        .is_err());
        assert!(install("idle", &mut b, true, &[], &WorkloadParams::new(), 1).is_err());
    }

    #[test]
    fn web_http_roundtrip_collects_samples() {
        let params = WorkloadParams::from_pairs([("bytes", "20000"), ("downloads", "2")]);
        let out = run("web-http", true, params);
        assert_eq!(out.completed, 2);
        assert_eq!(out.samples_ms.len(), 2);
        assert!(out.samples_ms.iter().all(|&ms| ms > 0.0));
    }

    #[test]
    fn web_udp_baseline_collects_samples() {
        let params = WorkloadParams::from_pairs([("bytes", "20000"), ("downloads", "1")]);
        let out = run("web-udp", false, params);
        assert_eq!(out.completed, 1);
    }

    #[test]
    fn nfs_collects_op_latencies() {
        let params = WorkloadParams::from_pairs([("rate", "200"), ("ops", "40")]);
        let out = run("nfs", true, params);
        assert_eq!(out.completed, 40);
        assert_eq!(out.samples_ms.len(), 40);
    }

    #[test]
    fn attack_collects_probe_deltas() {
        let params = WorkloadParams::from_pairs([("probes", "30"), ("victim", "true")]);
        let out = run("attack", true, params);
        assert!(out.completed >= 20, "deltas {}", out.completed);
    }

    #[test]
    fn idle_collects_nothing() {
        let out = run("idle", true, WorkloadParams::new());
        assert_eq!(out.completed, 0);
        assert!(out.samples_ms.is_empty());
    }
}
