//! The typed workload API: an open [`Workload`] trait plus a registration
//! table, replacing the old closed `match` on string keys.
//!
//! This is the joint between the declarative sweep layer (`harness`) and
//! the concrete guests/clients of this crate: a scenario names a workload
//! (`"web-http"`, `"parsec:ferret"`, ...) and the table does the wiring.
//! Each workload declares its parameters as [`ParamSpec`] rows — key,
//! type, default, doc — so the sweep layer can enumerate and type-check
//! every parameter *before* a scenario runs, and `swbench describe`
//! prints the catalogue. Adding a workload (a cache-channel guest pair, a
//! trace replayer, ...) is implementing [`Workload`] and calling
//! [`register`]; no central dispatch changes.
//!
//! Every workload reports its results the same way — a vector of
//! latency-like samples in milliseconds plus a completion count
//! ([`WorkloadOutcome`]) — which is what sweep aggregation consumes.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};
use stopwatch_core::cloud::{ClientHandle, CloudBuilder, CloudSim, VmHandle};
use stopwatch_core::schema::{self, ValueType};
use vmm::channel::ChannelKind;
use vmm::guest::{GuestProgram, IdleGuest};

/// One declared workload parameter: key, type, default, doc. The default
/// is the string form the parameter's type parses.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// The parameter key (also its sweep-axis name).
    pub key: &'static str,
    /// Declared value type.
    pub ty: ValueType,
    /// Default value, rendered.
    pub default: &'static str,
    /// One-line description for `swbench describe`.
    pub doc: &'static str,
}

/// String-keyed workload parameters (grid-cell coordinates land here).
///
/// Keys and values are validated against the owning workload's
/// [`ParamSpec`] schema at install time (and by sweep harnesses before
/// anything runs), so a typo fails loudly with a did-you-mean suggestion
/// instead of silently running defaults.
#[derive(Debug, Clone, Default)]
pub struct WorkloadParams {
    map: BTreeMap<String, String>,
}

impl WorkloadParams {
    /// An empty parameter set (workload defaults apply).
    pub fn new() -> Self {
        WorkloadParams::default()
    }

    /// Builds from `(key, value)` pairs; later pairs win.
    pub fn from_pairs<'a, I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut p = WorkloadParams::new();
        for (k, v) in pairs {
            p.set(k, v);
        }
        p
    }

    /// Sets one parameter.
    pub fn set(&mut self, key: &str, value: &str) {
        self.map.insert(key.to_string(), value.to_string());
    }

    /// Checks every key against `specs` (unknown keys get a nearest-key
    /// suggestion) and every value against its declared type.
    ///
    /// # Errors
    ///
    /// A message naming the workload, the offending key, and — for
    /// plausible typos — the nearest valid key.
    pub fn validate(&self, workload: &str, specs: &[ParamSpec]) -> Result<(), String> {
        for (key, value) in &self.map {
            let Some(spec) = specs.iter().find(|s| s.key == key.as_str()) else {
                let keys: Vec<&str> = specs.iter().map(|s| s.key).collect();
                return Err(schema::unknown_key(
                    &format!("parameter of workload {workload:?}"),
                    key,
                    &keys,
                ));
            };
            spec.ty
                .check(value)
                .map_err(|e| format!("workload {workload:?} parameter {key:?}: {e}"))?;
        }
        Ok(())
    }

    /// The fully-resolved parameter set: every declared parameter with its
    /// explicit or default value, in schema order — what sweep reports
    /// embed per cell.
    pub fn resolved(&self, specs: &[ParamSpec]) -> Vec<(String, String)> {
        specs
            .iter()
            .map(|s| {
                let value = self
                    .map
                    .get(s.key)
                    .cloned()
                    .unwrap_or_else(|| s.default.to_string());
                (s.key.to_string(), value)
            })
            .collect()
    }

    /// Typed lookup: the explicit value for `key`, or its schema default.
    /// Panics if `key` has no [`ParamSpec`] in `specs` — a programming
    /// error in the calling workload, not a data error.
    ///
    /// # Errors
    ///
    /// Reports unparsable values (explicit or default) by key.
    pub fn get<T: std::str::FromStr>(&self, specs: &[ParamSpec], key: &str) -> Result<T, String> {
        let spec = specs
            .iter()
            .find(|s| s.key == key)
            .unwrap_or_else(|| panic!("no ParamSpec for parameter {key:?}"));
        let raw = self
            .map
            .get(key)
            .map(String::as_str)
            .unwrap_or(spec.default);
        raw.parse::<T>()
            .map_err(|_| format!("bad value {raw:?} for workload parameter {key:?}"))
    }
}

/// What a workload installs against: the replica placement and the run's
/// master seed (for client-side randomness). The defense arm comes from
/// the cloud's own configuration (`cfg.defense`), so one workload
/// definition runs under every registered arm.
#[derive(Debug, Clone, Copy)]
pub struct InstallCtx<'a> {
    /// Hosts offered to the workload VM: replicated arms (StopWatch)
    /// spread replicas over all of them, single-host arms (baseline,
    /// deterland, bucketed) run on the first entry only.
    pub replica_hosts: &'a [usize],
    /// Master seed for this run.
    pub seed: u64,
}

impl InstallCtx<'_> {
    /// Adds the workload's VM under the builder's configured defense arm
    /// — the comparison axis of every shootout figure.
    pub fn add_vm(
        &self,
        b: &mut CloudBuilder,
        make: &dyn Fn() -> Box<dyn GuestProgram>,
    ) -> VmHandle {
        b.add_defended_vm(self.replica_hosts, make)
    }
}

/// What a workload measured, in registry-neutral form.
#[derive(Debug, Clone, Default)]
pub struct WorkloadOutcome {
    /// Per-operation latency-like samples in milliseconds. For the attack
    /// workload these are the attacker-observed inter-packet deltas — the
    /// quantity whose distribution leaks (or, under StopWatch, does not).
    pub samples_ms: Vec<f64>,
    /// Completed operations (downloads, NFS ops, finished apps, probes).
    pub completed: u64,
    /// Workload-specific side measurements (e.g. `sent_segments` /
    /// `received_segments` for the TCP workloads — Fig. 6b's
    /// packets-per-op accounting).
    pub extra: Vec<(String, f64)>,
}

/// Handle to a workload wired into a cloud, used to pull measurements out
/// of the finished simulation. Each [`Workload`] returns its own
/// implementation; the sweep layer only sees this interface.
pub trait InstalledWorkload {
    /// The workload's protected VM.
    fn vm(&self) -> VmHandle;

    /// The workload's measuring client, if it has one.
    fn client(&self) -> Option<ClientHandle> {
        None
    }

    /// Extracts the measurements after a run.
    fn collect(&self, sim: &mut CloudSim) -> WorkloadOutcome;
}

/// An installable experiment workload: a name, a self-describing
/// parameter schema, and the wiring that installs it into a
/// [`CloudBuilder`]. Implementations register via [`register`] (built-ins
/// are pre-registered) and plug into every sweep layer — `swbench`
/// grids, presets, and `bench` figures — with no central dispatch.
pub trait Workload: Send + Sync {
    /// The registry key (`"web-http"`, `"parsec:ferret"`, ...).
    fn name(&self) -> &str;

    /// One-line description for `swbench describe`.
    fn about(&self) -> &str;

    /// The declared parameter schema.
    fn params(&self) -> &[ParamSpec];

    /// The timing channels this workload exercises — which of the VMM's
    /// agreement paths its guests actually drive (`swbench describe`
    /// prints them). Defaults to the network channel, which every
    /// client-measured workload crosses; override to add `cache`/`disk`
    /// or (for client-less scaffolding) to claim none.
    fn channels(&self) -> &'static [ChannelKind] {
        &[ChannelKind::Net]
    }

    /// Wires the workload into `b`: its protected (or baseline) VM plus
    /// its measuring client. `params` has been validated against
    /// [`Workload::params`] by the caller.
    ///
    /// # Errors
    ///
    /// Reports wiring failures as messages.
    fn install(
        &self,
        b: &mut CloudBuilder,
        ctx: &InstallCtx<'_>,
        params: &WorkloadParams,
    ) -> Result<Box<dyn InstalledWorkload>, String>;
}

/// The "idle" workload: one protected VM running no guest program and no
/// client — the minimal cloud (overhead floors, placement tests).
pub struct IdleWorkload;

struct IdleInstalled {
    vm: VmHandle,
}

impl InstalledWorkload for IdleInstalled {
    fn vm(&self) -> VmHandle {
        self.vm
    }

    fn collect(&self, _sim: &mut CloudSim) -> WorkloadOutcome {
        WorkloadOutcome::default()
    }
}

impl Workload for IdleWorkload {
    fn name(&self) -> &str {
        "idle"
    }

    fn about(&self) -> &str {
        "idle guest, no client (overhead floor / placement scaffolding)"
    }

    fn params(&self) -> &[ParamSpec] {
        &[]
    }

    fn channels(&self) -> &'static [ChannelKind] {
        &[]
    }

    fn install(
        &self,
        b: &mut CloudBuilder,
        ctx: &InstallCtx<'_>,
        _params: &WorkloadParams,
    ) -> Result<Box<dyn InstalledWorkload>, String> {
        let vm = ctx.add_vm(b, &|| Box::new(IdleGuest));
        Ok(Box::new(IdleInstalled { vm }))
    }
}

fn builtin_workloads() -> Vec<Arc<dyn Workload>> {
    let mut table: Vec<Arc<dyn Workload>> = vec![
        Arc::new(IdleWorkload),
        Arc::new(crate::web::WebHttpWorkload),
        Arc::new(crate::web::WebUdpWorkload),
        Arc::new(crate::nfs::NfsWorkload),
        Arc::new(crate::attack::AttackWorkload),
        Arc::new(crate::cache::CacheChannelWorkload),
        Arc::new(crate::disk::DiskChannelWorkload),
        Arc::new(crate::timer::TimerChannelWorkload),
    ];
    for profile in crate::parsec::PARSEC {
        table.push(Arc::new(crate::parsec::ParsecWorkload::new(profile)));
    }
    table
}

fn table() -> &'static RwLock<Vec<Arc<dyn Workload>>> {
    static TABLE: OnceLock<RwLock<Vec<Arc<dyn Workload>>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(builtin_workloads()))
}

/// Registers a workload. A workload with the same name replaces the
/// existing entry (latest wins); otherwise it is appended, preserving
/// registration order in [`workload_names`] and `swbench describe`.
pub fn register(workload: Arc<dyn Workload>) {
    let mut t = table().write().expect("workload table");
    match t.iter_mut().find(|w| w.name() == workload.name()) {
        Some(slot) => *slot = workload,
        None => t.push(workload),
    }
}

/// Looks up a workload by name.
pub fn find(name: &str) -> Option<Arc<dyn Workload>> {
    table()
        .read()
        .expect("workload table")
        .iter()
        .find(|w| w.name() == name)
        .cloned()
}

/// Like [`find`], but unknown names become the standard
/// layer-key-suggestion error message.
///
/// # Errors
///
/// Names the unknown workload, the nearest registered name (for plausible
/// typos), and the full registry.
pub fn require(name: &str) -> Result<Arc<dyn Workload>, String> {
    find(name).ok_or_else(|| {
        let names = workload_names();
        let keys: Vec<&str> = names.iter().map(String::as_str).collect();
        schema::unknown_key("workload", name, &keys)
    })
}

/// A snapshot of every registered workload, in registration order.
pub fn workloads() -> Vec<Arc<dyn Workload>> {
    table().read().expect("workload table").clone()
}

/// Every installable workload name, in registration order.
pub fn workload_names() -> Vec<String> {
    table()
        .read()
        .expect("workload table")
        .iter()
        .map(|w| w.name().to_string())
        .collect()
}

/// Wires workload `name` into the builder: its VM under the builder's
/// configured defense arm (`cfg.defense`) on `replica_hosts`, plus its
/// measuring client. Parameters are validated against the workload's
/// schema first.
///
/// # Errors
///
/// Unknown workload names and unknown/ill-typed parameters are reported
/// with nearest-key suggestions; empty `replica_hosts` is reported as a
/// message.
pub fn install(
    name: &str,
    b: &mut CloudBuilder,
    replica_hosts: &[usize],
    params: &WorkloadParams,
    seed: u64,
) -> Result<Box<dyn InstalledWorkload>, String> {
    if replica_hosts.is_empty() {
        return Err("workload needs at least one replica host".to_string());
    }
    let workload = require(name)?;
    params.validate(name, workload.params())?;
    install_prepared(&workload, b, replica_hosts, params, seed)
}

/// [`install`] for a workload that has already been looked up and whose
/// parameters are already validated — the path a [`require`]-and-cache
/// caller (the harness scenario arena) takes so repeated builds of the
/// same shape skip the registry lock and schema walk.
///
/// # Errors
///
/// Empty `replica_hosts` is reported as a message.
pub fn install_prepared(
    workload: &Arc<dyn Workload>,
    b: &mut CloudBuilder,
    replica_hosts: &[usize],
    params: &WorkloadParams,
    seed: u64,
) -> Result<Box<dyn InstalledWorkload>, String> {
    if replica_hosts.is_empty() {
        return Err("workload needs at least one replica host".to_string());
    }
    let ctx = InstallCtx {
        replica_hosts,
        seed,
    };
    workload.install(b, &ctx, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec::PARSEC;
    use simkit::time::{SimDuration, SimTime};
    use stopwatch_core::config::CloudConfig;

    fn run(name: &str, stopwatch: bool, params: WorkloadParams) -> WorkloadOutcome {
        let mut cfg = CloudConfig::fast_test();
        cfg.defense = if stopwatch { "stopwatch" } else { "baseline" }.to_string();
        let mut b = CloudBuilder::new(cfg, 3);
        let wl = install(name, &mut b, &[0, 1, 2], &params, 7).expect("install");
        let mut sim = b.build();
        sim.run_until_clients_done(SimTime::from_secs(120));
        let drain = sim.now() + SimDuration::from_millis(500);
        sim.run_until(drain);
        wl.collect(&mut sim)
    }

    #[test]
    fn names_cover_parsec_apps() {
        let names = workload_names();
        for builtin in [
            "idle",
            "web-http",
            "web-udp",
            "nfs",
            "attack",
            "cache-channel",
        ] {
            assert!(names.iter().any(|n| n == builtin), "missing {builtin}");
        }
        for p in PARSEC {
            let name = format!("parsec:{}", p.name);
            assert!(names.contains(&name), "missing {name}");
        }
        // The table is process-global and other tests may register extra
        // workloads concurrently, so only a lower bound is stable here.
        assert!(names.len() >= 6 + PARSEC.len());
    }

    #[test]
    fn every_registered_workload_has_a_valid_schema() {
        for w in workloads() {
            assert!(!w.name().is_empty());
            assert!(!w.about().is_empty(), "{:?} lacks an about", w.name());
            for p in w.params() {
                assert!(!p.doc.is_empty(), "{}.{} lacks a doc", w.name(), p.key);
                p.ty.check(p.default).unwrap_or_else(|e| {
                    panic!("{}.{} default fails its own type: {e}", w.name(), p.key)
                });
            }
        }
    }

    #[test]
    fn unknown_workload_and_params_error() {
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        assert!(install("no-such", &mut b, &[0, 1, 2], &WorkloadParams::new(), 1).is_err());
        let bad = WorkloadParams::from_pairs([("byts", "10")]);
        assert!(install("web-http", &mut b, &[0, 1, 2], &bad, 1).is_err());
        let unparsable = WorkloadParams::from_pairs([("bytes", "many")]);
        assert!(install("web-http", &mut b, &[0, 1, 2], &unparsable, 1).is_err());
        assert!(install(
            "parsec:quake",
            &mut b,
            &[0, 1, 2],
            &WorkloadParams::new(),
            1
        )
        .is_err());
        assert!(install("idle", &mut b, &[], &WorkloadParams::new(), 1).is_err());
    }

    #[test]
    fn errors_carry_nearest_key_suggestions() {
        let err = require("web-htp").err().expect("unknown workload");
        assert!(err.contains("did you mean \"web-http\""), "{err}");
        let err = require("parsec:feret").err().expect("unknown workload");
        assert!(err.contains("did you mean \"parsec:ferret\""), "{err}");
        let typo = WorkloadParams::from_pairs([("byts", "10")]);
        let err = typo
            .validate("web-http", find("web-http").unwrap().params())
            .unwrap_err();
        assert!(err.contains("did you mean \"bytes\""), "{err}");
        assert!(err.contains("web-http"), "{err}");
        let ill_typed = WorkloadParams::from_pairs([("bytes", "many")]);
        let err = ill_typed
            .validate("web-http", find("web-http").unwrap().params())
            .unwrap_err();
        assert!(err.contains("\"bytes\""), "{err}");
        assert!(err.contains("many"), "{err}");
    }

    #[test]
    fn resolved_overlays_explicit_values_on_defaults() {
        let specs = find("web-http").unwrap().params().to_vec();
        let params = WorkloadParams::from_pairs([("bytes", "777")]);
        let resolved = params.resolved(&specs);
        assert_eq!(resolved.len(), specs.len());
        assert!(resolved.contains(&("bytes".to_string(), "777".to_string())));
        assert!(resolved.contains(&("downloads".to_string(), "3".to_string())));
    }

    #[test]
    fn register_is_open_and_latest_wins() {
        struct Custom;
        impl Workload for Custom {
            fn name(&self) -> &str {
                "custom-test"
            }
            fn about(&self) -> &str {
                "test-only"
            }
            fn params(&self) -> &[ParamSpec] {
                &[]
            }
            fn install(
                &self,
                b: &mut CloudBuilder,
                ctx: &InstallCtx<'_>,
                _params: &WorkloadParams,
            ) -> Result<Box<dyn InstalledWorkload>, String> {
                let vm = ctx.add_vm(b, &|| Box::new(IdleGuest));
                Ok(Box::new(IdleInstalled { vm }))
            }
        }
        let before = workload_names().len();
        register(Arc::new(Custom));
        assert_eq!(workload_names().len(), before + 1);
        assert!(find("custom-test").is_some());
        register(Arc::new(Custom)); // same name: replaces, not duplicates
        assert_eq!(workload_names().len(), before + 1);
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        assert!(install("custom-test", &mut b, &[0, 1, 2], &WorkloadParams::new(), 1).is_ok());
    }

    #[test]
    fn web_http_roundtrip_collects_samples() {
        let params = WorkloadParams::from_pairs([("bytes", "20000"), ("downloads", "2")]);
        let out = run("web-http", true, params);
        assert_eq!(out.completed, 2);
        assert_eq!(out.samples_ms.len(), 2);
        assert!(out.samples_ms.iter().all(|&ms| ms > 0.0));
    }

    #[test]
    fn web_udp_baseline_collects_samples() {
        let params = WorkloadParams::from_pairs([("bytes", "20000"), ("downloads", "1")]);
        let out = run("web-udp", false, params);
        assert_eq!(out.completed, 1);
    }

    #[test]
    fn nfs_collects_op_latencies() {
        let params = WorkloadParams::from_pairs([("rate", "200"), ("ops", "40")]);
        let out = run("nfs", true, params);
        assert_eq!(out.completed, 40);
        assert_eq!(out.samples_ms.len(), 40);
    }

    #[test]
    fn attack_collects_probe_deltas() {
        let params = WorkloadParams::from_pairs([("probes", "30"), ("victim", "true")]);
        let out = run("attack", true, params);
        assert!(out.completed >= 20, "deltas {}", out.completed);
    }

    #[test]
    fn idle_collects_nothing() {
        let out = run("idle", true, WorkloadParams::new());
        assert_eq!(out.completed, 0);
        assert!(out.samples_ms.is_empty());
    }
}
