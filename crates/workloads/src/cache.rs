//! The cache-channel experiment: a PRIME+PROBE attacker sensing a
//! coresident victim through the shared LLC (paper Sec. III).
//!
//! A [`PrimeProbeGuest`] primes every monitored cache set, waits a few
//! timer ticks, then probes each line and records per-set latency
//! totals. A [`CacheVictimGuest`] coresides with the attacker's **first
//! replica only** and touches one *secret* set each tick — its evictions
//! turn that set's probes into misses on that host. Under Baseline (one
//! replica) the asymmetry shows through and the attacker recovers the
//! secret set round after round; under StopWatch the probe readout is
//! the **median** of the replicas' proposals (the unified
//! `GuestSlot::add_proposal` agreement path), and with only one of 3 (or 5)
//! replicas perturbed the median reads "hit" — the attacker's recovery
//! accuracy collapses toward chance.
//!
//! The per-set probe-latency samples feed the sweep layer's
//! leakage-verdict pipeline exactly like network timings do: a victim
//! cell whose latency distribution an observer cannot tell apart from
//! the clean cell's leaks nothing through this channel.

use crate::parsec::CompletionWaiter;
use crate::registry::{
    InstallCtx, InstalledWorkload, ParamSpec, Workload, WorkloadOutcome, WorkloadParams,
};
use netsim::packet::{Body, EndpointId, Packet};
use stopwatch_core::cloud::{ClientHandle, CloudBuilder, CloudSim, VmHandle};
use stopwatch_core::schema::ValueType;
use storage::block::BlockRange;
use storage::device::DiskOp;
use vmm::channel::ChannelKind;
use vmm::guest::{GuestEnv, GuestProgram};

/// Completion-report tag understood by [`CompletionWaiter`].
const DONE_TAG: u64 = 0xD0E;

/// The PRIME+PROBE attacker guest.
///
/// Round structure (all decisions driven by injected events only, so the
/// replicas stay in lockstep):
///
/// 1. **Prime** every way of every monitored set (at boot, and again
///    right after each round's last probe readout);
/// 2. **Wait** `probe_gap_ticks` PIT ticks, giving a coresident victim
///    time to evict;
/// 3. **Probe** every line; per-probe latencies arrive via
///    [`GuestProgram::on_cache_probe`] and accumulate into per-set
///    totals;
/// 4. **Guess**: the set with the largest total latency is the round's
///    recovered secret — unless every set reads the same (no signal), in
///    which case the attacker cycles through sets, the deterministic
///    stand-in for guessing at random.
///
/// After the final round it reports completion to the monitor client.
pub struct PrimeProbeGuest {
    sets: u64,
    ways: u64,
    probe_gap_ticks: u64,
    rounds: u32,
    monitor: EndpointId,
    round: u32,
    primed_at_tick: Option<u64>,
    outstanding: u64,
    set_latency: Vec<u64>,
    samples_ns: Vec<u64>,
    guesses: Vec<u64>,
    done: bool,
}

impl PrimeProbeGuest {
    /// An attacker monitoring `sets` sets of `ways` ways, probing
    /// `probe_gap_ticks` ticks after each prime, for `rounds` rounds;
    /// reports completion to `monitor`.
    pub fn new(
        sets: u64,
        ways: u64,
        probe_gap_ticks: u64,
        rounds: u32,
        monitor: EndpointId,
    ) -> Self {
        PrimeProbeGuest {
            sets: sets.max(1),
            ways: ways.max(1),
            probe_gap_ticks: probe_gap_ticks.max(1),
            rounds: rounds.max(1),
            monitor,
            round: 0,
            primed_at_tick: None,
            outstanding: 0,
            set_latency: Vec::new(),
            samples_ns: Vec::new(),
            guesses: Vec::new(),
            done: false,
        }
    }

    /// Per-set probe-latency totals, one entry per `(round, set)` pair in
    /// round-major order, virtual nanoseconds.
    pub fn samples_ns(&self) -> &[u64] {
        &self.samples_ns
    }

    /// The recovered set per completed round.
    pub fn guesses(&self) -> &[u64] {
        &self.guesses
    }

    /// Completed rounds.
    pub fn rounds_done(&self) -> u32 {
        self.round
    }

    fn prime(&mut self, at_tick: u64, env: &mut GuestEnv) {
        for set in 0..self.sets {
            for way in 0..self.ways {
                env.cache_touch(set, way);
            }
        }
        self.primed_at_tick = Some(at_tick);
    }

    fn finish_round(&mut self, env: &mut GuestEnv) {
        self.samples_ns.extend(self.set_latency.iter().copied());
        let max = *self.set_latency.iter().max().expect("sets > 0");
        let min = *self.set_latency.iter().min().expect("sets > 0");
        let guess = if max == min {
            // Flat readout: no signal. Cycle deterministically — the
            // determinism-safe stand-in for a random guess.
            u64::from(self.round) % self.sets
        } else {
            self.set_latency
                .iter()
                .position(|&l| l == max)
                .expect("max exists") as u64
        };
        self.guesses.push(guess);
        self.round += 1;
        if self.round >= self.rounds {
            self.done = true;
            env.send(
                self.monitor,
                Body::Raw {
                    tag: DONE_TAG,
                    len: 64,
                },
            );
        } else {
            self.prime(env.pit_ticks, env);
        }
    }
}

impl GuestProgram for PrimeProbeGuest {
    fn on_boot(&mut self, env: &mut GuestEnv) {
        self.prime(0, env);
    }

    fn on_packet(&mut self, _packet: &Packet, _env: &mut GuestEnv) {}

    fn on_disk_done(&mut self, _op: DiskOp, _r: BlockRange, _d: &[u64], _env: &mut GuestEnv) {}

    fn on_timer(&mut self, env: &mut GuestEnv) {
        if self.done || self.outstanding > 0 {
            return;
        }
        let Some(primed_at) = self.primed_at_tick else {
            return;
        };
        if env.pit_ticks < primed_at + self.probe_gap_ticks {
            return;
        }
        self.primed_at_tick = None;
        self.set_latency = vec![0; self.sets as usize];
        self.outstanding = self.sets * self.ways;
        for set in 0..self.sets {
            for way in 0..self.ways {
                env.cache_probe(set, way);
            }
        }
    }

    fn on_cache_probe(&mut self, set: u64, _tag: u64, latency_ns: u64, env: &mut GuestEnv) {
        self.set_latency[set as usize] += latency_ns;
        self.outstanding -= 1;
        if self.outstanding == 0 {
            self.finish_round(env);
        }
    }

    fn wants_timer(&self) -> bool {
        true
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// The victim: a guest whose cache footprint depends on its secret. Every
/// `every_ticks` PIT ticks it walks all ways of its secret set —
/// evicting whatever the attacker primed there on the host they share.
pub struct CacheVictimGuest {
    secret_set: u64,
    ways: u64,
    every_ticks: u64,
}

impl CacheVictimGuest {
    /// A victim touching all `ways` of `secret_set` every `every_ticks`
    /// ticks.
    pub fn new(secret_set: u64, ways: u64, every_ticks: u64) -> Self {
        CacheVictimGuest {
            secret_set,
            ways: ways.max(1),
            every_ticks: every_ticks.max(1),
        }
    }
}

impl GuestProgram for CacheVictimGuest {
    fn on_boot(&mut self, _env: &mut GuestEnv) {}

    fn on_packet(&mut self, _packet: &Packet, _env: &mut GuestEnv) {}

    fn on_disk_done(&mut self, _op: DiskOp, _r: BlockRange, _d: &[u64], _env: &mut GuestEnv) {}

    fn on_timer(&mut self, env: &mut GuestEnv) {
        if env.pit_ticks.is_multiple_of(self.every_ticks) {
            for way in 0..self.ways {
                // Victim tags live in their own space; distinct owners
                // never alias anyway, but the offset keeps intent clear.
                env.cache_touch(self.secret_set, 1_000 + way);
            }
        }
    }

    fn wants_timer(&self) -> bool {
        true
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Parameter schema of the `"cache-channel"` workload.
const CACHE_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "sets",
        ty: ValueType::Int,
        default: "8",
        doc: "shared-LLC sets the attacker monitors (host cache geometry)",
    },
    ParamSpec {
        key: "ways",
        ty: ValueType::Int,
        default: "2",
        doc: "ways per set; the attacker primes and probes all of them",
    },
    ParamSpec {
        key: "probe_gap_ticks",
        ty: ValueType::Int,
        default: "2",
        doc: "PIT ticks between prime and probe (the victim's window)",
    },
    ParamSpec {
        key: "rounds",
        ty: ValueType::Int32,
        default: "20",
        doc: "PRIME+PROBE rounds per run",
    },
    ParamSpec {
        key: "secret",
        ty: ValueType::Int,
        default: "3",
        doc: "the victim's secret arm: which cache set its accesses target",
    },
    ParamSpec {
        key: "victim",
        ty: ValueType::Bool,
        default: "true",
        doc: "coreside the secret-dependent victim with the first replica",
    },
    ParamSpec {
        key: "victim_every",
        ty: ValueType::Int,
        default: "1",
        doc: "ticks between victim accesses to its secret set",
    },
];

/// The `"cache-channel"` workload: a [`PrimeProbeGuest`] attacker VM,
/// optionally coresident with a [`CacheVictimGuest`] on its first replica
/// host, measured until the attacker finishes its rounds. Samples are
/// per-set probe-latency totals; `extra` carries the set-recovery score.
pub struct CacheChannelWorkload;

struct CacheChannelInstalled {
    vm: VmHandle,
    client: ClientHandle,
    secret: u64,
    sets: u64,
}

impl InstalledWorkload for CacheChannelInstalled {
    fn vm(&self) -> VmHandle {
        self.vm
    }

    fn client(&self) -> Option<ClientHandle> {
        Some(self.client)
    }

    fn collect(&self, sim: &mut CloudSim) -> WorkloadOutcome {
        let g = sim
            .cloud
            .guest_program::<PrimeProbeGuest>(self.vm, 0)
            .expect("attacker program");
        let samples: Vec<f64> = g.samples_ns().iter().map(|&ns| ns as f64 / 1.0e6).collect();
        let rounds = g.rounds_done();
        let recovered = g
            .guesses()
            .iter()
            .filter(|&&guess| guess == self.secret)
            .count() as f64;
        let accuracy = if rounds > 0 {
            recovered / f64::from(rounds)
        } else {
            0.0
        };
        WorkloadOutcome {
            samples_ms: samples,
            completed: u64::from(rounds),
            extra: vec![
                ("probe_rounds".to_string(), f64::from(rounds)),
                ("recovered_rounds".to_string(), recovered),
                ("recovery_accuracy".to_string(), accuracy),
                ("chance_accuracy".to_string(), 1.0 / self.sets as f64),
            ],
        }
    }
}

impl Workload for CacheChannelWorkload {
    fn name(&self) -> &str {
        "cache-channel"
    }

    fn about(&self) -> &str {
        "PRIME+PROBE attacker vs coresident secret-dependent victim on the shared LLC (Sec. III)"
    }

    fn params(&self) -> &[ParamSpec] {
        CACHE_PARAMS
    }

    fn channels(&self) -> &'static [ChannelKind] {
        &[ChannelKind::Net, ChannelKind::Cache]
    }

    fn install(
        &self,
        b: &mut CloudBuilder,
        ctx: &InstallCtx<'_>,
        params: &WorkloadParams,
    ) -> Result<Box<dyn InstalledWorkload>, String> {
        let sets: u64 = params.get(CACHE_PARAMS, "sets")?;
        let ways: u64 = params.get(CACHE_PARAMS, "ways")?;
        let probe_gap_ticks = params.get(CACHE_PARAMS, "probe_gap_ticks")?;
        let rounds = params.get(CACHE_PARAMS, "rounds")?;
        let secret: u64 = params.get(CACHE_PARAMS, "secret")?;
        let victim: bool = params.get(CACHE_PARAMS, "victim")?;
        let victim_every = params.get(CACHE_PARAMS, "victim_every")?;
        if sets == 0 || ways == 0 {
            return Err("cache-channel needs sets >= 1 and ways >= 1".to_string());
        }
        if secret >= sets {
            return Err(format!(
                "cache-channel secret set {secret} is out of range (sets = {sets})"
            ));
        }
        b.set_cache_geometry(sets, ways as usize);
        let monitor = b.next_client_endpoint();
        let vm = ctx.add_vm(b, &move || {
            Box::new(PrimeProbeGuest::new(
                sets,
                ways,
                probe_gap_ticks,
                rounds,
                monitor,
            ))
        });
        if victim {
            // The coresidency under attack: the victim shares exactly the
            // attacker's first replica host (Sec. III's threat model).
            b.add_baseline_vm(
                ctx.replica_hosts[0],
                Box::new(CacheVictimGuest::new(secret, ways, victim_every)),
            );
        }
        let client = b.add_client(Box::new(CompletionWaiter::new(1)));
        Ok(Box::new(CacheChannelInstalled {
            vm,
            client,
            secret,
            sets,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{install, WorkloadParams};
    use simkit::time::{SimDuration, SimTime};
    use stopwatch_core::config::CloudConfig;

    fn run(stopwatch: bool, victim: bool, seed: u64) -> WorkloadOutcome {
        let params = WorkloadParams::from_pairs([
            ("rounds", "10"),
            ("victim", if victim { "true" } else { "false" }),
        ]);
        let mut cfg = CloudConfig::fast_test();
        cfg.defense = if stopwatch { "stopwatch" } else { "baseline" }.to_string();
        let mut b = CloudBuilder::new(cfg, 3);
        let wl = install("cache-channel", &mut b, &[0, 1, 2], &params, seed).expect("install");
        let mut sim = b.build();
        sim.run_until_clients_done(SimTime::from_secs(120));
        let drain = sim.now() + SimDuration::from_millis(500);
        sim.run_until(drain);
        wl.collect(&mut sim)
    }

    fn extra(out: &WorkloadOutcome, key: &str) -> f64 {
        out.extra
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .expect(key)
    }

    #[test]
    fn baseline_with_victim_recovers_the_secret_set() {
        let out = run(false, true, 7);
        assert_eq!(out.completed, 10, "all rounds finished");
        assert_eq!(out.samples_ms.len(), 80, "10 rounds x 8 sets");
        assert!(
            extra(&out, "recovery_accuracy") >= 0.9,
            "baseline attacker should recover the secret nearly every round: {out:?}"
        );
    }

    #[test]
    fn baseline_without_victim_reads_flat_hits() {
        let out = run(false, false, 7);
        assert_eq!(out.completed, 10);
        // All probes hit: per-set total = ways x HIT_NS = 80 ns.
        let hit_total = 2.0 * vmm::cache::CacheModel::HIT_NS as f64 / 1.0e6;
        assert!(
            out.samples_ms
                .iter()
                .all(|&s| (s - hit_total).abs() < 1e-12),
            "clean runs read a flat hit latency: {:?}",
            &out.samples_ms[..8]
        );
        assert!(
            extra(&out, "recovery_accuracy") <= 0.2,
            "no signal to recover"
        );
    }

    #[test]
    fn stopwatch_median_hides_the_victim() {
        let out = run(true, true, 7);
        assert_eq!(out.completed, 10);
        let hit_total = 2.0 * vmm::cache::CacheModel::HIT_NS as f64 / 1.0e6;
        assert!(
            out.samples_ms
                .iter()
                .all(|&s| (s - hit_total).abs() < 1e-12),
            "median of (miss, hit, hit) reads hit: {:?}",
            &out.samples_ms[..8]
        );
        let chance = extra(&out, "chance_accuracy");
        assert!(
            extra(&out, "recovery_accuracy") <= chance + 0.05,
            "accuracy should collapse to chance under StopWatch: {out:?}"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(true, true, 11);
        let b = run(true, true, 11);
        assert_eq!(a.samples_ms, b.samples_ms);
        assert_eq!(a.extra, b.extra);
    }

    #[test]
    fn bad_geometry_is_rejected() {
        let mut b = CloudBuilder::new(CloudConfig::fast_test(), 3);
        let bad = WorkloadParams::from_pairs([("secret", "99")]);
        let err = install("cache-channel", &mut b, &[0, 1, 2], &bad, 1)
            .err()
            .expect("out-of-range secret");
        assert!(err.contains("out of range"), "{err}");
        let zero = WorkloadParams::from_pairs([("sets", "0"), ("secret", "0")]);
        let err = install("cache-channel", &mut b, &[0, 1, 2], &zero, 1)
            .err()
            .expect("zero sets");
        assert!(err.contains("sets >= 1"), "{err}");
    }
}
