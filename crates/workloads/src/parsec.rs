//! The Fig. 7 workload: five PARSEC 2.1 applications modeled as
//! compute/disk-I/O profiles calibrated to the paper's testbed — each app
//! alternates compute chunks with (synchronous) disk reads plus a final
//! result write, then reports completion to a monitor endpoint.
//!
//! The paper's observation: StopWatch's compute overhead is dominated by Δd
//! delaying every disk-completion interrupt, so the absolute penalty is
//! proportional to the number of disk interrupts (Fig. 7b).

use crate::registry::{
    InstallCtx, InstalledWorkload, ParamSpec, Workload, WorkloadOutcome, WorkloadParams,
};
use netsim::packet::{Body, EndpointId, Packet};
use simkit::time::SimTime;
use stopwatch_core::cloud::{ClientApp, ClientHandle, CloudBuilder, CloudSim, VmHandle};
use storage::block::BlockRange;
use storage::device::DiskOp;
use vmm::channel::ChannelKind;
use vmm::guest::{GuestEnv, GuestProgram};

/// One PARSEC application's profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsecProfile {
    /// Application name.
    pub name: &'static str,
    /// Baseline (unmodified Xen) runtime the paper measured, ms.
    pub paper_baseline_ms: u64,
    /// StopWatch runtime the paper measured, ms.
    pub paper_stopwatch_ms: u64,
    /// Disk interrupts during the run (paper Fig. 7b).
    pub disk_interrupts: u64,
    /// Pure-compute branches (calibrated: baseline runtime minus expected
    /// disk service time at 1e9 branches/s).
    pub compute_branches: u64,
}

/// The five applications of Fig. 7. `compute_branches` is calibrated so
/// that `compute + disk_interrupts × (sequential rotating-disk access)`
/// lands near the paper's baseline runtime on the default platform.
pub const PARSEC: [ParsecProfile; 5] = [
    ParsecProfile {
        name: "ferret",
        paper_baseline_ms: 171,
        paper_stopwatch_ms: 350,
        disk_interrupts: 31,
        compute_branches: 25_000_000,
    },
    ParsecProfile {
        name: "blackscholes",
        paper_baseline_ms: 177,
        paper_stopwatch_ms: 401,
        disk_interrupts: 38,
        compute_branches: 20_000_000,
    },
    ParsecProfile {
        name: "canneal",
        paper_baseline_ms: 1530,
        paper_stopwatch_ms: 3230,
        disk_interrupts: 183,
        compute_branches: 650_000_000,
    },
    ParsecProfile {
        name: "dedup",
        paper_baseline_ms: 3730,
        paper_stopwatch_ms: 5754,
        disk_interrupts: 293,
        compute_branches: 2_300_000_000,
    },
    ParsecProfile {
        name: "streamcluster",
        paper_baseline_ms: 290,
        paper_stopwatch_ms: 382,
        disk_interrupts: 27,
        compute_branches: 160_000_000,
    },
];

/// Looks up a profile by name.
pub fn profile(name: &str) -> Option<ParsecProfile> {
    PARSEC.iter().copied().find(|p| p.name == name)
}

const DONE_TOKEN: u64 = u64::MAX;

/// A PARSEC application guest: configuration, input unpacking (disk reads
/// interleaved with compute), computation, result write, completion report.
pub struct ParsecGuest {
    profile: ParsecProfile,
    monitor: EndpointId,
    ops_issued: u64,
    chunk: u64,
    finished_at: Option<simkit::time::VirtNanos>,
}

impl ParsecGuest {
    /// Creates the guest; it reports completion to `monitor`.
    pub fn new(profile: ParsecProfile, monitor: EndpointId) -> Self {
        // One compute chunk between consecutive disk ops.
        let chunk = profile.compute_branches / (profile.disk_interrupts + 1).max(1);
        ParsecGuest {
            profile,
            monitor,
            ops_issued: 0,
            chunk,
            finished_at: None,
        }
    }

    /// Virtual completion time, once finished.
    pub fn finished_at(&self) -> Option<simkit::time::VirtNanos> {
        self.finished_at
    }

    fn issue_next(&mut self, env: &mut GuestEnv) {
        if self.ops_issued < self.profile.disk_interrupts {
            let i = self.ops_issued;
            self.ops_issued += 1;
            env.compute(self.chunk);
            if i + 1 == self.profile.disk_interrupts {
                // The last op is the result write.
                env.disk_write(BlockRange::new(500_000 + i * 8, 8), i);
            } else {
                // Sequential input reads (unpacking inputs).
                env.disk_read(BlockRange::new(1_000 + i * 8, 8));
            }
        } else {
            // Tail computation, then report completion.
            env.compute(self.chunk);
            env.call_after(DONE_TOKEN);
        }
    }
}

impl GuestProgram for ParsecGuest {
    fn on_boot(&mut self, env: &mut GuestEnv) {
        self.issue_next(env);
    }

    fn on_packet(&mut self, _packet: &Packet, _env: &mut GuestEnv) {}

    fn on_disk_done(&mut self, _op: DiskOp, _range: BlockRange, _data: &[u64], env: &mut GuestEnv) {
        self.issue_next(env);
    }

    fn on_call(&mut self, token: u64, env: &mut GuestEnv) {
        if token == DONE_TOKEN && self.finished_at.is_none() {
            self.finished_at = Some(env.now);
            env.send(
                self.monitor,
                Body::Raw {
                    tag: 0xD0E,
                    len: 32,
                },
            );
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A monitor client that waits for `expected` completion reports and
/// records their (real-time) arrival.
pub struct CompletionWaiter {
    expected: u32,
    arrivals: Vec<SimTime>,
}

impl CompletionWaiter {
    /// Waits for `expected` completion packets.
    pub fn new(expected: u32) -> Self {
        CompletionWaiter {
            expected,
            arrivals: Vec::new(),
        }
    }

    /// Real arrival times of the completion reports.
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrivals
    }
}

impl ClientApp for CompletionWaiter {
    fn on_start(&mut self, _now: SimTime) -> Vec<Packet> {
        Vec::new()
    }

    fn on_packet(&mut self, packet: &Packet, now: SimTime) -> Vec<Packet> {
        if matches!(packet.body(), Body::Raw { tag: 0xD0E, .. }) {
            self.arrivals.push(now);
        }
        Vec::new()
    }

    fn on_tick(&mut self, _now: SimTime) -> Vec<Packet> {
        Vec::new()
    }

    fn is_done(&self) -> bool {
        self.arrivals.len() as u32 >= self.expected
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One `"parsec:<app>"` workload: a [`ParsecGuest`] built from its
/// profile, measured by a [`CompletionWaiter`] (Fig. 7). Each of the five
/// [`PARSEC`] profiles registers as its own named workload.
pub struct ParsecWorkload {
    profile: ParsecProfile,
    name: String,
}

impl ParsecWorkload {
    /// A workload named `parsec:<profile name>`.
    pub fn new(profile: ParsecProfile) -> Self {
        ParsecWorkload {
            name: format!("parsec:{}", profile.name),
            profile,
        }
    }
}

struct ParsecInstalled {
    vm: VmHandle,
    client: ClientHandle,
}

impl InstalledWorkload for ParsecInstalled {
    fn vm(&self) -> VmHandle {
        self.vm
    }

    fn client(&self) -> Option<ClientHandle> {
        Some(self.client)
    }

    fn collect(&self, sim: &mut CloudSim) -> WorkloadOutcome {
        let c = sim
            .cloud
            .client_app::<CompletionWaiter>(self.client)
            .expect("client type");
        let samples: Vec<f64> = c.arrivals().iter().map(|t| t.as_millis_f64()).collect();
        WorkloadOutcome {
            completed: samples.len() as u64,
            samples_ms: samples,
            extra: Vec::new(),
        }
    }
}

impl Workload for ParsecWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn about(&self) -> &str {
        "PARSEC app completion time, calibrated to the paper's testbed (Fig. 7)"
    }

    fn params(&self) -> &[ParamSpec] {
        &[]
    }

    fn channels(&self) -> &'static [ChannelKind] {
        &[ChannelKind::Net, ChannelKind::Disk]
    }

    fn install(
        &self,
        b: &mut CloudBuilder,
        ctx: &InstallCtx<'_>,
        _params: &WorkloadParams,
    ) -> Result<Box<dyn InstalledWorkload>, String> {
        let profile = self.profile;
        let monitor = b.next_client_endpoint();
        let vm = ctx.add_vm(b, &move || Box::new(ParsecGuest::new(profile, monitor)));
        let client = b.add_client(Box::new(CompletionWaiter::new(1)));
        Ok(Box::new(ParsecInstalled { vm, client }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopwatch_core::cloud::CloudBuilder;
    use stopwatch_core::config::{CloudConfig, DiskKind};

    /// Runs one PARSEC app; returns (runtime ms, disk interrupts at one
    /// replica).
    pub fn run_app(name: &str, stopwatch: bool) -> (f64, u64) {
        let prof = profile(name).expect("known app");
        let mut cfg = CloudConfig::default();
        cfg.broadcast_band = None; // keep unit tests fast
        cfg.disk = DiskKind::Rotating;
        let mut b = CloudBuilder::new(cfg, 3);
        let monitor_ep = EndpointId(2000);
        let vm = if stopwatch {
            b.add_stopwatch_vm(&[0, 1, 2], move || {
                Box::new(ParsecGuest::new(prof, monitor_ep))
            })
        } else {
            b.add_baseline_vm(0, Box::new(ParsecGuest::new(prof, monitor_ep)))
        };
        let client = b.add_client(Box::new(CompletionWaiter::new(1)));
        let mut sim = b.build();
        sim.run_until_clients_done(SimTime::from_secs(60));
        let w = sim.cloud.client_app::<CompletionWaiter>(client).unwrap();
        assert_eq!(w.arrivals().len(), 1, "{name} must complete");
        let runtime_ms = w.arrivals()[0].as_millis_f64();
        let (h, s) = sim.cloud.vm_replicas(vm)[0];
        let disk_irqs = sim.cloud.host(h).slot(s).counters().get("disk_irq");
        (runtime_ms, disk_irqs)
    }

    #[test]
    fn ferret_baseline_near_paper() {
        let (ms, irqs) = run_app("ferret", false);
        let paper = 171.0;
        assert_eq!(irqs, 31, "Fig 7b count");
        assert!(
            ms > paper * 0.4 && ms < paper * 2.5,
            "ferret baseline {ms}ms vs paper {paper}ms"
        );
    }

    #[test]
    fn ferret_stopwatch_overhead_shape() {
        let (base, _) = run_app("ferret", false);
        let (sw, irqs) = run_app("ferret", true);
        assert_eq!(irqs, 31);
        // Paper: 171 -> 350 (~2x). Require a clear slowdown bounded by 4x.
        assert!(sw > base * 1.3, "stopwatch {sw} vs baseline {base}");
        assert!(sw < base * 4.0, "stopwatch {sw} vs baseline {base}");
    }

    #[test]
    fn profiles_are_complete() {
        assert_eq!(PARSEC.len(), 5);
        assert!(profile("dedup").is_some());
        assert!(profile("nonesuch").is_none());
        for p in PARSEC {
            assert!(p.compute_branches > 0);
            assert!(p.disk_interrupts > 0);
            assert!(p.paper_stopwatch_ms > p.paper_baseline_ms);
        }
    }
}
