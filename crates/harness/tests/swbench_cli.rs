//! `swbench`-level integration tests of the typed experiment API: the
//! `describe` catalogue and the fail-before-anything-runs error paths
//! (unknown knob, ill-typed value, unknown workload param, duplicate
//! axis), each with its did-you-mean suggestion. These drive the real
//! binary, so they cover arg parsing, sweep validation, and exit codes
//! end to end — without executing a single scenario.

use std::process::{Command, Output};

fn swbench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_swbench"))
        .args(args)
        .output()
        .expect("run swbench")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn describe_lists_every_knob_and_workload_with_types_and_defaults() {
    let out = swbench(&["describe"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Every CloudConfig knob, with type and default visible.
    for knob in stopwatch_core::config::CloudConfig::knobs() {
        assert!(stdout.contains(knob.key), "knob {} missing", knob.key);
    }
    assert!(
        stdout.contains("offset_ms"),
        "knob types missing:\n{stdout}"
    );
    assert!(stdout.contains("rotating|ssd"), "enum type missing");
    assert!(stdout.contains("50:100"), "broadcast_band default missing");
    // Every registered workload, with params, types and defaults.
    for name in workloads::registry::workload_names() {
        assert!(stdout.contains(&name), "workload {name} missing");
    }
    assert!(stdout.contains("bytes"), "web params missing");
    assert!(stdout.contains("100000"), "bytes default missing");
    assert!(stdout.contains("gap_ms"), "attack params missing");
    assert!(stdout.contains("(no parameters)"), "idle/parsec marker");
}

#[test]
fn describe_lists_workloads_alphabetically() {
    let out = swbench(&["describe"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The catalogue must not depend on registration/link order: workload
    // headers appear sorted by name.
    let mut names = workloads::registry::workload_names();
    names.sort();
    let positions: Vec<usize> = names
        .iter()
        .map(|n| {
            stdout
                .find(&format!("\n{n} "))
                .unwrap_or_else(|| panic!("workload {n} missing from describe"))
        })
        .collect();
    let mut sorted = positions.clone();
    sorted.sort_unstable();
    assert_eq!(positions, sorted, "describe order is not alphabetical");
}

#[test]
fn describe_lists_channel_kinds_per_workload() {
    let out = swbench(&["describe", "disk-channel"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("channels: net, disk"),
        "disk-channel names its timing channels:\n{stdout}"
    );
    let out = swbench(&["describe", "cache-channel"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("channels: net, cache"),
        "cache-channel names its timing channels:\n{stdout}"
    );
    let out = swbench(&["describe", "timer-channel"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("channels: net, timer"),
        "timer-channel names the timer channel:\n{stdout}"
    );
    let out = swbench(&["describe", "idle"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("channels: (none)"),
        "idle exercises no timing channel:\n{stdout}"
    );
    // The full catalogue carries a channels line for every workload.
    let out = swbench(&["describe"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let workloads = workloads::registry::workload_names().len();
    assert_eq!(
        stdout.matches("channels: ").count(),
        workloads,
        "one channels line per workload:\n{stdout}"
    );
}

#[test]
fn describe_lists_every_defense_arm_with_its_knobs() {
    let out = swbench(&["describe"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Defense arms"),
        "defenses section missing:\n{stdout}"
    );
    // Every registered arm, in alphabetical order, with its knob keys.
    let mut names = vmm::defense::arm_names();
    names.sort_unstable();
    let positions: Vec<usize> = names
        .iter()
        .map(|n| {
            stdout
                .find(&format!("\n{n} "))
                .unwrap_or_else(|| panic!("defense arm {n} missing from describe"))
        })
        .collect();
    let mut sorted = positions.clone();
    sorted.sort_unstable();
    assert_eq!(positions, sorted, "defense arms are not alphabetical");
    // The knob cross-references point at real CloudConfig knobs.
    assert!(stdout.contains("epoch_ms"), "deterland knob missing");
    assert!(stdout.contains("bucket_ns"), "bucketed knob missing");
    assert!(stdout.contains("knobs: (none)"), "baseline reads no knobs");
    // And the defense knob itself advertises the registry as its type.
    assert!(
        stdout.contains("baseline|bucketed|deterland|stopwatch"),
        "defense knob enum missing:\n{stdout}"
    );
}

#[test]
fn retired_stopwatch_flag_and_axis_point_at_the_defense_knob() {
    let out = swbench(&["sweep", "--workload", "web-http", "--stopwatch", "false"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown flag"), "{}", stderr(&out));
    let out = swbench(&[
        "sweep",
        "--workload",
        "web-http",
        "--axis",
        "stopwatch=false,true",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("cfg.defense"), "migration hint missing: {err}");
}

#[test]
fn describe_one_workload_and_suggest_on_typo() {
    let out = swbench(&["describe", "nfs"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rate"), "{stdout}");
    assert!(stdout.contains("ops"), "{stdout}");
    let out = swbench(&["describe", "nfss"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("did you mean \"nfs\""),
        "{}",
        stderr(&out)
    );
}

#[test]
fn unknown_knob_axis_fails_before_any_scenario_with_suggestion() {
    let out = swbench(&[
        "sweep",
        "--workload",
        "web-http",
        "--axis",
        "cfg.delta_q_ms=1,2",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("cfg.delta_q_ms"), "{err}");
    assert!(err.contains("did you mean \"delta_n_ms\""), "{err}");
    assert!(
        !err.contains("scenarios on"),
        "ran scenarios despite typo: {err}"
    );
}

#[test]
fn ill_typed_knob_value_fails_fast() {
    let out = swbench(&["sweep", "--workload", "web-http", "--set", "replicas=three"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("replicas"), "{err}");
    assert!(err.contains("three"), "{err}");
}

#[test]
fn unknown_workload_param_gets_cross_layer_or_nearest_suggestion() {
    // A bare knob key used as a workload param → points at cfg.<key>.
    let out = swbench(&["sweep", "--workload", "web-http", "--axis", "delta_n_ms=4"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cfg.delta_n_ms"), "{}", stderr(&out));
    // A near-miss of a real param → nearest-key suggestion.
    let out = swbench(&["sweep", "--workload", "web-http", "--param", "byts=10"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("did you mean \"bytes\""),
        "{}",
        stderr(&out)
    );
}

#[test]
fn unknown_workload_name_suggests_nearest() {
    let out = swbench(&["sweep", "--workload", "web-htp"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("did you mean \"web-http\""),
        "{}",
        stderr(&out)
    );
}

#[test]
fn duplicate_axis_keys_are_rejected() {
    let out = swbench(&[
        "sweep",
        "--workload",
        "web-http",
        "--axis",
        "bytes=1",
        "--axis",
        "bytes=2",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("duplicate --axis"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn threads_zero_fails_with_the_fix_spelled_out_everywhere() {
    for args in [
        &["run", "delta-n", "--quick", "--threads", "0"][..],
        &["sweep", "--workload", "web-http", "--threads", "0"][..],
        &["perf", "delta-n", "--threads", "0"][..],
    ] {
        let out = swbench(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = stderr(&out);
        assert!(err.contains("--threads 0"), "{args:?}: {err}");
        assert!(err.contains("omit the flag"), "{args:?}: {err}");
    }
}

#[test]
fn help_documents_the_threads_zero_rejection() {
    // The docs/behavior contract for RunnerOptions::effective_threads:
    // the API-level 0 means "all cores", but the CLI rejects an explicit
    // `--threads 0` — and `swbench help` must say so, spelling out both
    // the rejection and the fix.
    let out = swbench(&["help"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The fine print is line-wrapped; compare against the unwrapped text.
    let flat = stdout.split_whitespace().collect::<Vec<_>>().join(" ");
    assert!(flat.contains("--threads 0"), "{stdout}");
    assert!(flat.contains("rejected"), "{stdout}");
    assert!(flat.contains("omit the flag"), "{stdout}");
}

#[test]
fn perf_with_no_bench_lists_the_registry() {
    let out = swbench(&["perf"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("delta-n"), "{stdout}");
    assert!(stdout.contains("packet-storm"), "{stdout}");
    assert!(stdout.contains("timer-storm"), "{stdout}");
}

#[test]
fn perf_writes_bench_json_and_gates_against_it() {
    let dir = std::env::temp_dir().join("swbench_perf_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let report = dir.join("BENCH_packet-storm.json");
    let report_s = report.to_str().unwrap();

    // One quick pass produces a schema-versioned report.
    let out = swbench(&[
        "perf",
        "packet-storm",
        "--quick",
        "--repeats",
        "1",
        "--warmup",
        "0",
        "--out",
        report_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = std::fs::read_to_string(&report).expect("report written");
    assert!(
        json.contains(&format!(
            "\"schema_version\": {}",
            harness::perf::BENCH_SCHEMA_VERSION
        )),
        "{json}"
    );
    assert!(json.contains("\"bench\": \"packet-storm\""), "{json}");
    assert!(json.contains("\"events_per_sec\""), "{json}");
    assert!(json.contains("\"setup_ms\""), "v2 phase split: {json}");
    assert!(json.contains("\"run_ms\""), "v2 phase split: {json}");

    // Gating against itself passes (a run never regresses vs itself)...
    let out = swbench(&[
        "perf",
        "packet-storm",
        "--quick",
        "--repeats",
        "1",
        "--warmup",
        "0",
        "--out",
        dir.join("BENCH_again.json").to_str().unwrap(),
        "--baseline",
        report_s,
        "--max-regress",
        "0.99",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("perf gate ok"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // ...and an impossible baseline fails the gate with a clear verdict.
    let inflated = json.replace(
        "\"events_per_sec_best\": ",
        "\"events_per_sec_best\": 99999999999.0, \"was\": ",
    );
    let fast = dir.join("BENCH_fast.json");
    std::fs::write(&fast, inflated).expect("write inflated baseline");
    let out = swbench(&[
        "perf",
        "packet-storm",
        "--quick",
        "--repeats",
        "1",
        "--warmup",
        "0",
        "--out",
        dir.join("BENCH_again2.json").to_str().unwrap(),
        "--baseline",
        fast.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "inflated baseline must gate-fail");
    assert!(
        stderr(&out).contains("throughput regression"),
        "{}",
        stderr(&out)
    );
}
