//! Differential gate: the batched engine (hierarchical time-wheel +
//! batched median agreement) and the scalar reference paths must produce
//! **byte-identical** sweep reports, not just matching totals. This is
//! the end-to-end teeth behind `Sim::set_scalar_reference` — any
//! divergence in event order, medians, counters, or float formatting
//! shows up as a byte diff here.

use harness::prelude::*;

fn sweep_json(name: &str, scalar: bool) -> String {
    let spec = preset(name).expect("preset exists").spec(true);
    let mut scenarios = spec.scenarios().expect("scenario list builds");
    for s in &mut scenarios {
        s.scalar_reference = scalar;
    }
    let opts = RunnerOptions {
        threads: 1,
        progress: false,
    };
    let outcomes = run_scenarios(&scenarios, &opts);
    for o in &outcomes {
        assert!(
            o.result.is_ok(),
            "scenario {:?} failed: {:?}",
            o.label,
            o.result.as_ref().err()
        );
    }
    SweepReport::from_outcomes(name, &outcomes, None).to_json()
}

#[test]
fn delta_n_quick_sweep_is_byte_identical_batched_vs_scalar() {
    let batched = sweep_json("delta-n", false);
    let scalar = sweep_json("delta-n", true);
    assert!(
        batched == scalar,
        "batched and scalar sweep JSON diverge (lengths {} vs {})",
        batched.len(),
        scalar.len()
    );
}

#[test]
fn timer_channel_quick_sweep_is_byte_identical_batched_vs_scalar() {
    // The timer channel adds the vCPU-scheduler and virtual-timer paths
    // (cancellations, re-targeted hardware events) on top of delta-n's
    // packet flow — the cases where wheel tombstones could diverge.
    let batched = sweep_json("timer-channel", false);
    let scalar = sweep_json("timer-channel", true);
    assert!(
        batched == scalar,
        "batched and scalar sweep JSON diverge (lengths {} vs {})",
        batched.len(),
        scalar.len()
    );
}
