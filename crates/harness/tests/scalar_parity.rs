//! Differential gate: the batched engine (hierarchical time-wheel +
//! batched median agreement) and the scalar reference paths must produce
//! **byte-identical** sweep reports, not just matching totals. This is
//! the end-to-end teeth behind `Sim::set_scalar_reference` — any
//! divergence in event order, medians, counters, or float formatting
//! shows up as a byte diff here.

use harness::prelude::*;

fn report_json(name: &str, mut scenarios: Vec<Scenario>, scalar: bool) -> String {
    for s in &mut scenarios {
        s.scalar_reference = scalar;
    }
    let opts = RunnerOptions {
        threads: 1,
        progress: false,
    };
    let outcomes = run_scenarios(&scenarios, &opts);
    for o in &outcomes {
        assert!(
            o.result.is_ok(),
            "scenario {:?} failed: {:?}",
            o.label,
            o.result.as_ref().err()
        );
    }
    SweepReport::from_outcomes(name, &outcomes, None).to_json()
}

fn sweep_json(name: &str, scalar: bool) -> String {
    let spec = preset(name).expect("preset exists").spec(true);
    let scenarios = spec.scenarios().expect("scenario list builds");
    report_json(name, scenarios, scalar)
}

fn perf_json(name: &str, scalar: bool) -> String {
    let scenarios = perf_bench(name)
        .expect("perf bench exists")
        .scenarios(true)
        .expect("scenario list builds");
    report_json(name, scenarios, scalar)
}

#[test]
fn delta_n_quick_sweep_is_byte_identical_batched_vs_scalar() {
    let batched = sweep_json("delta-n", false);
    let scalar = sweep_json("delta-n", true);
    assert!(
        batched == scalar,
        "batched and scalar sweep JSON diverge (lengths {} vs {})",
        batched.len(),
        scalar.len()
    );
}

#[test]
fn packet_storm_quick_bench_is_byte_identical_batched_vs_scalar() {
    // The packet-dense hot path: cached packet identity, coalesced guest
    // computes, and the batched egress vote all run here. Any elided or
    // reordered event would shift `events_executed` and break the diff.
    let batched = perf_json("packet-storm", false);
    let scalar = perf_json("packet-storm", true);
    assert!(
        batched == scalar,
        "batched and scalar perf-scenario JSON diverge (lengths {} vs {})",
        batched.len(),
        scalar.len()
    );
}

#[test]
fn cache_storm_quick_bench_is_byte_identical_batched_vs_scalar() {
    // PRIME+PROBE rounds queue long compute runs between cache probes —
    // the densest Compute-coalescing traffic of any preset.
    let batched = perf_json("cache-storm", false);
    let scalar = perf_json("cache-storm", true);
    assert!(
        batched == scalar,
        "batched and scalar perf-scenario JSON diverge (lengths {} vs {})",
        batched.len(),
        scalar.len()
    );
}

#[test]
fn timer_channel_quick_sweep_is_byte_identical_batched_vs_scalar() {
    // The timer channel adds the vCPU-scheduler and virtual-timer paths
    // (cancellations, re-targeted hardware events) on top of delta-n's
    // packet flow — the cases where wheel tombstones could diverge.
    let batched = sweep_json("timer-channel", false);
    let scalar = sweep_json("timer-channel", true);
    assert!(
        batched == scalar,
        "batched and scalar sweep JSON diverge (lengths {} vs {})",
        batched.len(),
        scalar.len()
    );
}
