//! Declarative parameter sweeps: a [`SweepSpec`] is a cartesian grid of
//! axes over a base scenario, sharded over seeds, expanding to a flat,
//! deterministically ordered scenario list.
//!
//! Axis keys are routed by namespace:
//!
//! * `cfg.<key>` — a [`CloudConfig`](stopwatch_core::config::CloudConfig)
//!   override (see [`CloudConfig::knobs`] for the schema; the defense
//!   arm is the `cfg.defense` knob, backed by the `vmm::defense`
//!   registry);
//! * `workload` — the workload registry key itself;
//! * anything else — a workload parameter (`bytes`, `rate`, `victim`, ...).
//!
//! Every key and value is validated against the merged knob/parameter
//! schema by [`SweepSpec::validate`] **before** any scenario runs: a typo
//! fails with an error naming the layer, the offending key, and the
//! nearest valid key.
//!
//! Expansion order is row-major (first axis slowest), seeds innermost, so
//! the cell order of every report is the order axes were declared in —
//! stable under any runner thread count.

use crate::scenario::Scenario;
use simkit::time::SimDuration;
use std::sync::Arc;
use stopwatch_core::config::CloudConfig;
use workloads::registry::{self, Workload};

/// One swept dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    /// Routed key (see module docs).
    pub key: String,
    /// The values the axis takes, in declaration order.
    pub values: Vec<String>,
}

impl Axis {
    /// An axis from anything stringly-typed.
    pub fn new<K: Into<String>, V: ToString>(key: K, values: &[V]) -> Axis {
        Axis {
            key: key.into(),
            values: values.iter().map(ToString::to_string).collect(),
        }
    }
}

/// A full sweep: base scenario × axes × seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Report name.
    pub name: String,
    /// Base workload (an axis named `workload` overrides per cell).
    pub workload: String,
    /// Host count (0 = sized from the placement).
    pub hosts: usize,
    /// Replica placement (empty = hosts `0..replicas`).
    pub replica_hosts: Vec<usize>,
    /// Overrides applied to every cell (axes win on conflicts).
    pub base_overrides: Vec<(String, String)>,
    /// Workload parameters applied to every cell (axes win on conflicts).
    pub base_params: Vec<(String, String)>,
    /// The swept axes.
    pub axes: Vec<Axis>,
    /// Seed shards; every cell runs once per seed.
    pub seeds: Vec<u64>,
    /// Simulated-time budget per scenario.
    pub duration: SimDuration,
    /// Post-completion drain per scenario.
    pub drain: SimDuration,
    /// Run every scenario on the pre-batching scalar reference paths
    /// (see [`Scenario::scalar_reference`]).
    pub scalar_reference: bool,
}

impl SweepSpec {
    /// A sweep of `workload` with no axes and one seed — the base other
    /// fields are edited onto.
    pub fn new(name: &str, workload: &str) -> Self {
        SweepSpec {
            name: name.to_string(),
            workload: workload.to_string(),
            hosts: 0,
            replica_hosts: Vec::new(),
            base_overrides: Vec::new(),
            base_params: Vec::new(),
            axes: Vec::new(),
            seeds: vec![42],
            duration: SimDuration::from_secs(60),
            drain: SimDuration::from_millis(500),
            scalar_reference: false,
        }
    }

    /// Adds an axis (builder style).
    pub fn axis<K: Into<String>, V: ToString>(mut self, key: K, values: &[V]) -> Self {
        self.axes.push(Axis::new(key, values));
        self
    }

    /// Shards over `count` seeds derived from `base` (base, base+1, ...).
    pub fn seed_shards(mut self, base: u64, count: usize) -> Self {
        self.seeds = (0..count as u64).map(|i| base + i).collect();
        self
    }

    /// Number of scenarios this spec expands to.
    pub fn scenario_count(&self) -> usize {
        self.axes
            .iter()
            .map(|a| a.values.len().max(1))
            .product::<usize>()
            * self.seeds.len()
    }

    /// Validates the whole spec against the merged knob/parameter schema
    /// without expanding it: every workload in play must be registered,
    /// every `cfg.*` key must be a [`CloudConfig`] knob whose values
    /// parse (`cfg.defense` values resolve against the defense-arm
    /// registry), and every other key must be a declared parameter of
    /// **every** workload in play (with values of the declared type).
    /// [`SweepSpec::scenarios`] calls this, so a typo anywhere in a spec
    /// fails before anything runs.
    ///
    /// # Errors
    ///
    /// A message naming the sweep, the layer, the offending key, and —
    /// for plausible typos — the nearest valid key.
    pub fn validate(&self) -> Result<(), String> {
        let ctx = |what: &str| format!("sweep {:?} {what}", self.name);
        for (i, axis) in self.axes.iter().enumerate() {
            if self.axes[..i].iter().any(|a| a.key == axis.key) {
                return Err(format!("{}: duplicate axis {:?}", ctx("axes"), axis.key));
            }
        }
        // Which workloads can appear in a cell (a `workload` axis swaps
        // the base one out per cell).
        let workload_values: Vec<String> = match self.axes.iter().find(|a| a.key == "workload") {
            Some(axis) => axis.values.clone(),
            None => vec![self.workload.clone()],
        };
        let mut in_play: Vec<Arc<dyn Workload>> = Vec::new();
        for name in &workload_values {
            let w = registry::require(name).map_err(|e| format!("{}: {e}", ctx("workload")))?;
            in_play.push(w);
        }
        let mut scratch = CloudConfig::default();
        for (key, value) in &self.base_overrides {
            scratch
                .apply(key, value)
                .map_err(|e| format!("{}: {e}", ctx("base override")))?;
        }
        for (key, value) in &self.base_params {
            for w in &in_play {
                check_param(&ctx("base parameter"), w.as_ref(), key, value)?;
            }
        }
        for axis in &self.axes {
            let what = ctx(&format!("axis {:?}", axis.key));
            if axis.key == "workload" {
                continue; // validated above
            } else if axis.key == "stopwatch" {
                // The pre-defense-registry arm toggle: point migrating
                // specs at the knob that replaced it.
                let ty = CloudConfig::knob("defense")
                    .expect("defense is a schema knob")
                    .ty;
                return Err(format!(
                    "{what}: the boolean stopwatch axis was replaced by the \
                     \"cfg.defense\" knob ({ty})"
                ));
            } else if let Some(cfg_key) = axis.key.strip_prefix("cfg.") {
                for value in &axis.values {
                    scratch
                        .apply(cfg_key, value)
                        .map_err(|e| format!("{what}: {e}"))?;
                }
            } else {
                for w in &in_play {
                    for value in &axis.values {
                        check_param(&what, w.as_ref(), &axis.key, value)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Expands the grid to the flat scenario list, row-major over axes,
    /// seeds innermost.
    ///
    /// # Errors
    ///
    /// Reports empty axes and empty seed lists, and — via
    /// [`SweepSpec::validate`] — any key or value the merged
    /// knob/parameter schema rejects, all before anything runs.
    pub fn scenarios(&self) -> Result<Vec<Scenario>, String> {
        if self.seeds.is_empty() {
            return Err(format!("sweep {:?} has no seeds", self.name));
        }
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(format!(
                    "axis {:?} of sweep {:?} has no values",
                    axis.key, self.name
                ));
            }
        }
        self.validate()?;
        let cells = self.axes.iter().map(|a| a.values.len()).product::<usize>();
        let mut out = Vec::with_capacity(cells * self.seeds.len());
        // Row-major odometer over the axes.
        let mut idx = vec![0usize; self.axes.len()];
        loop {
            let coords: Vec<(&str, &str)> = self
                .axes
                .iter()
                .zip(&idx)
                .map(|(a, &i)| (a.key.as_str(), a.values[i].as_str()))
                .collect();
            let cell = if coords.is_empty() {
                self.workload.clone()
            } else {
                coords
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            for &seed in &self.seeds {
                out.push(self.materialize(&cell, &coords, seed)?);
            }
            // Advance the odometer; last axis fastest.
            let mut done = true;
            for pos in (0..idx.len()).rev() {
                idx[pos] += 1;
                if idx[pos] < self.axes[pos].values.len() {
                    done = false;
                    break;
                }
                idx[pos] = 0;
            }
            if done {
                break;
            }
        }
        Ok(out)
    }

    fn materialize(
        &self,
        cell: &str,
        coords: &[(&str, &str)],
        seed: u64,
    ) -> Result<Scenario, String> {
        let mut workload = self.workload.clone();
        let mut overrides = self.base_overrides.clone();
        let mut params = self.base_params.clone();
        for &(key, value) in coords {
            if key == "workload" {
                workload = value.to_string();
            } else if let Some(cfg_key) = key.strip_prefix("cfg.") {
                overrides.push((cfg_key.to_string(), value.to_string()));
            } else {
                params.push((key.to_string(), value.to_string()));
            }
        }
        Ok(Scenario {
            label: format!("{cell}#{seed}"),
            cell: cell.to_string(),
            cell_params: coords
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            workload,
            workload_params: params,
            hosts: self.hosts,
            replica_hosts: self.replica_hosts.clone(),
            seed,
            duration: self.duration,
            drain: self.drain,
            overrides,
            scalar_reference: self.scalar_reference,
        })
    }
}

/// Checks one workload-parameter key/value against `workload`'s schema.
/// An unknown key that names a [`CloudConfig`] knob gets a cross-layer
/// hint (`cfg.<key>`); other unknown keys get the nearest-parameter
/// suggestion.
fn check_param(
    context: &str,
    workload: &dyn Workload,
    key: &str,
    value: &str,
) -> Result<(), String> {
    let specs = workload.params();
    match specs.iter().find(|s| s.key == key) {
        Some(spec) => spec.ty.check(value).map_err(|e| {
            format!(
                "{context}: workload {:?} parameter {key:?}: {e}",
                workload.name()
            )
        }),
        None => {
            if CloudConfig::knob(key).is_some() {
                return Err(format!(
                    "{context}: workload {:?} has no parameter {key:?}; \
                     did you mean the config knob \"cfg.{key}\"?",
                    workload.name()
                ));
            }
            let keys: Vec<&str> = specs.iter().map(|s| s.key).collect();
            Err(format!(
                "{context}: {}",
                stopwatch_core::schema::unknown_key(
                    &format!("parameter of workload {:?}", workload.name()),
                    key,
                    &keys,
                )
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_row_major_with_seeds_innermost() {
        let spec = SweepSpec::new("t", "web-http")
            .axis("cfg.delta_n_ms", &[2, 8])
            .axis("cfg.defense", &["baseline", "stopwatch"])
            .seed_shards(10, 2);
        assert_eq!(spec.scenario_count(), 8);
        let scenarios = spec.scenarios().unwrap();
        assert_eq!(scenarios.len(), 8);
        let labels: Vec<&str> = scenarios.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "cfg.delta_n_ms=2,cfg.defense=baseline#10",
                "cfg.delta_n_ms=2,cfg.defense=baseline#11",
                "cfg.delta_n_ms=2,cfg.defense=stopwatch#10",
                "cfg.delta_n_ms=2,cfg.defense=stopwatch#11",
                "cfg.delta_n_ms=8,cfg.defense=baseline#10",
                "cfg.delta_n_ms=8,cfg.defense=baseline#11",
                "cfg.delta_n_ms=8,cfg.defense=stopwatch#10",
                "cfg.delta_n_ms=8,cfg.defense=stopwatch#11",
            ]
        );
        assert_eq!(
            scenarios[4].overrides,
            vec![
                ("delta_n_ms".to_string(), "8".to_string()),
                ("defense".to_string(), "baseline".to_string()),
            ]
        );
    }

    #[test]
    fn axis_routing_covers_all_namespaces() {
        let spec = SweepSpec::new("t", "web-http")
            .axis("workload", &["web-udp"])
            .axis("bytes", &[1000]);
        let scenarios = spec.scenarios().unwrap();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].workload, "web-udp");
        assert_eq!(
            scenarios[0].workload_params,
            vec![("bytes".to_string(), "1000".to_string())]
        );
    }

    #[test]
    fn empty_axes_and_seeds_error() {
        let mut spec = SweepSpec::new("t", "idle");
        spec.seeds.clear();
        assert!(spec.scenarios().is_err());
        let spec2 = SweepSpec::new("t", "idle").axis::<_, u64>("bytes", &[]);
        assert!(spec2.scenarios().is_err());
        let spec3 = SweepSpec::new("t", "idle").axis("cfg.defense", &["maybe"]);
        assert!(spec3.scenarios().is_err());
    }

    #[test]
    fn retired_stopwatch_axis_points_at_the_defense_knob() {
        let spec = SweepSpec::new("t", "idle").axis("stopwatch", &["false", "true"]);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("cfg.defense"), "{err}");
        assert!(
            err.contains("baseline|bucketed|deterland|stopwatch"),
            "{err}"
        );
    }

    #[test]
    fn unknown_defense_axis_value_suggests_nearest_arm() {
        let spec = SweepSpec::new("t", "idle").axis("cfg.defense", &["determand"]);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("axis \"cfg.defense\""), "{err}");
        assert!(err.contains("did you mean \"deterland\""), "{err}");
    }

    #[test]
    fn no_axes_single_cell_named_after_workload() {
        let spec = SweepSpec::new("t", "nfs").seed_shards(1, 3);
        let scenarios = spec.scenarios().unwrap();
        assert_eq!(scenarios.len(), 3);
        assert!(scenarios.iter().all(|s| s.cell == "nfs"));
    }

    #[test]
    fn unknown_knob_axis_fails_before_expansion_with_suggestion() {
        let spec = SweepSpec::new("t", "web-http").axis("cfg.delta_q_ms", &[1u64, 2]);
        let err = spec.scenarios().unwrap_err();
        assert!(err.contains("axis \"cfg.delta_q_ms\""), "{err}");
        assert!(err.contains("did you mean \"delta_n_ms\""), "{err}");
    }

    #[test]
    fn ill_typed_knob_value_fails_before_expansion() {
        let spec = SweepSpec::new("t", "web-http").axis("cfg.replicas", &["three"]);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("replicas"), "{err}");
        assert!(err.contains("three"), "{err}");
    }

    #[test]
    fn unknown_workload_param_axis_suggests_nearest() {
        let spec = SweepSpec::new("t", "web-http").axis("byts", &[100u64]);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("web-http"), "{err}");
        assert!(err.contains("did you mean \"bytes\""), "{err}");
    }

    #[test]
    fn bare_knob_key_gets_cross_layer_hint() {
        let spec = SweepSpec::new("t", "web-http").axis("delta_n_ms", &[4u64]);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("cfg.delta_n_ms"), "{err}");
    }

    #[test]
    fn ill_typed_param_value_fails_before_expansion() {
        let spec = SweepSpec::new("t", "web-http").axis("bytes", &["many"]);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("\"bytes\""), "{err}");
        assert!(err.contains("many"), "{err}");
        // Width-exact: `downloads` installs as u32, so an over-u32 value
        // must already fail here, not at install time inside the sweep.
        let spec = SweepSpec::new("t", "web-http").axis("downloads", &["5000000000"]);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("\"downloads\""), "{err}");
    }

    #[test]
    fn unknown_workload_axis_value_suggests_nearest() {
        let spec = SweepSpec::new("t", "web-http").axis("workload", &["web-http", "web-udpp"]);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("did you mean \"web-udp\""), "{err}");
    }

    #[test]
    fn params_must_fit_every_workload_in_play() {
        // `bytes` fits both web workloads but not `idle`.
        let ok = SweepSpec::new("t", "web-http")
            .axis("workload", &["web-http", "web-udp"])
            .axis("bytes", &[1000u64]);
        assert!(ok.validate().is_ok());
        let bad = SweepSpec::new("t", "web-http")
            .axis("workload", &["web-http", "idle"])
            .axis("bytes", &[1000u64]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn duplicate_axis_keys_are_rejected() {
        let spec = SweepSpec::new("t", "web-http")
            .axis("bytes", &[1u64])
            .axis("bytes", &[2u64]);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("duplicate axis"), "{err}");
        assert!(err.contains("\"bytes\""), "{err}");
    }

    #[test]
    fn base_overrides_and_params_are_validated_too() {
        let mut spec = SweepSpec::new("t", "web-http");
        spec.base_overrides = vec![("delta_q_ms".into(), "1".into())];
        let err = spec.validate().unwrap_err();
        assert!(err.contains("base override"), "{err}");
        let mut spec = SweepSpec::new("t", "web-http");
        spec.base_params = vec![("byts".into(), "1".into())];
        let err = spec.validate().unwrap_err();
        assert!(err.contains("base parameter"), "{err}");
    }
}
