//! Phase-attributed wall-time profiles of the sweep engine.
//!
//! Perf numbers without attribution invite guessing, so every
//! [`Scenario::run`](crate::scenario::Scenario::run) splits its wall time
//! into four phases — config/param **resolve**, cloud **build** (together:
//! setup), event-loop **run**, and result **aggregate** — and the runner
//! sums them across its worker threads. `swbench profile [<bench>]`
//! surfaces the split per registered perf bench as a schema-versioned
//! `PROFILE_*.json`, and `swbench perf --profile` writes the same document
//! for the timed passes of a gate run. The phase timers are monotonic
//! wall-clock reads outside the simulated world: they never touch
//! simulated state, so determinism (byte-identical sweep JSON at any
//! thread count) is unaffected.

use crate::json::Json;
use crate::perf::{perf_bench, PerfReport, PERF_BENCHES};
use crate::runner::{run_scenarios_profiled, RunnerOptions};

/// Version of the `PROFILE_*.json` layout. Bumped whenever the document
/// shape changes.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Per-phase wall nanoseconds of one or more scenario runs. Additive:
/// worker threads accumulate locally and the runner folds them together,
/// so totals are sums over all scenarios regardless of parallelism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Phases {
    /// Config override application + workload parameter resolution (the
    /// schema walks that render `resolved_config` / `resolved_params`).
    pub resolve_ns: u64,
    /// Workload install + `CloudBuilder::build` — topology construction,
    /// guest images, initial event scheduling.
    pub build_ns: u64,
    /// The event loop: `run_until_clients_done` plus the drain window.
    pub run_ns: u64,
    /// Result extraction: workload collect, counter harvest, report
    /// assembly.
    pub aggregate_ns: u64,
}

impl Phases {
    /// Everything before the first event executes.
    pub fn setup_ns(&self) -> u64 {
        self.resolve_ns + self.build_ns
    }

    /// Total attributed wall time.
    pub fn total_ns(&self) -> u64 {
        self.setup_ns() + self.run_ns + self.aggregate_ns
    }

    /// Folds another accumulator into this one.
    pub fn add(&mut self, other: &Phases) {
        self.resolve_ns += other.resolve_ns;
        self.build_ns += other.build_ns;
        self.run_ns += other.run_ns;
        self.aggregate_ns += other.aggregate_ns;
    }
}

/// Knobs of one profile pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileOptions {
    /// Profile the quick (smoke) scenario shapes.
    pub quick: bool,
    /// Worker threads (0 = one per core).
    pub threads: usize,
    /// Profile the scalar reference paths instead of the batched engine.
    pub scalar: bool,
}

/// One bench's phase breakdown, ready to render as `PROFILE_<name>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Benchmark name.
    pub bench: String,
    /// Whether the quick (smoke) shape ran.
    pub quick: bool,
    /// Whether the scalar reference paths ran.
    pub scalar: bool,
    /// Scenarios per pass.
    pub scenarios: u64,
    /// Passes the phase totals cover (1 for `swbench profile`, the timed
    /// repeats for `swbench perf --profile`).
    pub passes: u64,
    /// Summed phase wall time over all passes and scenarios.
    pub phases: Phases,
}

impl ProfileReport {
    /// A profile view of a finished perf run: the phase totals the timed
    /// repeats accumulated, attributed per pass.
    pub fn from_perf(report: &PerfReport) -> ProfileReport {
        ProfileReport {
            bench: report.bench.clone(),
            quick: report.quick,
            scalar: report.scalar,
            scenarios: report.scenarios,
            passes: report.repeats,
            phases: report.phases,
        }
    }

    /// The report as a [`Json`] value — embeddable in the consolidated
    /// all-bench document as well as standalone.
    pub fn to_json_value(&self) -> Json {
        let per_pass = |ns: u64| Json::F64(ns as f64 / 1e6 / self.passes.max(1) as f64);
        let total = self.phases.total_ns().max(1) as f64;
        let share = |ns: u64| Json::F64((ns as f64 / total * 1000.0).round() / 10.0);
        Json::obj()
            .with("schema_version", Json::U64(PROFILE_SCHEMA_VERSION))
            .with("kind", Json::str("phase-profile"))
            .with("bench", Json::str(&self.bench))
            .with("mode", Json::str(if self.quick { "quick" } else { "full" }))
            .with(
                "engine",
                Json::str(if self.scalar { "scalar" } else { "batched" }),
            )
            .with("scenarios", Json::U64(self.scenarios))
            .with("passes", Json::U64(self.passes))
            .with("setup_ms", per_pass(self.phases.setup_ns()))
            .with("setup_resolve_ms", per_pass(self.phases.resolve_ns))
            .with("setup_build_ms", per_pass(self.phases.build_ns))
            .with("run_ms", per_pass(self.phases.run_ns))
            .with("aggregate_ms", per_pass(self.phases.aggregate_ns))
            .with("total_ms", per_pass(self.phases.total_ns()))
            .with("setup_pct", share(self.phases.setup_ns()))
            .with("run_pct", share(self.phases.run_ns))
            .with("aggregate_pct", share(self.phases.aggregate_ns))
    }

    /// Renders the standalone `PROFILE_<name>.json` document.
    pub fn to_json(&self) -> String {
        self.to_json_value().render_pretty()
    }

    /// One human line for the terminal.
    pub fn summary(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6 / self.passes.max(1) as f64;
        let total = self.phases.total_ns().max(1) as f64;
        let pct = |ns: u64| ns as f64 / total * 100.0;
        format!(
            "{} [{}] {} scenarios: setup {:.2} ms ({:.0}% — resolve {:.2} + build {:.2}), \
             run {:.2} ms ({:.0}%), aggregate {:.2} ms ({:.0}%)",
            self.bench,
            if self.scalar { "scalar" } else { "batched" },
            self.scenarios,
            ms(self.phases.setup_ns()),
            pct(self.phases.setup_ns()),
            ms(self.phases.resolve_ns),
            ms(self.phases.build_ns),
            ms(self.phases.run_ns),
            pct(self.phases.run_ns),
            ms(self.phases.aggregate_ns),
            pct(self.phases.aggregate_ns),
        )
    }
}

/// The consolidated document of one `swbench profile` pass over several
/// benches (`kind: "profile-set"`), in registry order.
#[derive(Debug, Clone, Default)]
pub struct ProfileSet {
    /// One entry per profiled bench.
    pub entries: Vec<ProfileReport>,
}

impl ProfileSet {
    /// Renders the consolidated `PROFILE_benches.json` document.
    pub fn to_json(&self) -> String {
        Json::obj()
            .with("schema_version", Json::U64(PROFILE_SCHEMA_VERSION))
            .with("kind", Json::str("profile-set"))
            .with(
                "benches",
                Json::Arr(self.entries.iter().map(|e| e.to_json_value()).collect()),
            )
            .render_pretty()
    }
}

/// Profiles one registered perf bench: a single pass over its scenario
/// list with the phase timers folded across workers.
///
/// # Errors
///
/// Reports unknown bench names and scenario failures (a profile of a
/// partially-failed pass would misattribute the missing work).
pub fn run_profile(name: &str, opts: &ProfileOptions) -> Result<ProfileReport, String> {
    let bench = perf_bench(name).ok_or_else(|| {
        let known: Vec<&str> = PERF_BENCHES.iter().map(|b| b.name).collect();
        format!(
            "unknown perf benchmark {name:?} (known: {})",
            known.join(", ")
        )
    })?;
    let mut scenarios = bench.scenarios(opts.quick)?;
    for s in &mut scenarios {
        s.scalar_reference = opts.scalar;
    }
    let runner = RunnerOptions {
        threads: opts.threads,
        progress: false,
    };
    let (outcomes, phases) = run_scenarios_profiled(&scenarios, &runner);
    if let Some((label, err)) = outcomes.iter().find_map(|o| {
        o.result
            .as_ref()
            .err()
            .map(|e| (o.label.clone(), e.clone()))
    }) {
        return Err(format!("scenario {label:?} failed: {err}"));
    }
    Ok(ProfileReport {
        bench: bench.name.to_string(),
        quick: opts.quick,
        scalar: opts.scalar,
        scenarios: scenarios.len() as u64,
        passes: 1,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_additive() {
        let mut a = Phases {
            resolve_ns: 1,
            build_ns: 2,
            run_ns: 3,
            aggregate_ns: 4,
        };
        let b = Phases {
            resolve_ns: 10,
            build_ns: 20,
            run_ns: 30,
            aggregate_ns: 40,
        };
        a.add(&b);
        assert_eq!(a.setup_ns(), 33);
        assert_eq!(a.total_ns(), 110);
    }

    #[test]
    fn profile_json_shape() {
        let report = ProfileReport {
            bench: "packet-storm".to_string(),
            quick: true,
            scalar: false,
            scenarios: 1,
            passes: 2,
            phases: Phases {
                resolve_ns: 1_000_000,
                build_ns: 3_000_000,
                run_ns: 4_000_000,
                aggregate_ns: 2_000_000,
            },
        };
        let json = report.to_json();
        assert!(json.contains(&format!("\"schema_version\": {PROFILE_SCHEMA_VERSION}")));
        assert!(json.contains("\"kind\": \"phase-profile\""));
        assert!(json.contains("\"bench\": \"packet-storm\""));
        assert!(json.contains("\"mode\": \"quick\""));
        // Phase totals are per pass: 4 ms setup over 2 passes = 2 ms.
        assert!(json.contains("\"setup_ms\": 2.0"), "{json}");
        assert!(json.contains("\"run_ms\": 2.0"), "{json}");
        assert!(json.contains("\"aggregate_ms\": 1.0"), "{json}");
        assert!(json.contains("\"total_ms\": 5.0"), "{json}");
        assert!(json.contains("\"setup_pct\": 40.0"), "{json}");
        let set = ProfileSet {
            entries: vec![report],
        };
        let json = set.to_json();
        assert!(json.contains("\"kind\": \"profile-set\""));
        assert!(json.contains("\"kind\": \"phase-profile\""));
    }

    #[test]
    fn profile_runs_a_quick_bench_and_attributes_every_phase() {
        let opts = ProfileOptions {
            quick: true,
            threads: 1,
            scalar: false,
        };
        let report = run_profile("packet-storm", &opts).expect("profile run");
        assert_eq!(report.scenarios, 1);
        assert_eq!(report.passes, 1);
        assert!(report.phases.build_ns > 0, "build phase attributed");
        assert!(report.phases.run_ns > 0, "run phase attributed");
        assert!(report.phases.total_ns() > 0);
    }

    #[test]
    fn unknown_bench_is_a_clear_error() {
        let err = run_profile("no-such", &ProfileOptions::default()).unwrap_err();
        assert!(err.contains("unknown perf benchmark"), "{err}");
    }
}
