//! A minimal, dependency-free JSON writer with fully deterministic output.
//!
//! Sweep reports must be **byte-identical** across runner thread counts and
//! across runs (the determinism contract of the harness), so this writer
//! offers no HashMap-backed objects, no locale formatting, and exactly one
//! rendering per value:
//!
//! * object keys appear in insertion order (callers insert deterministically);
//! * floats render via Rust's shortest-roundtrip formatting, with the
//!   non-finite values JSON lacks mapped to `null`;
//! * strings are escaped per RFC 8259.

use std::fmt::Write as _;

/// A JSON value assembled by hand.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (counters, counts).
    U64(u64),
    /// Float; non-finite renders as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Starts an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object (panics on non-objects — a
    /// programming error, not a data error).
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("push on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Json::push`].
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.push(key, value);
        self
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // Shortest roundtrip form; force a `.0` on integral
                    // values so the type is stable for consumers.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.iter(), |out, item, ind| {
                item.write(out, ind)
            }),
            Json::Obj(fields) => {
                write_seq(out, indent, '{', '}', fields.iter(), |out, (k, v), ind| {
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind);
                })
            }
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>),
) {
    out.push(open);
    let empty = items.len() == 0;
    let inner = indent.map(|i| i + 1);
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(ind) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(ind));
        }
        write_item(out, item, inner);
    }
    if let Some(ind) = indent {
        if !empty {
            out.push('\n');
            out.push_str(&"  ".repeat(ind));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(3.0).render(), "3.0");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_compact_and_pretty() {
        let v = Json::obj()
            .with("name", Json::str("sweep"))
            .with("xs", Json::Arr(vec![Json::U64(1), Json::U64(2)]))
            .with("empty", Json::Arr(vec![]));
        assert_eq!(v.render(), r#"{"name":"sweep","xs":[1,2],"empty":[]}"#);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\"name\": \"sweep\""));
        assert!(pretty.ends_with("}\n"));
        assert!(pretty.contains("\"empty\": []"));
    }

    #[test]
    fn key_order_is_insertion_order() {
        let v = Json::obj().with("z", Json::U64(1)).with("a", Json::U64(2));
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }
}
