//! Named sweep presets: the paper's figure-shaped experiments plus the
//! scaling grids the roadmap tracks, each a ready-to-run [`SweepSpec`].
//!
//! `swbench run <name>` starts one; `swbench list` prints this registry.
//! The `quick` flag shrinks workload sizes and seed counts so a laptop
//! smoke-run finishes in seconds; the full shapes reproduce the paper's
//! parameter ranges.

use crate::sweep::SweepSpec;
use simkit::time::SimDuration;

/// A named preset with a one-line description.
pub struct Preset {
    /// Registry key.
    pub name: &'static str,
    /// What the sweep measures.
    pub about: &'static str,
    build: fn(quick: bool) -> SweepSpec,
}

impl Preset {
    /// Materializes the spec.
    pub fn spec(&self, quick: bool) -> SweepSpec {
        (self.build)(quick)
    }
}

/// Every named preset.
pub const PRESETS: &[Preset] = &[
    Preset {
        name: "delta-n",
        about: "web latency vs Δn padding, 8-point grid x 8 seeds (Sec. VII-A calibration at scale)",
        build: |quick| {
            let spec = SweepSpec::new("delta-n", "web-http")
                .axis("cfg.delta_n_ms", &[1u64, 2, 4, 6, 8, 10, 12, 15])
                .seed_shards(42, if quick { 2 } else { 8 });
            with_params(
                spec,
                &[("bytes", if quick { "20000" } else { "100000" }), ("downloads", "2")],
                &[("broadcast_band", "off"), ("disk", "ssd")],
            )
        },
    },
    Preset {
        name: "delta-d",
        about: "web latency vs Δd padding grid x seeds (disk-completion release times)",
        build: |quick| {
            let spec = SweepSpec::new("delta-d", "web-http")
                .axis("cfg.delta_d_ms", &[2u64, 4, 8, 12, 15])
                .seed_shards(42, if quick { 2 } else { 8 });
            with_params(
                spec,
                &[("bytes", if quick { "20000" } else { "100000" }), ("downloads", "2")],
                &[("broadcast_band", "off")],
            )
        },
    },
    Preset {
        name: "fig5",
        about: "file retrieval latency vs size, HTTP and UDP-NAK, baseline vs StopWatch (Fig. 5)",
        build: |quick| {
            let sizes: &[u64] = if quick {
                &[10_000, 100_000]
            } else {
                &[1_000, 10_000, 100_000, 1_000_000]
            };
            let spec = SweepSpec::new("fig5", "web-http")
                .axis("workload", &["web-http", "web-udp"])
                .axis("cfg.defense", &["baseline", "stopwatch"])
                .axis("bytes", sizes)
                .seed_shards(42, if quick { 1 } else { 3 });
            let mut spec = with_params(spec, &[("downloads", "2")], &[]);
            spec.duration = SimDuration::from_secs(600);
            spec
        },
    },
    Preset {
        name: "fig6",
        about: "NFS op latency vs offered load, baseline vs StopWatch (Fig. 6)",
        build: |quick| {
            let rates: &[u64] = if quick { &[100, 400] } else { &[25, 50, 100, 200, 400] };
            let spec = SweepSpec::new("fig6", "nfs")
                .axis("cfg.defense", &["baseline", "stopwatch"])
                .axis("rate", rates)
                .seed_shards(42, if quick { 1 } else { 3 });
            let mut spec =
                with_params(spec, &[("ops", if quick { "100" } else { "400" })], &[]);
            spec.duration = SimDuration::from_secs(600);
            spec
        },
    },
    Preset {
        name: "attack",
        about: "attacker-observed probe deltas with/without a coresident victim, both defense arms (Fig. 4)",
        build: |quick| {
            let spec = SweepSpec::new("attack", "attack")
                .axis("cfg.defense", &["stopwatch", "baseline"])
                .axis("victim", &["false", "true"])
                .seed_shards(42, if quick { 2 } else { 6 });
            let mut spec = with_params(
                spec,
                &[("probes", if quick { "100" } else { "400" })],
                &[("broadcast_band", "off"), ("client_tick_ms", "4")],
            );
            spec.duration = SimDuration::from_secs(600);
            spec
        },
    },
    Preset {
        name: "cache-channel",
        about: "PRIME+PROBE set-recovery accuracy vs replica count (1/3/5), with and without the victim (Sec. III)",
        build: |quick| {
            // Replicas go 1 (baseline arm) -> 3 -> 5; the clean
            // baseline cell comes first so it anchors the leakage
            // verdicts (clean probes read identical flat hit latencies
            // in every arm). The replicas knob is a no-op under the
            // baseline arm, so the defense=baseline cells repeat at each
            // replicas grid point — kept deliberately: the grid stays
            // rectangular and the duplicated baseline rows double as a
            // determinism cross-check (their verdicts must read ks=0).
            let spec = SweepSpec::new("cache-channel", "cache-channel")
                .axis("cfg.defense", &["baseline", "stopwatch"])
                .axis("cfg.replicas", &[3u64, 5])
                .axis("victim", &["false", "true"])
                .seed_shards(42, if quick { 2 } else { 6 });
            let mut spec = with_params(
                spec,
                &[
                    ("rounds", if quick { "12" } else { "40" }),
                    ("sets", "8"),
                    ("ways", "2"),
                ],
                &[("broadcast_band", "off"), ("disk", "ssd")],
            );
            spec.duration = SimDuration::from_secs(120);
            spec
        },
    },
    Preset {
        name: "disk-channel",
        about: "seek-timing secret recovery vs replica count (1/3/5), with and without the victim (Sec. V-A)",
        build: |quick| {
            // Same grid shape as cache-channel: the clean baseline cell
            // anchors the leakage verdicts, defense=baseline rows repeat
            // per replicas grid point (kept for rectangularity + as a
            // determinism cross-check), and the per-arm latency totals
            // feed the KS pipeline. The overrides are the channel's
            // physics: a rotating disk (the head-position signal), a Δd
            // above its worst-case access time, and a large image so the
            // probe arms sit far apart on the platter.
            let spec = SweepSpec::new("disk-channel", "disk-channel")
                .axis("cfg.defense", &["baseline", "stopwatch"])
                .axis("cfg.replicas", &[3u64, 5])
                .axis("victim", &["false", "true"])
                .seed_shards(42, if quick { 2 } else { 6 });
            let mut spec = with_params(
                spec,
                &[("rounds", if quick { "8" } else { "24" })],
                &[
                    ("broadcast_band", "off"),
                    ("disk", "rotating"),
                    ("delta_d_ms", "25"),
                    ("image_blocks", "16000000"),
                ],
            );
            spec.duration = SimDuration::from_secs(120);
            spec
        },
    },
    Preset {
        name: "timer-channel",
        about: "scheduler-beat burst recovery vs replica count (1/3/5), with and without the victim (Sec. V-C)",
        build: |quick| {
            // Same grid shape as cache-channel / disk-channel: the clean
            // baseline cell anchors the leakage verdicts and the
            // defense=baseline rows repeat per replicas grid point. The
            // attacker arms one virtual timer per scheduling window and
            // reads its own dispatch jitter; under StopWatch every fire
            // lands at the programmed deadline plus Δt, so the victim's
            // timeslice beat disappears from the samples.
            let spec = SweepSpec::new("timer-channel", "timer-channel")
                .axis("cfg.defense", &["baseline", "stopwatch"])
                .axis("cfg.replicas", &[3u64, 5])
                .axis("victim", &["false", "true"])
                .seed_shards(42, if quick { 2 } else { 6 });
            let mut spec = with_params(
                spec,
                &[("rounds", if quick { "8" } else { "24" })],
                &[("broadcast_band", "off"), ("disk", "ssd")],
            );
            spec.duration = SimDuration::from_secs(120);
            spec
        },
    },
    Preset {
        name: "defense-shootout",
        about: "every registered defense arm vs every timing-channel workload: leakage verdict + overhead per (defense, channel, replicas) cell",
        build: |quick| {
            // One rectangular grid over the whole defense registry: arm x
            // channel workload x replica count x victim presence. The
            // Baseline arm comes first so every defended cell has an
            // undefended sibling to be priced against (the `overhead`
            // block), and the victim axis gives every arm its own clean
            // reference cell — a victim cell's verdict is judged against
            // the clean cell of the *same* arm, so "TIGHT" means the arm
            // closed the channel, not that it merely reshaped timings.
            // Single-host arms ignore cfg.replicas (their rows repeat per
            // grid point, same convention as the channel presets). The
            // overrides are the superset of the channels' physics: the
            // rotating disk + large image that the disk channel needs are
            // inert for the cache and timer attacks, which never touch
            // the disk after boot.
            let replicas: &[u64] = if quick { &[3] } else { &[3, 5] };
            let spec = SweepSpec::new("defense-shootout", "cache-channel")
                .axis("workload", &["cache-channel", "disk-channel", "timer-channel"])
                .axis("cfg.defense", &["baseline", "bucketed", "deterland", "stopwatch"])
                .axis("cfg.replicas", replicas)
                .axis("victim", &["false", "true"])
                .seed_shards(42, if quick { 1 } else { 4 });
            let mut spec = with_params(
                spec,
                &[("rounds", if quick { "6" } else { "20" })],
                &[
                    ("broadcast_band", "off"),
                    ("disk", "rotating"),
                    ("delta_d_ms", "25"),
                    ("image_blocks", "16000000"),
                ],
            );
            spec.duration = SimDuration::from_secs(120);
            spec
        },
    },
    Preset {
        name: "replicas",
        about: "overhead vs replica count (3 vs 5, Sec. IX marginalization defense)",
        build: |quick| {
            let spec = SweepSpec::new("replicas", "web-http")
                .axis("cfg.replicas", &[3u64, 5])
                .seed_shards(42, if quick { 2 } else { 6 });
            with_params(
                spec,
                &[("bytes", "50000"), ("downloads", "2")],
                &[("broadcast_band", "off")],
            )
        },
    },
    Preset {
        name: "jitter",
        about: "pacing effectiveness vs host speed jitter (Sec. V-A)",
        build: |quick| {
            let spec = SweepSpec::new("jitter", "web-http")
                .axis("cfg.ips_jitter", &["0.0", "0.02", "0.05", "0.10"])
                .seed_shards(42, if quick { 2 } else { 6 });
            with_params(
                spec,
                &[("bytes", "50000"), ("downloads", "2")],
                &[("broadcast_band", "off")],
            )
        },
    },
    Preset {
        name: "parsec",
        about: "PARSEC completion times across all five apps, baseline vs StopWatch (Fig. 7)",
        build: |quick| {
            let apps = [
                "parsec:ferret",
                "parsec:blackscholes",
                "parsec:canneal",
                "parsec:dedup",
                "parsec:streamcluster",
            ];
            let spec = SweepSpec::new("parsec", "parsec:ferret")
                .axis("workload", &apps)
                .axis("cfg.defense", &["baseline", "stopwatch"])
                .seed_shards(42, if quick { 1 } else { 3 });
            let mut spec = with_params(spec, &[], &[("broadcast_band", "off")]);
            spec.duration = SimDuration::from_secs(120);
            spec
        },
    },
];

fn with_params(
    mut spec: SweepSpec,
    params: &[(&str, &str)],
    overrides: &[(&str, &str)],
) -> SweepSpec {
    spec.base_params = params
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    spec.base_overrides = overrides
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    spec
}

/// Looks up a preset by name.
pub fn preset(name: &str) -> Option<&'static Preset> {
    PRESETS.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_expand() {
        for p in PRESETS {
            let spec = p.spec(true);
            let scenarios = spec.scenarios().expect(p.name);
            assert!(!scenarios.is_empty(), "{} expands empty", p.name);
            assert_eq!(scenarios.len(), spec.scenario_count(), "{}", p.name);
        }
    }

    #[test]
    fn delta_n_full_is_a_64_scenario_sweep() {
        let spec = preset("delta-n").unwrap().spec(false);
        assert_eq!(spec.scenario_count(), 64, "8 grid points x 8 seeds");
    }

    #[test]
    fn lookup_by_name() {
        assert!(preset("fig5").is_some());
        assert!(preset("no-such").is_none());
    }

    #[test]
    fn cache_channel_grid_covers_arms_replicas_and_victim() {
        let spec = preset("cache-channel").unwrap().spec(true);
        // defense x replicas x victim x 2 seeds.
        assert_eq!(spec.scenario_count(), 2 * 2 * 2 * 2);
        let scenarios = spec.scenarios().expect("expands");
        assert_eq!(
            scenarios[0].cell, "cfg.defense=baseline,cfg.replicas=3,victim=false",
            "clean baseline cell anchors the leakage verdicts"
        );
        assert!(scenarios.iter().any(|s| s
            .overrides
            .contains(&("defense".to_string(), "stopwatch".to_string()))));
        assert!(scenarios.iter().any(|s| s
            .overrides
            .contains(&("replicas".to_string(), "5".to_string()))));
    }

    #[test]
    fn defense_shootout_covers_the_whole_registry() {
        let spec = preset("defense-shootout").unwrap().spec(true);
        // 3 workloads x 4 arms x 1 replica count x victim on/off, 1 seed.
        assert_eq!(spec.scenario_count(), 3 * 4 * 2);
        let scenarios = spec.scenarios().expect("expands");
        for arm in vmm::defense::arm_names() {
            assert!(
                scenarios.iter().any(|s| s
                    .overrides
                    .contains(&("defense".to_string(), arm.to_string()))),
                "arm {arm} missing from the shootout grid"
            );
        }
        for workload in ["cache-channel", "disk-channel", "timer-channel"] {
            assert!(
                scenarios.iter().any(|s| s.workload == workload),
                "workload {workload} missing from the shootout grid"
            );
        }
        // Full shape widens to both replica counts and 4 seeds.
        let full = preset("defense-shootout").unwrap().spec(false);
        assert_eq!(full.scenario_count(), 3 * 4 * 2 * 2 * 4);
    }
}
