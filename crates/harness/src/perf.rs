//! Named performance benchmarks with a trajectory-friendly JSON report.
//!
//! The sweep engine's throughput is a deliverable of this reproduction
//! (ROADMAP: "Engine hot-path profiling"), so it gets the same treatment
//! as the paper's figures: named, repeatable benchmarks with a
//! schema-versioned artifact. `swbench perf <name>` runs one — warmup
//! passes first, then timed repeats whose **median** wall time yields the
//! headline events/sec and packets/sec — and writes `BENCH_<name>.json`
//! for trajectory tracking; CI gates on it against a checked-in baseline
//! (see `check_against_baseline`).
//!
//! Simulated *results* are deterministic, so every repeat replays the
//! exact same event trace — the only thing that varies across repeats is
//! host wall time, which is precisely what the median smooths. Each run
//! cross-checks that invariant: repeats disagreeing on total event count
//! are reported as an error, not a slow run.

use crate::json::Json;
use crate::presets;
use crate::runner::{run_scenarios, run_scenarios_profiled, RunOutcome, RunnerOptions};
use crate::scenario::Scenario;
use simkit::time::SimDuration;
use std::time::Instant;

/// Version of the `BENCH_*.json` layout. Bumped whenever the report shape
/// changes; `check_against_baseline` refuses to compare across versions.
/// v2 added the `setup_ms` / `run_ms` phase split (see [`crate::profile`]).
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// A named perf benchmark: a fixed scenario list whose end-to-end
/// execution is timed.
pub struct PerfBench {
    /// Registry key (`swbench perf <name>`).
    pub name: &'static str,
    /// What the benchmark stresses.
    pub about: &'static str,
    build: fn(quick: bool) -> Result<Vec<Scenario>, String>,
}

impl PerfBench {
    /// Materializes the scenario list.
    pub fn scenarios(&self, quick: bool) -> Result<Vec<Scenario>, String> {
        (self.build)(quick)
    }
}

/// Every named perf benchmark.
pub const PERF_BENCHES: &[PerfBench] = &[
    PerfBench {
        name: "delta-n",
        about: "the full 64-cell delta-n sweep (16 quick) — the ROADMAP sweep-throughput benchmark",
        build: |quick| {
            presets::preset("delta-n")
                .expect("delta-n preset exists")
                .spec(quick)
                .scenarios()
        },
    },
    PerfBench {
        name: "packet-storm",
        about: "one cloud, UDP-NAK bulk transfer — a packet-dense microbench of the engine + median-agreement hot paths",
        build: |quick| {
            let mut s = Scenario::new("web-udp", 42);
            s.label = "packet-storm".to_string();
            s.cell = "packet-storm".to_string();
            s.workload_params = vec![
                (
                    "bytes".to_string(),
                    if quick { "200000" } else { "2000000" }.to_string(),
                ),
                ("downloads".to_string(), if quick { "2" } else { "4" }.to_string()),
            ];
            s.overrides = vec![
                ("broadcast_band".to_string(), "off".to_string()),
                ("disk".to_string(), "ssd".to_string()),
            ];
            s.duration = SimDuration::from_secs(600);
            Ok(vec![s])
        },
    },
    PerfBench {
        name: "disk-storm",
        about: "one cloud, dense disk probing on a rotating medium — stresses the disk-completion agreement hot path",
        build: |quick| {
            let mut s = Scenario::new("disk-channel", 42);
            s.label = "disk-storm".to_string();
            s.cell = "disk-storm".to_string();
            s.workload_params = vec![
                ("arms".to_string(), "8".to_string()),
                ("probes_per_arm".to_string(), "2".to_string()),
                ("probe_gap_ticks".to_string(), "8".to_string()),
                (
                    "rounds".to_string(),
                    if quick { "120" } else { "480" }.to_string(),
                ),
                ("victim".to_string(), "true".to_string()),
                ("victim_every".to_string(), "2".to_string()),
            ];
            s.overrides = vec![
                ("broadcast_band".to_string(), "off".to_string()),
                ("disk".to_string(), "rotating".to_string()),
                ("delta_d_ms".to_string(), "25".to_string()),
                ("image_blocks".to_string(), "16000000".to_string()),
            ];
            s.duration = SimDuration::from_secs(600);
            Ok(vec![s])
        },
    },
    PerfBench {
        name: "cache-storm",
        about: "one cloud, dense PRIME+PROBE rounds — stresses the cache-probe proposal/median hot path",
        build: |quick| {
            let mut s = Scenario::new("cache-channel", 42);
            s.label = "cache-storm".to_string();
            s.cell = "cache-storm".to_string();
            s.workload_params = vec![
                ("sets".to_string(), "32".to_string()),
                ("ways".to_string(), "4".to_string()),
                (
                    "rounds".to_string(),
                    if quick { "40" } else { "200" }.to_string(),
                ),
                ("victim".to_string(), "true".to_string()),
            ];
            s.overrides = vec![
                ("broadcast_band".to_string(), "off".to_string()),
                ("disk".to_string(), "ssd".to_string()),
            ];
            s.duration = SimDuration::from_secs(600);
            Ok(vec![s])
        },
    },
    PerfBench {
        name: "timer-storm",
        about: "one cloud, dense virtual-timer arming under contention — stresses the vCPU scheduler + Δt agreement hot path",
        build: |quick| {
            let mut s = Scenario::new("timer-channel", 42);
            s.label = "timer-storm".to_string();
            s.cell = "timer-storm".to_string();
            s.workload_params = vec![
                ("arms".to_string(), "8".to_string()),
                ("window_ms".to_string(), "5".to_string()),
                (
                    "rounds".to_string(),
                    if quick { "400" } else { "1600" }.to_string(),
                ),
                ("secret".to_string(), "5".to_string()),
                ("victim".to_string(), "true".to_string()),
            ];
            s.overrides = vec![
                ("broadcast_band".to_string(), "off".to_string()),
                ("disk".to_string(), "ssd".to_string()),
                // Δt and the timeslice must fit inside the 5 ms probe
                // window or the next arm would already be in the past
                // when the previous fire delivers.
                ("delta_t_ms".to_string(), "2".to_string()),
                ("timeslice_ms".to_string(), "1".to_string()),
            ];
            s.duration = SimDuration::from_secs(600);
            Ok(vec![s])
        },
    },
    PerfBench {
        name: "defense-storm",
        about: "the timer-storm scenario once per registered defense arm — stresses the arm dispatch + release-rule hot paths",
        build: |quick| {
            // One dense timer-channel cloud per arm, so a slow release
            // rule (or a regression in the arm dispatch itself) shows up
            // in the same events/sec headline the other storms use. The
            // epoch and bucket are sized like Δt: they must fit inside
            // the 5 ms probe window (see timer-storm above).
            let scenarios = vmm::defense::arm_names()
                .into_iter()
                .map(|arm| {
                    let mut s = Scenario::new("timer-channel", 42);
                    s.label = format!("defense-storm:{arm}");
                    s.cell = format!("defense-storm:{arm}");
                    s.workload_params = vec![
                        ("arms".to_string(), "8".to_string()),
                        ("window_ms".to_string(), "5".to_string()),
                        (
                            "rounds".to_string(),
                            if quick { "200" } else { "800" }.to_string(),
                        ),
                        ("secret".to_string(), "5".to_string()),
                        ("victim".to_string(), "true".to_string()),
                    ];
                    s.overrides = vec![
                        ("broadcast_band".to_string(), "off".to_string()),
                        ("disk".to_string(), "ssd".to_string()),
                        ("delta_t_ms".to_string(), "2".to_string()),
                        ("timeslice_ms".to_string(), "1".to_string()),
                        ("defense".to_string(), arm.to_string()),
                        ("epoch_ms".to_string(), "2".to_string()),
                        ("bucket_ns".to_string(), "2000000".to_string()),
                    ];
                    s.duration = SimDuration::from_secs(600);
                    s
                })
                .collect();
            Ok(scenarios)
        },
    },
];

/// Looks up a perf benchmark by name.
pub fn perf_bench(name: &str) -> Option<&'static PerfBench> {
    PERF_BENCHES.iter().find(|b| b.name == name)
}

/// Knobs of one perf run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfOptions {
    /// Shrink the scenario list to smoke-test size.
    pub quick: bool,
    /// Untimed passes before measurement (cache/allocator warmup).
    pub warmup: usize,
    /// Timed passes; the reported throughput uses their median wall time.
    pub repeats: usize,
    /// Worker threads (0 = one per core).
    pub threads: usize,
    /// Run the pre-batching scalar reference paths instead of the batched
    /// ones — the comparison arm for measuring the batching speedup.
    pub scalar: bool,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            quick: false,
            warmup: 1,
            repeats: 5,
            threads: 0,
            scalar: false,
        }
    }
}

/// One finished perf benchmark, ready to render as `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Benchmark name.
    pub bench: String,
    /// Whether the quick (smoke) shape ran.
    pub quick: bool,
    /// Whether the scalar reference paths ran (false = batched engine).
    pub scalar: bool,
    /// Worker threads actually used.
    pub threads: u64,
    /// Scenarios per pass (the benchmark's cell count).
    pub scenarios: u64,
    /// Untimed warmup passes.
    pub warmup: u64,
    /// Timed passes.
    pub repeats: u64,
    /// Wall time of each timed pass, ms, in run order.
    pub wall_ms: Vec<f64>,
    /// Median of `wall_ms` (the headline denominator).
    pub wall_ms_median: f64,
    /// Median per-pass setup wall (config/param resolve + cloud build),
    /// ms — the part of `wall_ms_median` spent before any event executes.
    pub setup_ms: f64,
    /// Median per-pass run wall (event loop + result aggregation), ms.
    pub run_ms: f64,
    /// Summed phase-timer totals over the timed passes (what
    /// `swbench perf --profile` renders; not serialized per-field here).
    pub phases: crate::profile::Phases,
    /// Fastest pass. Every pass executes the identical deterministic
    /// trace, so the minimum is the least-disturbed measurement — the CI
    /// gate compares this, making it robust to background-load spikes
    /// that inflate the median.
    pub wall_ms_min: f64,
    /// Engine events executed per pass (identical across passes —
    /// determinism is cross-checked).
    pub events: u64,
    /// Packets simulated per pass: client ingress + replica net-IRQ
    /// deliveries + client-bound deliveries — every packet that crossed
    /// the Δn median-agreement machinery or the client edge.
    pub packets: u64,
    /// `events / median wall seconds`.
    pub events_per_sec: f64,
    /// `packets / median wall seconds`.
    pub packets_per_sec: f64,
    /// `events / fastest wall seconds` (what the CI gate compares).
    pub events_per_sec_best: f64,
}

impl PerfReport {
    /// Renders the schema-versioned `BENCH_<name>.json` document.
    pub fn to_json(&self) -> String {
        self.to_json_value().render_pretty()
    }

    /// The report as a [`Json`] value — embeddable in aggregate documents
    /// (the consolidated `BENCH_trajectory.json`) as well as standalone.
    pub fn to_json_value(&self) -> Json {
        Json::obj()
            .with("schema_version", Json::U64(BENCH_SCHEMA_VERSION))
            .with("bench", Json::str(&self.bench))
            .with("mode", Json::str(if self.quick { "quick" } else { "full" }))
            .with(
                "engine",
                Json::str(if self.scalar { "scalar" } else { "batched" }),
            )
            .with("threads", Json::U64(self.threads))
            .with("scenarios", Json::U64(self.scenarios))
            .with("warmup", Json::U64(self.warmup))
            .with("repeats", Json::U64(self.repeats))
            .with(
                "wall_ms",
                Json::Arr(self.wall_ms.iter().map(|&w| Json::F64(w)).collect()),
            )
            .with("wall_ms_median", Json::F64(self.wall_ms_median))
            .with("wall_ms_min", Json::F64(self.wall_ms_min))
            .with("setup_ms", Json::F64(self.setup_ms))
            .with("run_ms", Json::F64(self.run_ms))
            .with("events", Json::U64(self.events))
            .with("packets", Json::U64(self.packets))
            .with("events_per_sec", Json::F64(self.events_per_sec))
            .with("packets_per_sec", Json::F64(self.packets_per_sec))
            .with("events_per_sec_best", Json::F64(self.events_per_sec_best))
    }

    /// One human line for the terminal.
    pub fn summary(&self) -> String {
        format!(
            "{} [{}] {} scenarios x {} repeats on {} threads: median {:.1} ms \
             (setup {:.1} + run {:.1}), {:.0} events/s, {:.0} packets/s",
            self.bench,
            if self.scalar { "scalar" } else { "batched" },
            self.scenarios,
            self.repeats,
            self.threads,
            self.wall_ms_median,
            self.setup_ms,
            self.run_ms,
            self.events_per_sec,
            self.packets_per_sec,
        )
    }
}

/// Version of the consolidated `BENCH_trajectory.json` layout. Bumped
/// whenever the trajectory shape changes, independently of the per-bench
/// [`BENCH_SCHEMA_VERSION`] each embedded report carries.
pub const TRAJECTORY_SCHEMA_VERSION: u64 = 1;

/// The checked-in baseline file name for one bench inside a baseline
/// directory: `BENCH_<bench>-baseline.json`. One naming rule for every
/// bench, so the consolidated gate can enumerate [`PERF_BENCHES`] and
/// refuse to run with a baseline missing (a new bench must check in a
/// baseline before it can ride the gate — it cannot silently skip it).
pub fn baseline_file_name(bench: &str) -> String {
    format!("BENCH_{bench}-baseline.json")
}

/// One bench's entry in a consolidated `swbench perf --all` pass.
#[derive(Debug, Clone)]
pub struct TrajectoryEntry {
    /// The bench's finished report.
    pub report: PerfReport,
    /// Gate outcome against the bench's checked-in baseline: the human
    /// verdict line (`Ok`) or the regression / unusable-baseline message
    /// (`Err`). `None` when the pass ran without a baseline directory
    /// (report-only, e.g. the nightly job).
    pub verdict: Option<Result<String, String>>,
}

/// The consolidated report of one `swbench perf --all` pass — every
/// registered bench's report plus its gate verdict, in registry order.
/// Rendered as the schema-versioned `BENCH_trajectory.json` artifact that
/// CI uploads per run, giving the repo a per-commit perf trajectory in
/// one document instead of five loose files.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    /// One entry per bench, in [`PERF_BENCHES`] order.
    pub entries: Vec<TrajectoryEntry>,
}

impl Trajectory {
    /// Renders the `BENCH_trajectory.json` document.
    pub fn to_json(&self) -> String {
        let benches = self
            .entries
            .iter()
            .map(|e| {
                let (gate, verdict) = match &e.verdict {
                    None => ("none", String::new()),
                    Some(Ok(line)) => ("ok", line.clone()),
                    Some(Err(line)) => ("fail", line.clone()),
                };
                Json::obj()
                    .with("gate", Json::str(gate))
                    .with("verdict", Json::str(verdict))
                    .with("report", e.report.to_json_value())
            })
            .collect();
        Json::obj()
            .with("schema_version", Json::U64(TRAJECTORY_SCHEMA_VERSION))
            .with("kind", Json::str("perf-trajectory"))
            .with("benches", Json::Arr(benches))
            .render_pretty()
    }

    /// The benches whose gate failed (empty = the consolidated pass is
    /// green).
    pub fn failures(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| matches!(e.verdict, Some(Err(_))))
            .map(|e| e.report.bench.as_str())
            .collect()
    }
}

/// Median of raw repeat timings: middle element for odd counts, mean of
/// the middle two for even counts. Public because the repeat-median math
/// is part of the report contract (and unit-tested as such).
pub fn median_wall_ms(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// The packet total of one pass (see [`PerfReport::packets`]).
fn packet_total(outcomes: &[RunOutcome]) -> u64 {
    outcomes
        .iter()
        .filter_map(|o| o.result.as_ref().ok())
        .map(|r| r.counter("ingress_packets") + r.counter("net_irq") + r.counter("client_packets"))
        .sum()
}

/// The engine-event total of one pass.
fn event_total(outcomes: &[RunOutcome]) -> u64 {
    outcomes
        .iter()
        .filter_map(|o| o.result.as_ref().ok())
        .map(|r| r.events_executed)
        .sum()
}

/// Runs the named benchmark: warmup passes, timed repeats, median math.
///
/// # Errors
///
/// Reports unknown benchmark names, scenario failures (a perf number over
/// a partially-failed pass would be meaningless), and repeats that
/// disagree on event counts (a determinism violation, not a perf result).
pub fn run_perf(name: &str, opts: &PerfOptions) -> Result<PerfReport, String> {
    let bench = perf_bench(name).ok_or_else(|| {
        let known: Vec<&str> = PERF_BENCHES.iter().map(|b| b.name).collect();
        format!(
            "unknown perf benchmark {name:?} (known: {})",
            known.join(", ")
        )
    })?;
    let mut scenarios = bench.scenarios(opts.quick)?;
    for s in &mut scenarios {
        s.scalar_reference = opts.scalar;
    }
    let runner = RunnerOptions {
        threads: opts.threads,
        progress: false,
    };
    let repeats = opts.repeats.max(1);

    for _ in 0..opts.warmup {
        run_scenarios(&scenarios, &runner);
    }

    let mut wall_ms = Vec::with_capacity(repeats);
    let mut setup_ms = Vec::with_capacity(repeats);
    let mut run_ms = Vec::with_capacity(repeats);
    let mut phases = crate::profile::Phases::default();
    let mut totals: Option<(u64, u64)> = None; // (events, packets)
    for repeat in 0..repeats {
        let started = Instant::now();
        let (outcomes, pass_phases) = run_scenarios_profiled(&scenarios, &runner);
        wall_ms.push(started.elapsed().as_secs_f64() * 1e3);
        setup_ms.push(pass_phases.setup_ns() as f64 / 1e6);
        run_ms.push((pass_phases.run_ns + pass_phases.aggregate_ns) as f64 / 1e6);
        phases.add(&pass_phases);
        if let Some((label, err)) = outcomes.iter().find_map(|o| {
            o.result
                .as_ref()
                .err()
                .map(|e| (o.label.clone(), e.clone()))
        }) {
            return Err(format!("scenario {label:?} failed: {err}"));
        }
        let pass = (event_total(&outcomes), packet_total(&outcomes));
        match totals {
            None => totals = Some(pass),
            Some(first) if first != pass => {
                return Err(format!(
                    "repeat {repeat} executed {pass:?} (events, packets) but repeat 0 \
                     executed {first:?} — determinism violation, not a perf result"
                ));
            }
            Some(_) => {}
        }
    }
    let (events, packets) = totals.expect("at least one repeat ran");
    let wall_ms_median = median_wall_ms(&wall_ms);
    let wall_ms_min = wall_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let secs = (wall_ms_median / 1e3).max(1e-9);
    let best_secs = (wall_ms_min / 1e3).max(1e-9);
    Ok(PerfReport {
        bench: bench.name.to_string(),
        quick: opts.quick,
        scalar: opts.scalar,
        threads: runner.effective_threads().min(scenarios.len()).max(1) as u64,
        scenarios: scenarios.len() as u64,
        warmup: opts.warmup as u64,
        repeats: repeats as u64,
        wall_ms,
        wall_ms_median,
        wall_ms_min,
        setup_ms: median_wall_ms(&setup_ms),
        run_ms: median_wall_ms(&run_ms),
        phases,
        events,
        packets,
        events_per_sec: events as f64 / secs,
        packets_per_sec: packets as f64 / secs,
        events_per_sec_best: events as f64 / best_secs,
    })
}

// ---------------------------------------------------------------------
// Baseline gate
// ---------------------------------------------------------------------

/// Scans a `BENCH_*.json` document (this crate's own writer output) for
/// `"key": <number>` and parses the number. Not a general JSON parser —
/// just enough to read back what [`PerfReport::to_json`] wrote.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Scans for `"key": "value"`.
fn json_string(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Gates `report` against a checked-in baseline document: fails when
/// best-pass events/sec (`events_per_sec_best` — see
/// [`PerfReport::wall_ms_min`] for why the gate uses the fastest pass)
/// fell more than `max_regress` (a fraction, e.g. `0.30`) below the
/// baseline's. Refuses to compare mismatched schema versions, benchmark
/// names, or quick-vs-full modes — those are config errors, not
/// regressions. Returns the human verdict line on success.
///
/// # Errors
///
/// The failure message (regression or unusable baseline).
pub fn check_against_baseline(
    report: &PerfReport,
    baseline_json: &str,
    max_regress: f64,
) -> Result<String, String> {
    let version = json_number(baseline_json, "schema_version")
        .ok_or("baseline has no schema_version — not a BENCH_*.json document")?;
    if version != BENCH_SCHEMA_VERSION as f64 {
        return Err(format!(
            "baseline schema_version {version} != current {BENCH_SCHEMA_VERSION}; refresh the baseline"
        ));
    }
    let bench = json_string(baseline_json, "bench").ok_or("baseline has no bench name")?;
    if bench != report.bench {
        return Err(format!(
            "baseline is for bench {bench:?}, this run is {:?}",
            report.bench
        ));
    }
    let mode = json_string(baseline_json, "mode").ok_or("baseline has no mode")?;
    let current_mode = if report.quick { "quick" } else { "full" };
    if mode != current_mode {
        return Err(format!(
            "baseline mode {mode:?} != this run's {current_mode:?}; compare like with like"
        ));
    }
    let engine = json_string(baseline_json, "engine").ok_or("baseline has no engine arm")?;
    let current_engine = if report.scalar { "scalar" } else { "batched" };
    if engine != current_engine {
        return Err(format!(
            "baseline engine arm {engine:?} != this run's {current_engine:?}; \
             compare like with like"
        ));
    }
    // Throughput scales with worker threads, so a 4-core run vs a 1-core
    // baseline would hide a large per-thread regression. Pin --threads in
    // the gate invocation (CI uses --threads 1).
    let threads = json_number(baseline_json, "threads").ok_or("baseline has no thread count")?;
    if threads != report.threads as f64 {
        return Err(format!(
            "baseline ran on {threads} thread(s), this run on {}; pin --threads so the \
             comparison is like-for-like",
            report.threads
        ));
    }
    let base_eps = json_number(baseline_json, "events_per_sec_best")
        .ok_or("baseline has no events_per_sec_best")?;
    let floor = base_eps * (1.0 - max_regress);
    let ratio = report.events_per_sec_best / base_eps.max(1e-9);
    if report.events_per_sec_best < floor {
        Err(format!(
            "throughput regression: best pass {:.0} events/s is {:.2}x the baseline's {:.0} \
             (floor {:.0} at {:.0}% tolerance)",
            report.events_per_sec_best,
            ratio,
            base_eps,
            floor,
            max_regress * 100.0
        ))
    } else {
        Ok(format!(
            "perf gate ok: best pass {:.0} events/s vs baseline {:.0} ({:.2}x, floor {:.0})",
            report.events_per_sec_best, base_eps, ratio, floor
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report(events_per_sec: f64) -> PerfReport {
        PerfReport {
            bench: "delta-n".to_string(),
            quick: true,
            scalar: false,
            threads: 4,
            scenarios: 16,
            warmup: 1,
            repeats: 3,
            wall_ms: vec![10.0, 12.0, 11.0],
            wall_ms_median: 11.0,
            wall_ms_min: 10.0,
            setup_ms: 4.0,
            run_ms: 7.0,
            phases: crate::profile::Phases::default(),
            events: 1000,
            packets: 500,
            events_per_sec,
            packets_per_sec: events_per_sec / 2.0,
            events_per_sec_best: events_per_sec * 1.1,
        }
    }

    #[test]
    fn repeat_median_math() {
        assert_eq!(median_wall_ms(&[5.0]), 5.0);
        assert_eq!(median_wall_ms(&[3.0, 1.0, 2.0]), 2.0, "odd: middle");
        assert_eq!(
            median_wall_ms(&[4.0, 1.0, 3.0, 2.0]),
            2.5,
            "even: mean of middles"
        );
        assert_eq!(median_wall_ms(&[7.0, 7.0, 100.0]), 7.0, "outlier-robust");
    }

    #[test]
    fn report_json_shape() {
        let json = fake_report(90_909.0).to_json();
        assert!(json.contains(&format!("\"schema_version\": {BENCH_SCHEMA_VERSION}")));
        assert!(json.contains("\"bench\": \"delta-n\""));
        assert!(json.contains("\"mode\": \"quick\""));
        assert!(json.contains("\"engine\": \"batched\""));
        assert!(json.contains("\"scenarios\": 16"));
        assert!(json.contains("\"wall_ms_median\": 11.0"));
        assert!(json.contains("\"wall_ms_min\": 10.0"));
        assert!(json.contains("\"setup_ms\": 4.0"), "v2 phase split");
        assert!(json.contains("\"run_ms\": 7.0"), "v2 phase split");
        assert!(json.contains("\"events_per_sec_best\""));
        assert!(json.contains("\"events_per_sec\": 90909.0"));
        // Round-trips through the gate's mini-parser.
        assert_eq!(
            json_number(&json, "schema_version"),
            Some(BENCH_SCHEMA_VERSION as f64)
        );
        assert_eq!(json_number(&json, "events_per_sec"), Some(90_909.0));
        assert_eq!(json_string(&json, "bench").as_deref(), Some("delta-n"));
        assert_eq!(json_string(&json, "mode").as_deref(), Some("quick"));
    }

    #[test]
    fn quick_vs_full_cell_counts() {
        let quick = perf_bench("delta-n").unwrap().scenarios(true).unwrap();
        let full = perf_bench("delta-n").unwrap().scenarios(false).unwrap();
        assert_eq!(quick.len(), 16, "8 grid points x 2 quick seeds");
        assert_eq!(full.len(), 64, "8 grid points x 8 seeds");
        let storm = perf_bench("packet-storm").unwrap().scenarios(true).unwrap();
        assert_eq!(storm.len(), 1, "single-cloud microbench");
        let cache = perf_bench("cache-storm").unwrap().scenarios(true).unwrap();
        assert_eq!(cache.len(), 1, "single-cloud microbench");
        assert_eq!(cache[0].workload, "cache-channel");
        let timer = perf_bench("timer-storm").unwrap().scenarios(true).unwrap();
        assert_eq!(timer.len(), 1, "single-cloud microbench");
        assert_eq!(timer[0].workload, "timer-channel");
        let defense = perf_bench("defense-storm")
            .unwrap()
            .scenarios(true)
            .unwrap();
        assert_eq!(
            defense.len(),
            vmm::defense::arm_names().len(),
            "one cloud per registered arm"
        );
        for (s, arm) in defense.iter().zip(vmm::defense::arm_names()) {
            assert_eq!(s.workload, "timer-channel");
            assert!(
                s.overrides
                    .contains(&("defense".to_string(), arm.to_string())),
                "scenario {} pins its arm",
                s.label
            );
        }
    }

    #[test]
    fn timer_storm_quick_run_counts_timer_work() {
        let opts = PerfOptions {
            quick: true,
            warmup: 0,
            repeats: 1,
            threads: 1,
            scalar: false,
        };
        let report = run_perf("timer-storm", &opts).expect("perf run");
        assert!(report.events > 0);
        assert!(
            report.to_json().contains("\"bench\": \"timer-storm\""),
            "report names its bench"
        );
    }

    #[test]
    fn cache_storm_quick_run_counts_probe_work() {
        let opts = PerfOptions {
            quick: true,
            warmup: 0,
            repeats: 1,
            threads: 1,
            scalar: false,
        };
        let report = run_perf("cache-storm", &opts).expect("perf run");
        assert!(report.events > 0);
        assert!(
            report.to_json().contains("\"bench\": \"cache-storm\""),
            "report names its bench"
        );
    }

    #[test]
    fn unknown_bench_is_a_clear_error() {
        let err = run_perf("no-such", &PerfOptions::default()).unwrap_err();
        assert!(err.contains("unknown perf benchmark"), "{err}");
        assert!(err.contains("delta-n"), "lists known names: {err}");
    }

    #[test]
    fn baseline_gate_passes_within_tolerance_and_fails_below() {
        let baseline = fake_report(100_000.0).to_json();
        // 30% tolerance: 71k/s passes, 69k/s fails.
        let ok = check_against_baseline(&fake_report(71_000.0), &baseline, 0.30);
        assert!(ok.is_ok(), "{ok:?}");
        let err = check_against_baseline(&fake_report(69_000.0), &baseline, 0.30).unwrap_err();
        assert!(err.contains("regression"), "{err}");
        // Faster than baseline always passes.
        assert!(check_against_baseline(&fake_report(250_000.0), &baseline, 0.30).is_ok());
    }

    #[test]
    fn baseline_gate_rejects_mismatched_documents() {
        let baseline = fake_report(100_000.0).to_json();
        let mut other_bench = fake_report(100_000.0);
        other_bench.bench = "packet-storm".to_string();
        let err = check_against_baseline(&other_bench, &baseline, 0.30).unwrap_err();
        assert!(err.contains("bench"), "{err}");

        let mut full_mode = fake_report(100_000.0);
        full_mode.quick = false;
        let err = check_against_baseline(&full_mode, &baseline, 0.30).unwrap_err();
        assert!(err.contains("mode"), "{err}");

        let mut scalar_arm = fake_report(100_000.0);
        scalar_arm.scalar = true;
        let err = check_against_baseline(&scalar_arm, &baseline, 0.30).unwrap_err();
        assert!(err.contains("engine arm"), "{err}");

        let mut other_threads = fake_report(100_000.0);
        other_threads.threads = 8;
        let err = check_against_baseline(&other_threads, &baseline, 0.30).unwrap_err();
        assert!(err.contains("pin --threads"), "{err}");

        let err = check_against_baseline(&fake_report(1.0), "{}", 0.30).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");

        let stale = baseline.replace(
            &format!("\"schema_version\": {BENCH_SCHEMA_VERSION}"),
            "\"schema_version\": 999",
        );
        let err = check_against_baseline(&fake_report(100_000.0), &stale, 0.30).unwrap_err();
        assert!(err.contains("refresh the baseline"), "{err}");
    }

    #[test]
    fn baseline_file_names_follow_one_rule() {
        for b in PERF_BENCHES {
            let name = baseline_file_name(b.name);
            assert_eq!(name, format!("BENCH_{}-baseline.json", b.name));
        }
    }

    #[test]
    fn trajectory_json_embeds_reports_and_verdicts() {
        let mut t = Trajectory::default();
        t.entries.push(TrajectoryEntry {
            report: fake_report(100_000.0),
            verdict: Some(Ok("perf gate ok: ...".to_string())),
        });
        let mut slow = fake_report(10_000.0);
        slow.bench = "packet-storm".to_string();
        t.entries.push(TrajectoryEntry {
            report: slow,
            verdict: Some(Err("throughput regression: ...".to_string())),
        });
        let mut ungated = fake_report(50_000.0);
        ungated.bench = "disk-storm".to_string();
        t.entries.push(TrajectoryEntry {
            report: ungated,
            verdict: None,
        });
        assert_eq!(t.failures(), vec!["packet-storm"]);
        let json = t.to_json();
        assert!(json.contains(&format!("\"schema_version\": {TRAJECTORY_SCHEMA_VERSION}")));
        assert!(json.contains("\"kind\": \"perf-trajectory\""));
        assert!(json.contains("\"gate\": \"ok\""));
        assert!(json.contains("\"gate\": \"fail\""));
        assert!(json.contains("\"gate\": \"none\""), "report-only entries");
        // The embedded per-bench reports keep their own schema version.
        assert!(json.contains(&format!("\"schema_version\": {BENCH_SCHEMA_VERSION}")));
        assert!(json.contains("\"bench\": \"delta-n\""));
        assert!(json.contains("\"bench\": \"packet-storm\""));
    }

    #[test]
    fn quick_perf_run_end_to_end() {
        // The packet-storm microbench, one repeat, no warmup: exercises
        // the full measure → totals → report path in test time.
        let opts = PerfOptions {
            quick: true,
            warmup: 0,
            repeats: 1,
            threads: 1,
            scalar: false,
        };
        let report = run_perf("packet-storm", &opts).expect("perf run");
        assert_eq!(report.scenarios, 1);
        assert_eq!(report.repeats, 1);
        assert_eq!(report.wall_ms.len(), 1);
        assert!(report.events > 0, "simulated something");
        assert!(report.packets > 0, "packet-dense by construction");
        assert!(report.events_per_sec > 0.0);
        assert!(report.setup_ms > 0.0, "setup phase attributed");
        assert!(report.run_ms > 0.0, "run phase attributed");
        assert!(
            report.phases.total_ns() > 0,
            "phase totals accumulated for --profile"
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"packet-storm\""));
        // A scalar-reference pass replays the identical trace.
        let scalar = run_perf(
            "packet-storm",
            &PerfOptions {
                scalar: true,
                ..opts
            },
        )
        .expect("scalar perf run");
        assert_eq!(
            scalar.events, report.events,
            "scalar arm replays the same trace"
        );
        assert_eq!(scalar.packets, report.packets);
    }
}
