//! Parallel scenario execution on std threads.
//!
//! The queue is a single atomic cursor over the scenario list: idle
//! workers steal the next unclaimed index, so long scenarios never block
//! short ones behind a static partition, and the pool saturates every
//! core until the list drains. Results land in their scenario's slot, so
//! the output order — and therefore every aggregate built from it — is
//! **independent of thread count and scheduling**: each scenario is an
//! isolated deterministic simulation keyed only by its own spec and seed.

use crate::profile::Phases;
use crate::scenario::{Scenario, ScenarioArena, ScenarioResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runner knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunnerOptions {
    /// Worker threads; 0 means one per available core. Note the `swbench`
    /// CLI rejects an explicit `--threads 0` (omitting the flag is how
    /// "all cores" is spelled there); this API-level 0 exists so callers
    /// can default without probing the machine themselves.
    pub threads: usize,
    /// Print per-scenario progress lines to stderr.
    pub progress: bool,
}

impl RunnerOptions {
    /// Resolves `threads == 0` to the machine's parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One scenario's outcome: its result, or the error message that stopped
/// it. Build errors and panics are captured per scenario — one bad cell
/// cannot take down a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The scenario's label.
    pub label: String,
    /// Result or error.
    pub result: Result<ScenarioResult, String>,
}

/// Runs every scenario across a work-stealing thread pool and returns the
/// outcomes **in input order**.
pub fn run_scenarios(scenarios: &[Scenario], opts: &RunnerOptions) -> Vec<RunOutcome> {
    run_scenarios_profiled(scenarios, opts).0
}

/// [`run_scenarios`] plus the pass's phase-timer totals: each worker
/// accumulates the per-scenario setup/run/aggregate wall split locally
/// and the sums are folded once at scope exit, so the profile costs two
/// monotonic clock reads per phase and no shared-state traffic on the
/// hot path. The outcomes are byte-for-byte those of [`run_scenarios`] —
/// timings live outside [`RunOutcome`], so determinism comparisons never
/// see them.
pub fn run_scenarios_profiled(
    scenarios: &[Scenario],
    opts: &RunnerOptions,
) -> (Vec<RunOutcome>, Phases) {
    let threads = opts.effective_threads().min(scenarios.len()).max(1);
    if threads == 1 {
        // One worker claims every index in order anyway, so skip the
        // scope/Mutex machinery: no thread spawn, no per-slot locks. The
        // outcomes are identical by construction — output order is input
        // order in both paths.
        let mut phases = Phases::default();
        let mut arena = ScenarioArena::new();
        let total = scenarios.len();
        let outcomes = scenarios
            .iter()
            .enumerate()
            .map(|(idx, scenario)| {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    scenario.run_phased_in(&mut arena, &mut phases)
                }))
                .unwrap_or_else(|panic| Err(panic_message(panic)));
                if opts.progress {
                    let status = match &result {
                        Ok(r) if r.clients_done => "ok",
                        Ok(_) => "timeout",
                        Err(_) => "ERROR",
                    };
                    eprintln!("[{}/{total}] {} {status}", idx + 1, scenario.label);
                }
                RunOutcome {
                    label: scenario.label.clone(),
                    result,
                }
            })
            .collect();
        return (outcomes, phases);
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunOutcome>>> =
        scenarios.iter().map(|_| Mutex::new(None)).collect();
    let done = AtomicUsize::new(0);
    let total = scenarios.len();
    let totals = Mutex::new(Phases::default());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Phases::default();
                let mut arena = ScenarioArena::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= total {
                        break;
                    }
                    let scenario = &scenarios[idx];
                    // `local` is plain counters and the arena only ever
                    // gains complete entries: a panicking scenario at
                    // worst leaves its own partial timings behind, which
                    // is the honest attribution anyway.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        scenario.run_phased_in(&mut arena, &mut local)
                    }))
                    .unwrap_or_else(|panic| Err(panic_message(panic)));
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if opts.progress {
                        let status = match &result {
                            Ok(r) if r.clients_done => "ok",
                            Ok(_) => "timeout",
                            Err(_) => "ERROR",
                        };
                        eprintln!("[{finished}/{total}] {} {status}", scenario.label);
                    }
                    *slots[idx].lock().expect("result slot") = Some(RunOutcome {
                        label: scenario.label.clone(),
                        result,
                    });
                }
                totals.lock().expect("phase totals").add(&local);
            });
        }
    });

    let outcomes = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every index claimed exactly once")
        })
        .collect();
    (outcomes, totals.into_inner().expect("phase totals"))
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("scenario panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("scenario panicked: {s}")
    } else {
        "scenario panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepSpec;
    use simkit::time::SimDuration;

    fn tiny_sweep() -> Vec<Scenario> {
        let mut spec = SweepSpec::new("t", "idle").seed_shards(5, 6);
        spec.duration = SimDuration::from_millis(50);
        spec.drain = SimDuration::ZERO;
        spec.scenarios().unwrap()
    }

    #[test]
    fn outcomes_keep_input_order_at_any_thread_count() {
        let scenarios = tiny_sweep();
        let one = run_scenarios(
            &scenarios,
            &RunnerOptions {
                threads: 1,
                progress: false,
            },
        );
        let four = run_scenarios(
            &scenarios,
            &RunnerOptions {
                threads: 4,
                progress: false,
            },
        );
        assert_eq!(one.len(), scenarios.len());
        assert_eq!(one, four, "thread count must not change outcomes");
        for (outcome, scenario) in one.iter().zip(&scenarios) {
            assert_eq!(outcome.label, scenario.label);
            assert!(outcome.result.is_ok());
        }
    }

    #[test]
    fn errors_are_captured_not_fatal() {
        let mut scenarios = tiny_sweep();
        scenarios[2].workload = "no-such-workload".to_string();
        let out = run_scenarios(
            &scenarios,
            &RunnerOptions {
                threads: 3,
                progress: false,
            },
        );
        assert!(out[2].result.is_err());
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, o)| i == 2 || o.result.is_ok()));
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let scenarios = tiny_sweep();
        let out = run_scenarios(
            &scenarios,
            &RunnerOptions {
                threads: 64,
                progress: false,
            },
        );
        assert_eq!(out.len(), scenarios.len());
    }
}
